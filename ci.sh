#!/usr/bin/env bash
# Local CI gate: build, test, lint, and the cross-thread-count
# determinism suite. Mirrors what a PR must pass.
#
# NEWSDIFF_THREADS=4 forces the parallel paths on even on small CI
# machines; the determinism suite then pins 1/2/8-thread runs against
# each other internally.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release --workspace

echo "==> tests (workspace)"
NEWSDIFF_THREADS=4 cargo test -q --workspace

echo "==> clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> nd-lint (workspace invariants: determinism, panic-safety, lock order, error flow)"
# Cold run: fresh cache, machine-readable JSON + SARIF reports.
rm -f target/nd-lint.cache
cargo run -q --release -p nd-lint -- --deny --json --sarif lint_report.sarif > lint_report.json

echo "==> nd-lint warm incremental run (must be byte-identical to the cold report)"
cargo run -q --release -p nd-lint -- --deny --json > lint_report.warm.json
cmp lint_report.json lint_report.warm.json
rm -f lint_report.warm.json

echo "==> determinism suite"
NEWSDIFF_THREADS=4 cargo test -q --test determinism

echo "==> serving round-trip (bit-identity, hot swap, backpressure)"
NEWSDIFF_THREADS=4 cargo test -q --test serve_roundtrip

echo "==> serving load smoke (zero 5xx outside the overload drill)"
cargo run --release --example serve_demo -- --smoke

echo "==> serving SLO suite (loris cutoff, header flood, dynamic Retry-After, shard bit-identity)"
NEWSDIFF_THREADS=4 cargo test -q --release --test serve_slo

echo "==> sharded load-generator smoke (closed/open/burst/loris profiles healthy)"
cargo run --release --example loadgen -- --smoke

echo "==> pattern-mining smoke (planted signatures recovered exactly, drift shifts the catalog)"
cargo run --release --example patterns_demo -- --smoke

echo "==> bench scaling gate (advisory: parallel must not regress past serial)"
if [[ -f BENCH_kernels.json ]]; then
    cargo run -q --release -p nd-bench --bin bench-compare -- BENCH_kernels.json ||
        echo "WARNING: bench-compare found parallel regressions (advisory only; re-run 'ND_BENCH_JSON=BENCH_kernels.json cargo bench -p nd-bench --bench kernels' on a quiet machine)"
else
    echo "BENCH_kernels.json not found; skipping (generate with ND_BENCH_JSON=BENCH_kernels.json cargo bench -p nd-bench --bench kernels)"
fi

echo "==> pattern-mining bench gate (advisory: threaded mining must not regress past serial)"
if [[ -f BENCH_patterns.json ]]; then
    cargo run -q --release -p nd-bench --bin bench-compare -- BENCH_patterns.json ||
        echo "WARNING: bench-compare found parallel regressions (advisory only; re-run 'ND_BENCH_JSON=BENCH_patterns.json cargo bench -p nd-bench --bench patterns' on a quiet machine)"
else
    echo "BENCH_patterns.json not found; skipping (generate with ND_BENCH_JSON=BENCH_patterns.json cargo bench -p nd-bench --bench patterns)"
fi

echo "==> pipeline cache bench table (advisory: warm replay must dwarf cold runs)"
if [[ -f BENCH_pipeline.json ]]; then
    cargo run -q --release -p nd-bench --bin bench-compare -- BENCH_pipeline.json ||
        echo "WARNING: bench-compare failed on BENCH_pipeline.json (advisory only; re-run 'ND_BENCH_JSON=BENCH_pipeline.json cargo bench -p nd-bench --bench pipeline' on a quiet machine)"
else
    echo "BENCH_pipeline.json not found; skipping (generate with ND_BENCH_JSON=BENCH_pipeline.json cargo bench -p nd-bench --bench pipeline)"
fi

echo "==> incremental stream bench table (advisory: fold-one-slice must dwarf cold re-runs)"
if [[ -f BENCH_incremental.json ]]; then
    cargo run -q --release -p nd-bench --bin bench-compare -- BENCH_incremental.json ||
        echo "WARNING: bench-compare failed on BENCH_incremental.json (advisory only; re-run 'ND_BENCH_JSON=\$PWD/BENCH_incremental.json cargo bench -p nd-bench --bench incremental' on a quiet machine)"
else
    echo "BENCH_incremental.json not found; skipping (generate with ND_BENCH_JSON=\$PWD/BENCH_incremental.json cargo bench -p nd-bench --bench incremental)"
fi

echo "==> serving SLO gate (advisory: 4-shard cold-probe must not regress past single-shard)"
if [[ -f BENCH_slo.json ]]; then
    cargo run -q --release -p nd-bench --bin bench-compare -- BENCH_slo.json ||
        echo "WARNING: bench-compare failed on BENCH_slo.json (advisory only; re-run 'ND_BENCH_JSON=\$PWD/BENCH_slo.json cargo bench -p nd-bench --bench slo' on a quiet machine)"
else
    echo "BENCH_slo.json not found; skipping (generate with ND_BENCH_JSON=\$PWD/BENCH_slo.json cargo bench -p nd-bench --bench slo)"
fi

echo "==> ci.sh: all green"
