//! Benchmarks of the incremental stream DAG: folding every slice from
//! scratch versus folding only the newest slice on a cached prefix —
//! the number that justifies the streaming path's existence.
//!
//! Generate the JSON dump for the CI table with:
//!
//! ```text
//! ND_BENCH_JSON=BENCH_incremental.json cargo bench -p nd-bench --bench incremental
//! ```
//!
//! All entries are table-only in `bench-compare` (no `threads/<t>`
//! names), so this file never gates hard — the `cold_full` /
//! `fold_one_slice` ratio is the number to eyeball: folding one slice
//! onto a warm prefix must sit well over 5x under the cold re-run
//! (the acceptance floor for the streaming subsystem).

use criterion::{criterion_group, criterion_main, Criterion};
use nd_core::incremental::{StreamConfig, StreamPipeline};
use nd_synth::{FirehoseConfig, WorldConfig};
use std::hint::black_box;
use std::path::{Path, PathBuf};

/// Slices in the benchmark horizon.
const SLICES: usize = 10;

fn cache_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ndbench-incremental-{}-{tag}", std::process::id()))
}

/// A 10-day world in 24-hour slices: ten folds end to end, with the
/// fold budgets the streaming tests use.
fn config(dir: Option<&Path>) -> StreamConfig {
    let base = StreamConfig {
        firehose: FirehoseConfig {
            world: WorldConfig {
                days: SLICES as u64,
                n_users: 100,
                min_influencers: 10,
                ..WorldConfig::small()
            },
            slice_hours: 24,
        },
        refine_iters: 15,
        embed_dim: 8,
        embed_epochs: 1,
        ..StreamConfig::small()
    };
    match dir {
        Some(d) => base.with_cache_dir(d.to_path_buf()),
        None => base,
    }
}

/// Cold: no cache, all `6 × SLICES` fold bodies execute.
fn bench_cold_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    group.sample_size(3);
    group.bench_function("cold_full", |b| {
        b.iter(|| {
            let (state, report) =
                StreamPipeline::new(config(None)).run(SLICES).expect("cold run");
            assert_eq!(report.executed(), 6 * SLICES, "cold run must fold everything");
            black_box(state)
        })
    });
    group.finish();
}

/// Incremental: the prefix is cached; each iteration deletes the six
/// head-slice artifacts and folds exactly that slice back — the
/// steady-state cost of one firehose arrival.
fn bench_fold_one_slice(c: &mut Criterion) {
    let dir = cache_dir("fold");
    std::fs::remove_dir_all(&dir).ok();
    let pipeline = StreamPipeline::new(config(Some(&dir)));
    pipeline.run(SLICES).expect("populate cache");
    let head_paths: Vec<PathBuf> = [
        "stream-collect",
        "stream-preprocess",
        "stream-vectorize",
        "stream-topics",
        "stream-events",
        "stream-embed",
    ]
    .iter()
    .map(|stage| pipeline.artifact_path(stage, SLICES - 1).expect("head artifact path"))
    .collect();

    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    group.bench_function("fold_one_slice", |b| {
        b.iter(|| {
            for p in &head_paths {
                std::fs::remove_file(p).expect("evict head artifact");
            }
            let (state, report) = pipeline.run(SLICES).expect("fold run");
            assert_eq!(
                report.executed(),
                6,
                "only the evicted head slice may fold: {report:?}"
            );
            black_box(state)
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// Fully warm replay: six head decodes, zero folds, zero polls — the
/// cost of re-attaching a server to an up-to-date stream cache.
fn bench_warm_replay(c: &mut Criterion) {
    let dir = cache_dir("warm");
    std::fs::remove_dir_all(&dir).ok();
    let pipeline = StreamPipeline::new(config(Some(&dir)));
    pipeline.run(SLICES).expect("populate cache");
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    group.bench_function("warm_replay", |b| {
        b.iter(|| {
            let (state, report) = pipeline.run(SLICES).expect("warm run");
            assert_eq!(report.executed(), 0, "warm replay must not fold");
            assert_eq!(report.slices_polled, 0, "warm replay must not poll");
            black_box(state)
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    name = incremental;
    config = Criterion::default();
    targets = bench_cold_full, bench_fold_one_slice, bench_warm_replay
);
criterion_main!(incremental);
