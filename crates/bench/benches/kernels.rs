//! Criterion micro-benchmarks of the pipeline's hot kernels:
//! TF-IDF construction, one NMF iteration cycle, MABED detection,
//! Word2Vec training steps and embedding cosine scans — plus
//! serial-vs-parallel scaling groups for every kernel routed through
//! `nd-par` (`NEWSDIFF_THREADS` is re-read per product, so each group
//! member pins its own thread count).
//!
//! Set `ND_BENCH_JSON=BENCH_kernels.json` to append the measurements
//! as JSON when the run finishes.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use nd_core::predict::NetworkKind;
use nd_embed::{Word2Vec, Word2VecConfig, Word2VecMode};
use nd_events::{AnomalySource, Mabed, MabedConfig, SlicedCorpus, TimestampedDoc};
use nd_linalg::rng::SplitMix64;
use nd_linalg::vecops::cosine;
use nd_linalg::Mat;
use nd_neural::{Conv1d, Dense, Layer, Trainer, TrainerConfig};
use nd_topics::{Nmf, NmfConfig};
use nd_vectorize::{DtmBuilder, Weighting};
use std::hint::black_box;

/// Thread counts exercised by the scaling groups.
const THREAD_STEPS: [&str; 3] = ["1", "2", "4"];

/// Sample count for sub-10ms kernels: cheap iterations are noisy, so
/// they get more samples to stabilize the reported median and min.
const FAST_KERNEL_SAMPLES: usize = 40;

fn random_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut rng = SplitMix64::new(seed);
    Mat::from_fn(rows, cols, |_, _| rng.next_range(-1.0, 1.0))
}

fn synth_docs(n: usize, vocab: usize, len: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (0..len).map(|_| format!("w{}", rng.next_usize(vocab))).collect())
        .collect()
}

fn bench_tfidf(c: &mut Criterion) {
    let docs = synth_docs(2_000, 3_000, 80, 1);
    c.bench_function("tfidf_build_2000x3000", |b| {
        b.iter(|| {
            let dtm = DtmBuilder::new().build(black_box(&docs));
            black_box(dtm.weighted(Weighting::TfIdfNormalized))
        })
    });
}

fn bench_nmf(c: &mut Criterion) {
    let docs = synth_docs(500, 800, 60, 2);
    let dtm = DtmBuilder::new().build(&docs);
    let a = dtm.weighted(Weighting::TfIdfNormalized);
    c.bench_function("nmf_10topics_20iters", |b| {
        b.iter(|| {
            let nmf = Nmf::new(NmfConfig { n_topics: 10, max_iter: 20, tol: 0.0, seed: 3 });
            black_box(nmf.fit(black_box(&a), dtm.vocab()))
        })
    });
}

fn bench_mabed(c: &mut Criterion) {
    let mut rng = SplitMix64::new(4);
    let docs: Vec<TimestampedDoc> = (0..5_000)
        .map(|i| {
            let tokens =
                (0..12).map(|_| format!("w{}", rng.next_usize(400))).collect::<Vec<_>>();
            TimestampedDoc::new(i as u64 * 60, tokens, usize::from(rng.next_bool(0.5)))
        })
        .collect();
    let sliced = SlicedCorpus::build(&docs, 1_800);
    c.bench_function("mabed_detect_5000docs", |b| {
        b.iter(|| {
            let mabed = Mabed::new(MabedConfig {
                n_events: 10,
                min_word_docs: 20,
                source: AnomalySource::Mentions,
                ..Default::default()
            });
            black_box(mabed.detect(black_box(&sliced)))
        })
    });
}

fn bench_word2vec(c: &mut Criterion) {
    let corpus = synth_docs(300, 500, 15, 5);
    c.bench_function("word2vec_cbow_1epoch_dim64", |b| {
        b.iter(|| {
            let w2v = Word2Vec::new(Word2VecConfig {
                dim: 64,
                epochs: 1,
                min_count: 1,
                mode: Word2VecMode::Cbow,
                ..Default::default()
            });
            black_box(w2v.train(black_box(&corpus)))
        })
    });
}

fn bench_cosine(c: &mut Criterion) {
    let mut rng = SplitMix64::new(6);
    let a: Vec<f64> = (0..300).map(|_| rng.next_gaussian()).collect();
    let vectors: Vec<Vec<f64>> =
        (0..1_000).map(|_| (0..300).map(|_| rng.next_gaussian()).collect()).collect();
    c.bench_function("cosine_scan_1000x300", |b| {
        b.iter_batched(
            || (),
            |_| {
                let best = vectors
                    .iter()
                    .map(|v| cosine(black_box(&a), v))
                    .fold(f64::MIN, f64::max);
                black_box(best)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_matmul_scaling(c: &mut Criterion) {
    let a = random_mat(256, 256, 11);
    let b = random_mat(256, 256, 12);
    let mut g = c.benchmark_group("matmul_256x256");
    g.sample_size(FAST_KERNEL_SAMPLES);
    for t in THREAD_STEPS {
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |bch, &t| {
            std::env::set_var("NEWSDIFF_THREADS", t);
            bch.iter(|| black_box(a.matmul(black_box(&b)).unwrap()));
        });
    }
    std::env::remove_var("NEWSDIFF_THREADS");
    g.finish();
}

fn bench_matmul_1024_scaling(c: &mut Criterion) {
    let a = random_mat(1024, 1024, 22);
    let b = random_mat(1024, 1024, 23);
    let mut g = c.benchmark_group("matmul_1024x1024");
    // ~1 GFLOP per product: keep the sample count low.
    g.sample_size(5);
    for t in THREAD_STEPS {
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |bch, &t| {
            std::env::set_var("NEWSDIFF_THREADS", t);
            bch.iter(|| black_box(a.matmul(black_box(&b)).unwrap()));
        });
    }
    std::env::remove_var("NEWSDIFF_THREADS");
    g.finish();
}

/// The packed GEMM kernel itself, with scratch and output buffers
/// reused across iterations (the steady-state shape of every `_into`
/// call site): measures the kernel, not the allocator.
fn bench_gemm_scaling(c: &mut Criterion) {
    for (size, samples) in [(256usize, FAST_KERNEL_SAMPLES), (512, 20), (1024, 5)] {
        let a = random_mat(size, size, 31);
        let b = random_mat(size, size, 32);
        let mut scratch = nd_linalg::GemmScratch::new();
        let mut out = Mat::zeros(size, size);
        let mut g = c.benchmark_group(&format!("gemm_{size}"));
        g.sample_size(samples);
        for t in THREAD_STEPS {
            g.bench_with_input(BenchmarkId::new("threads", t), &t, |bch, &t| {
                std::env::set_var("NEWSDIFF_THREADS", t);
                bch.iter(|| {
                    a.matmul_unchecked_into(black_box(&b), &mut scratch, &mut out);
                    black_box(out.get(0, 0))
                });
            });
        }
        std::env::remove_var("NEWSDIFF_THREADS");
        g.finish();
    }
}

/// Matrix-free LSA fit: randomized SVD driven through the sparse
/// matrix's `MatOp` impl — sketch GEMMs plus SpMM, never densified.
fn bench_lsa_scaling(c: &mut Criterion) {
    use nd_topics::lsa::{Lsa, LsaConfig};
    let docs = synth_docs(2_000, 3_000, 80, 33);
    let dtm = DtmBuilder::new().build(&docs);
    let a = dtm.weighted(Weighting::TfIdfNormalized);
    let mut g = c.benchmark_group("lsa_fit_2000x3000_k20");
    g.sample_size(10);
    for t in THREAD_STEPS {
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |bch, &t| {
            std::env::set_var("NEWSDIFF_THREADS", t);
            bch.iter(|| {
                let lsa = Lsa::new(LsaConfig { n_topics: 20, ..Default::default() });
                black_box(lsa.fit(black_box(&a), dtm.vocab()))
            });
        });
    }
    std::env::remove_var("NEWSDIFF_THREADS");
    g.finish();
}

fn bench_cnn_epoch_scaling(c: &mut Criterion) {
    let mut rng = SplitMix64::new(24);
    let n = 500;
    let dim = 308;
    let mut x = Mat::zeros(n, dim);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        for col in 0..dim {
            x.set(r, col, rng.next_gaussian());
        }
        y.push(rng.next_usize(3));
    }
    let mut g = c.benchmark_group("cnn_epoch_500x308");
    for t in THREAD_STEPS {
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |bch, &t| {
            std::env::set_var("NEWSDIFF_THREADS", t);
            bch.iter(|| {
                let kind = NetworkKind::Cnn1;
                let mut net = kind.build(dim, 42);
                let mut opt = kind.optimizer();
                let trainer = Trainer::new(TrainerConfig {
                    batch_size: 5_000,
                    max_epochs: 1,
                    early_stopping: None,
                    seed: 1,
                });
                black_box(trainer.fit(&mut net, black_box(&x), &y, opt.as_mut()))
            });
        });
    }
    std::env::remove_var("NEWSDIFF_THREADS");
    g.finish();
}

fn bench_csr_scaling(c: &mut Criterion) {
    let docs = synth_docs(2_000, 3_000, 80, 13);
    let dtm = DtmBuilder::new().build(&docs);
    let a = dtm.weighted(Weighting::TfIdfNormalized);
    let rhs = random_mat(a.cols(), 32, 14);
    let rhs_t = random_mat(a.rows(), 32, 15);
    let mut g = c.benchmark_group("csr_products_2000x3000_k32");
    g.sample_size(FAST_KERNEL_SAMPLES);
    for t in THREAD_STEPS {
        g.bench_with_input(BenchmarkId::new("ax_threads", t), &t, |bch, &t| {
            std::env::set_var("NEWSDIFF_THREADS", t);
            bch.iter(|| black_box(a.matmul_dense(black_box(&rhs))));
        });
        g.bench_with_input(BenchmarkId::new("atx_threads", t), &t, |bch, &t| {
            std::env::set_var("NEWSDIFF_THREADS", t);
            bch.iter(|| black_box(a.transpose_matmul_dense(black_box(&rhs_t))));
        });
    }
    std::env::remove_var("NEWSDIFF_THREADS");
    g.finish();
}

fn bench_nmf_scaling(c: &mut Criterion) {
    let docs = synth_docs(500, 800, 60, 16);
    let dtm = DtmBuilder::new().build(&docs);
    let a = dtm.weighted(Weighting::TfIdfNormalized);
    let mut g = c.benchmark_group("nmf_iteration_500x800_k10");
    g.sample_size(FAST_KERNEL_SAMPLES);
    for t in THREAD_STEPS {
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |bch, &t| {
            std::env::set_var("NEWSDIFF_THREADS", t);
            bch.iter(|| {
                let nmf = Nmf::new(NmfConfig { n_topics: 10, max_iter: 1, tol: 0.0, seed: 3 });
                black_box(nmf.fit(black_box(&a), dtm.vocab()))
            });
        });
    }
    std::env::remove_var("NEWSDIFF_THREADS");
    g.finish();
}

fn bench_word2vec_scaling(c: &mut Criterion) {
    let corpus = synth_docs(300, 500, 15, 17);
    let mut g = c.benchmark_group("word2vec_epoch_dim32");
    g.sample_size(FAST_KERNEL_SAMPLES);
    for t in THREAD_STEPS {
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |bch, &t| {
            std::env::set_var("NEWSDIFF_THREADS", t);
            bch.iter(|| {
                let w2v = Word2Vec::new(Word2VecConfig {
                    dim: 32,
                    epochs: 1,
                    min_count: 1,
                    mode: Word2VecMode::Cbow,
                    ..Default::default()
                });
                black_box(w2v.train(black_box(&corpus)))
            });
        });
    }
    std::env::remove_var("NEWSDIFF_THREADS");
    g.finish();
}

fn bench_layers_scaling(c: &mut Criterion) {
    let dense_in = random_mat(64, 256, 18);
    let conv_in = random_mat(64, 300, 19);
    let mut g = c.benchmark_group("layers_fwd_bwd_batch64");
    g.sample_size(FAST_KERNEL_SAMPLES);
    for t in THREAD_STEPS {
        g.bench_with_input(BenchmarkId::new("dense_256x128_threads", t), &t, |bch, &t| {
            std::env::set_var("NEWSDIFF_THREADS", t);
            let mut layer = Dense::new(256, 128, 20);
            bch.iter(|| {
                let out = layer.forward(black_box(&dense_in), true);
                black_box(layer.backward(&out))
            });
        });
        g.bench_with_input(BenchmarkId::new("conv1d_k5_f16_threads", t), &t, |bch, &t| {
            std::env::set_var("NEWSDIFF_THREADS", t);
            let mut layer = Conv1d::new(300, 5, 16, 21);
            bch.iter(|| {
                let out = layer.forward(black_box(&conv_in), true);
                black_box(layer.backward(&out))
            });
        });
    }
    std::env::remove_var("NEWSDIFF_THREADS");
    g.finish();
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_tfidf, bench_nmf, bench_mabed, bench_word2vec, bench_cosine,
        bench_matmul_scaling, bench_matmul_1024_scaling, bench_gemm_scaling,
        bench_lsa_scaling, bench_csr_scaling, bench_nmf_scaling,
        bench_word2vec_scaling, bench_layers_scaling, bench_cnn_epoch_scaling
);
criterion_main!(kernels);
