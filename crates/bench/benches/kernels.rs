//! Criterion micro-benchmarks of the pipeline's hot kernels:
//! TF-IDF construction, one NMF iteration cycle, MABED detection,
//! Word2Vec training steps and embedding cosine scans.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nd_embed::{Word2Vec, Word2VecConfig, Word2VecMode};
use nd_events::{AnomalySource, Mabed, MabedConfig, SlicedCorpus, TimestampedDoc};
use nd_linalg::rng::SplitMix64;
use nd_linalg::vecops::cosine;
use nd_topics::{Nmf, NmfConfig};
use nd_vectorize::{DtmBuilder, Weighting};
use std::hint::black_box;

fn synth_docs(n: usize, vocab: usize, len: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (0..len).map(|_| format!("w{}", rng.next_usize(vocab))).collect())
        .collect()
}

fn bench_tfidf(c: &mut Criterion) {
    let docs = synth_docs(2_000, 3_000, 80, 1);
    c.bench_function("tfidf_build_2000x3000", |b| {
        b.iter(|| {
            let dtm = DtmBuilder::new().build(black_box(&docs));
            black_box(dtm.weighted(Weighting::TfIdfNormalized))
        })
    });
}

fn bench_nmf(c: &mut Criterion) {
    let docs = synth_docs(500, 800, 60, 2);
    let dtm = DtmBuilder::new().build(&docs);
    let a = dtm.weighted(Weighting::TfIdfNormalized);
    c.bench_function("nmf_10topics_20iters", |b| {
        b.iter(|| {
            let nmf = Nmf::new(NmfConfig { n_topics: 10, max_iter: 20, tol: 0.0, seed: 3 });
            black_box(nmf.fit(black_box(&a), dtm.vocab()))
        })
    });
}

fn bench_mabed(c: &mut Criterion) {
    let mut rng = SplitMix64::new(4);
    let docs: Vec<TimestampedDoc> = (0..5_000)
        .map(|i| {
            let tokens =
                (0..12).map(|_| format!("w{}", rng.next_usize(400))).collect::<Vec<_>>();
            TimestampedDoc::new(i as u64 * 60, tokens, usize::from(rng.next_bool(0.5)))
        })
        .collect();
    let sliced = SlicedCorpus::build(&docs, 1_800);
    c.bench_function("mabed_detect_5000docs", |b| {
        b.iter(|| {
            let mabed = Mabed::new(MabedConfig {
                n_events: 10,
                min_word_docs: 20,
                source: AnomalySource::Mentions,
                ..Default::default()
            });
            black_box(mabed.detect(black_box(&sliced)))
        })
    });
}

fn bench_word2vec(c: &mut Criterion) {
    let corpus = synth_docs(300, 500, 15, 5);
    c.bench_function("word2vec_cbow_1epoch_dim64", |b| {
        b.iter(|| {
            let w2v = Word2Vec::new(Word2VecConfig {
                dim: 64,
                epochs: 1,
                min_count: 1,
                mode: Word2VecMode::Cbow,
                ..Default::default()
            });
            black_box(w2v.train(black_box(&corpus)))
        })
    });
}

fn bench_cosine(c: &mut Criterion) {
    let mut rng = SplitMix64::new(6);
    let a: Vec<f64> = (0..300).map(|_| rng.next_gaussian()).collect();
    let vectors: Vec<Vec<f64>> =
        (0..1_000).map(|_| (0..300).map(|_| rng.next_gaussian()).collect()).collect();
    c.bench_function("cosine_scan_1000x300", |b| {
        b.iter_batched(
            || (),
            |_| {
                let best = vectors
                    .iter()
                    .map(|v| cosine(black_box(&a), v))
                    .fold(f64::MIN, f64::max);
                black_box(best)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_tfidf, bench_nmf, bench_mabed, bench_word2vec, bench_cosine
);
criterion_main!(kernels);
