//! Benchmarks of the nd-lint analyzer over the real workspace: a cold
//! full analysis (lex + parse + CFG + global pass for every file) and
//! a warm incremental run (every file replayed from the fingerprint
//! cache, only the global pass recomputed).
//!
//! Generate the JSON dump for the CI table with:
//!
//! ```text
//! ND_BENCH_JSON=BENCH_lint.json cargo bench -p nd-bench --bench lint
//! ```
//!
//! Table-only entries (no `threads/<t>` names) — the number to eyeball
//! is the cold/warm ratio: warm must sit well under cold, or the
//! incremental cache is not earning its keep.

use criterion::{criterion_group, criterion_main, Criterion};
use nd_lint::{analyze_workspace_with, AnalyzeOptions};
use std::hint::black_box;
use std::path::{Path, PathBuf};

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn cache_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ndbench-lint-{}-{tag}.cache", std::process::id()))
}

/// Cold: no cache — every file is lexed, parsed, and flow-analyzed.
fn bench_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("lint_full_workspace");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let opts = AnalyzeOptions { cache_path: None, changed_only: false };
            let (findings, stats) =
                analyze_workspace_with(workspace_root(), &opts).expect("cold lint");
            assert_eq!(stats.reparsed, stats.files_scanned);
            black_box(findings)
        })
    });
    group.finish();
}

/// Warm: fingerprint cache pre-populated — per-file records replay and
/// only the workspace-global pass recomputes.
fn bench_warm(c: &mut Criterion) {
    let cache = cache_path("warm");
    std::fs::remove_file(&cache).ok();
    let opts =
        AnalyzeOptions { cache_path: Some(cache.clone()), changed_only: false };
    analyze_workspace_with(workspace_root(), &opts).expect("populate cache");
    let mut group = c.benchmark_group("lint_full_workspace");
    group.sample_size(20);
    group.bench_function("warm", |b| {
        b.iter(|| {
            let (findings, stats) =
                analyze_workspace_with(workspace_root(), &opts).expect("warm lint");
            assert_eq!(stats.reparsed, 0, "warm bench must replay from cache");
            black_box(findings)
        })
    });
    group.finish();
    std::fs::remove_file(&cache).ok();
}

criterion_group!(benches, bench_cold, bench_warm);
criterion_main!(benches);
