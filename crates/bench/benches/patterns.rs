//! Criterion benchmarks of the pattern-mining subsystem: PrefixSpan
//! and the co-occurrence pass over a 100k-user trajectory corpus,
//! serial vs threaded (`NEWSDIFF_THREADS` is re-read per dispatch, so
//! each group member pins its own thread count; the outputs are
//! bit-identical across the whole group).
//!
//! Set `ND_BENCH_JSON=BENCH_patterns.json` to append the measurements
//! as JSON when the run finishes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nd_patterns::{cooccurrence, mine, MiningConfig, SequenceConfig};
use nd_synth::{generate_trajectories, TrajectoryConfig};
use std::hint::black_box;

/// Thread counts exercised by the scaling groups.
const THREAD_STEPS: [&str; 3] = ["1", "2", "4"];

/// Users in the benchmark corpus.
const N_USERS: usize = 100_000;

/// Days of trajectory per user: a week keeps the noise density (and
/// therefore the frequent-pattern space) at the subsystem's design
/// point while the corpus still carries every planted cohort.
const DAYS: u64 = 7;

fn corpus() -> nd_patterns::SequenceDb {
    let set = generate_trajectories(N_USERS, 0, DAYS, &TrajectoryConfig::default());
    set.full_db(&SequenceConfig::default())
}

fn bench_mine_scaling(c: &mut Criterion) {
    // Corpus generation and compression stay outside the timed region;
    // the projected-database mining loop is the kernel under test.
    let db = corpus();
    let mining = MiningConfig::default();
    let mut g = c.benchmark_group("patterns_mine_100k");
    g.sample_size(10);
    for t in THREAD_STEPS {
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |bch, &t| {
            std::env::set_var("NEWSDIFF_THREADS", t);
            bch.iter(|| black_box(mine(black_box(&db), &mining)));
        });
    }
    std::env::remove_var("NEWSDIFF_THREADS");
    g.finish();
}

fn bench_cooccur_scaling(c: &mut Criterion) {
    let db = corpus();
    let floor = MiningConfig::default().threshold(db.len()) as usize;
    let mut g = c.benchmark_group("patterns_cooccur_100k");
    g.sample_size(10);
    for t in THREAD_STEPS {
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |bch, &t| {
            std::env::set_var("NEWSDIFF_THREADS", t);
            bch.iter(|| black_box(cooccurrence(black_box(&db), floor)));
        });
    }
    std::env::remove_var("NEWSDIFF_THREADS");
    g.finish();
}

criterion_group!(benches, bench_mine_scaling, bench_cooccur_scaling);
criterion_main!(benches);
