//! Benchmarks of the staged pipeline DAG and its artifact cache:
//! cold end-to-end runs, warm replays (every stage loaded from disk),
//! and per-stage artifact decode medians.
//!
//! Generate the JSON dump for the CI table with:
//!
//! ```text
//! ND_BENCH_JSON=BENCH_pipeline.json cargo bench -p nd-bench --bench pipeline
//! ```
//!
//! All entries are table-only in `bench-compare` (no `threads/<t>`
//! names), so this file never gates — the cold/warm ratio is the
//! number to eyeball: warm must sit orders of magnitude under cold.

use criterion::{criterion_group, criterion_main, Criterion};
use nd_core::pipeline::{Pipeline, PipelineConfig};
use nd_core::stage::stages;
use nd_store::{ArtifactStore, ByteReader};
use std::hint::black_box;
use std::path::{Path, PathBuf};

fn cache_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ndbench-pipeline-{}-{tag}", std::process::id()))
}

fn config(dir: &Path) -> PipelineConfig {
    PipelineConfig::small().with_cache_dir(dir.to_path_buf())
}

/// Cold: empty cache, every stage body executes and persists.
fn bench_cold(c: &mut Criterion) {
    let dir = cache_dir("cold");
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(3);
    group.bench_function("cold", |b| {
        b.iter(|| {
            std::fs::remove_dir_all(&dir).ok();
            black_box(Pipeline::new(config(&dir)).run().expect("cold run"))
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// Warm: pre-populated cache, zero stage bodies run — the whole
/// pipeline is eight artifact loads plus output assembly.
fn bench_warm(c: &mut Criterion) {
    let dir = cache_dir("warm");
    std::fs::remove_dir_all(&dir).ok();
    Pipeline::new(config(&dir)).run().expect("populate cache");
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("warm", |b| {
        b.iter(|| {
            let (out, report) =
                Pipeline::new(config(&dir)).run_with_report().expect("warm run");
            assert_eq!(report.executed(), 0, "warm bench must replay from cache");
            black_box(out)
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// Per-stage replay cost: load + decode of each cached artifact, the
/// unit of work a warm run repeats eight times.
fn bench_stage_replay(c: &mut Criterion) {
    let dir = cache_dir("replay");
    std::fs::remove_dir_all(&dir).ok();
    let (_, report) =
        Pipeline::new(config(&dir)).run_with_report().expect("populate cache");
    let store = ArtifactStore::open(&dir).expect("open store");
    let mut group = c.benchmark_group("pipeline_replay");
    group.sample_size(10);
    for stage in stages() {
        let fp = report.stage(stage.name()).expect("stage report").fingerprint;
        group.bench_function(stage.name(), |b| {
            b.iter(|| {
                let payload = store.load(stage.name(), fp).expect("cached artifact");
                let mut r = ByteReader::new(&payload);
                black_box(stage.decode(&mut r).expect("decode"))
            })
        });
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    name = pipeline;
    config = Criterion::default();
    targets = bench_cold, bench_warm, bench_stage_replay
);
criterion_main!(pipeline);
