//! Criterion benchmarks of the serving tier.
//!
//! The headline comparison is micro-batched throughput against
//! batch-size-1: the same 64 feature rows pushed through the batcher
//! with `max_batch = 1` (every row its own forward pass) versus
//! `max_batch = 64` (rows coalesce into shared passes). Per-pass
//! overhead — thread dispatch, per-layer setup, cache-unfriendly
//! 1-row matmuls — dominates single-row serving, so coalescing is
//! worth well over the 3x the serving design targets. An end-to-end
//! HTTP pair (cold rows vs cache hits) rounds out the picture.

use criterion::{criterion_group, criterion_main, Criterion};
use nd_core::checkpoint::save_checkpoint;
use nd_core::predict::build_mlp;
use nd_linalg::Mat;
use nd_serve::{
    BatchConfig, Batcher, Client, Metrics, ModelHandle, ModelSpec, Registry, ServeConfig,
    Server,
};
use nd_store::Database;
use serde_json::json;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

/// Paper-scale feature width (Doc2Vec 300 + engineered metadata).
const DIM: usize = 308;
const ROWS: usize = 64;

fn handle() -> Arc<ModelHandle> {
    let network = build_mlp(DIM, 42);
    Arc::new(ModelHandle {
        name: "likes".to_string(),
        version: 1,
        input_dim: DIM,
        n_params: network.n_params(),
        network,
    })
}

fn feature_rows(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let m = Mat::random_normal(n, DIM, 0.0, 1.0, seed);
    (0..n).map(|i| m.row(i).to_vec()).collect()
}

fn bench_microbatch(c: &mut Criterion) {
    let h = handle();
    let rows = feature_rows(ROWS, 7);

    let batch1 = Batcher::start(
        BatchConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_capacity: 4096,
            workers: 1,
        },
        Arc::new(Metrics::default()),
    )
    .unwrap();
    c.bench_function("serve_predict_64rows_batch1", |b| {
        b.iter(|| {
            let receivers: Vec<_> = rows
                .iter()
                .map(|row| batch1.submit(Arc::clone(&h), vec![row.clone()]).unwrap())
                .collect();
            for rx in receivers {
                black_box(rx.recv().unwrap());
            }
        })
    });
    batch1.drain();

    let batch64 = Batcher::start(
        BatchConfig {
            max_batch: ROWS,
            max_wait: Duration::from_millis(2),
            queue_capacity: 4096,
            workers: 1,
        },
        Arc::new(Metrics::default()),
    )
    .unwrap();
    c.bench_function("serve_predict_64rows_batch64", |b| {
        b.iter(|| {
            let receivers: Vec<_> = rows
                .iter()
                .map(|row| batch64.submit(Arc::clone(&h), vec![row.clone()]).unwrap())
                .collect();
            for rx in receivers {
                black_box(rx.recv().unwrap());
            }
        })
    });
    batch64.drain();
}

fn bench_http_roundtrip(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("ndbench-serve-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        let mut db = Database::open(&dir).unwrap();
        save_checkpoint(&mut db, "likes", &build_mlp(DIM, 42)).unwrap();
    }

    // Cold path: cache disabled, every request runs a forward pass.
    let registry =
        Registry::load(&dir, vec![ModelSpec::new("likes", DIM, || build_mlp(DIM, 0))], 2)
            .unwrap();
    let server = Server::start(
        ServeConfig {
            cache_rows: 0,
            batch: BatchConfig { max_wait: Duration::ZERO, ..BatchConfig::default() },
            ..ServeConfig::default()
        },
        registry,
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let row = feature_rows(1, 3).remove(0);
    let body = json!({"features": row});
    c.bench_function("serve_http_predict_uncached", |b| {
        b.iter(|| {
            let response = client.post_json("/predict", &body).unwrap();
            assert_eq!(response.status, 200);
            black_box(response.body.len())
        })
    });
    drop(client);
    server.shutdown();

    // Hot path: default cache, identical row every time.
    let registry =
        Registry::load(&dir, vec![ModelSpec::new("likes", DIM, || build_mlp(DIM, 0))], 2)
            .unwrap();
    let server = Server::start(ServeConfig::default(), registry).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    c.bench_function("serve_http_predict_cached", |b| {
        b.iter(|| {
            let response = client.post_json("/predict", &body).unwrap();
            assert_eq!(response.status, 200);
            black_box(response.body.len())
        })
    });
    drop(client);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Per-connection buffer reuse: a keep-alive connection parses every
/// request after its first into recycled `ConnBufs` allocations, while
/// a fresh connection pays the TCP handshake plus cold buffers each
/// time. The gap between the two is the per-request setup cost that
/// reuse eliminates.
fn bench_keepalive_reuse(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("ndbench-keep-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        let mut db = Database::open(&dir).unwrap();
        save_checkpoint(&mut db, "likes", &build_mlp(DIM, 42)).unwrap();
    }
    let registry =
        Registry::load(&dir, vec![ModelSpec::new("likes", DIM, || build_mlp(DIM, 0))], 2)
            .unwrap();
    // Default cache on and one identical row per request: after warm-up
    // every request is a cache hit, so HTTP read/parse/write dominates
    // and the buffer-reuse effect is visible.
    let server = Server::start(ServeConfig::default(), registry).unwrap();
    let addr = server.addr();
    let row = feature_rows(1, 9).remove(0);
    let body = json!({"features": row});

    let mut group = c.benchmark_group("serve_http_keepalive_reuse");
    let mut client = Client::connect(addr).unwrap();
    client.post_json("/predict", &body).unwrap();
    group.bench_function("keepalive", |b| {
        b.iter(|| {
            let response = client.post_json("/predict", &body).unwrap();
            assert_eq!(response.status, 200);
            black_box(response.body.len())
        })
    });
    drop(client);
    group.bench_function("fresh_conn", |b| {
        b.iter(|| {
            let mut fresh = Client::connect(addr).unwrap();
            let response = fresh.post_json("/predict", &body).unwrap();
            assert_eq!(response.status, 200);
            black_box(response.body.len())
        })
    });
    group.finish();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    name = serve;
    config = Criterion::default().sample_size(10);
    targets = bench_microbatch, bench_http_roundtrip, bench_keepalive_reuse
);
criterion_main!(serve);
