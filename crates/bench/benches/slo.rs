//! Throughput-at-p99 SLO harness for the sharded serving layer.
//!
//! Two phases, both driving the multi-model fixture from
//! `nd_serve::loadgen` at 1 shard and at 4 shards:
//!
//! 1. **Hot-skew saturation** — closed-loop, 16 connections, Zipf
//!    hot-model skew, cache-busting 8-row requests at paper-scale
//!    width (308). Measures raw sustainable throughput and p99 when
//!    every request costs a real forward pass. On a one-core CI box
//!    the two layouts are expected to be close here (per-request
//!    JSON/HTTP work dominates and cores are shared); the records are
//!    advisory.
//! 2. **Hot-flood isolation** — the headline. A closed-loop flood
//!    hammers the hottest model with oversized batches while a small
//!    closed-loop probe serves a *cold* model. With one global
//!    admission queue the probe waits behind (or is shed with) the
//!    flood's backlog; with per-shard queues the flood saturates only
//!    its own shard and the probe's shard stays empty. The probe's
//!    per-request wall time is the gated pair
//!    (`slo_cold_probe_ns_per_req/shards_threads/{1,4}`): the 4-shard
//!    configuration must beat single-shard, and bench-compare fails
//!    if it ever regresses past 1.10x.
//!
//! ```bash
//! ND_BENCH_JSON=BENCH_slo.json cargo bench -p nd-bench --bench slo
//! cargo run -q --release -p nd-bench --bin bench-compare -- BENCH_slo.json
//! ```

use nd_serve::loadgen::{boot_fixture, closed_loop, fixture_models};
use nd_serve::{BatchConfig, ServeConfig, ShardConfig, TrafficMix};
use std::time::Duration;

const MODELS: usize = 8;
/// Paper-scale feature width (Doc2Vec 300 + engineered metadata).
const DIM: usize = 308;
const CLIENTS: usize = 16;
const REQUESTS_PER_CLIENT: usize = 12;
/// Rows per request in the hot-skew phase: a realistic batch-predict.
const ROWS_PER_REQUEST: usize = 8;
const REPEATS: usize = 3;
/// The SLO: p99 per-request latency budget, microseconds.
const P99_BUDGET_US: u64 = 100_000;

fn config_for(shards: usize, queue_capacity: usize) -> ServeConfig {
    ServeConfig {
        // Equal resources per layout: 4 total batch workers, pooled
        // behind one queue or one per shard; cache disabled so every
        // request costs a forward pass; the coalescing wait disabled
        // so the comparison isolates queue structure, not timer
        // tuning.
        batch: BatchConfig {
            workers: 4,
            max_wait: Duration::ZERO,
            queue_capacity,
            ..BatchConfig::default()
        },
        cache_rows: 0,
        shard: ShardConfig { shards, ..ShardConfig::default() },
        ..ServeConfig::default()
    }
}

struct HotSkewResult {
    ns_per_req: Vec<f64>,
    p99_us: Vec<u64>,
    rps: Vec<f64>,
}

fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn run_hot_skew(shards: usize) -> HotSkewResult {
    let dir = std::env::temp_dir()
        .join(format!("nd-slo-hot-{}-{}", std::process::id(), shards));
    std::fs::remove_dir_all(&dir).ok();
    let server =
        boot_fixture(&dir, MODELS, DIM, config_for(shards, 1024)).expect("boot fixture");
    let addr = server.addr();
    let mut mix = TrafficMix::hot_skew(fixture_models(MODELS), DIM);
    mix.batch_rows = ROWS_PER_REQUEST;

    // Warm-up: fault in code paths, spin up handler threads.
    let warm = closed_loop(addr, 4, 5, &mix, 0x5107 + shards as u64);
    assert_eq!(warm.errors, 0, "warm-up must be clean");

    let mut result =
        HotSkewResult { ns_per_req: Vec::new(), p99_us: Vec::new(), rps: Vec::new() };
    for repeat in 0..REPEATS {
        let summary = closed_loop(
            addr,
            CLIENTS,
            REQUESTS_PER_CLIENT,
            &mix,
            0xbeef + (shards as u64) * 100 + repeat as u64,
        );
        assert_eq!(summary.errors, 0, "load run must be clean");
        assert_eq!(summary.sent, (CLIENTS * REQUESTS_PER_CLIENT) as u64);
        result.ns_per_req.push(summary.wall_ms as f64 * 1e6 / summary.sent as f64);
        result.p99_us.push(summary.p99_us);
        result.rps.push(summary.rps);
        println!(
            "hot-skew shards={shards} repeat={repeat}: {:.0} req/s  p50 {}us  p99 {}us  shed {}",
            summary.rps, summary.p50_us, summary.p99_us, summary.shed
        );
    }
    let metrics = server.metrics();
    let batches = metrics.batches.get().max(1);
    println!(
        "hot-skew shards={shards}: {:.1} rows per forward pass",
        metrics.predictions.get() as f64 / batches as f64
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    result
}

struct IsolationResult {
    probe_ns_per_req: Vec<f64>,
    probe_p99_us: Vec<u64>,
    probe_goodput: Vec<f64>,
    probe_shed: u64,
}

fn run_isolation(shards: usize) -> IsolationResult {
    let dir = std::env::temp_dir()
        .join(format!("nd-slo-iso-{}-{}", std::process::id(), shards));
    std::fs::remove_dir_all(&dir).ok();
    // Deep admission queue: the flood builds a real backlog in it.
    let server =
        boot_fixture(&dir, MODELS, DIM, config_for(shards, 512)).expect("boot fixture");
    let addr = server.addr();

    // The probe serves a model on a different shard than the flood
    // target (any other model when there is only one shard).
    let hot = "m0".to_string();
    let cold = fixture_models(MODELS)
        .into_iter()
        .skip(1)
        .find(|m| server.shard_for(m) != server.shard_for(&hot))
        .unwrap_or_else(|| "m1".to_string());

    let probe_mix = TrafficMix {
        models: vec![cold.clone()],
        skew: 0.0,
        dim: DIM,
        cache_bust: true,
        batch_rows: 1,
        row_pool: 1,
    };

    let mut result = IsolationResult {
        probe_ns_per_req: Vec::new(),
        probe_p99_us: Vec::new(),
        probe_goodput: Vec::new(),
        probe_shed: 0,
    };
    for repeat in 0..REPEATS {
        // 24 flood clients, each request carrying 32 rows: up to 768
        // rows in flight against a 512-row queue keeps the hot
        // admission queue deep for the whole probe window.
        let flood = std::thread::spawn(move || {
            closed_loop(addr, 24, 40, &flood_mix_clone(), 0xf100d + repeat as u64)
        });
        // Let the flood establish its backlog before probing.
        std::thread::sleep(Duration::from_millis(400));
        let probe =
            closed_loop(addr, 2, 15, &probe_mix, 0xc01d + (shards * 10 + repeat) as u64);
        let flood_summary = flood.join().expect("flood thread");
        assert_eq!(probe.errors, 0, "probe must see only 200s and 503s");
        assert_eq!(flood_summary.errors, 0, "flood must see only 200s and 503s");
        result.probe_ns_per_req.push(probe.wall_ms as f64 * 1e6 / probe.sent.max(1) as f64);
        result.probe_p99_us.push(probe.p99_us);
        result.probe_goodput.push(probe.ok as f64 / (probe.wall_ms as f64 / 1e3).max(1e-9));
        result.probe_shed += probe.shed;
        println!(
            "isolation shards={shards} repeat={repeat}: cold-probe {:.0} ok/s  \
             p99 {}us  shed {}/{}  (flood: {:.0} req/s, shed {})",
            result.probe_goodput.last().copied().unwrap_or(0.0),
            probe.p99_us,
            probe.shed,
            probe.sent,
            flood_summary.rps,
            flood_summary.shed,
        );
    }
    println!("isolation shards={shards}: cold model '{cold}' probed against hot 'm0'");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    result
}

// Closures passed to threads need owned mixes; cheapest is rebuilding
// the constant flood mix (it is deterministic).
fn flood_mix_clone() -> TrafficMix {
    TrafficMix {
        models: vec!["m0".to_string()],
        skew: 0.0,
        dim: DIM,
        cache_bust: true,
        batch_rows: 32,
        row_pool: 1,
    }
}

/// Appends records in the vendored-criterion `ND_BENCH_JSON` format.
fn append_records(path: &str, records: &[(String, Vec<f64>)]) {
    use std::io::Write;
    let mut out = String::from("[");
    for (i, (name, xs)) in records.iter().enumerate() {
        let mut v = xs.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"mean_ns\":{:.1},\"median_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{}}}",
            name,
            mean,
            v[v.len() / 2],
            v[0],
            v.len()
        ));
    }
    out.push_str("]\n");
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = f.write_all(out.as_bytes());
    }
}

fn main() {
    println!(
        "SLO harness: {MODELS} models, dim {DIM}, {REPEATS} repeats per phase\n\
         phase 1: hot-skew saturation ({CLIENTS} clients x {REQUESTS_PER_CLIENT} x \
         {ROWS_PER_REQUEST} rows)\n\
         phase 2: hot-flood isolation (24x32-row flood vs 2-client cold probe)"
    );
    let hot1 = run_hot_skew(1);
    let hot4 = run_hot_skew(4);
    let iso1 = run_isolation(1);
    let iso4 = run_isolation(4);

    let hot_rps1 = median(&hot1.rps);
    let hot_rps4 = median(&hot4.rps);
    let hot_p99_1 = *hot1.p99_us.iter().min().unwrap_or(&0);
    let hot_p99_4 = *hot4.p99_us.iter().min().unwrap_or(&0);
    let good1 = median(&iso1.probe_goodput);
    let good4 = median(&iso4.probe_goodput);
    let iso_p99_1 = *iso1.probe_p99_us.iter().min().unwrap_or(&0);
    let iso_p99_4 = *iso4.probe_p99_us.iter().min().unwrap_or(&0);

    println!("----------------------------------------------------------------");
    println!("hot-skew saturation (advisory; one shared core):");
    println!(
        "  1 shard : {hot_rps1:>7.0} req/s   best p99 {hot_p99_1:>7}us   within {}ms budget: {}",
        P99_BUDGET_US / 1000,
        hot_p99_1 <= P99_BUDGET_US
    );
    println!(
        "  4 shards: {hot_rps4:>7.0} req/s   best p99 {hot_p99_4:>7}us   within {}ms budget: {}",
        P99_BUDGET_US / 1000,
        hot_p99_4 <= P99_BUDGET_US
    );
    println!("headline — cold-model goodput under hot-model flood:");
    println!(
        "  1 shard : {good1:>7.0} ok/s   best p99 {iso_p99_1:>7}us   shed {}",
        iso1.probe_shed
    );
    println!(
        "  4 shards: {good4:>7.0} ok/s   best p99 {iso_p99_4:>7}us   shed {}",
        iso4.probe_shed
    );
    println!(
        "  isolation speedup: {:.2}x goodput, {:.2}x p99 (target >= 2x goodput)",
        good4 / good1.max(1e-9),
        iso_p99_1 as f64 / (iso_p99_4 as f64).max(1e-9),
    );

    if let Ok(path) = std::env::var("ND_BENCH_JSON") {
        if !path.is_empty() {
            let p99_ns = |v: &[u64]| -> Vec<f64> { v.iter().map(|&us| us as f64 * 1e3).collect() };
            append_records(
                &path,
                &[
                    // Gated pair: per-request wall time of the cold
                    // probe while the hot flood runs. The 4-shard
                    // layout must never regress past 1.10x of
                    // single-shard here.
                    (
                        "slo_cold_probe_ns_per_req/shards_threads/1".to_string(),
                        iso1.probe_ns_per_req.clone(),
                    ),
                    (
                        "slo_cold_probe_ns_per_req/shards_threads/4".to_string(),
                        iso4.probe_ns_per_req.clone(),
                    ),
                    // Advisory records (not named …threads/…, so not
                    // gated): saturation throughput and tails.
                    ("slo_hotskew_c16_ns_per_req/shards/1".to_string(), hot1.ns_per_req),
                    ("slo_hotskew_c16_ns_per_req/shards/4".to_string(), hot4.ns_per_req),
                    ("slo_hotskew_p99_ns/shards/1".to_string(), p99_ns(&hot1.p99_us)),
                    ("slo_hotskew_p99_ns/shards/4".to_string(), p99_ns(&hot4.p99_us)),
                    ("slo_cold_probe_p99_ns/shards/1".to_string(), p99_ns(&iso1.probe_p99_us)),
                    ("slo_cold_probe_p99_ns/shards/4".to_string(), p99_ns(&iso4.probe_p99_us)),
                ],
            );
            println!("wrote {path}");
        }
    }
}
