//! Criterion benchmarks of the embedded document store: inserts,
//! filtered scans, index-accelerated range queries, and WAL replay.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nd_store::{Collection, Database, Filter};
use serde_json::json;
use std::hint::black_box;

fn seeded_collection(n: usize) -> Collection {
    let mut c = Collection::new("tweets");
    for i in 0..n {
        c.insert(json!({
            "text": format!("tweet number {i} about topic {}", i % 17),
            "likes": (i * 37) % 5_000,
            "ts": 1_556_668_800u64 + i as u64 * 60,
        }))
        .unwrap();
    }
    c
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("store_insert_1000", |b| {
        b.iter_batched(
            || (),
            |_| black_box(seeded_collection(1_000)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_scan_vs_index(c: &mut Criterion) {
    let plain = seeded_collection(10_000);
    let mut indexed = seeded_collection(10_000);
    indexed.create_index("likes");
    let filter = Filter::range("likes", Some(1_000.0), Some(1_200.0));
    c.bench_function("store_range_fullscan_10k", |b| {
        b.iter(|| black_box(plain.find(black_box(&filter))))
    });
    c.bench_function("store_range_indexed_10k", |b| {
        b.iter(|| black_box(indexed.find(black_box(&filter))))
    });
}

fn bench_wal_roundtrip(c: &mut Criterion) {
    c.bench_function("store_persist_reopen_2k", |b| {
        b.iter_batched(
            || {
                let dir = std::env::temp_dir()
                    .join(format!("ndbench-{}-{}", std::process::id(), rand_suffix()));
                std::fs::remove_dir_all(&dir).ok();
                dir
            },
            |dir| {
                {
                    let mut db = Database::open(&dir).unwrap();
                    for i in 0..2_000 {
                        db.collection("t").insert(json!({"i": i})).unwrap();
                    }
                    db.persist().unwrap();
                }
                let db = Database::open(&dir).unwrap();
                let n = db.get_collection("t").unwrap().len();
                std::fs::remove_dir_all(&dir).ok();
                black_box(n)
            },
            BatchSize::PerIteration,
        )
    });
}

fn rand_suffix() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now().duration_since(UNIX_EPOCH).unwrap().subsec_nanos() as u64
}

criterion_group!(
    name = store;
    config = Criterion::default().sample_size(10);
    targets = bench_insert, bench_scan_vs_index, bench_wal_roundtrip
);
criterion_main!(store);
