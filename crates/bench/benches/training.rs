//! Criterion benchmarks of neural-network training: one epoch of the
//! paper's MLP and CNN architectures at Table 10's dataset sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nd_core::predict::NetworkKind;
use nd_linalg::rng::SplitMix64;
use nd_linalg::Mat;
use nd_neural::{Trainer, TrainerConfig};
use std::hint::black_box;

fn synth_xy(n: usize, dim: usize) -> (Mat, Vec<usize>) {
    let mut rng = SplitMix64::new(11);
    let mut x = Mat::zeros(n, dim);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        for c in 0..dim {
            x.set(r, c, rng.next_gaussian());
        }
        y.push(rng.next_usize(3));
    }
    (x, y)
}

fn bench_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_epoch");
    group.sample_size(10);
    for &n in &[500usize, 2_500] {
        let (x, y) = synth_xy(n, 308);
        for kind in [NetworkKind::Mlp1, NetworkKind::Cnn1] {
            group.bench_with_input(
                BenchmarkId::new(kind.name().replace(' ', ""), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut net = kind.build(308, 42);
                        let mut opt = kind.optimizer();
                        let trainer = Trainer::new(TrainerConfig {
                            batch_size: 5_000,
                            max_epochs: 1,
                            early_stopping: None,
                            seed: 1,
                        });
                        black_box(trainer.fit(&mut net, black_box(&x), &y, opt.as_mut()))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(training, bench_epoch);
criterion_main!(training);
