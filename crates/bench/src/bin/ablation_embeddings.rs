//! Ablation: the §4.9 embedding design choice — the pretrained-model
//! averaged embeddings (SW/RND/SWM, deployed) vs PVDM / PVDBOW
//! paragraph vectors trained only on the collected tweets (which the
//! paper rejects as unable to generalize).
//!
//! Each representation feeds the same MLP 1 likes predictor; the
//! comparison is validation average accuracy.
//! Scale via `NEWSDIFF_SCALE=quick|paper`.

use nd_core::features::{build_dataset, Dataset, DatasetVariant};
use nd_core::predict::{train_and_eval, NetworkKind, Target};
use nd_core::report::render_table;
use nd_embed::doc2vec::{Doc2Vec, Doc2VecConfig, Doc2VecMode};
use nd_linalg::Mat;

fn main() {
    let scale = nd_bench::Scale::from_env();
    let out = nd_bench::run_pipeline(scale);
    let predict = scale.predict_config();

    let mut rows = Vec::new();

    // --- Averaged pretrained embeddings (the deployed A/B/C variants).
    for variant in [DatasetVariant::A1, DatasetVariant::B1, DatasetVariant::C1] {
        let ds = out.dataset(variant, 7);
        let res = train_and_eval(&ds, NetworkKind::Mlp1, Target::Likes, &predict);
        eprintln!("[ablation] {}: {:.3}", variant.name(), res.average_accuracy);
        rows.push(vec![
            format!("{} (pretrained avg)", ds.name),
            format!("{:.3}", res.average_accuracy),
        ]);
    }

    // --- Paragraph vectors trained on the event tweets themselves.
    // Build the tweet corpus in the same sample order the datasets use.
    let sample_tweets: Vec<Vec<String>> = out
        .assignments
        .iter()
        .flat_map(|a| a.tweet_indices.iter().map(|&ti| out.tweet_tokens[ti].clone()))
        .collect();
    let reference = build_dataset(
        DatasetVariant::A1,
        &out.correlated_events,
        &out.assignments,
        &out.world.tweets,
        &out.tweet_tokens,
        &out.vectors,
        7,
    );
    let dim = out.vectors.dim().min(100); // paragraph vectors stay small on small corpora

    for mode in [Doc2VecMode::Pvdm, Doc2VecMode::Pvdbow] {
        let model = Doc2Vec::new(Doc2VecConfig {
            dim,
            epochs: 15,
            min_count: 2,
            mode,
            seed: 42,
            ..Default::default()
        })
        .train(&sample_tweets);
        let mut x = Mat::zeros(sample_tweets.len(), dim);
        for (r, v) in model.doc_vectors.iter().enumerate() {
            x.row_mut(r).copy_from_slice(v);
        }
        let ds = Dataset {
            name: match mode {
                Doc2VecMode::Pvdm => "PVDM",
                Doc2VecMode::Pvdbow => "PVDBOW",
            },
            x,
            y_likes: reference.y_likes.clone(),
            y_retweets: reference.y_retweets.clone(),
        };
        let res = train_and_eval(&ds, NetworkKind::Mlp1, Target::Likes, &predict);
        eprintln!("[ablation] {}: {:.3}", ds.name, res.average_accuracy);
        rows.push(vec![
            format!("{} (trained on tweets)", ds.name),
            format!("{:.3}", res.average_accuracy),
        ]);
    }

    println!(
        "Ablation: embedding choice for the likes predictor (paper S4.9 rejects PVDM/PVDBOW)\n{}",
        render_table(&["Representation", "Avg accuracy (likes, MLP 1)"], &rows)
    );
}
