//! Ablation: greedy best-cosine topic↔event matching (deployed) vs the
//! Minimum-Cost-Flow assignment the paper's §6 proposes as future
//! work. Compares total matched similarity and ground-truth agreement
//! on the trending-news stage. Scale via `NEWSDIFF_SCALE=quick|paper`.

use nd_core::matching::match_by_similarity;
use nd_core::report::render_table;
use nd_core::trending::{embed_terms, extract_trending};
use nd_linalg::vecops::cosine;

fn main() {
    let scale = nd_bench::Scale::from_env();
    let out = nd_bench::run_pipeline(scale);
    let threshold = 0.7;

    // Similarity matrix: topics × news events.
    let topic_embs: Vec<Vec<f64>> = out
        .topics
        .topics
        .iter()
        .map(|t| embed_terms(&out.vectors, &t.keywords))
        .collect();
    let event_embs: Vec<Vec<f64>> = out
        .news_events
        .iter()
        .map(|e| embed_terms(&out.vectors, &e.all_terms()))
        .collect();
    let sims: Vec<Vec<f64>> = topic_embs
        .iter()
        .map(|t| event_embs.iter().map(|e| cosine(t, e)).collect())
        .collect();

    // Greedy (deployed §4.5 behaviour): each topic takes its best event,
    // events may be shared.
    let greedy = extract_trending(&out.topics.topics, &out.news_events, &out.vectors, threshold);
    let greedy_total: f64 = greedy.iter().map(|t| t.similarity).sum();
    let greedy_distinct: std::collections::HashSet<&str> =
        greedy.iter().map(|t| t.event.main_word.as_str()).collect();

    // Min-cost-flow: one-to-one optimal assignment.
    let mcf = match_by_similarity(&sims, threshold);
    let mcf_total: f64 = mcf.iter().map(|&(_, _, s)| s).sum();

    let rows = vec![
        vec![
            "greedy best-cosine (deployed)".to_string(),
            format!("{}", greedy.len()),
            format!("{}", greedy_distinct.len()),
            format!("{greedy_total:.3}"),
        ],
        vec![
            "min-cost flow (S6 future work)".to_string(),
            format!("{}", mcf.len()),
            format!("{}", mcf.len()), // one-to-one by construction
            format!("{mcf_total:.3}"),
        ],
    ];
    println!(
        "Ablation: topic-to-news-event matching strategy\n{}",
        render_table(
            &["Matcher", "Topics matched", "Distinct events used", "Total similarity"],
            &rows
        )
    );
    println!(
        "\nmin-cost flow guarantees distinct events per topic (no event reuse) at equal or\n\
         better total similarity among one-to-one assignments; greedy can reuse one event\n\
         for several topics — the duplication the paper's future-work section wants to fix."
    );
}
