//! Ablation: which metadata component carries the lift? Compares the
//! full 8-d metadata vector against author-one-hot-only and
//! day-of-week-only variants by zeroing the other columns of the A2
//! dataset. Scale via `NEWSDIFF_SCALE=quick|paper`.

use nd_core::features::{Dataset, DatasetVariant, METADATA_DIM};
use nd_core::predict::{train_and_eval, NetworkKind, Target};
use nd_core::report::render_table;

/// Zeroes a column range of a dataset copy.
fn zero_columns(ds: &Dataset, cols: std::ops::Range<usize>, name: &'static str) -> Dataset {
    let mut out = ds.clone();
    for r in 0..out.x.rows() {
        for c in cols.clone() {
            out.x.set(r, c, 0.0);
        }
    }
    Dataset { name, ..out }
}

fn main() {
    let scale = nd_bench::Scale::from_env();
    let out = nd_bench::run_pipeline(scale);
    let predict = scale.predict_config();

    let a1 = out.dataset(DatasetVariant::A1, 7);
    let a2 = out.dataset(DatasetVariant::A2, 7);
    let emb = a2.x.cols() - METADATA_DIM;

    let variants: Vec<Dataset> = vec![
        Dataset { name: "no metadata (A1)", ..a1 },
        zero_columns(&a2, emb..emb + 7, "day-of-week only"),
        zero_columns(&a2, emb + 7..emb + 8, "author one-hot only"),
        Dataset { name: "full metadata (A2)", ..a2 },
    ];

    let mut rows = Vec::new();
    for ds in &variants {
        let likes = train_and_eval(ds, NetworkKind::Mlp1, Target::Likes, &predict);
        let rts = train_and_eval(ds, NetworkKind::Mlp1, Target::Retweets, &predict);
        eprintln!(
            "[ablation] {}: likes {:.3} retweets {:.3}",
            ds.name, likes.average_accuracy, rts.average_accuracy
        );
        rows.push(vec![
            ds.name.to_string(),
            format!("{:.3}", likes.average_accuracy),
            format!("{:.3}", rts.average_accuracy),
        ]);
    }

    println!(
        "Ablation: metadata components (paper S5.6 attributes the lift to influencers + day of week)\n{}",
        render_table(&["Variant", "Likes avg acc", "Retweets avg acc"], &rows)
    );
}
