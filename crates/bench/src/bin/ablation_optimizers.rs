//! Ablation: optimizer sweep on the A2 likes predictor — SGD (the
//! paper's MLP 1 / CNN 1 setting), SGD+momentum, ADAGRAD (Eq. 15) and
//! ADADELTA (the paper's MLP 2 / CNN 2 setting), comparing accuracy
//! and epochs to convergence. Scale via `NEWSDIFF_SCALE=quick|paper`.

use nd_core::features::DatasetVariant;
use nd_core::predict::{build_mlp, N_CLASSES};
use nd_core::report::render_table;
use nd_neural::train::train_val_split;
use nd_neural::{Adadelta, Adagrad, Adam, Optimizer, Sgd, Trainer, TrainerConfig};

fn main() {
    let scale = nd_bench::Scale::from_env();
    let out = nd_bench::run_pipeline(scale);
    let ds = out.dataset(DatasetVariant::A2, 7);
    let (tx, ty, vx, vy) = train_val_split(&ds.x, &ds.y_likes, 0.2, 42);
    let predict = scale.predict_config();

    let optimizers: Vec<Box<dyn Optimizer>> = vec![
        Box::new(Sgd::new(0.5)),
        Box::new(Sgd::with_momentum(0.1, 0.9)),
        Box::new(Adagrad::new(0.1)),
        Box::new(Adadelta::new(2.0)),
        Box::new(Adam::new(0.001)),
    ];

    let mut rows = Vec::new();
    for mut opt in optimizers {
        let mut network = build_mlp(ds.x.cols(), 42);
        let trainer = Trainer::new(TrainerConfig {
            batch_size: predict.batch_size,
            max_epochs: predict.max_epochs,
            early_stopping: predict.early_stopping.clone(),
            seed: 42,
        });
        let report = trainer.fit(&mut network, &tx, &ty, opt.as_mut());
        let (avg, acc, _) = trainer.evaluate(&mut network, &vx, &vy, N_CLASSES);
        eprintln!(
            "[ablation] {}: avg {:.3} acc {:.3} in {} epochs",
            opt.name(),
            avg,
            acc,
            report.epochs
        );
        rows.push(vec![
            opt.name(),
            format!("{avg:.3}"),
            format!("{acc:.3}"),
            format!("{}", report.epochs),
            format!("{:.1}", report.mean_epoch_ms()),
        ]);
    }

    println!(
        "Ablation: optimizer sweep on the A2 likes MLP (paper uses SGD lr=0.5 and ADADELTA lr=2)\n{}",
        render_table(
            &["Optimizer", "Avg accuracy", "Accuracy", "Epochs", "Ms/epoch"],
            &rows
        )
    );
}
