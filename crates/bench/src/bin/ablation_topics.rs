//! Ablation: the §4.9 topic-model design choice — NMF (deployed)
//! vs LDA vs LSA vs PLSI. Measures wall-clock fit time, UMass topic
//! coherence, and recovery of the planted ground-truth topics.
//! Scale via `NEWSDIFF_SCALE=quick|paper`.

use nd_core::preprocess::build_news_tm;
use nd_core::report::render_table;
use nd_synth::{topic_inventory, TopicKind, World};
use nd_topics::coherence::mean_umass;
use nd_topics::lda::{Lda, LdaConfig};
use nd_topics::lsa::{Lsa, LsaConfig};
use nd_topics::plsi::{Plsi, PlsiConfig};
use nd_topics::{Nmf, NmfConfig, TopicModel};
use nd_vectorize::{DtmBuilder, Weighting};
use std::time::Instant;

/// Counts how many planted news topics have a model topic dominated by
/// their keyword pool (≥ 5 of the top-10 keywords).
fn planted_recovery(model: &TopicModel) -> usize {
    let inventory = topic_inventory();
    let topics = model.topics(10);
    inventory
        .iter()
        .filter(|s| s.kind == TopicKind::NewsAndTwitter)
        .filter(|spec| {
            topics.iter().any(|t| {
                t.keywords
                    .iter()
                    .filter(|k| {
                        spec.keywords.contains(&k.as_str())
                            || spec.keywords.iter().any(|p| nd_text::lemmatize(p) == **k)
                    })
                    .count()
                    >= 5
            })
        })
        .count()
}

fn main() {
    let scale = nd_bench::Scale::from_env();
    let world = World::generate(scale.pipeline_config().world);
    let corpus = build_news_tm(&world.articles);
    eprintln!("[ablation] corpus: {} documents", corpus.len());

    let dtm = DtmBuilder::new().min_df(3).max_df_ratio(0.6).build(&corpus);
    let weighted = dtm.weighted(Weighting::TfIdfNormalized);
    let k = 10;

    let mut rows = Vec::new();
    let mut run = |name: &str, fit: &mut dyn FnMut() -> TopicModel| {
        let started = Instant::now();
        let model = fit();
        let secs = started.elapsed().as_secs_f64();
        let coherence = mean_umass(&corpus, &model.topics(10));
        let recovered = planted_recovery(&model);
        eprintln!("[ablation] {name}: {secs:.2}s, coherence {coherence:.3}, {recovered}/10 recovered");
        rows.push(vec![
            name.to_string(),
            format!("{secs:.2}"),
            format!("{coherence:.3}"),
            format!("{recovered}/10"),
        ]);
    };

    run("NMF (deployed)", &mut || {
        Nmf::new(NmfConfig { n_topics: k, max_iter: 200, tol: 1e-5, seed: 42 })
            .fit(&weighted, dtm.vocab())
    });
    run("LDA (Gibbs)", &mut || {
        Lda::new(LdaConfig { n_topics: k, n_iter: 60, ..Default::default() })
            .fit(dtm.counts(), dtm.vocab())
    });
    run("LSA (SVD)", &mut || {
        Lsa::new(LsaConfig { n_topics: k, ..Default::default() }).fit(&weighted, dtm.vocab())
    });
    run("PLSI (EM)", &mut || {
        Plsi::new(PlsiConfig { n_topics: k, n_iter: 40, seed: 42 })
            .fit(dtm.counts(), dtm.vocab())
    });

    println!(
        "Ablation: topic-model choice (paper S4.9 picks NMF for similar quality at lower cost)\n{}",
        render_table(&["Model", "Fit (s)", "UMass coherence", "Planted topics recovered"], &rows)
    );
}
