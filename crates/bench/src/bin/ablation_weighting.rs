//! Ablation: term-weighting schemes for topic modeling (cf. Truică et
//! al. 2016, reference 35 of the paper) — how TF / Binary / LogTF / TF-IDF /
//! normalized TF-IDF affect NMF's recovery of the planted topics.
//! Scale via `NEWSDIFF_SCALE=quick|paper`.

use nd_core::preprocess::build_news_tm;
use nd_core::report::render_table;
use nd_synth::{topic_inventory, TopicKind, World};
use nd_topics::{Nmf, NmfConfig};
use nd_vectorize::{DtmBuilder, Weighting};
use std::time::Instant;

fn main() {
    let scale = nd_bench::Scale::from_env();
    let world = World::generate(scale.pipeline_config().world);
    let corpus = build_news_tm(&world.articles);
    let dtm = DtmBuilder::new().min_df(3).max_df_ratio(0.6).build(&corpus);
    let inventory = topic_inventory();

    let mut rows = Vec::new();
    for scheme in Weighting::ALL {
        let a = dtm.weighted(scheme);
        let started = Instant::now();
        let model = Nmf::new(NmfConfig { n_topics: 10, max_iter: 200, tol: 1e-5, seed: 42 })
            .fit(&a, dtm.vocab());
        let secs = started.elapsed().as_secs_f64();
        let topics = model.topics(10);
        let recovered = inventory
            .iter()
            .filter(|s| s.kind == TopicKind::NewsAndTwitter)
            .filter(|spec| {
                topics.iter().any(|t| {
                    t.keywords
                        .iter()
                        .filter(|k| {
                            spec.keywords.contains(&k.as_str())
                                || spec.keywords.iter().any(|p| nd_text::lemmatize(p) == **k)
                        })
                        .count()
                        >= 5
                })
            })
            .count();
        eprintln!("[ablation] {}: {recovered}/10 in {secs:.2}s", scheme.name());
        rows.push(vec![
            scheme.name().to_string(),
            format!("{recovered}/10"),
            format!("{secs:.2}"),
            format!("{:.4}", model.objective),
        ]);
    }

    println!(
        "Ablation: weighting schemes for NMF (the paper deploys TFIDF_N)\n{}",
        render_table(&["Scheme", "Planted topics recovered", "Fit (s)", "Objective"], &rows)
    );
}
