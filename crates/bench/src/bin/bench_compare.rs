//! Compares kernel benchmark runs and gates on parallel regressions.
//!
//! Usage:
//!
//! ```text
//! bench-compare CURRENT.json            # scaling gate on one run
//! bench-compare BASELINE.json CURRENT.json  # + speedup vs baseline
//! ```
//!
//! Input files are `ND_BENCH_JSON` dumps from the vendored criterion
//! stand-in: one or more concatenated JSON arrays of
//! `{"name", "mean_ns", "median_ns", "min_ns", "samples"}` records
//! (the stub *appends* on every bench run, so re-runs accumulate; the
//! last record per name wins here).
//!
//! The gate: for every scaling group (bench names of the form
//! `<kernel>/<...>threads/<t>`), no parallel configuration may run
//! more than `REGRESSION_TOLERANCE` above the same kernel's serial
//! (`/1`) configuration — on **both** the median and the min. A noisy
//! neighbor inflates the median of whichever config it landed on, but
//! not its min; a structural regression (real extra work per
//! dispatch) inflates both. Requiring both keeps the gate meaningful
//! on shared single-core machines. Any violation prints a
//! `REGRESSION` line and the process exits nonzero, so CI can surface
//! it.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// A parallel config's median may exceed serial by at most this factor.
const REGRESSION_TOLERANCE: f64 = 1.10;

/// Benchmarks allowed to exceed the tolerance, with the structural
/// reason. These are *known* costs of a parallel code path, not noise:
/// listing them here keeps the gate hard for everything else instead
/// of demoting the whole file to an advisory warning.
///
/// The CSR `Aᵀx` parallel path shards the output vector per thread and
/// merges the shards afterwards; on a single-core CI box the shard
/// merge is pure overhead on top of serialized "parallel" work, so the
/// threaded configs structurally exceed serial. The kernel stays in
/// the bench suite to track the *size* of that overhead.
const STRUCTURAL_ALLOWLIST: &[(&str, &str)] = &[
    ("csr_products_2000x3000_k32/atx_threads/2", "column-sharded Aᵀx merge overhead"),
    ("csr_products_2000x3000_k32/atx_threads/4", "column-sharded Aᵀx merge overhead"),
];

/// One benchmark record (last-wins deduplicated by name).
#[derive(Debug, Clone)]
struct Rec {
    median_ns: f64,
    min_ns: f64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline, current) = match args.as_slice() {
        [cur] => (None, cur.clone()),
        [base, cur] => (Some(base.clone()), cur.clone()),
        _ => {
            eprintln!("usage: bench-compare [BASELINE.json] CURRENT.json");
            return ExitCode::from(2);
        }
    };

    let cur = match load_records(&current) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-compare: {current}: {e}");
            return ExitCode::from(2);
        }
    };
    let base = match baseline {
        None => None,
        Some(p) => match load_records(&p) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("bench-compare: {p}: {e}");
                return ExitCode::from(2);
            }
        },
    };

    // The structural allowlist is part of the gate's contract, so it
    // is printed on every run — an empty table states outright that
    // nothing is exempt, instead of leaving the reader to wonder.
    println!("structural allowlist ({} entries):", STRUCTURAL_ALLOWLIST.len());
    if STRUCTURAL_ALLOWLIST.is_empty() {
        println!("  (empty: every scaling group is gated hard)");
    }
    for (name, reason) in STRUCTURAL_ALLOWLIST {
        println!("  {name}: {reason}");
    }
    println!();

    println!(
        "{:<52} {:>12} {:>12} {:>10} {:>10}",
        "benchmark", "median", "min", "vs serial", "vs base"
    );
    for (name, rec) in &cur {
        let vs_serial = serial_sibling(name, &cur)
            .map(|s| format!("{:.2}x", s.median_ns / rec.median_ns))
            .unwrap_or_else(|| "-".into());
        let vs_base = base
            .as_ref()
            .and_then(|b| b.get(name))
            .map(|b| format!("{:.2}x", b.median_ns / rec.median_ns))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<52} {:>12} {:>12} {:>10} {:>10}",
            name,
            fmt_ns(rec.median_ns),
            fmt_ns(rec.min_ns),
            vs_serial,
            vs_base
        );
    }

    let mut regressions = 0usize;
    for (name, rec) in &cur {
        let Some(serial) = serial_sibling(name, &cur) else { continue };
        if rec.median_ns > REGRESSION_TOLERANCE * serial.median_ns
            && rec.min_ns > REGRESSION_TOLERANCE * serial.min_ns
        {
            if let Some((_, reason)) =
                STRUCTURAL_ALLOWLIST.iter().find(|(n, _)| n == name)
            {
                println!(
                    "ALLOWED: {name} exceeds {REGRESSION_TOLERANCE}x serial ({:.2}x median): {reason}",
                    rec.median_ns / serial.median_ns,
                );
                continue;
            }
            regressions += 1;
            eprintln!(
                "REGRESSION: {name} median {} ({:.2}x serial) and min {} ({:.2}x serial) \
                 both exceed {REGRESSION_TOLERANCE}x",
                fmt_ns(rec.median_ns),
                rec.median_ns / serial.median_ns,
                fmt_ns(rec.min_ns),
                rec.min_ns / serial.min_ns,
            );
        }
    }
    let groups = bench_groups(&cur);
    if regressions > 0 {
        eprintln!("bench-compare: {regressions} parallel configuration(s) slower than serial");
        return ExitCode::from(1);
    }
    println!(
        "bench-compare: {} record(s) in {groups} bench group(s); \
         no parallel configuration regresses past {REGRESSION_TOLERANCE}x serial",
        cur.len(),
    );
    ExitCode::SUCCESS
}

/// Number of distinct bench groups: the `<group>/...` prefix before
/// the first `/`, or the whole name for ungrouped entries.
fn bench_groups(recs: &BTreeMap<String, Rec>) -> usize {
    recs.keys()
        .map(|name| name.split_once('/').map_or(name.as_str(), |(g, _)| g))
        .collect::<std::collections::BTreeSet<&str>>()
        .len()
}

/// For `<kernel>/<...>threads/<t>` with `t != "1"`, returns the
/// group's serial record (`.../1`), when present.
fn serial_sibling<'a>(name: &str, recs: &'a BTreeMap<String, Rec>) -> Option<&'a Rec> {
    let (prefix, t) = name.rsplit_once('/')?;
    if !prefix.ends_with("threads") || t == "1" || t.parse::<u32>().is_err() {
        return None;
    }
    recs.get(&format!("{prefix}/1"))
}

/// Reads an `ND_BENCH_JSON` dump: concatenated arrays of flat objects.
/// Later records with a repeated name replace earlier ones.
fn load_records(path: &str) -> Result<BTreeMap<String, Rec>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut out = BTreeMap::new();
    for obj in split_objects(&text)? {
        let name = string_field(obj, "name")
            .ok_or_else(|| format!("record missing \"name\": {obj}"))?;
        let median_ns = number_field(obj, "median_ns")
            .ok_or_else(|| format!("record missing \"median_ns\": {obj}"))?;
        let min_ns = number_field(obj, "min_ns").unwrap_or(median_ns);
        out.insert(name, Rec { median_ns, min_ns });
    }
    if out.is_empty() {
        return Err("no benchmark records found".into());
    }
    Ok(out)
}

/// Splits the top-level text into `{...}` object slices. The dump
/// format is flat (no nested objects; the only escaping is `"`→`'` at
/// write time), so brace matching outside string literals suffices.
fn split_objects(text: &str) -> Result<Vec<&str>, String> {
    let mut objects = Vec::new();
    let mut start = None;
    let mut in_string = false;
    for (i, b) in text.bytes().enumerate() {
        match b {
            b'"' => in_string = !in_string,
            b'{' if !in_string => {
                if start.is_some() {
                    return Err(format!("nested object at byte {i}"));
                }
                start = Some(i);
            }
            b'}' if !in_string => {
                let s = start.take().ok_or_else(|| format!("stray '}}' at byte {i}"))?;
                objects.push(&text[s..=i]);
            }
            _ => {}
        }
    }
    if start.is_some() || in_string {
        return Err("unterminated object or string".into());
    }
    Ok(objects)
}

/// Extracts `"key":"value"` from a flat object slice.
fn string_field(obj: &str, key: &str) -> Option<String> {
    let rest = field_value(obj, key)?;
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts `"key":<number>` from a flat object slice.
fn number_field(obj: &str, key: &str) -> Option<f64> {
    let rest = field_value(obj, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Returns the text following `"key":`, whitespace-tolerant.
fn field_value<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\"");
    let at = obj.find(&tag)?;
    let rest = obj[at + tag.len()..].trim_start();
    rest.strip_prefix(':').map(str::trim_start)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}
