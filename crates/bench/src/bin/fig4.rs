//! Figure 4 alone (likes metadata comparison); shares the Table 8
//! computation. Scale via NEWSDIFF_SCALE=quick|paper.

use nd_bench::figures::metadata_comparison_figure;
use nd_bench::tables::accuracy_grid;
use nd_core::predict::Target;

fn main() {
    let scale = nd_bench::Scale::from_env();
    let out = nd_bench::run_pipeline(scale);
    let cells = accuracy_grid(&out, Target::Likes, &scale.predict_config());
    println!(
        "{}",
        metadata_comparison_figure(
            "Figure 4: Likes accuracy — without metadata (x1) vs with metadata (x2)",
            &cells
        )
    );
}
