//! Figure 5 alone (retweets metadata comparison); shares the Table 9
//! computation. Scale via NEWSDIFF_SCALE=quick|paper.

use nd_bench::figures::metadata_comparison_figure;
use nd_bench::tables::accuracy_grid;
use nd_core::predict::Target;

fn main() {
    let scale = nd_bench::Scale::from_env();
    let out = nd_bench::run_pipeline(scale);
    let cells = accuracy_grid(&out, Target::Retweets, &scale.predict_config());
    println!(
        "{}",
        metadata_comparison_figure(
            "Figure 5: Retweets accuracy — without metadata (x1) vs with metadata (x2)",
            &cells
        )
    );
}
