//! Figure 7 alone (epoch-time scaling at 308 dimensions); shares the
//! Table 10 computation. Scale via NEWSDIFF_SCALE=quick|paper.

use nd_bench::figures::epoch_time_figure;
use nd_bench::runtime::run_table10;

fn main() {
    let scale = nd_bench::Scale::from_env();
    let out = nd_bench::run_pipeline(scale);
    let rows = run_table10(&out, scale == nd_bench::Scale::Quick);
    println!(
        "{}",
        epoch_time_figure("Figure 7: Performance time, 308-dimension Doc2Vec", &rows, 308)
    );
}
