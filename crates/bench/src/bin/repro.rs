//! Runs the complete reproduction — every table and figure of the
//! paper's evaluation section — off a single pipeline run, printing
//! EXPERIMENTS.md-ready output. Scale via `NEWSDIFF_SCALE=quick|paper`.

use nd_bench::figures::{epoch_time_figure, metadata_comparison_figure, metadata_lift};
use nd_bench::runtime::{render_table10, run_table10};
use nd_bench::tables::{
    accuracy_grid, render_accuracy_table, table3, table4, table5, table6, table7,
};
use nd_core::predict::Target;

fn main() {
    let scale = nd_bench::Scale::from_env();
    let started = std::time::Instant::now();
    let out = nd_bench::run_pipeline(scale);

    println!("# newsdiff full reproduction ({scale:?} scale)\n");
    println!(
        "corpus: {} news articles, {} tweets over {} simulated days; {} users\n",
        out.world.articles.len(),
        out.world.tweets.len(),
        out.world.config.days,
        out.world.users.len()
    );

    println!("{}\n", table3(&out));
    println!("{}\n", table4(&out));
    println!("{}\n", table5(&out));
    println!("{}\n", table6(&out));
    println!("{}\n", table7(&out));

    // Headline §5.5 properties.
    let matched: std::collections::HashSet<usize> =
        out.correlation.pairs.iter().map(|p| p.trending_idx).collect();
    println!(
        "S5.5 checks: trending topics = {}, correlated pairs = {}, \
         every trending topic matched = {}, unmatched Twitter events = {}, \
         reverse pair set identical = {}\n",
        out.trending.len(),
        out.correlation.pairs.len(),
        (0..out.trending.len()).all(|i| matched.contains(&i)),
        out.correlation.unmatched_twitter.len(),
        {
            let mut f: Vec<_> = out
                .correlation
                .pairs
                .iter()
                .map(|p| (p.trending_idx, p.twitter_idx))
                .collect();
            let mut r: Vec<_> = out
                .reverse_correlation
                .pairs
                .iter()
                .map(|p| (p.trending_idx, p.twitter_idx))
                .collect();
            f.sort_unstable();
            r.sort_unstable();
            f == r
        }
    );

    let predict = scale.predict_config();
    let likes = accuracy_grid(&out, Target::Likes, &predict);
    println!("{}\n", render_accuracy_table("Table 8: Likes accuracy of correlated results", &likes));
    println!(
        "{}",
        metadata_comparison_figure(
            "Figure 4: Likes accuracy — without metadata (x1) vs with metadata (x2)",
            &likes
        )
    );

    let retweets = accuracy_grid(&out, Target::Retweets, &predict);
    println!(
        "{}\n",
        render_accuracy_table("Table 9: Retweets accuracy of correlated results", &retweets)
    );
    println!(
        "{}",
        metadata_comparison_figure(
            "Figure 5: Retweets accuracy — without metadata (x1) vs with metadata (x2)",
            &retweets
        )
    );

    let rows = run_table10(&out, scale == nd_bench::Scale::Quick);
    println!("{}\n", render_table10(&rows));
    println!("{}", epoch_time_figure("Figure 6: Performance time, 300-dimension Doc2Vec", &rows, 300));
    println!("{}", epoch_time_figure("Figure 7: Performance time, 308-dimension Doc2Vec", &rows, 308));

    println!(
        "summary: likes metadata lift {:+.3}, retweets metadata lift {:+.3}, total wall clock {:.1}s",
        metadata_lift(&likes),
        metadata_lift(&retweets),
        started.elapsed().as_secs_f64()
    );
}
