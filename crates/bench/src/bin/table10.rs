//! Reproduces Table 10 (runtime evaluation: epochs, ms/epoch, total
//! seconds across event counts, input sizes and networks) and prints
//! Figures 6–7 (epoch-time scaling). Scale via
//! `NEWSDIFF_SCALE=quick|paper`.

use nd_bench::figures::epoch_time_figure;
use nd_bench::runtime::{render_table10, run_table10};

fn main() {
    let scale = nd_bench::Scale::from_env();
    let out = nd_bench::run_pipeline(scale);
    let rows = run_table10(&out, scale == nd_bench::Scale::Quick);
    println!("{}", render_table10(&rows));
    println!();
    println!(
        "{}",
        epoch_time_figure("Figure 6: Performance time, 300-dimension Doc2Vec", &rows, 300)
    );
    println!(
        "{}",
        epoch_time_figure("Figure 7: Performance time, 308-dimension Doc2Vec", &rows, 308)
    );
}
