//! Reproduces the paper's Table 3. Scale via NEWSDIFF_SCALE=quick|paper.

fn main() {
    let out = nd_bench::run_pipeline(nd_bench::Scale::from_env());
    println!("{}", nd_bench::tables::table3(&out));
}
