//! Reproduces Table 9 (retweets accuracy over datasets A1–D2 × the
//! four network configurations) and prints the Figure 5 comparison.
//! Scale via `NEWSDIFF_SCALE=quick|paper`.

use nd_bench::figures::metadata_comparison_figure;
use nd_bench::tables::{accuracy_grid, render_accuracy_table};
use nd_core::predict::Target;

fn main() {
    let scale = nd_bench::Scale::from_env();
    let out = nd_bench::run_pipeline(scale);
    let cells = accuracy_grid(&out, Target::Retweets, &scale.predict_config());
    println!(
        "{}",
        render_accuracy_table("Table 9: Retweets accuracy of correlated results", &cells)
    );
    println!();
    println!(
        "{}",
        metadata_comparison_figure(
            "Figure 5: Retweets accuracy — without metadata (x1) vs with metadata (x2)",
            &cells
        )
    );
}
