//! Figures 4–7 as ASCII charts plus CSV series.

use crate::runtime::RuntimeRow;
use crate::tables::AccuracyCell;
use nd_core::report::render_bars;

/// Figure 4/5: accuracy without metadata (x1 variants) vs with
/// metadata (x2 variants), averaged over the four networks.
pub fn metadata_comparison_figure(title: &str, cells: &[AccuracyCell]) -> String {
    let mut entries = Vec::new();
    for ds in ["A1", "A2", "B1", "B2", "C1", "C2", "D1", "D2"] {
        let of_ds: Vec<f64> = cells
            .iter()
            .filter(|c| c.dataset == ds)
            .map(|c| c.average_accuracy)
            .collect();
        if !of_ds.is_empty() {
            let mean = of_ds.iter().sum::<f64>() / of_ds.len() as f64;
            entries.push((ds.to_string(), mean));
        }
    }
    let chart = render_bars(title, &entries, 48);
    let lift = metadata_lift(cells);
    format!("{chart}  mean metadata lift (x2 - x1): {lift:+.3}\n")
}

/// Mean average-accuracy lift of the metadata variants (A2,B2,C2,D2)
/// over their embedding-only counterparts (A1,B1,C1,D1).
pub fn metadata_lift(cells: &[AccuracyCell]) -> f64 {
    let mean_of = |names: [&str; 4]| {
        let vals: Vec<f64> = cells
            .iter()
            .filter(|c| names.contains(&c.dataset))
            .map(|c| c.average_accuracy)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    mean_of(["A2", "B2", "C2", "D2"]) - mean_of(["A1", "B1", "C1", "D1"])
}

/// Figure 6/7: per-epoch time vs number of events for one input size.
pub fn epoch_time_figure(title: &str, rows: &[RuntimeRow], doc2vec_size: usize) -> String {
    let mut entries = Vec::new();
    for row in rows.iter().filter(|r| r.doc2vec_size == doc2vec_size) {
        entries.push((format!("{} @ {} events", row.network, row.n_events), row.ms_per_epoch));
    }
    let mut out = render_bars(title, &entries, 48);
    out.push_str("  csv: network,n_events,ms_per_epoch\n");
    for row in rows.iter().filter(|r| r.doc2vec_size == doc2vec_size) {
        out.push_str(&format!("  csv: {},{},{:.2}\n", row.network, row.n_events, row.ms_per_epoch));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells() -> Vec<AccuracyCell> {
        let mut v = Vec::new();
        for (ds, acc) in [("A1", 0.74), ("A2", 0.83), ("B1", 0.75), ("B2", 0.84)] {
            v.push(AccuracyCell {
                dataset: match ds {
                    "A1" => "A1",
                    "A2" => "A2",
                    "B1" => "B1",
                    _ => "B2",
                },
                network: "MLP 1",
                average_accuracy: acc,
                epochs: 100,
            });
        }
        v
    }

    #[test]
    fn metadata_lift_computed() {
        let lift = metadata_lift(&cells());
        assert!((lift - 0.09).abs() < 1e-9, "lift {lift}");
    }

    #[test]
    fn figure_renders_with_lift_line() {
        let f = metadata_comparison_figure("Figure 4", &cells());
        assert!(f.contains("Figure 4"));
        assert!(f.contains("A1"));
        assert!(f.contains("lift"));
    }

    #[test]
    fn epoch_time_figure_filters_by_size() {
        let rows = vec![
            RuntimeRow {
                n_events: 500,
                doc2vec_size: 300,
                network: "CNN 1",
                epochs: 6,
                ms_per_epoch: 100.0,
                runtime_secs: 0.6,
            },
            RuntimeRow {
                n_events: 500,
                doc2vec_size: 308,
                network: "CNN 1",
                epochs: 6,
                ms_per_epoch: 120.0,
                runtime_secs: 0.7,
            },
        ];
        let f = epoch_time_figure("Figure 6", &rows, 300);
        assert!(f.contains("100.00"));
        assert!(!f.contains("120.00"));
    }
}
