//! # nd-bench
//!
//! The reproduction harness: one binary per table and figure of the
//! paper's evaluation section (§5), plus the ablation studies listed
//! in DESIGN.md §5 and Criterion micro-benchmarks (`benches/`).
//!
//! | binary | reproduces |
//! |---|---|
//! | `table3` | Table 3 — news topics (NMF keywords) |
//! | `table4` | Table 4 — news events (MABED) |
//! | `table5` | Table 5 — Twitter events (MABED) |
//! | `table6` | Table 6 — topic/event correlation similarities |
//! | `table7` | Table 7 — unrelated Twitter events |
//! | `table8` + `fig4` | Likes accuracy grid + metadata comparison |
//! | `table9` + `fig5` | Retweets accuracy grid + metadata comparison |
//! | `table10` + `fig6`/`fig7` | Runtime evaluation / epoch-time scaling |
//! | `repro` | everything above, in order (writes EXPERIMENTS-ready text) |
//! | `ablation_*` | DESIGN.md §5 design-choice studies |
//!
//! Scale is selected with the `NEWSDIFF_SCALE` environment variable:
//! `quick` (two simulated weeks, 32-d embeddings — seconds to minutes)
//! or `paper` (the default: two simulated months, 300-d embeddings —
//! tens of minutes for the full grid).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod runtime;
pub mod tables;

use nd_core::event_module::EventModuleConfig;
use nd_core::pipeline::{Pipeline, PipelineConfig, PipelineOutput};
use nd_core::predict::PredictConfig;
use nd_core::pretrained::PretrainedConfig;
use nd_core::topic_module::TopicModuleConfig;
use nd_neural::EarlyStopping;
use nd_synth::WorldConfig;

/// Harness scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Two simulated weeks, 32-d embeddings; smoke-test speed.
    Quick,
    /// Two simulated months, 300-d embeddings; the scale the numbers
    /// in EXPERIMENTS.md were produced at.
    Paper,
}

impl Scale {
    /// Reads `NEWSDIFF_SCALE` (`quick` / `paper`), defaulting to
    /// `paper`.
    pub fn from_env() -> Scale {
        match std::env::var("NEWSDIFF_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Paper,
        }
    }

    /// The pipeline configuration for this scale.
    pub fn pipeline_config(&self) -> PipelineConfig {
        match self {
            Scale::Quick => PipelineConfig::small(),
            Scale::Paper => PipelineConfig {
                world: WorldConfig {
                    days: 60,
                    n_users: 3_000,
                    min_influencers: 100,
                    ..WorldConfig::default()
                },
                topic: TopicModuleConfig { n_topics: 10, max_iter: 200, ..Default::default() },
                event: EventModuleConfig {
                    n_news_events: 25,
                    n_twitter_events: 40,
                    ..Default::default()
                },
                pretrained: PretrainedConfig {
                    dim: 300,
                    n_sentences: 4_000,
                    epochs: 6,
                    ..Default::default()
                },
                ..Default::default()
            },
        }
    }

    /// The training protocol for this scale. The paper trains with
    /// batch 5000 / ≤ 500 epochs; at our corpus sizes a smaller batch
    /// converges in the same wall-clock envelope.
    pub fn predict_config(&self) -> PredictConfig {
        match self {
            Scale::Quick => PredictConfig {
                batch_size: 512,
                max_epochs: 120,
                early_stopping: Some(EarlyStopping { min_delta: 1e-3, patience: 5 }),
                ..Default::default()
            },
            Scale::Paper => PredictConfig {
                batch_size: 1_024,
                max_epochs: 150,
                early_stopping: Some(EarlyStopping { min_delta: 1e-3, patience: 5 }),
                ..Default::default()
            },
        }
    }
}

/// Runs the full pipeline at the given scale, logging stage progress
/// to stderr.
pub fn run_pipeline(scale: Scale) -> PipelineOutput {
    eprintln!("[nd-bench] running pipeline at {scale:?} scale…");
    let started = std::time::Instant::now();
    let out = Pipeline::new(scale.pipeline_config()).run().expect("pipeline run failed");
    eprintln!(
        "[nd-bench] pipeline done in {:.1}s: {} articles, {} tweets, {} topics, {} news events, {} twitter events, {} trending, {} pairs",
        started.elapsed().as_secs_f64(),
        out.world.articles.len(),
        out.world.tweets.len(),
        out.topics.topics.len(),
        out.news_events.len(),
        out.twitter_events.len(),
        out.trending.len(),
        out.correlation.pairs.len(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_paper() {
        // Note: avoid mutating the process environment in tests; only
        // check the default path when the variable is absent.
        if std::env::var("NEWSDIFF_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Paper);
        }
    }

    #[test]
    fn quick_config_is_smaller() {
        let q = Scale::Quick.pipeline_config();
        let p = Scale::Paper.pipeline_config();
        assert!(q.world.days < p.world.days);
        assert!(q.pretrained.dim < p.pretrained.dim);
        assert_eq!(p.pretrained.dim, 300, "paper uses 300-d embeddings");
    }
}
