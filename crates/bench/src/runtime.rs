//! Table 10 / Figures 6–7: the runtime evaluation.
//!
//! The paper trains each network on datasets derived from 500 / 2500 /
//! 5000 Twitter events, with 300- and 308-dimension inputs, batch size
//! 5000 and at most 500 epochs (early stopping on), and reports epoch
//! counts, per-epoch milliseconds and total runtime. Our corpora are
//! smaller, so dataset size is scaled the way the paper's grows with
//! event count: rows are resampled from the pipeline's real A1/A2
//! datasets up to the target sample counts.

use nd_core::features::{Dataset, DatasetVariant};
use nd_core::pipeline::PipelineOutput;
use nd_core::predict::{NetworkKind, Target, N_CLASSES};
use nd_core::report::render_table;
use nd_linalg::rng::SplitMix64;
use nd_linalg::Mat;
use nd_neural::{EarlyStopping, Trainer, TrainerConfig};

/// One row of Table 10.
#[derive(Debug, Clone)]
pub struct RuntimeRow {
    /// Simulated "number of Twitter events" (dataset-size proxy).
    pub n_events: usize,
    /// Input dimensionality (300 = embeddings only, 308 = +metadata).
    pub doc2vec_size: usize,
    /// Network label.
    pub network: &'static str,
    /// Epochs until early stopping.
    pub epochs: usize,
    /// Mean milliseconds per epoch.
    pub ms_per_epoch: f64,
    /// Total runtime in seconds.
    pub runtime_secs: f64,
}

/// Resamples a dataset to exactly `n` rows (with replacement when the
/// source is smaller), deterministically.
pub fn resample(ds: &Dataset, n: usize, seed: u64) -> Dataset {
    let mut rng = SplitMix64::new(seed);
    let src = ds.x.rows();
    assert!(src > 0, "cannot resample an empty dataset");
    let mut x = Mat::zeros(n, ds.x.cols());
    let mut y_likes = Vec::with_capacity(n);
    let mut y_retweets = Vec::with_capacity(n);
    for r in 0..n {
        let i = if r < src { r } else { rng.next_usize(src) };
        x.row_mut(r).copy_from_slice(ds.x.row(i));
        y_likes.push(ds.y_likes[i]);
        y_retweets.push(ds.y_retweets[i]);
    }
    Dataset { name: ds.name, x, y_likes, y_retweets }
}

/// Event counts of the paper's Table 10.
pub const EVENT_COUNTS: [usize; 3] = [500, 2_500, 5_000];

/// Samples per "event" — the paper's 5000-event dataset feeds batches
/// of 5000, i.e. roughly one tweet per event at this scale.
const SAMPLES_PER_EVENT: usize = 1;

/// Runs the Table 10 protocol and returns its rows.
///
/// `quick` shrinks the epoch cap so smoke runs finish in seconds.
pub fn run_table10(out: &PipelineOutput, quick: bool) -> Vec<RuntimeRow> {
    let base300 = out.dataset(DatasetVariant::A1, 7); // embeddings only
    let base308 = out.dataset(DatasetVariant::A2, 7); // + metadata
    let mut rows = Vec::new();
    let max_epochs = if quick { 60 } else { 250 };

    for &n_events in &EVENT_COUNTS {
        let n_samples = n_events * SAMPLES_PER_EVENT;
        for (ds, label_size) in [(&base300, "300"), (&base308, "308")] {
            let sized = resample(ds, n_samples, 99);
            for kind in NetworkKind::ALL {
                let mut network = kind.build(sized.x.cols(), 42);
                let mut optimizer = kind.optimizer();
                let trainer = Trainer::new(TrainerConfig {
                    batch_size: 5_000,
                    max_epochs,
                    early_stopping: Some(EarlyStopping { min_delta: 1e-3, patience: 3 }),
                    seed: 42,
                });
                let report =
                    trainer.fit(&mut network, &sized.x, &sized.y_likes, optimizer.as_mut());
                let _ = trainer.evaluate(&mut network, &sized.x, &sized.y_likes, N_CLASSES);
                let row = RuntimeRow {
                    n_events,
                    doc2vec_size: label_size.parse().expect("static"),
                    network: kind.name(),
                    epochs: report.epochs,
                    ms_per_epoch: report.mean_epoch_ms(),
                    runtime_secs: report.total_seconds,
                };
                eprintln!(
                    "[nd-bench] table10: events={} dim={} {} -> {} epochs, {:.1} ms/epoch, {:.2}s",
                    row.n_events, row.doc2vec_size, row.network, row.epochs,
                    row.ms_per_epoch, row.runtime_secs,
                );
                rows.push(row);
            }
        }
        let _ = Target::Likes;
    }
    rows
}

/// Renders Table 10 in the paper's layout.
pub fn render_table10(rows: &[RuntimeRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.n_events),
                format!("{}", r.doc2vec_size),
                r.network.replace(' ', ""),
                format!("{}", r.epochs),
                format!("{:.1}", r.ms_per_epoch),
                format!("{:.2}", r.runtime_secs),
            ]
        })
        .collect();
    format!(
        "Table 10: Runtime evaluation\n{}",
        render_table(
            &["No. Twitter Events", "Doc2Vec Size", "Network", "No. Epochs", "Ms/Epoch", "Runtime (s)"],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Dataset {
        let mut x = Mat::zeros(n, 4);
        for r in 0..n {
            x.set(r, 0, r as f64);
        }
        Dataset {
            name: "T",
            x,
            y_likes: (0..n).map(|i| i % 3).collect(),
            y_retweets: vec![0; n],
        }
    }

    #[test]
    fn resample_upsamples_and_downsamples() {
        let ds = dataset(10);
        let up = resample(&ds, 25, 1);
        assert_eq!(up.len(), 25);
        // First 10 rows are the originals, in order.
        assert_eq!(up.x.get(3, 0), 3.0);
        let down = resample(&ds, 4, 1);
        assert_eq!(down.len(), 4);
        assert_eq!(down.y_likes.len(), 4);
    }

    #[test]
    fn resample_deterministic() {
        let ds = dataset(7);
        let a = resample(&ds, 30, 5);
        let b = resample(&ds, 30, 5);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn render_layout() {
        let rows = vec![RuntimeRow {
            n_events: 500,
            doc2vec_size: 300,
            network: "MLP 1",
            epochs: 113,
            ms_per_epoch: 1013.0,
            runtime_secs: 119.51,
        }];
        let t = render_table10(&rows);
        assert!(t.contains("500"));
        assert!(t.contains("MLP1"));
        assert!(t.contains("119.51"));
    }
}
