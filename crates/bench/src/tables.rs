//! Renderers for the paper's Tables 3–9.

use nd_core::features::DatasetVariant;
use nd_core::pipeline::PipelineOutput;
use nd_core::predict::{train_and_eval, NetworkKind, PredictConfig, Target};
use nd_core::report::{fmt2, render_table};
use nd_events::Event;
use nd_synth::time::format_ts;

fn keywords_of(event: &Event) -> String {
    event.related.iter().map(|(w, _)| w.as_str()).collect::<Vec<_>>().join(" ")
}

/// Table 3: news topics extracted by NMF.
pub fn table3(out: &PipelineOutput) -> String {
    let rows: Vec<Vec<String>> = out
        .topics
        .topics
        .iter()
        .map(|t| vec![format!("{}", t.id + 1), t.keywords.join(" ")])
        .collect();
    format!("Table 3: News topics\n{}", render_table(&["#NT", "Keywords"], &rows))
}

/// Table 4: news events detected by MABED.
pub fn table4(out: &PipelineOutput) -> String {
    let rows: Vec<Vec<String>> = out
        .news_events
        .iter()
        .enumerate()
        .map(|(i, e)| {
            vec![
                format!("{}", i + 1),
                format_ts(e.start),
                format_ts(e.end),
                e.main_word.clone(),
                keywords_of(e),
            ]
        })
        .collect();
    format!(
        "Table 4: News events\n{}",
        render_table(&["#NE", "Start Date", "End Date", "Label", "Keywords"], &rows)
    )
}

/// Table 5: Twitter events detected by MABED.
pub fn table5(out: &PipelineOutput) -> String {
    let rows: Vec<Vec<String>> = out
        .twitter_events
        .iter()
        .enumerate()
        .map(|(i, e)| {
            vec![
                format!("{}", i + 1),
                format_ts(e.start),
                format_ts(e.end),
                e.main_word.clone(),
                keywords_of(e),
            ]
        })
        .collect();
    format!(
        "Table 5: Twitter events\n{}",
        render_table(&["#TE", "Start Date", "End Date", "Label", "Keywords"], &rows)
    )
}

/// Index of a news event inside the pipeline's news-event list.
fn news_event_index(out: &PipelineOutput, event: &Event) -> Option<usize> {
    out.news_events
        .iter()
        .position(|e| e.main_word == event.main_word && e.start == event.start)
}

/// Table 6: correlation between topics and events — for each trending
/// news topic, the topic↔news-event similarity and its best Twitter-
/// event similarity.
pub fn table6(out: &PipelineOutput) -> String {
    let mut rows = Vec::new();
    for (ti, trending) in out.trending.iter().enumerate() {
        let ne_idx = news_event_index(out, &trending.event).map(|i| i + 1).unwrap_or(0);
        // Best Twitter match for this trending topic.
        let best = out
            .correlation
            .pairs
            .iter()
            .filter(|p| p.trending_idx == ti)
            .max_by(|a, b| a.similarity.partial_cmp(&b.similarity).unwrap());
        let (te_label, te_sim) = match best {
            Some(p) => (format!("{}", p.twitter_idx + 1), fmt2(p.similarity)),
            None => ("-".to_string(), "-".to_string()),
        };
        rows.push(vec![
            format!("{}", trending.topic_id + 1),
            format!("{ne_idx}"),
            te_label,
            fmt2(trending.similarity),
            te_sim,
        ]);
    }
    format!(
        "Table 6: Correlation between topics and events\n{}",
        render_table(&["#NT", "#NE", "#TE", "Sim NT NE", "Sim NE TE"], &rows)
    )
}

/// Table 7: Twitter events unrelated to any trending news topic.
pub fn table7(out: &PipelineOutput) -> String {
    let rows: Vec<Vec<String>> = out
        .correlation
        .unmatched_twitter
        .iter()
        .map(|&i| {
            let e = &out.twitter_events[i];
            vec![
                format!("{}", i + 1),
                format_ts(e.start),
                format_ts(e.end),
                e.main_word.clone(),
                keywords_of(e),
            ]
        })
        .collect();
    format!(
        "Table 7: Unrelated Twitter events\n{}",
        render_table(&["#TE", "Start Date", "End Date", "Label", "Keywords"], &rows)
    )
}

/// One cell of the Tables 8–9 grid.
#[derive(Debug, Clone)]
pub struct AccuracyCell {
    /// Dataset label (A1…D2).
    pub dataset: &'static str,
    /// Network label.
    pub network: &'static str,
    /// Eq. (17) average accuracy on the validation split.
    pub average_accuracy: f64,
    /// Epochs the run took (feeds the Table 10 discussion).
    pub epochs: usize,
}

/// Computes the accuracy grid behind Table 8 (likes) or Table 9
/// (retweets): 8 dataset variants × 4 network configurations.
pub fn accuracy_grid(
    out: &PipelineOutput,
    target: Target,
    config: &PredictConfig,
) -> Vec<AccuracyCell> {
    let mut cells = Vec::new();
    for variant in DatasetVariant::ALL {
        let ds = out.dataset(variant, 7);
        for kind in NetworkKind::ALL {
            let started = std::time::Instant::now();
            let res = train_and_eval(&ds, kind, target, config);
            eprintln!(
                "[nd-bench] {} × {} ({}): avg acc {:.3} in {} epochs ({:.1}s)",
                variant.name(),
                kind.name(),
                match target {
                    Target::Likes => "likes",
                    Target::Retweets => "retweets",
                },
                res.average_accuracy,
                res.report.epochs,
                started.elapsed().as_secs_f64(),
            );
            cells.push(AccuracyCell {
                dataset: variant.name(),
                network: kind.name(),
                average_accuracy: res.average_accuracy,
                epochs: res.report.epochs,
            });
        }
    }
    cells
}

/// Renders an accuracy grid in the paper's Tables 8–9 layout.
pub fn render_accuracy_table(title: &str, cells: &[AccuracyCell]) -> String {
    let mut rows = Vec::new();
    for variant in DatasetVariant::ALL {
        let mut row = vec![variant.name().to_string()];
        for kind in NetworkKind::ALL {
            let cell = cells
                .iter()
                .find(|c| c.dataset == variant.name() && c.network == kind.name());
            row.push(cell.map(|c| fmt2(c.average_accuracy)).unwrap_or_else(|| "-".into()));
        }
        rows.push(row);
    }
    format!(
        "{title}\n{}",
        render_table(&["Dataset", "MLP 1", "MLP 2", "CNN 1", "CNN 2"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::pipeline::{Pipeline, PipelineConfig};
    use std::sync::OnceLock;

    fn out() -> &'static PipelineOutput {
        static OUT: OnceLock<PipelineOutput> = OnceLock::new();
        OUT.get_or_init(|| Pipeline::new(PipelineConfig::small()).run().unwrap())
    }

    #[test]
    fn tables_3_to_7_render() {
        let o = out();
        for (n, t) in [
            ("Table 3", table3(o)),
            ("Table 4", table4(o)),
            ("Table 5", table5(o)),
            ("Table 6", table6(o)),
            ("Table 7", table7(o)),
        ] {
            assert!(t.starts_with(n), "{t}");
            assert!(t.lines().count() > 4, "{n} looks empty:\n{t}");
        }
    }

    #[test]
    fn table6_similarities_at_thresholds() {
        let o = out();
        let t = table6(o);
        // Every listed NT↔NE similarity must be >= 0.70 by construction.
        for line in t.lines().skip(4) {
            let cols: Vec<&str> = line.split('|').map(str::trim).collect();
            if cols.len() >= 6 {
                if let Ok(sim) = cols[4].parse::<f64>() {
                    assert!(sim >= 0.70 - 1e-9, "NT-NE sim below threshold: {line}");
                }
            }
        }
    }

    #[test]
    fn accuracy_table_layout() {
        let cells = vec![
            AccuracyCell { dataset: "A1", network: "MLP 1", average_accuracy: 0.74, epochs: 10 },
            AccuracyCell { dataset: "A2", network: "CNN 2", average_accuracy: 0.84, epochs: 7 },
        ];
        let t = render_accuracy_table("Table 8: Likes accuracy", &cells);
        assert!(t.contains("0.74"));
        assert!(t.contains("0.84"));
        assert!(t.contains("A1"));
        assert!(t.contains("D2"));
        assert!(t.contains("-"), "missing cells render as dashes");
    }
}
