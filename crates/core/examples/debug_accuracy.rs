//! Developer diagnostics: metadata-lift calibration check (Table 8/9
//! shape) on a small world.

use nd_core::features::DatasetVariant;
use nd_core::pipeline::{Pipeline, PipelineConfig};
use nd_core::predict::{train_and_eval, NetworkKind, PredictConfig, Target};

fn main() {
    let out = Pipeline::new(PipelineConfig::small()).run().expect("pipeline");
    // Virality distribution over the tweets that end up in datasets.
    let mut vir: Vec<f64> = Vec::new();
    for a in &out.assignments {
        for &ti in &a.tweet_indices {
            vir.push(out.world.tweets[ti].gt_virality);
        }
    }
    vir.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if !vir.is_empty() {
        println!(
            "virality over dataset tweets: min={:.3} p25={:.3} med={:.3} p75={:.3} max={:.3}",
            vir[0],
            vir[vir.len() / 4],
            vir[vir.len() / 2],
            vir[3 * vir.len() / 4],
            vir[vir.len() - 1]
        );
    }
    let cfg = PredictConfig { batch_size: 512, max_epochs: 120, ..Default::default() };
    for variant in [DatasetVariant::A1, DatasetVariant::A2, DatasetVariant::B1, DatasetVariant::B2] {
        let ds = out.dataset(variant, 7);
        println!("dataset {} samples={} dims={}", ds.name, ds.len(), ds.x.cols());
        // Label distribution.
        let mut counts = [0usize; 3];
        for &y in &ds.y_likes {
            counts[y] += 1;
        }
        println!("  likes label distribution: {counts:?}");
        for kind in [NetworkKind::Mlp1, NetworkKind::Cnn1] {
            let likes = train_and_eval(&ds, kind, Target::Likes, &cfg);
            let rts = train_and_eval(&ds, kind, Target::Retweets, &cfg);
            println!(
                "  {}: likes acc={:.3} avg={:.3} epochs={} | retweets acc={:.3} avg={:.3}",
                kind.name(),
                likes.accuracy,
                likes.average_accuracy,
                likes.report.epochs,
                rts.accuracy,
                rts.average_accuracy,
            );
        }
    }
}
