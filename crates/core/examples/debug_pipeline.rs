//! Developer diagnostics: dump every pipeline stage for a small run.

use nd_core::pipeline::{Pipeline, PipelineConfig};

fn main() {
    let out = Pipeline::new(PipelineConfig::small()).run().expect("pipeline");
    println!("== topics ==");
    for t in &out.topics.topics {
        println!("  NT{}: {}", t.id, t.keywords.join(" "));
    }
    println!("== news events ({}) ==", out.news_events.len());
    for e in &out.news_events {
        println!(
            "  {} mag={:.1} docs={} [{}..{}] related: {}",
            e.main_word,
            e.magnitude,
            e.n_docs,
            e.start,
            e.end,
            e.related.iter().map(|(w, _)| w.as_str()).collect::<Vec<_>>().join(" ")
        );
    }
    println!("== twitter events ({}) ==", out.twitter_events.len());
    for e in &out.twitter_events {
        println!(
            "  {} mag={:.1} docs={} [{}..{}] related: {}",
            e.main_word,
            e.magnitude,
            e.n_docs,
            e.start,
            e.end,
            e.related.iter().map(|(w, _)| w.as_str()).collect::<Vec<_>>().join(" ")
        );
    }
    println!("== trending ({}) ==", out.trending.len());
    for (i, t) in out.trending.iter().enumerate() {
        println!(
            "  TT{i}: topic NT{} ~ event '{}' sim={:.2} start={}",
            t.topic_id, t.event.main_word, t.similarity, t.event.start
        );
    }
    println!("== correlation pairs ({}) ==", out.correlation.pairs.len());
    for p in &out.correlation.pairs {
        println!(
            "  TT{} ~ TE{} ({}) sim={:.2}",
            p.trending_idx, p.twitter_idx, out.twitter_events[p.twitter_idx].main_word, p.similarity
        );
    }
    println!("== unmatched twitter events: {:?}", out.correlation.unmatched_twitter);
    println!("== assignments: {} events with >=10 tweets", out.assignments.len());
    for a in &out.assignments {
        println!(
            "  event '{}' -> {} tweets",
            out.correlated_events[a.event_idx].main_word,
            a.tweet_indices.len()
        );
    }
}
