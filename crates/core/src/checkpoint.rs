//! Model checkpointing (paper §4.9).
//!
//! The deployed system refreshes its datasets every two hours and
//! "uses checkpoints to continue the training as new data is added in
//! real time", swapping models in as retraining finishes. This module
//! provides that mechanism over the embedded document store: trained
//! network parameters are saved as versioned documents in a `models`
//! collection and restored into architecture-compatible networks, so a
//! restarted process resumes from the last checkpoint instead of
//! retraining from scratch.

use crate::error::{CoreError, Result};
use nd_neural::Network;
use nd_store::{Collection, Database, Filter};
use serde_json::{json, Value};

/// Collection holding model checkpoints.
pub const MODELS_COLLECTION: &str = "models";

/// One pass over the collection: the highest-version checkpoint doc
/// for `name`. Checkpoint docs carry full parameter vectors, so the
/// lookup must not materialize (or clone) every version the way a
/// filter-then-max over `find` results would.
fn latest_doc<'a>(coll: &'a Collection, name: &str) -> Option<&'a Value> {
    let mut best: Option<(u64, &Value)> = None;
    for doc in coll.iter() {
        if doc["name"].as_str() != Some(name) {
            continue;
        }
        let version = doc["version"].as_u64().unwrap_or(0);
        if best.is_none_or(|(b, _)| version > b) {
            best = Some((version, doc));
        }
    }
    best.map(|(_, doc)| doc)
}

/// Saves a network checkpoint under `name`, returning its version
/// (monotonically increasing per name).
pub fn save_checkpoint(db: &mut Database, name: &str, network: &Network) -> Result<u64> {
    let version = latest_version(db, name).map(|v| v + 1).unwrap_or(1);
    let params = network.export_params();
    db.collection(MODELS_COLLECTION).insert(json!({
        "name": name,
        "version": version,
        "n_layers": params.len(),
        "params": params,
    }))?;
    db.persist()?;
    Ok(version)
}

/// Highest checkpoint version stored under `name`, if any.
pub fn latest_version(db: &Database, name: &str) -> Option<u64> {
    let coll = db.get_collection(MODELS_COLLECTION)?;
    latest_doc(coll, name).and_then(|d| d["version"].as_u64())
}

/// Loads the newest checkpoint for `name` into `network` (which must
/// have the same architecture it was saved from). Returns the restored
/// version.
///
/// # Errors
/// [`CoreError::NoOutput`] when no checkpoint exists;
/// [`CoreError::EmptyInput`] when the stored parameters do not fit the
/// network.
pub fn load_checkpoint(db: &Database, name: &str, network: &mut Network) -> Result<u64> {
    let coll = db
        .get_collection(MODELS_COLLECTION)
        .ok_or(CoreError::NoOutput("checkpoint load: no models collection"))?;
    let doc =
        latest_doc(coll, name).ok_or(CoreError::NoOutput("checkpoint load: name not found"))?;
    let params: Vec<Vec<f64>> = doc["params"]
        .as_array()
        .ok_or(CoreError::EmptyInput("checkpoint load: malformed params"))?
        .iter()
        .map(|layer| {
            layer
                .as_array()
                .map(|vals| vals.iter().filter_map(|v| v.as_f64()).collect())
                .unwrap_or_default()
        })
        .collect();
    network
        .import_params(&params)
        .map_err(|_| CoreError::EmptyInput("checkpoint load: architecture mismatch"))?;
    Ok(doc["version"].as_u64().unwrap_or(0))
}

/// Removes all but the newest `keep` checkpoints of `name` (the 2-hour
/// retraining loop would otherwise grow the collection without bound).
pub fn prune_checkpoints(db: &mut Database, name: &str, keep: usize) -> Result<usize> {
    let coll = db.collection(MODELS_COLLECTION);
    let mut versions: Vec<(u64, u64)> = coll
        .find(&Filter::eq("name", name))
        .iter()
        .filter_map(|d| Some((d["version"].as_u64()?, d["_id"].as_u64()?)))
        .collect();
    versions.sort_by_key(|&(version, _)| std::cmp::Reverse(version));
    let mut removed = 0;
    for &(_, id) in versions.iter().skip(keep) {
        coll.delete(id)?;
        removed += 1;
    }
    db.persist()?;
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::build_mlp;
    use nd_linalg::Mat;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("ndckpt-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn save_load_roundtrip_across_reopen() {
        let dir = tmpdir("roundtrip");
        let mut original = build_mlp(12, 1);
        let x = Mat::random_normal(4, 12, 0.0, 1.0, 2);
        let expected = original.predict(&x);
        {
            let mut db = Database::open(&dir).unwrap();
            assert_eq!(save_checkpoint(&mut db, "likes-mlp", &original).unwrap(), 1);
        }
        {
            let db = Database::open(&dir).unwrap();
            let mut restored = build_mlp(12, 999); // different init seed
            let v = load_checkpoint(&db, "likes-mlp", &mut restored).unwrap();
            assert_eq!(v, 1);
            assert_eq!(restored.predict(&x), expected);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn versions_increase_and_latest_wins() {
        let dir = tmpdir("versions");
        let mut db = Database::open(&dir).unwrap();
        let net_a = build_mlp(6, 1);
        let net_b = build_mlp(6, 2);
        assert_eq!(save_checkpoint(&mut db, "m", &net_a).unwrap(), 1);
        assert_eq!(save_checkpoint(&mut db, "m", &net_b).unwrap(), 2);
        assert_eq!(latest_version(&db, "m"), Some(2));

        let mut restored = build_mlp(6, 3);
        load_checkpoint(&db, "m", &mut restored).unwrap();
        assert_eq!(restored.export_params(), net_b.export_params());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_mismatched_checkpoints_error() {
        let dir = tmpdir("missing");
        let mut db = Database::open(&dir).unwrap();
        let mut net = build_mlp(6, 1);
        assert!(load_checkpoint(&db, "ghost", &mut net).is_err());
        // Save a 6-input model, try restoring into an 8-input one.
        save_checkpoint(&mut db, "m", &net).unwrap();
        let mut wrong = build_mlp(8, 1);
        assert!(load_checkpoint(&db, "m", &mut wrong).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmpdir("prune");
        let mut db = Database::open(&dir).unwrap();
        let net = build_mlp(4, 1);
        for _ in 0..5 {
            save_checkpoint(&mut db, "m", &net).unwrap();
        }
        let removed = prune_checkpoints(&mut db, "m", 2).unwrap();
        assert_eq!(removed, 3);
        assert_eq!(latest_version(&db, "m"), Some(5));
        assert_eq!(
            db.get_collection(MODELS_COLLECTION).unwrap().count(&Filter::eq("name", "m")),
            2
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn names_are_namespaced() {
        let dir = tmpdir("names");
        let mut db = Database::open(&dir).unwrap();
        let net = build_mlp(4, 1);
        save_checkpoint(&mut db, "likes", &net).unwrap();
        save_checkpoint(&mut db, "retweets", &net).unwrap();
        save_checkpoint(&mut db, "likes", &net).unwrap();
        assert_eq!(latest_version(&db, "likes"), Some(2));
        assert_eq!(latest_version(&db, "retweets"), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }
}
