//! Data collection and storage (paper §4.1, §4.9).
//!
//! The deployed system polls the news APIs and the Twitter API every
//! two hours, scrapes full article bodies (NewsAPI truncates to the
//! first paragraph), and stores everything in MongoDB. This module
//! replays that loop against the simulated endpoints of `nd-synth`
//! and writes into an `nd-store` [`Database`]:
//!
//! * `news`   — `{ts, source, title, content}`
//! * `tweets` — `{ts, author_id, author_handle, author_followers,
//!   text, likes, retweets}`
//! * `users`  — `{user_id, handle, followers, friends}`

use crate::error::Result;
use nd_store::Database;
use nd_synth::api::{NewsApi, Scraper, TwitterApi};
use nd_synth::World;
use serde_json::json;

/// Outcome of a collection run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectStats {
    /// Articles stored.
    pub articles: usize,
    /// Tweets stored.
    pub tweets: usize,
    /// Users stored.
    pub users: usize,
    /// Two-hour polling rounds executed.
    pub polls: usize,
}

/// Polling interval — "We decided to fetch the latest tweets and news
/// every 2 hours" (§4.9).
pub const POLL_INTERVAL: u64 = 2 * 3600;

/// Runs the full collection loop over a world, writing into `db`.
///
/// Articles come from the paginated news API; each page item is
/// completed through the scraper before storage, exactly like the
/// deployed system. Tweets come from the Twitter search endpoint
/// (empty keyword list = the firehose sample the paper's keyword set
/// approximates).
pub fn collect_world(world: &World, db: &mut Database) -> Result<CollectStats> {
    let news_api = NewsApi::new(world);
    let scraper = Scraper::new(world);
    let twitter = TwitterApi::new(world);

    let mut stats = CollectStats::default();

    // Users first (the paper stores user statistics alongside tweets).
    for u in &world.users {
        db.collection("users").insert(json!({
            "user_id": u.id,
            "handle": u.handle,
            "followers": u.followers,
            "friends": u.friends,
        }))?;
        stats.users += 1;
    }

    // Poll every 2 simulated hours. Within one poll we drain the
    // paginated endpoints until they return less than a full page.
    let mut news_since = 0u64;
    let mut tweets_since = 0u64;
    let mut now = world.config.start;
    let end = world.end();
    while now <= end + POLL_INTERVAL {
        stats.polls += 1;
        // --- News ---
        loop {
            let page: Vec<_> = news_api
                .latest(news_since)
                .into_iter()
                .filter(|a| a.timestamp <= now)
                .collect();
            if page.is_empty() {
                break;
            }
            for item in &page {
                let full = scraper.fetch(item.id);
                let content = full.map(|a| a.content.as_str()).unwrap_or(&item.description);
                db.collection("news").insert(json!({
                    "ts": item.timestamp,
                    "source": item.source,
                    "title": item.title,
                    "content": content,
                }))?;
                stats.articles += 1;
            }
            news_since = page.last().expect("non-empty page").timestamp;
        }
        // --- Tweets ---
        loop {
            let page: Vec<_> = twitter
                .search(&[], tweets_since)
                .into_iter()
                .filter(|t| t.timestamp <= now)
                .collect();
            if page.is_empty() {
                break;
            }
            for t in &page {
                db.collection("tweets").insert(json!({
                    "ts": t.timestamp,
                    "author_id": t.author_id,
                    "author_handle": t.author_handle,
                    "author_followers": t.author_followers,
                    "text": t.text,
                    "likes": t.likes,
                    "retweets": t.retweets,
                }))?;
                stats.tweets += 1;
            }
            tweets_since = page.last().expect("non-empty page").timestamp;
        }
        now += POLL_INTERVAL;
    }

    db.collection("tweets").create_index("ts");
    db.collection("news").create_index("ts");
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_store::Filter;
    use nd_synth::WorldConfig;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("ndcollect-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn tiny_world() -> World {
        World::generate(WorldConfig { days: 3, n_users: 50, min_influencers: 5, ..WorldConfig::small() })
    }

    #[test]
    fn collects_nearly_everything() {
        let world = tiny_world();
        let dir = tmpdir("all");
        let mut db = Database::open(&dir).unwrap();
        let stats = collect_world(&world, &mut db).unwrap();
        // Timestamp pagination may drop same-second boundary ties; the
        // loss must stay under 1%.
        assert!(stats.articles >= world.articles.len() * 99 / 100);
        assert!(stats.tweets >= world.tweets.len() * 99 / 100);
        assert_eq!(stats.users, 50);
        assert!(stats.polls >= 36, "3 days of 2-hour polls");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stored_documents_queryable() {
        let world = tiny_world();
        let dir = tmpdir("query");
        let mut db = Database::open(&dir).unwrap();
        collect_world(&world, &mut db).unwrap();
        let news = db.get_collection("news").unwrap();
        let in_window = news.find(&Filter::range(
            "ts",
            Some(world.config.start as f64),
            Some(world.end() as f64),
        ));
        assert_eq!(in_window.len(), news.len());
        let tweets = db.get_collection("tweets").unwrap();
        let liked = tweets.find(&Filter::range("likes", Some(1001.0), None));
        assert!(!liked.is_empty(), "some tweets should be in the >1000 bucket");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scraped_content_is_full_article() {
        let world = tiny_world();
        let dir = tmpdir("scrape");
        let mut db = Database::open(&dir).unwrap();
        collect_world(&world, &mut db).unwrap();
        let news = db.get_collection("news").unwrap();
        // Full bodies have several sentences; snippets have one.
        let multi_sentence = news
            .iter()
            .filter(|d| d["content"].as_str().unwrap().matches('.').count() >= 2)
            .count();
        assert!(
            multi_sentence > news.len() / 2,
            "most stored articles must carry scraped full bodies"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
