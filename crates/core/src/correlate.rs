//! Correlation module (paper §4.6, §5.5).
//!
//! Matches *trending news topics* to *Twitter events*: a Twitter event
//! is a candidate when its start date falls within five days of the
//! news event's start (`S_TE ∈ [S_NE, S_NE + 5 days]` — "a Twitter
//! event can appear on social media as soon as the news appears in the
//! mass media, but it can also be some delay"), and the pair is kept
//! when the embedding cosine similarity reaches the threshold
//! (paper: 0.65). The reverse correlation (`Twitter events → trending
//! news topics`) uses the same constraints and, as §5.8 reports, must
//! yield the same pair set.

use crate::trending::{embed_terms, TrendingTopic};
use nd_embed::WordVectors;
use nd_events::Event;
use nd_linalg::vecops::cosine;
use nd_store::{ArtifactError, ByteReader, ByteWriter};

/// Encodes the correlation artifact.
pub fn encode_correlation(c: &CorrelationResult, out: &mut ByteWriter) {
    out.put_usize(c.pairs.len());
    for p in &c.pairs {
        out.put_usize(p.trending_idx);
        out.put_usize(p.twitter_idx);
        out.put_f64(p.similarity);
    }
    out.put_usize(c.unmatched_twitter.len());
    for &i in &c.unmatched_twitter {
        out.put_usize(i);
    }
}

/// Decodes the correlation artifact.
///
/// # Errors
/// Truncated or malformed payloads yield an [`ArtifactError`].
pub fn decode_correlation(r: &mut ByteReader<'_>) -> Result<CorrelationResult, ArtifactError> {
    let n = r.len_prefix()?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push(CorrelatedPair {
            trending_idx: r.usize()?,
            twitter_idx: r.usize()?,
            similarity: r.f64()?,
        });
    }
    let m = r.len_prefix()?;
    let mut unmatched_twitter = Vec::with_capacity(m);
    for _ in 0..m {
        unmatched_twitter.push(r.usize()?);
    }
    Ok(CorrelationResult { pairs, unmatched_twitter })
}

/// Five days, the paper's start-date window.
pub const START_WINDOW: u64 = 5 * 86_400;

/// A correlated `<trending news topic, Twitter event>` pair.
#[derive(Debug, Clone)]
pub struct CorrelatedPair {
    /// Index into the trending-topic list.
    pub trending_idx: usize,
    /// Index into the Twitter-event list.
    pub twitter_idx: usize,
    /// Cosine similarity between the news-event and Twitter-event
    /// embeddings.
    pub similarity: f64,
}

/// The correlation stage's artifact: both directions together (the
/// paper computes forward and reverse and asserts they agree, §5.8).
#[derive(Debug, Clone)]
pub struct CorrelationOutput {
    /// Trending news topics → Twitter events.
    pub forward: CorrelationResult,
    /// Twitter events → trending news topics.
    pub reverse: CorrelationResult,
}

/// Result of the correlation stage.
#[derive(Debug, Clone)]
pub struct CorrelationResult {
    /// Pairs satisfying the time constraint and similarity threshold.
    pub pairs: Vec<CorrelatedPair>,
    /// Twitter events (by index) that matched no trending topic —
    /// the paper's Table 7 set.
    pub unmatched_twitter: Vec<usize>,
}

fn time_ok(news_event: &Event, twitter_event: &Event) -> bool {
    twitter_event.start >= news_event.start
        && twitter_event.start <= news_event.start + START_WINDOW
}

/// Forward correlation: trending news topics → Twitter events.
pub fn correlate(
    trending: &[TrendingTopic],
    twitter_events: &[Event],
    vectors: &WordVectors,
    threshold: f64,
) -> CorrelationResult {
    let te_embeddings: Vec<Vec<f64>> =
        twitter_events.iter().map(|e| embed_terms(vectors, &e.all_terms())).collect();
    let tt_embeddings: Vec<Vec<f64>> =
        trending.iter().map(|t| embed_terms(vectors, &t.event.all_terms())).collect();

    let mut pairs = Vec::new();
    for (ti, tt) in trending.iter().enumerate() {
        for (ei, te) in twitter_events.iter().enumerate() {
            if !time_ok(&tt.event, te) {
                continue;
            }
            let sim = cosine(&tt_embeddings[ti], &te_embeddings[ei]);
            if sim >= threshold {
                pairs.push(CorrelatedPair { trending_idx: ti, twitter_idx: ei, similarity: sim });
            }
        }
    }
    let matched: std::collections::HashSet<usize> =
        pairs.iter().map(|p| p.twitter_idx).collect();
    let unmatched_twitter =
        (0..twitter_events.len()).filter(|i| !matched.contains(i)).collect();
    CorrelationResult { pairs, unmatched_twitter }
}

/// Reverse correlation: Twitter events → trending news topics. Same
/// constraints, iterated from the Twitter side; §5.8 observes the
/// resulting pair set is identical to the forward direction (our
/// integration tests assert it).
pub fn correlate_reverse(
    trending: &[TrendingTopic],
    twitter_events: &[Event],
    vectors: &WordVectors,
    threshold: f64,
) -> CorrelationResult {
    let te_embeddings: Vec<Vec<f64>> =
        twitter_events.iter().map(|e| embed_terms(vectors, &e.all_terms())).collect();
    let tt_embeddings: Vec<Vec<f64>> =
        trending.iter().map(|t| embed_terms(vectors, &t.event.all_terms())).collect();

    let mut pairs = Vec::new();
    for (ei, te) in twitter_events.iter().enumerate() {
        for (ti, tt) in trending.iter().enumerate() {
            if !time_ok(&tt.event, te) {
                continue;
            }
            let sim = cosine(&te_embeddings[ei], &tt_embeddings[ti]);
            if sim >= threshold {
                pairs.push(CorrelatedPair { trending_idx: ti, twitter_idx: ei, similarity: sim });
            }
        }
    }
    pairs.sort_by_key(|p| (p.trending_idx, p.twitter_idx));
    let matched: std::collections::HashSet<usize> =
        pairs.iter().map(|p| p.twitter_idx).collect();
    let unmatched_twitter =
        (0..twitter_events.len()).filter(|i| !matched.contains(i)).collect();
    CorrelationResult { pairs, unmatched_twitter }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_events::Event;

    fn vectors() -> WordVectors {
        let mut wv = WordVectors::new(3);
        wv.insert("brexit", &[1.0, 0.0, 0.0]);
        wv.insert("vote", &[0.9, 0.1, 0.0]);
        wv.insert("party", &[0.95, 0.05, 0.0]);
        wv.insert("thrones", &[0.0, 0.0, 1.0]);
        wv.insert("episode", &[0.0, 0.1, 0.9]);
        wv
    }

    fn event(main: &str, related: &[&str], start: u64) -> Event {
        Event {
            main_word: main.to_string(),
            related: related.iter().map(|w| (w.to_string(), 0.8)).collect(),
            start,
            end: start + 86_400,
            magnitude: 5.0,
            n_docs: 30,
        }
    }

    fn trending_for(ev: Event) -> TrendingTopic {
        TrendingTopic {
            topic_id: 0,
            keywords: ev.all_terms(),
            event: ev,
            similarity: 0.9,
        }
    }

    #[test]
    fn forward_matches_in_window() {
        let nt = trending_for(event("brexit", &["vote"], 1_000_000));
        let te_close = event("party", &["brexit", "vote"], 1_000_000 + 86_400);
        let te_late = event("party", &["brexit", "vote"], 1_000_000 + 6 * 86_400);
        let te_offtopic = event("thrones", &["episode"], 1_000_000 + 86_400);
        let result = correlate(
            &[nt],
            &[te_close.clone(), te_late, te_offtopic],
            &vectors(),
            0.65,
        );
        assert_eq!(result.pairs.len(), 1);
        assert_eq!(result.pairs[0].twitter_idx, 0);
        // Off-topic and too-late events are unmatched (Table 7 set).
        assert_eq!(result.unmatched_twitter, vec![1, 2]);
    }

    #[test]
    fn twitter_event_before_news_event_rejected() {
        let nt = trending_for(event("brexit", &["vote"], 1_000_000));
        let te_early = event("party", &["brexit"], 1_000_000 - 3_600);
        let result = correlate(&[nt], &[te_early], &vectors(), 0.5);
        assert!(result.pairs.is_empty());
    }

    #[test]
    fn reverse_gives_same_pair_set() {
        let nts = vec![
            trending_for(event("brexit", &["vote"], 1_000_000)),
            trending_for(event("thrones", &["episode"], 1_000_000)),
        ];
        let tes = vec![
            event("party", &["brexit", "vote"], 1_000_000 + 3_600),
            event("episode", &["thrones"], 1_000_000 + 7_200),
        ];
        let fwd = correlate(&nts, &tes, &vectors(), 0.6);
        let rev = correlate_reverse(&nts, &tes, &vectors(), 0.6);
        let f: Vec<(usize, usize)> =
            fwd.pairs.iter().map(|p| (p.trending_idx, p.twitter_idx)).collect();
        let mut r: Vec<(usize, usize)> =
            rev.pairs.iter().map(|p| (p.trending_idx, p.twitter_idx)).collect();
        r.sort_unstable();
        let mut f_sorted = f.clone();
        f_sorted.sort_unstable();
        assert_eq!(f_sorted, r);
    }

    #[test]
    fn one_trending_topic_can_match_multiple_twitter_events() {
        let nt = trending_for(event("brexit", &["vote", "party"], 1_000_000));
        let tes = vec![
            event("vote", &["brexit"], 1_000_000 + 3_600),
            event("party", &["brexit", "vote"], 1_000_000 + 2 * 86_400),
        ];
        let result = correlate(&[nt], &tes, &vectors(), 0.6);
        assert_eq!(result.pairs.len(), 2, "intertwined events (paper §5.8)");
    }

    #[test]
    fn empty_inputs() {
        let result = correlate(&[], &[], &vectors(), 0.65);
        assert!(result.pairs.is_empty());
        assert!(result.unmatched_twitter.is_empty());
    }
}
