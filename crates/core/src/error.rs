//! Pipeline error type.

use std::fmt;

/// Result alias for pipeline operations.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors surfaced by the end-to-end pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// The document store failed.
    Store(nd_store::StoreError),
    /// Linear algebra failed (shape bugs surface here).
    Linalg(nd_linalg::LinalgError),
    /// A pipeline stage received an empty input it cannot work with.
    EmptyInput(&'static str),
    /// A pipeline stage produced no output (e.g. no events detected,
    /// no correlated pairs) where later stages require some.
    NoOutput(&'static str),
    /// The artifact cache or stage graph misbehaved (unknown stage
    /// name, unwritable cache directory, ...). Unreadable cached
    /// artifacts do *not* surface here — they read as cache misses.
    Artifact(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Store(e) => write!(f, "store error: {e}"),
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CoreError::EmptyInput(stage) => write!(f, "{stage}: empty input"),
            CoreError::NoOutput(stage) => write!(f, "{stage}: produced no output"),
            CoreError::Artifact(msg) => write!(f, "artifact cache error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Store(e) => Some(e),
            CoreError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nd_store::StoreError> for CoreError {
    fn from(e: nd_store::StoreError) -> Self {
        CoreError::Store(e)
    }
}

impl From<nd_linalg::LinalgError> for CoreError {
    fn from(e: nd_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::EmptyInput("topic modeling");
        assert!(e.to_string().contains("topic modeling"));
        let e: CoreError = nd_store::StoreError::NotAnObject.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
