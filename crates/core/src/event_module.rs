//! Event Detection module (paper §4.4, §5.3–5.4).
//!
//! Runs MABED twice: over the NewsED corpus with 60-minute time
//! slices (presence anomaly — articles have no mentions) and over the
//! TwitterED corpus with 30-minute slices (mention anomaly, the
//! original MABED formulation). Twitter events with fewer than 10
//! associated tweets are dropped (§4.7).

use nd_events::{AnomalySource, Event, Mabed, MabedConfig, SlicedCorpus, TimestampedDoc};
use nd_store::{ArtifactError, ByteReader, ByteWriter};

/// The event-detection stage's artifact: both MABED passes together.
#[derive(Debug, Clone)]
pub struct DetectedEvents {
    /// Events from the NewsED corpus (60-min slices).
    pub news: Vec<Event>,
    /// Events from the TwitterED corpus (30-min slices, ≥10 docs).
    pub twitter: Vec<Event>,
}

/// Encodes the event-detection artifact.
pub fn encode_events(e: &DetectedEvents, out: &mut ByteWriter) {
    encode_event_list(&e.news, out);
    encode_event_list(&e.twitter, out);
}

/// Decodes the event-detection artifact.
///
/// # Errors
/// Truncated or malformed payloads yield an [`ArtifactError`].
pub fn decode_events(r: &mut ByteReader<'_>) -> Result<DetectedEvents, ArtifactError> {
    Ok(DetectedEvents { news: decode_event_list(r)?, twitter: decode_event_list(r)? })
}

/// Encodes a list of MABED events (shared with the trending artifact).
pub(crate) fn encode_event_list(events: &[Event], out: &mut ByteWriter) {
    out.put_usize(events.len());
    for e in events {
        encode_event(e, out);
    }
}

/// Decodes a list of MABED events.
pub(crate) fn decode_event_list(r: &mut ByteReader<'_>) -> Result<Vec<Event>, ArtifactError> {
    let n = r.len_prefix()?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(decode_event(r)?);
    }
    Ok(events)
}

pub(crate) fn encode_event(e: &Event, out: &mut ByteWriter) {
    out.put_str(&e.main_word);
    out.put_usize(e.related.len());
    for (w, weight) in &e.related {
        out.put_str(w);
        out.put_f64(*weight);
    }
    out.put_u64(e.start);
    out.put_u64(e.end);
    out.put_f64(e.magnitude);
    out.put_usize(e.n_docs);
}

pub(crate) fn decode_event(r: &mut ByteReader<'_>) -> Result<Event, ArtifactError> {
    let main_word = r.str()?;
    let n = r.len_prefix()?;
    let mut related = Vec::with_capacity(n);
    for _ in 0..n {
        related.push((r.str()?, r.f64()?));
    }
    Ok(Event {
        main_word,
        related,
        start: r.u64()?,
        end: r.u64()?,
        magnitude: r.f64()?,
        n_docs: r.usize()?,
    })
}

/// Event-module configuration.
#[derive(Debug, Clone)]
pub struct EventModuleConfig {
    /// Events to extract from the news corpus (paper: top 1000).
    pub n_news_events: usize,
    /// Events to extract from the Twitter corpus (paper: top 5000).
    pub n_twitter_events: usize,
    /// News slice width in seconds (paper: 60 minutes).
    pub news_slice_secs: u64,
    /// Twitter slice width in seconds (paper: 30 minutes).
    pub twitter_slice_secs: u64,
    /// Related-word weight threshold `theta`.
    pub theta: f64,
    /// Minimum documents for a main word.
    pub min_word_docs: u64,
    /// Maximum related words per event.
    pub max_related: usize,
}

impl Default for EventModuleConfig {
    fn default() -> Self {
        EventModuleConfig {
            n_news_events: 20,
            n_twitter_events: 30,
            news_slice_secs: 3600,
            twitter_slice_secs: 1800,
            theta: 0.6,
            min_word_docs: 10,
            max_related: 10,
        }
    }
}

/// Detects news events (60-min slices, presence anomaly).
pub fn detect_news_events(corpus: &[TimestampedDoc], config: &EventModuleConfig) -> Vec<Event> {
    let sliced = SlicedCorpus::build(corpus, config.news_slice_secs);
    Mabed::new(MabedConfig {
        n_events: config.n_news_events,
        max_related: config.max_related,
        theta: config.theta,
        min_word_docs: config.min_word_docs,
        source: AnomalySource::Presence,
        ..Default::default()
    })
    .detect(&sliced)
}

/// Detects Twitter events (30-min slices, mention anomaly), dropping
/// events with fewer than `min_docs` matching tweets (paper §4.7:
/// "an event is considered of interest if there are at least 10
/// records associated to it").
pub fn detect_twitter_events(
    corpus: &[TimestampedDoc],
    config: &EventModuleConfig,
) -> Vec<Event> {
    let sliced = SlicedCorpus::build(corpus, config.twitter_slice_secs);
    let events = Mabed::new(MabedConfig {
        n_events: config.n_twitter_events,
        max_related: config.max_related,
        theta: config.theta,
        min_word_docs: config.min_word_docs,
        source: AnomalySource::Mentions,
        ..Default::default()
    })
    .detect(&sliced);
    events.into_iter().filter(|e| e.n_docs >= 10).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{build_news_ed, build_twitter_ed};
    use nd_synth::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::small())
    }

    #[test]
    fn news_events_detected_around_planted_bursts() {
        let w = world();
        let corpus = build_news_ed(&w.articles);
        let events = detect_news_events(&corpus, &EventModuleConfig::default());
        assert!(!events.is_empty(), "no news events detected");

        // The strongest event's main word should belong to some
        // planted news topic's pool.
        let pools: Vec<&[&str]> = w.topics.iter().map(|t| t.keywords).collect();
        let top = &events[0];
        assert!(
            pools.iter().any(|p| p.contains(&top.main_word.as_str())),
            "main word {} not in any planted pool",
            top.main_word
        );
    }

    #[test]
    fn twitter_events_detected_with_min_docs() {
        let w = world();
        let corpus = build_twitter_ed(&w.tweets);
        let events = detect_twitter_events(&corpus, &EventModuleConfig::default());
        assert!(!events.is_empty(), "no twitter events detected");
        for e in &events {
            assert!(e.n_docs >= 10, "event {} has only {} docs", e.main_word, e.n_docs);
        }
    }

    #[test]
    fn event_periods_overlap_ground_truth() {
        let w = world();
        let corpus = build_news_ed(&w.articles);
        let events = detect_news_events(&corpus, &EventModuleConfig::default());
        // The top event should overlap a planted window for a topic
        // containing its main word.
        let top = &events[0];
        let topic_idx = w
            .topics
            .iter()
            .position(|t| t.keywords.contains(&top.main_word.as_str()))
            .expect("main word belongs to a planted topic");
        let overlaps = w.events.iter().any(|g| {
            g.topic == topic_idx && g.start < top.end && top.start < g.end
        });
        assert!(overlaps, "top event period matches no planted burst");
    }
}
