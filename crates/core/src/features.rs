//! Feature Creation module (paper §4.7).
//!
//! * Tweets are assigned to the Twitter events detected by the
//!   correlation module with the paper's rule: posted inside the event
//!   period, containing the main word and ≥ 20% of the related words;
//!   events keep ≥ 10 tweets.
//! * Each `(event, tweet)` pair is embedded by averaging pretrained
//!   word vectors over the tweet's terms *present in the event
//!   vocabulary* (main + related terms), under one of the three
//!   strategies SW / RND / SWM.
//! * The metadata vector (size 8) holds a 7-dimension one-hot encoding
//!   of the author's follower magnitude (the "influencer" signal) and
//!   one element for the day of the week.
//! * Labels are the Table 2 buckets of likes and retweets.
//!
//! The eight dataset variants of §5.6 (A1–D2) come out of
//! [`DatasetVariant`] × [`build_dataset`].

use nd_embed::{doc_embedding, AverageStrategy, WordVectors};
use nd_events::Event;
use nd_linalg::Mat;
use nd_store::{ArtifactError, ByteReader, ByteWriter};
use nd_synth::{bucket_count, day_of_week, Tweet};
use std::collections::{HashMap, HashSet};

/// Fraction of related words a tweet must contain (paper: 20%).
pub const RELATED_FRACTION: f64 = 0.2;
/// Minimum tweets for an event to be "of interest" (paper: 10).
pub const MIN_EVENT_TWEETS: usize = 10;

/// Tweets assigned to one Twitter event.
#[derive(Debug, Clone)]
pub struct EventAssignment {
    /// Index into the Twitter-event list.
    pub event_idx: usize,
    /// Indices into the tweet corpus.
    pub tweet_indices: Vec<usize>,
}

/// Assigns tweets to events with the paper's membership rule.
/// `tweet_tokens` must align with `tweets` (the TwitterED token
/// streams — pass the corpus docs directly, no token copies needed).
/// Events with fewer than [`MIN_EVENT_TWEETS`] matches are dropped.
pub fn assign_tweets<T: AsRef<[String]>>(
    events: &[Event],
    tweets: &[Tweet],
    tweet_tokens: &[T],
) -> Vec<EventAssignment> {
    debug_assert_eq!(tweets.len(), tweet_tokens.len());
    let mut out = Vec::new();
    for (event_idx, event) in events.iter().enumerate() {
        let tweet_indices: Vec<usize> = tweets
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                event.matches_document(t.timestamp, tweet_tokens[*i].as_ref(), RELATED_FRACTION)
            })
            .map(|(i, _)| i)
            .collect();
        if tweet_indices.len() >= MIN_EVENT_TWEETS {
            out.push(EventAssignment { event_idx, tweet_indices });
        }
    }
    out
}

/// Encodes the feature-creation artifact (event→tweet assignments).
pub fn encode_assignments(assignments: &[EventAssignment], out: &mut ByteWriter) {
    out.put_usize(assignments.len());
    for a in assignments {
        out.put_usize(a.event_idx);
        out.put_usize(a.tweet_indices.len());
        for &i in &a.tweet_indices {
            out.put_usize(i);
        }
    }
}

/// Decodes the feature-creation artifact.
///
/// # Errors
/// Truncated or malformed payloads yield an [`ArtifactError`].
pub fn decode_assignments(
    r: &mut ByteReader<'_>,
) -> Result<Vec<EventAssignment>, ArtifactError> {
    let n = r.len_prefix()?;
    let mut assignments = Vec::with_capacity(n);
    for _ in 0..n {
        let event_idx = r.usize()?;
        let m = r.len_prefix()?;
        let mut tweet_indices = Vec::with_capacity(m);
        for _ in 0..m {
            tweet_indices.push(r.usize()?);
        }
        assignments.push(EventAssignment { event_idx, tweet_indices });
    }
    Ok(assignments)
}

/// Size of the metadata vector (7-d follower one-hot + day of week).
pub const METADATA_DIM: usize = 8;

/// Follower-magnitude bin (7 bins by decimal order of magnitude).
pub fn follower_bin(followers: u64) -> usize {
    match followers {
        0..=9 => 0,
        10..=99 => 1,
        100..=999 => 2,
        1_000..=9_999 => 3,
        10_000..=99_999 => 4,
        100_000..=999_999 => 5,
        _ => 6,
    }
}

/// Builds the 8-dimension metadata vector of §5.6: one-hot follower
/// magnitude (the influencer signal) plus the normalized day of week.
pub fn metadata_vector(followers: u64, timestamp: u64) -> [f64; METADATA_DIM] {
    let mut v = [0.0; METADATA_DIM];
    v[follower_bin(followers)] = 1.0;
    v[7] = day_of_week(timestamp) as f64 / 6.0;
    v
}

/// The eight dataset variants of §5.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetVariant {
    /// SW_Doc2Vec only.
    A1,
    /// SW_Doc2Vec + metadata.
    A2,
    /// RND_Doc2Vec only.
    B1,
    /// RND_Doc2Vec + metadata.
    B2,
    /// SWM_Doc2Vec only.
    C1,
    /// SWM_Doc2Vec + metadata.
    C2,
    /// SW_Doc2Vec only (the D baseline).
    D1,
    /// SW_Doc2Vec + metadata + raw follower count.
    D2,
}

impl DatasetVariant {
    /// All variants, in the paper's table order.
    pub const ALL: [DatasetVariant; 8] = [
        DatasetVariant::A1,
        DatasetVariant::A2,
        DatasetVariant::B1,
        DatasetVariant::B2,
        DatasetVariant::C1,
        DatasetVariant::C2,
        DatasetVariant::D1,
        DatasetVariant::D2,
    ];

    /// Paper label.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetVariant::A1 => "A1",
            DatasetVariant::A2 => "A2",
            DatasetVariant::B1 => "B1",
            DatasetVariant::B2 => "B2",
            DatasetVariant::C1 => "C1",
            DatasetVariant::C2 => "C2",
            DatasetVariant::D1 => "D1",
            DatasetVariant::D2 => "D2",
        }
    }

    /// Embedding strategy.
    pub fn strategy(&self) -> AverageStrategy {
        match self {
            DatasetVariant::A1 | DatasetVariant::A2 | DatasetVariant::D1 | DatasetVariant::D2 => {
                AverageStrategy::SkipWords
            }
            DatasetVariant::B1 | DatasetVariant::B2 => AverageStrategy::RandomForMissing,
            DatasetVariant::C1 | DatasetVariant::C2 => AverageStrategy::ScaledByMagnitude,
        }
    }

    /// Whether the metadata vector is concatenated.
    pub fn with_metadata(&self) -> bool {
        matches!(
            self,
            DatasetVariant::A2 | DatasetVariant::B2 | DatasetVariant::C2 | DatasetVariant::D2
        )
    }

    /// Whether the raw follower-count feature is appended (D2 only).
    pub fn with_follower_count(&self) -> bool {
        matches!(self, DatasetVariant::D2)
    }

    /// Feature dimensionality for a given embedding size.
    pub fn dim(&self, embedding_dim: usize) -> usize {
        embedding_dim
            + if self.with_metadata() { METADATA_DIM } else { 0 }
            + if self.with_follower_count() { 1 } else { 0 }
    }
}

/// A training dataset: features plus both label sets.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Variant label (A1…D2).
    pub name: &'static str,
    /// Feature matrix (`rows` = event-tweet pairs).
    pub x: Mat,
    /// Table 2 likes buckets.
    pub y_likes: Vec<usize>,
    /// Table 2 retweets buckets.
    pub y_retweets: Vec<usize>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }
}

/// Builds one dataset variant from the event assignments.
///
/// A tweet belonging to several events contributes one sample per
/// event ("as some tweets can belong to multiple events, the size of
/// the Twitter dataset increases" — §5.6).
pub fn build_dataset<T: AsRef<[String]>>(
    variant: DatasetVariant,
    events: &[Event],
    assignments: &[EventAssignment],
    tweets: &[Tweet],
    tweet_tokens: &[T],
    vectors: &WordVectors,
    seed: u64,
) -> Dataset {
    let emb_dim = vectors.dim();
    let dim = variant.dim(emb_dim);
    let n_samples: usize = assignments.iter().map(|a| a.tweet_indices.len()).sum();
    let mut x = Mat::zeros(n_samples, dim);
    let mut y_likes = Vec::with_capacity(n_samples);
    let mut y_retweets = Vec::with_capacity(n_samples);

    let mut row = 0usize;
    for assignment in assignments {
        let event = &events[assignment.event_idx];
        let vocab: HashSet<&str> = event.all_terms_set();
        // SWM magnitudes: related-word weights; main word = 1.
        let mut magnitudes: HashMap<String, f64> = HashMap::new();
        magnitudes.insert(event.main_word.clone(), 1.0);
        for (w, weight) in &event.related {
            magnitudes.insert(w.clone(), *weight);
        }

        for &ti in &assignment.tweet_indices {
            let tweet = &tweets[ti];
            // Restrict the tweet to the event vocabulary (§4.7).
            let tokens: Vec<String> = tweet_tokens[ti]
                .as_ref()
                .iter()
                .filter(|t| vocab.contains(t.as_str()))
                .cloned()
                .collect();
            let emb = doc_embedding(vectors, &tokens, variant.strategy(), &magnitudes, seed);
            let out = x.row_mut(row);
            out[..emb_dim].copy_from_slice(&emb);
            let mut offset = emb_dim;
            if variant.with_metadata() {
                let meta = metadata_vector(tweet.author_followers, tweet.timestamp);
                out[offset..offset + METADATA_DIM].copy_from_slice(&meta);
                offset += METADATA_DIM;
            }
            if variant.with_follower_count() {
                // log-scaled raw follower count, normalized to ~[0, 1].
                out[offset] = ((tweet.author_followers as f64 + 1.0).log10() / 7.0).min(1.0);
            }
            y_likes.push(bucket_count(tweet.likes) as usize);
            y_retweets.push(bucket_count(tweet.retweets) as usize);
            row += 1;
        }
    }

    Dataset { name: variant.name(), x, y_likes, y_retweets }
}

/// Extension trait: the event vocabulary as a set (main + related).
trait EventVocab {
    fn all_terms_set(&self) -> HashSet<&str>;
}

impl EventVocab for Event {
    fn all_terms_set(&self) -> HashSet<&str> {
        let mut s: HashSet<&str> =
            self.related.iter().map(|(w, _)| w.as_str()).collect();
        s.insert(self.main_word.as_str());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_embed::WordVectors;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    fn event() -> Event {
        Event {
            main_word: "brexit".into(),
            related: vec![
                ("vote".into(), 0.9),
                ("party".into(), 0.8),
                ("poll".into(), 0.7),
                ("seat".into(), 0.7),
                ("leader".into(), 0.65),
            ],
            start: 1_000,
            end: 100_000,
            magnitude: 12.0,
            n_docs: 40,
        }
    }

    fn tweet(id: u64, ts: u64, followers: u64, likes: u64, retweets: u64) -> Tweet {
        Tweet {
            id,
            timestamp: ts,
            author_id: id as u32,
            author_handle: format!("u{id}"),
            author_followers: followers,
            text: String::new(),
            likes,
            retweets,
            gt_topic: 0,
            gt_virality: 0.5,
        }
    }

    fn vectors() -> WordVectors {
        let mut wv = WordVectors::new(4);
        for (i, w) in ["brexit", "vote", "party", "poll"].iter().enumerate() {
            let mut v = vec![0.0; 4];
            v[i] = 1.0;
            wv.insert(*w, &v);
        }
        wv
    }

    #[test]
    fn assignment_respects_membership_rule() {
        let events = vec![event()];
        // 12 matching tweets, 1 out-of-window, 1 missing main word.
        let mut tweets = Vec::new();
        let mut tokens = Vec::new();
        for i in 0..12 {
            tweets.push(tweet(i, 5_000 + i, 50, 10, 5));
            tokens.push(toks(&["brexit", "vote", "noise"]));
        }
        tweets.push(tweet(100, 500_000, 50, 10, 5));
        tokens.push(toks(&["brexit", "vote"]));
        tweets.push(tweet(101, 5_000, 50, 10, 5));
        tokens.push(toks(&["vote", "party"]));

        let assignments = assign_tweets(&events, &tweets, &tokens);
        assert_eq!(assignments.len(), 1);
        assert_eq!(assignments[0].tweet_indices.len(), 12);
    }

    #[test]
    fn small_events_dropped() {
        let events = vec![event()];
        let tweets: Vec<Tweet> = (0..5).map(|i| tweet(i, 5_000, 50, 1, 1)).collect();
        let tokens: Vec<Vec<String>> =
            (0..5).map(|_| toks(&["brexit", "vote"])).collect();
        assert!(assign_tweets(&events, &tweets, &tokens).is_empty());
    }

    #[test]
    fn metadata_vector_layout() {
        // 2019-05-04 is a Saturday (weekday 5).
        let sat = nd_synth::time::MAY_2019 + 3 * nd_synth::time::DAY;
        let v = metadata_vector(5_000, sat);
        assert_eq!(v.len(), 8);
        assert_eq!(v[follower_bin(5_000)], 1.0);
        assert_eq!(v.iter().take(7).sum::<f64>(), 1.0, "one-hot");
        assert!((v[7] - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn follower_bins() {
        assert_eq!(follower_bin(0), 0);
        assert_eq!(follower_bin(99), 1);
        assert_eq!(follower_bin(100), 2);
        assert_eq!(follower_bin(9_999), 3);
        assert_eq!(follower_bin(1_000_000), 6);
    }

    #[test]
    fn variant_dimensions() {
        assert_eq!(DatasetVariant::A1.dim(300), 300);
        assert_eq!(DatasetVariant::A2.dim(300), 308);
        assert_eq!(DatasetVariant::D2.dim(300), 309);
        assert!(!DatasetVariant::C1.with_metadata());
        assert!(DatasetVariant::C2.with_metadata());
        assert_eq!(DatasetVariant::B1.strategy(), nd_embed::AverageStrategy::RandomForMissing);
    }

    #[test]
    fn dataset_built_with_labels_and_features() {
        let events = vec![event()];
        let tweets: Vec<Tweet> =
            (0..12).map(|i| tweet(i, 5_000, if i % 2 == 0 { 50 } else { 5_000 }, 500, 5)).collect();
        let tokens: Vec<Vec<String>> =
            (0..12).map(|_| toks(&["brexit", "vote", "offvocab"])).collect();
        let assignments = assign_tweets(&events, &tweets, &tokens);
        let ds = build_dataset(
            DatasetVariant::A2,
            &events,
            &assignments,
            &tweets,
            &tokens,
            &vectors(),
            0,
        );
        assert_eq!(ds.len(), 12);
        assert_eq!(ds.x.cols(), 4 + 8);
        assert!(ds.y_likes.iter().all(|&y| y == 1), "500 likes -> bucket 1");
        assert!(ds.y_retweets.iter().all(|&y| y == 0), "5 retweets -> bucket 0");
        // Embedding half: average of brexit+vote = [0.5, 0.5, 0, 0].
        assert!((ds.x.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((ds.x.get(0, 1) - 0.5).abs() < 1e-12);
        // Metadata half: follower one-hot differs between rows.
        assert_ne!(ds.x.row(0)[4..11], ds.x.row(1)[4..11]);
    }

    #[test]
    fn swm_scales_by_event_weights() {
        let events = vec![event()];
        let tweets: Vec<Tweet> = (0..10).map(|i| tweet(i, 5_000, 50, 10, 5)).collect();
        let tokens: Vec<Vec<String>> = (0..10).map(|_| toks(&["brexit", "vote"])).collect();
        let assignments = assign_tweets(&events, &tweets, &tokens);
        let sw = build_dataset(
            DatasetVariant::A1,
            &events,
            &assignments,
            &tweets,
            &tokens,
            &vectors(),
            0,
        );
        let swm = build_dataset(
            DatasetVariant::C1,
            &events,
            &assignments,
            &tweets,
            &tokens,
            &vectors(),
            0,
        );
        // SW: avg(1, 1)/2 = 0.5 per hot dim. SWM: brexit×1, vote×0.9.
        assert!((sw.x.get(0, 1) - 0.5).abs() < 1e-12);
        assert!((swm.x.get(0, 1) - 0.45).abs() < 1e-12);
        assert!((swm.x.get(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tweet_in_two_events_duplicated() {
        let mut e2 = event();
        e2.main_word = "vote".into();
        e2.related = vec![("brexit".into(), 0.9)];
        let events = vec![event(), e2];
        let tweets: Vec<Tweet> = (0..12).map(|i| tweet(i, 5_000, 50, 10, 5)).collect();
        let tokens: Vec<Vec<String>> = (0..12).map(|_| toks(&["brexit", "vote"])).collect();
        let assignments = assign_tweets(&events, &tweets, &tokens);
        assert_eq!(assignments.len(), 2);
        let ds = build_dataset(
            DatasetVariant::A1,
            &events,
            &assignments,
            &tweets,
            &tokens,
            &vectors(),
            0,
        );
        assert_eq!(ds.len(), 24, "dataset grows when tweets belong to multiple events");
    }
}
