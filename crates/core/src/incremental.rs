//! Streaming ingestion & incremental recompute (DESIGN.md §17).
//!
//! The batch pipeline of [`crate::pipeline`] consumes one fully
//! generated world. This module replaces that single shot with a
//! *fold over time slices*: `nd-synth`'s [`Firehose`] emits slice
//! `k`'s articles and tweets on demand, and each stage of a six-node
//! stream DAG consumes `(its own artifact at slice k − 1, upstream
//! artifacts at slice k)` and produces its artifact at slice `k`.
//!
//! ## Canonical semantics: the fold *is* the pipeline
//!
//! The stream pipeline's ground truth is the sequential left fold
//! from the empty state over slices `0..n`. Every fold step is a
//! deterministic pure function of `(slice index, previous artifact,
//! upstream artifacts)`, and every artifact serializes bit-exactly
//! (`f64::to_bits` throughout), so:
//!
//! * replaying slices `0..k` from cache and folding slice `k` live is
//!   **bit-identical** to folding all of `0..=k` cold — the cached
//!   prefix decodes to exactly the bytes the cold fold would have
//!   produced in memory;
//! * the digest of the head state ([`StreamState::content_digest`])
//!   is invariant to which prefix came from disk and to
//!   `NEWSDIFF_THREADS`.
//!
//! ## Per-slice fingerprint chaining
//!
//! A stage's cache key at slice `k` chains, via
//! [`chain_fingerprint`]: the stream format version, the stage name
//! hash, its code version, its config fingerprint, the slice
//! fingerprint (firehose config + index + bounds), its **own
//! fingerprint at slice `k − 1`** (0 at the origin), and its
//! dependencies' fingerprints at slice `k`. The chain is pure
//! metadata — computable without reading any payload — so a fully
//! warm run loads only the head-slice artifacts (six decodes, zero
//! folds), and invalidating anything at slice `j` transitively
//! re-keys every `(stage, k ≥ j)` in its cone.
//!
//! ## Healing
//!
//! The executor materializes artifacts demand-first: probe the cache
//! at `(stage, k)`; on any defect (missing file, torn frame, codec
//! drift) recurse to `(stage, k − 1)` and the slice-`k` dependencies,
//! poll slice `k` lazily, fold, and re-save. A corrupted artifact
//! therefore costs exactly the recomputation of its cone — nothing
//! upstream or on unrelated slices re-executes.

use crate::error::{CoreError, Result};
use crate::event_module::{decode_events, encode_events, DetectedEvents, EventModuleConfig};
use crate::pipeline::CacheStatus;
use crate::preprocess::{
    build_news_ed, build_news_tm, build_twitter_ed, decode_corpora, decode_timestamped,
    encode_corpora, encode_timestamped, Corpora,
};
use crate::stage::debug_fingerprint;
use crate::topic_module::{decode_topics, encode_topics, NewsTopics, TopicModuleConfig};
use nd_embed::{Word2Vec, Word2VecConfig, WordVectors};
use nd_events::{AnomalySource, Mabed, MabedConfig, SlidingWindow};
use nd_store::{
    chain_fingerprint, fnv1a64, ArtifactError, ArtifactStore, ByteReader, ByteWriter,
};
use nd_synth::{
    decode_articles, decode_tweets, encode_articles, encode_tweets, Firehose, FirehoseConfig,
    NewsArticle, TimeSlice, Tweet,
};
use nd_topics::{Nmf, NmfConfig, WarmStart};
use nd_vectorize::{IncrementalDtm, Weighting};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

/// Bumped when the stream artifact framing or the chained fingerprint
/// recipe changes; invalidates every cached slice artifact at once.
pub const STREAM_FORMAT_VERSION: u64 = 1;

/// Full streaming-pipeline configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The firehose: world parameters plus the slice width.
    pub firehose: FirehoseConfig,
    /// Topic-modeling parameters (`max_iter` applies to the cold
    /// origin fold; later folds warm-start and use `refine_iters`).
    pub topic: TopicModuleConfig,
    /// NMF iterations per warm-started fold.
    pub refine_iters: usize,
    /// Event-detection parameters (slice widths, thresholds).
    pub event: EventModuleConfig,
    /// MABED detection horizon, in stream slices: documents older
    /// than `window_slices * slice_hours` are evicted before
    /// detection.
    pub window_slices: u64,
    /// Streaming embedding dimensionality.
    pub embed_dim: usize,
    /// Word2Vec epochs per fold.
    pub embed_epochs: usize,
    /// Artifact-cache directory (`None` disables caching; every fold
    /// recomputes in memory). Excluded from fingerprints.
    pub cache_dir: Option<PathBuf>,
    /// Recompute every fold even on a cache hit; results still
    /// overwrite the cache. Excluded from fingerprints.
    pub force: bool,
}

impl StreamConfig {
    /// A scaled-down stream for tests and benches: the small world in
    /// 48-hour slices, warm folds refining for a fraction of the cold
    /// iteration budget.
    pub fn small() -> Self {
        StreamConfig {
            firehose: FirehoseConfig::small(),
            topic: TopicModuleConfig { n_topics: 10, max_iter: 120, ..Default::default() },
            refine_iters: 30,
            event: EventModuleConfig::default(),
            window_slices: 4,
            embed_dim: 16,
            embed_epochs: 2,
            cache_dir: None,
            force: false,
        }
    }

    /// Enables the artifact cache under `dir`.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }
}

/// The collect stage's fold state: everything the firehose has
/// emitted so far, plus per-slice bookkeeping. The paper's "Storage"
/// box, grown one slice at a time.
#[derive(Debug, Clone, Default)]
pub struct StreamWorld {
    /// One record per folded slice, in slice order.
    pub slices: Vec<SliceMeta>,
    /// All articles so far, slice-major then timestamp-sorted.
    pub articles: Vec<NewsArticle>,
    /// All tweets so far, slice-major then timestamp-sorted.
    pub tweets: Vec<Tweet>,
}

/// Bookkeeping for one folded slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceMeta {
    /// Slice index within the horizon.
    pub index: usize,
    /// Slice start (unix seconds, inclusive).
    pub start: u64,
    /// Slice end (unix seconds, exclusive).
    pub end: u64,
    /// Articles the slice contributed.
    pub n_articles: usize,
    /// Tweets the slice contributed.
    pub n_tweets: usize,
}

/// The event stage's fold state: both MABED sliding windows plus the
/// latest detection over them. The windows count their own history
/// (`evicted + buffered = documents consumed`), so the fold knows how
/// far into the upstream corpora it has read without extra counters.
#[derive(Debug, Clone)]
pub struct StreamEvents {
    /// NewsED documents inside the detection horizon.
    pub news_window: SlidingWindow,
    /// TwitterED documents inside the detection horizon.
    pub twitter_window: SlidingWindow,
    /// Events detected over the current windows. Unlike the batch
    /// stage, empty detections are *not* errors: early slices may
    /// legitimately contain no burst.
    pub events: DetectedEvents,
}

/// The embedding stage's fold state: the continuously trained
/// vectors plus high-water marks into the upstream corpora.
#[derive(Debug, Clone)]
pub struct StreamVectors {
    /// The streaming word vectors.
    pub vectors: WordVectors,
    /// NewsTM documents consumed so far.
    pub seen_news: usize,
    /// TwitterED documents consumed so far.
    pub seen_twitter: usize,
}

/// One artifact of the stream DAG — the output of exactly one fold
/// stage at one slice.
#[derive(Debug, Clone)]
pub enum StreamArtifact {
    /// `stream-collect`: the accumulated world.
    World(StreamWorld),
    /// `stream-preprocess`: the accumulated three corpora.
    Corpora(Corpora),
    /// `stream-vectorize`: the incremental document-term matrix.
    Dtm(IncrementalDtm),
    /// `stream-topics`: the warm-started NMF topics.
    Topics(NewsTopics),
    /// `stream-events`: sliding windows + current detections.
    Events(StreamEvents),
    /// `stream-embed`: continuously trained word vectors.
    Vectors(StreamVectors),
}

macro_rules! stream_accessors {
    ($($as:ident, $into:ident, $variant:ident => $ty:ty;)*) => {
        $(
            /// Borrows the typed artifact, erroring on a foreign variant.
            ///
            /// # Errors
            /// [`CoreError::Artifact`] when the variant mismatches.
            pub fn $as(&self) -> Result<&$ty> {
                match self {
                    StreamArtifact::$variant(v) => Ok(v),
                    _ => Err(CoreError::Artifact(format!(
                        "stream artifact is not `{}`", stringify!($variant)
                    ))),
                }
            }

            /// Unwraps the typed artifact, erroring on a foreign variant.
            ///
            /// # Errors
            /// [`CoreError::Artifact`] when the variant mismatches.
            pub fn $into(self) -> Result<$ty> {
                match self {
                    StreamArtifact::$variant(v) => Ok(v),
                    _ => Err(CoreError::Artifact(format!(
                        "stream artifact is not `{}`", stringify!($variant)
                    ))),
                }
            }
        )*
    };
}

impl StreamArtifact {
    stream_accessors! {
        as_world, into_world, World => StreamWorld;
        as_corpora, into_corpora, Corpora => Corpora;
        as_dtm, into_dtm, Dtm => IncrementalDtm;
        as_topics, into_topics, Topics => NewsTopics;
        as_events, into_events, Events => StreamEvents;
        as_vectors, into_vectors, Vectors => StreamVectors;
    }
}

/// One node of the stream DAG: a named fold step with chained
/// fingerprints and a bit-exact codec.
pub trait FoldStage: Sync {
    /// Stable stage name — the artifact id is `{name}@{slice}`.
    fn name(&self) -> &'static str;

    /// Upstream stream-stage names, in fingerprint order.
    fn deps(&self) -> &'static [&'static str];

    /// Bumped by hand when the fold body's semantics change.
    fn code_version(&self) -> u64;

    /// Fingerprint of the slice of [`StreamConfig`] this stage reads.
    /// Cache-control knobs must not contribute.
    fn config_fingerprint(&self, config: &StreamConfig) -> u64;

    /// Consumes `(previous own artifact, upstream artifacts at this
    /// slice, the new slice)` and produces the artifact at this
    /// slice. `prev` is `None` exactly at slice 0.
    ///
    /// # Errors
    /// Stage-specific [`CoreError`]s.
    fn fold(
        &self,
        config: &StreamConfig,
        prev: Option<&StreamArtifact>,
        ups: &[&StreamArtifact],
        slice: &TimeSlice,
    ) -> Result<StreamArtifact>;

    /// Serializes the stage's artifact bit-exactly.
    ///
    /// # Errors
    /// [`CoreError::Artifact`] when handed a foreign variant.
    fn encode(&self, value: &StreamArtifact, out: &mut ByteWriter) -> Result<()>;

    /// Deserializes the stage's artifact. Any error reads as a cache
    /// miss upstream.
    ///
    /// # Errors
    /// [`ArtifactError`] on truncation or structural drift.
    fn decode(&self, r: &mut ByteReader<'_>)
        -> std::result::Result<StreamArtifact, ArtifactError>;
}

/// The chained per-slice cache key (see the module docs). Pure
/// metadata: no artifact payload contributes.
pub fn slice_fingerprint(
    stage: &dyn FoldStage,
    config: &StreamConfig,
    slice_fp: u64,
    prev_fp: u64,
    dep_fps: &[u64],
) -> u64 {
    let mut words = vec![
        STREAM_FORMAT_VERSION,
        fnv1a64(stage.name().as_bytes()),
        stage.code_version(),
        stage.config_fingerprint(config),
        slice_fp,
        prev_fp,
    ];
    words.extend_from_slice(dep_fps);
    chain_fingerprint(&words)
}

fn wrong_stream_variant(stage: &'static str) -> CoreError {
    CoreError::Artifact(format!("stream stage `{stage}` handed a foreign artifact variant"))
}

// ---------------------------------------------------------------- collect

/// Stream stage 1 — firehose ingestion into accumulated storage.
#[derive(Debug, Clone, Copy)]
pub struct StreamCollectStage;

/// Static instance backing [`crate::stage::Stage::incremental`].
pub static STREAM_COLLECT: StreamCollectStage = StreamCollectStage;

fn encode_stream_world(w: &StreamWorld, out: &mut ByteWriter) {
    out.put_usize(w.slices.len());
    for m in &w.slices {
        out.put_usize(m.index);
        out.put_u64(m.start);
        out.put_u64(m.end);
        out.put_usize(m.n_articles);
        out.put_usize(m.n_tweets);
    }
    encode_articles(&w.articles, out);
    encode_tweets(&w.tweets, out);
}

fn decode_stream_world(r: &mut ByteReader<'_>) -> std::result::Result<StreamWorld, ArtifactError> {
    let n = r.len_prefix()?;
    let mut slices = Vec::with_capacity(n);
    for _ in 0..n {
        slices.push(SliceMeta {
            index: r.usize()?,
            start: r.u64()?,
            end: r.u64()?,
            n_articles: r.usize()?,
            n_tweets: r.usize()?,
        });
    }
    Ok(StreamWorld { slices, articles: decode_articles(r)?, tweets: decode_tweets(r)? })
}

impl FoldStage for StreamCollectStage {
    fn name(&self) -> &'static str {
        "stream-collect"
    }
    fn deps(&self) -> &'static [&'static str] {
        &[]
    }
    fn code_version(&self) -> u64 {
        1
    }
    fn config_fingerprint(&self, config: &StreamConfig) -> u64 {
        config.firehose.fingerprint()
    }
    fn fold(
        &self,
        _config: &StreamConfig,
        prev: Option<&StreamArtifact>,
        _ups: &[&StreamArtifact],
        slice: &TimeSlice,
    ) -> Result<StreamArtifact> {
        let mut world = match prev {
            Some(p) => p.as_world()?.clone(),
            None => StreamWorld::default(),
        };
        world.slices.push(SliceMeta {
            index: slice.index,
            start: slice.start,
            end: slice.end,
            n_articles: slice.articles.len(),
            n_tweets: slice.tweets.len(),
        });
        world.articles.extend(slice.articles.iter().cloned());
        world.tweets.extend(slice.tweets.iter().cloned());
        Ok(StreamArtifact::World(world))
    }
    fn encode(&self, value: &StreamArtifact, out: &mut ByteWriter) -> Result<()> {
        match value {
            StreamArtifact::World(w) => {
                encode_stream_world(w, out);
                Ok(())
            }
            _ => Err(wrong_stream_variant(self.name())),
        }
    }
    fn decode(
        &self,
        r: &mut ByteReader<'_>,
    ) -> std::result::Result<StreamArtifact, ArtifactError> {
        decode_stream_world(r).map(StreamArtifact::World)
    }
}

// ------------------------------------------------------------- preprocess

/// Stream stage 2 — incremental preprocessing: only documents the
/// corpora have not yet seen run through the text pipelines.
#[derive(Debug, Clone, Copy)]
pub struct StreamPreprocessStage;

/// Static instance backing [`crate::stage::Stage::incremental`].
pub static STREAM_PREPROCESS: StreamPreprocessStage = StreamPreprocessStage;

impl FoldStage for StreamPreprocessStage {
    fn name(&self) -> &'static str {
        "stream-preprocess"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["stream-collect"]
    }
    fn code_version(&self) -> u64 {
        1
    }
    fn config_fingerprint(&self, _config: &StreamConfig) -> u64 {
        0
    }
    fn fold(
        &self,
        _config: &StreamConfig,
        prev: Option<&StreamArtifact>,
        ups: &[&StreamArtifact],
        _slice: &TimeSlice,
    ) -> Result<StreamArtifact> {
        let world = ups[0].as_world()?;
        let mut corpora = match prev {
            Some(p) => p.as_corpora()?.clone(),
            None => Corpora { news_tm: Vec::new(), news_ed: Vec::new(), twitter_ed: Vec::new() },
        };
        let new_articles = &world.articles[corpora.news_tm.len()..];
        let new_tweets = &world.tweets[corpora.twitter_ed.len()..];
        corpora.news_tm.extend(build_news_tm(new_articles));
        corpora.news_ed.extend(build_news_ed(new_articles));
        corpora.twitter_ed.extend(build_twitter_ed(new_tweets));
        Ok(StreamArtifact::Corpora(corpora))
    }
    fn encode(&self, value: &StreamArtifact, out: &mut ByteWriter) -> Result<()> {
        match value {
            StreamArtifact::Corpora(c) => {
                encode_corpora(c, out);
                Ok(())
            }
            _ => Err(wrong_stream_variant(self.name())),
        }
    }
    fn decode(
        &self,
        r: &mut ByteReader<'_>,
    ) -> std::result::Result<StreamArtifact, ArtifactError> {
        decode_corpora(r).map(StreamArtifact::Corpora)
    }
}

// -------------------------------------------------------------- vectorize

/// Stream stage 3 — the incremental TF-IDF matrix: vocabulary grows
/// append-only (term ids stay stable), document frequencies fold in,
/// and the cached IDF vector is maintained touched-terms-only.
#[derive(Debug, Clone, Copy)]
pub struct StreamVectorizeStage;

/// Static instance backing the stream DAG.
pub static STREAM_VECTORIZE: StreamVectorizeStage = StreamVectorizeStage;

fn weighting_tag(w: Weighting) -> u8 {
    match w {
        Weighting::Tf => 0,
        Weighting::Binary => 1,
        Weighting::LogTf => 2,
        Weighting::TfIdf => 3,
        Weighting::TfIdfNormalized => 4,
    }
}

fn weighting_from_tag(tag: u8) -> std::result::Result<Weighting, ArtifactError> {
    Ok(match tag {
        0 => Weighting::Tf,
        1 => Weighting::Binary,
        2 => Weighting::LogTf,
        3 => Weighting::TfIdf,
        4 => Weighting::TfIdfNormalized,
        _ => return Err(ArtifactError::Malformed("unknown weighting scheme tag")),
    })
}

fn encode_dtm(dtm: &IncrementalDtm, out: &mut ByteWriter) {
    let (scheme, terms, df, idf, rows) = dtm.parts();
    out.put_u8(weighting_tag(scheme));
    out.put_usize(terms.len());
    for t in &terms {
        out.put_str(t);
    }
    out.put_usize(df.len());
    for &d in df {
        out.put_usize(d);
    }
    out.put_f64_slice(idf);
    out.put_usize(rows.len());
    for row in rows {
        out.put_usize(row.len());
        for &(id, v) in row {
            out.put_usize(id);
            out.put_f64(v);
        }
    }
}

fn decode_dtm(r: &mut ByteReader<'_>) -> std::result::Result<IncrementalDtm, ArtifactError> {
    let scheme = weighting_from_tag(r.u8()?)?;
    let n_terms = r.len_prefix()?;
    let mut terms = Vec::with_capacity(n_terms);
    for _ in 0..n_terms {
        terms.push(r.str()?);
    }
    let n_df = r.len_prefix()?;
    if n_df != n_terms {
        return Err(ArtifactError::Malformed("df length mismatches vocabulary"));
    }
    let mut df = Vec::with_capacity(n_df);
    for _ in 0..n_df {
        df.push(r.usize()?);
    }
    let idf = r.f64_vec()?;
    if idf.len() != n_terms {
        return Err(ArtifactError::Malformed("idf length mismatches vocabulary"));
    }
    let n_rows = r.len_prefix()?;
    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let nnz = r.len_prefix()?;
        let mut row = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let id = r.usize()?;
            if id >= n_terms {
                return Err(ArtifactError::Malformed("term id out of vocabulary"));
            }
            row.push((id, r.f64()?));
        }
        rows.push(row);
    }
    Ok(IncrementalDtm::from_parts(scheme, &terms, df, idf, rows))
}

impl FoldStage for StreamVectorizeStage {
    fn name(&self) -> &'static str {
        "stream-vectorize"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["stream-preprocess"]
    }
    fn code_version(&self) -> u64 {
        1
    }
    fn config_fingerprint(&self, _config: &StreamConfig) -> u64 {
        0
    }
    fn fold(
        &self,
        _config: &StreamConfig,
        prev: Option<&StreamArtifact>,
        ups: &[&StreamArtifact],
        _slice: &TimeSlice,
    ) -> Result<StreamArtifact> {
        let corpora = ups[0].as_corpora()?;
        let mut dtm = match prev {
            Some(p) => p.as_dtm()?.clone(),
            None => IncrementalDtm::new(Weighting::TfIdfNormalized),
        };
        dtm.push_docs(&corpora.news_tm[dtm.n_docs()..]);
        Ok(StreamArtifact::Dtm(dtm))
    }
    fn encode(&self, value: &StreamArtifact, out: &mut ByteWriter) -> Result<()> {
        match value {
            StreamArtifact::Dtm(d) => {
                encode_dtm(d, out);
                Ok(())
            }
            _ => Err(wrong_stream_variant(self.name())),
        }
    }
    fn decode(
        &self,
        r: &mut ByteReader<'_>,
    ) -> std::result::Result<StreamArtifact, ArtifactError> {
        decode_dtm(r).map(StreamArtifact::Dtm)
    }
}

// ----------------------------------------------------------------- topics

/// Stream stage 4 — warm-started NMF: the previous factors seed the
/// prefix of the new ones (stable term ids make the old `H` a valid
/// prefix), and warm folds run [`StreamConfig::refine_iters`]
/// iterations instead of the cold budget.
#[derive(Debug, Clone, Copy)]
pub struct StreamTopicStage;

/// Static instance backing [`crate::stage::Stage::incremental`].
pub static STREAM_TOPICS: StreamTopicStage = StreamTopicStage;

impl FoldStage for StreamTopicStage {
    fn name(&self) -> &'static str {
        "stream-topics"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["stream-vectorize"]
    }
    fn code_version(&self) -> u64 {
        1
    }
    fn config_fingerprint(&self, config: &StreamConfig) -> u64 {
        chain_fingerprint(&[debug_fingerprint(&config.topic), config.refine_iters as u64])
    }
    fn fold(
        &self,
        config: &StreamConfig,
        prev: Option<&StreamArtifact>,
        ups: &[&StreamArtifact],
        _slice: &TimeSlice,
    ) -> Result<StreamArtifact> {
        let dtm = ups[0].as_dtm()?;
        let a = dtm.weighted(config.topic.min_df, config.topic.max_df_ratio);
        let warm_topics = match prev {
            Some(p) => Some(p.as_topics()?),
            None => None,
        };
        let max_iter =
            if warm_topics.is_some() { config.refine_iters } else { config.topic.max_iter };
        let nmf = Nmf::new(NmfConfig {
            n_topics: config.topic.n_topics,
            max_iter,
            tol: 1e-5,
            seed: config.topic.seed,
        });
        let warm = warm_topics.map(|t| WarmStart {
            doc_topic: &t.model.doc_topic,
            topic_term: &t.model.topic_term,
        });
        let model = nmf.fit_warm(&a, dtm.vocab(), warm);
        let topics = model.topics(config.topic.keywords_per_topic);
        Ok(StreamArtifact::Topics(NewsTopics { model, topics }))
    }
    fn encode(&self, value: &StreamArtifact, out: &mut ByteWriter) -> Result<()> {
        match value {
            StreamArtifact::Topics(t) => {
                encode_topics(t, out);
                Ok(())
            }
            _ => Err(wrong_stream_variant(self.name())),
        }
    }
    fn decode(
        &self,
        r: &mut ByteReader<'_>,
    ) -> std::result::Result<StreamArtifact, ArtifactError> {
        decode_topics(r).map(StreamArtifact::Topics)
    }
}

// ----------------------------------------------------------------- events

/// Stream stage 5 — sliding-window MABED: each fold pushes the new
/// slice's documents, evicts what aged out of the horizon, and
/// re-detects over the bounded buffer only.
#[derive(Debug, Clone, Copy)]
pub struct StreamEventStage;

/// Static instance backing [`crate::stage::Stage::incremental`].
pub static STREAM_EVENTS: StreamEventStage = StreamEventStage;

fn encode_window(w: &SlidingWindow, out: &mut ByteWriter) {
    let (secs, head, docs, evicted) = w.parts();
    out.put_u64(secs);
    out.put_u64(head);
    encode_timestamped(docs, out);
    out.put_usize(evicted);
}

fn decode_window(r: &mut ByteReader<'_>) -> std::result::Result<SlidingWindow, ArtifactError> {
    let secs = r.u64()?;
    let head = r.u64()?;
    let docs = decode_timestamped(r)?;
    let evicted = r.usize()?;
    Ok(SlidingWindow::from_parts(secs, head, docs, evicted))
}

/// Documents a window has consumed over its lifetime: still buffered
/// plus already evicted. This is the fold's high-water mark into the
/// upstream corpus.
fn window_consumed(w: &SlidingWindow) -> usize {
    w.evicted() + w.docs().len()
}

impl FoldStage for StreamEventStage {
    fn name(&self) -> &'static str {
        "stream-events"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["stream-preprocess"]
    }
    fn code_version(&self) -> u64 {
        1
    }
    fn config_fingerprint(&self, config: &StreamConfig) -> u64 {
        chain_fingerprint(&[debug_fingerprint(&config.event), config.window_slices])
    }
    fn fold(
        &self,
        config: &StreamConfig,
        prev: Option<&StreamArtifact>,
        ups: &[&StreamArtifact],
        slice: &TimeSlice,
    ) -> Result<StreamArtifact> {
        let corpora = ups[0].as_corpora()?;
        let horizon = config.window_slices * config.firehose.slice_hours * 3600;
        let mut ev = match prev {
            Some(p) => p.as_events()?.clone(),
            None => StreamEvents {
                news_window: SlidingWindow::new(horizon),
                twitter_window: SlidingWindow::new(horizon),
                events: DetectedEvents { news: Vec::new(), twitter: Vec::new() },
            },
        };
        let seen_news = window_consumed(&ev.news_window);
        let seen_twitter = window_consumed(&ev.twitter_window);
        ev.news_window.push_slice(corpora.news_ed[seen_news..].iter().cloned(), slice.end);
        ev.twitter_window
            .push_slice(corpora.twitter_ed[seen_twitter..].iter().cloned(), slice.end);

        // Unlike the batch stage, a quiet window is not an error —
        // detection simply yields nothing until a burst enters.
        let news = if ev.news_window.docs().is_empty() {
            Vec::new()
        } else {
            Mabed::new(MabedConfig {
                n_events: config.event.n_news_events,
                max_related: config.event.max_related,
                theta: config.event.theta,
                min_word_docs: config.event.min_word_docs,
                source: AnomalySource::Presence,
                ..Default::default()
            })
            .detect(&ev.news_window.to_sliced(config.event.news_slice_secs))
        };
        let twitter = if ev.twitter_window.docs().is_empty() {
            Vec::new()
        } else {
            Mabed::new(MabedConfig {
                n_events: config.event.n_twitter_events,
                max_related: config.event.max_related,
                theta: config.event.theta,
                min_word_docs: config.event.min_word_docs,
                source: AnomalySource::Mentions,
                ..Default::default()
            })
            .detect(&ev.twitter_window.to_sliced(config.event.twitter_slice_secs))
            .into_iter()
            .filter(|e| e.n_docs >= 10)
            .collect()
        };
        ev.events = DetectedEvents { news, twitter };
        Ok(StreamArtifact::Events(ev))
    }
    fn encode(&self, value: &StreamArtifact, out: &mut ByteWriter) -> Result<()> {
        match value {
            StreamArtifact::Events(e) => {
                encode_window(&e.news_window, out);
                encode_window(&e.twitter_window, out);
                encode_events(&e.events, out);
                Ok(())
            }
            _ => Err(wrong_stream_variant(self.name())),
        }
    }
    fn decode(
        &self,
        r: &mut ByteReader<'_>,
    ) -> std::result::Result<StreamArtifact, ArtifactError> {
        Ok(StreamArtifact::Events(StreamEvents {
            news_window: decode_window(r)?,
            twitter_window: decode_window(r)?,
            events: decode_events(r)?,
        }))
    }
}

// ------------------------------------------------------------------ embed

/// Stream stage 6 — online Word2Vec continuation: each fold trains on
/// the slice's new documents only, seeding known words from the
/// previous vectors; words absent from the slice keep their vectors.
#[derive(Debug, Clone, Copy)]
pub struct StreamEmbedStage;

/// Static instance backing [`crate::stage::Stage::incremental`].
pub static STREAM_EMBED: StreamEmbedStage = StreamEmbedStage;

impl StreamEmbedStage {
    fn w2v_config(config: &StreamConfig, slice_index: usize) -> Word2VecConfig {
        Word2VecConfig {
            dim: config.embed_dim,
            epochs: config.embed_epochs,
            min_count: 1,
            // Decorrelate per-slice negative sampling; the fold stays a
            // pure function of (slice index, prev, upstream).
            seed: config
                .firehose
                .world
                .seed
                .wrapping_add((slice_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ 0xE4BD,
            ..Default::default()
        }
    }
}

impl FoldStage for StreamEmbedStage {
    fn name(&self) -> &'static str {
        "stream-embed"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["stream-preprocess"]
    }
    fn code_version(&self) -> u64 {
        1
    }
    fn config_fingerprint(&self, config: &StreamConfig) -> u64 {
        chain_fingerprint(&[
            config.embed_dim as u64,
            config.embed_epochs as u64,
            config.firehose.world.seed,
        ])
    }
    fn fold(
        &self,
        config: &StreamConfig,
        prev: Option<&StreamArtifact>,
        ups: &[&StreamArtifact],
        slice: &TimeSlice,
    ) -> Result<StreamArtifact> {
        let corpora = ups[0].as_corpora()?;
        let (prev_vectors, seen_news, seen_twitter) = match prev {
            Some(p) => {
                let v = p.as_vectors()?;
                (Some(&v.vectors), v.seen_news, v.seen_twitter)
            }
            None => (None, 0, 0),
        };
        let mut docs: Vec<Vec<String>> = corpora.news_tm[seen_news..].to_vec();
        docs.extend(corpora.twitter_ed[seen_twitter..].iter().map(|d| d.tokens.clone()));
        let vectors = if docs.is_empty() {
            match prev_vectors {
                Some(v) => v.clone(),
                None => WordVectors::new(config.embed_dim),
            }
        } else {
            let w2v = Word2Vec::new(Self::w2v_config(config, slice.index));
            match prev_vectors {
                Some(v) => w2v.train_continue(&docs, v),
                None => w2v.train(&docs),
            }
        };
        Ok(StreamArtifact::Vectors(StreamVectors {
            vectors,
            seen_news: corpora.news_tm.len(),
            seen_twitter: corpora.twitter_ed.len(),
        }))
    }
    fn encode(&self, value: &StreamArtifact, out: &mut ByteWriter) -> Result<()> {
        match value {
            StreamArtifact::Vectors(v) => {
                crate::pretrained::encode_vectors(&v.vectors, out);
                out.put_usize(v.seen_news);
                out.put_usize(v.seen_twitter);
                Ok(())
            }
            _ => Err(wrong_stream_variant(self.name())),
        }
    }
    fn decode(
        &self,
        r: &mut ByteReader<'_>,
    ) -> std::result::Result<StreamArtifact, ArtifactError> {
        Ok(StreamArtifact::Vectors(StreamVectors {
            vectors: crate::pretrained::decode_vectors(r)?,
            seen_news: r.usize()?,
            seen_twitter: r.usize()?,
        }))
    }
}

/// The stream DAG in topological (declaration) order.
pub fn fold_stages() -> [&'static dyn FoldStage; 6] {
    [
        &STREAM_COLLECT,
        &STREAM_PREPROCESS,
        &STREAM_VECTORIZE,
        &STREAM_TOPICS,
        &STREAM_EVENTS,
        &STREAM_EMBED,
    ]
}

// --------------------------------------------------------------- executor

/// Cache disposition of one fold in one run.
#[derive(Debug, Clone)]
pub struct FoldReport {
    /// Stream stage name.
    pub stage: &'static str,
    /// Slice index.
    pub slice: usize,
    /// The chained cache fingerprint.
    pub fingerprint: u64,
    /// What the executor did.
    pub cache: CacheStatus,
    /// Wall time of the fold body or cache replay.
    pub wall_ms: f64,
    /// Serialized artifact payload size (0 when uncached).
    pub bytes: u64,
}

/// What one stream run did, fold by fold, in materialization order.
#[derive(Debug, Clone, Default)]
pub struct StreamReport {
    /// Per-fold records.
    pub folds: Vec<FoldReport>,
    /// Slices actually polled from the firehose (lazy: a fully warm
    /// run polls none).
    pub slices_polled: usize,
    /// End-to-end wall time.
    pub total_ms: f64,
}

impl StreamReport {
    /// Looks up one fold's record.
    pub fn fold(&self, stage: &str, slice: usize) -> Option<&FoldReport> {
        self.folds.iter().find(|f| f.stage == stage && f.slice == slice)
    }

    /// How many fold bodies executed (misses + forced).
    pub fn executed(&self) -> usize {
        self.folds.iter().filter(|f| f.cache.executed()).count()
    }

    /// `(stage, slice)` pairs whose fold bodies executed, sorted.
    pub fn executed_folds(&self) -> Vec<(&'static str, usize)> {
        let mut out: Vec<(&'static str, usize)> = self
            .folds
            .iter()
            .filter(|f| f.cache.executed())
            .map(|f| (f.stage, f.slice))
            .collect();
        out.sort_unstable();
        out
    }
}

/// The head state after folding `0..head`: every stage's artifact at
/// the final slice, unwrapped.
#[derive(Debug, Clone)]
pub struct StreamState {
    /// Number of slices folded.
    pub head: usize,
    /// Accumulated world.
    pub world: StreamWorld,
    /// Accumulated corpora.
    pub corpora: Corpora,
    /// Incremental document-term matrix.
    pub dtm: IncrementalDtm,
    /// Warm-started topics.
    pub topics: NewsTopics,
    /// Sliding-window events.
    pub events: StreamEvents,
    /// Streaming embeddings.
    pub vectors: StreamVectors,
}

impl StreamState {
    /// A stable 64-bit digest over every head artifact (all floats
    /// hashed via their bit patterns). Two runs are bit-identical iff
    /// their digests agree — the replay-equals-cold contract.
    pub fn content_digest(&self) -> u64 {
        let mut w = ByteWriter::new();
        encode_stream_world(&self.world, &mut w);
        encode_corpora(&self.corpora, &mut w);
        encode_dtm(&self.dtm, &mut w);
        encode_topics(&self.topics, &mut w);
        encode_window(&self.events.news_window, &mut w);
        encode_window(&self.events.twitter_window, &mut w);
        encode_events(&self.events.events, &mut w);
        crate::pretrained::encode_vectors(&self.vectors.vectors, &mut w);
        w.put_usize(self.vectors.seen_news);
        w.put_usize(self.vectors.seen_twitter);
        fnv1a64(w.as_bytes())
    }
}

/// The streaming-pipeline runner: a demand-driven, memoized executor
/// over the fold DAG (see the module docs for the caching contract).
#[derive(Debug, Clone)]
pub struct StreamPipeline {
    config: StreamConfig,
    firehose: Firehose,
}

impl StreamPipeline {
    /// Builds the firehose (fixing ground truth) and the runner.
    pub fn new(config: StreamConfig) -> Self {
        let firehose = Firehose::new(config.firehose.clone());
        StreamPipeline { config, firehose }
    }

    /// The configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The underlying firehose (ground truth attached).
    pub fn firehose(&self) -> &Firehose {
        &self.firehose
    }

    /// Per-stage chained fingerprints for slices `0..n_slices`:
    /// `result[stage_index][k]`, stages in [`fold_stages`] order.
    /// Pure metadata — no slice is polled, no artifact read.
    pub fn fingerprints(&self, n_slices: usize) -> Vec<Vec<u64>> {
        let graph = fold_stages();
        let dep_idx = resolve_deps(&graph);
        let firehose_fp = self.config.firehose.fingerprint();
        let mut fps: Vec<Vec<u64>> = vec![Vec::with_capacity(n_slices); graph.len()];
        for k in 0..n_slices {
            let (start, end) = self.firehose.slice_bounds(k);
            let slice_fp = chain_fingerprint(&[firehose_fp, k as u64, start, end]);
            for (si, stage) in graph.iter().enumerate() {
                let prev_fp = if k > 0 { fps[si][k - 1] } else { 0 };
                let dep_fps: Vec<u64> = dep_idx[si].iter().map(|&d| fps[d][k]).collect();
                let fp = slice_fingerprint(*stage, &self.config, slice_fp, prev_fp, &dep_fps);
                fps[si].push(fp);
            }
        }
        fps
    }

    /// The chained fingerprint of `(stage, slice)`, by stage name.
    pub fn fingerprint(&self, stage: &str, slice: usize) -> Option<u64> {
        let graph = fold_stages();
        let si = graph.iter().position(|s| s.name() == stage)?;
        self.fingerprints(slice + 1)[si].get(slice).copied()
    }

    /// The on-disk artifact path of `(stage, slice)` under the
    /// configured cache directory, if caching is enabled.
    pub fn artifact_path(&self, stage: &str, slice: usize) -> Option<PathBuf> {
        let dir = self.config.cache_dir.as_ref()?;
        let fp = self.fingerprint(stage, slice)?;
        Some(ArtifactStore::open(dir).ok()?.path_for(&artifact_name(stage, slice), fp))
    }

    /// Folds slices `0..n_slices` and returns the head state plus the
    /// per-fold report. With a cache directory configured, cached
    /// prefixes replay from disk and only the missing cone folds.
    ///
    /// # Errors
    /// [`CoreError::EmptyInput`] for `n_slices == 0`,
    /// [`CoreError::Artifact`] past the horizon or on an unusable
    /// cache directory; fold-body errors propagate unchanged.
    pub fn run(&self, n_slices: usize) -> Result<(StreamState, StreamReport)> {
        if n_slices == 0 {
            return Err(CoreError::EmptyInput("stream run of zero slices"));
        }
        if n_slices > self.firehose.n_slices() {
            return Err(CoreError::Artifact(format!(
                "stream run of {n_slices} slices exceeds the {}-slice horizon",
                self.firehose.n_slices()
            )));
        }
        let run_start = Instant::now();
        let graph = fold_stages();
        let store = match &self.config.cache_dir {
            Some(dir) => Some(ArtifactStore::open(dir)?),
            None => None,
        };
        let mut exec = Exec {
            config: &self.config,
            firehose: &self.firehose,
            graph,
            dep_idx: resolve_deps(&graph),
            fps: self.fingerprints(n_slices),
            store,
            memo: HashMap::new(),
            slices: HashMap::new(),
            report: StreamReport::default(),
        };
        let head = n_slices - 1;
        for si in 0..graph.len() {
            exec.materialize(si, head)?;
        }
        let mut take = |si: usize| exec.memo.remove(&(si, head)).expect("materialized");
        let state = StreamState {
            head: n_slices,
            world: take(0).into_world()?,
            corpora: take(1).into_corpora()?,
            dtm: take(2).into_dtm()?,
            topics: take(3).into_topics()?,
            events: take(4).into_events()?,
            vectors: take(5).into_vectors()?,
        };
        exec.report.slices_polled = exec.slices.len();
        exec.report.total_ms = run_start.elapsed().as_secs_f64() * 1e3;
        Ok((state, exec.report))
    }
}

/// Artifact id of `(stage, slice)` in the store.
fn artifact_name(stage: &str, slice: usize) -> String {
    format!("{stage}@{slice}")
}

fn resolve_deps(graph: &[&'static dyn FoldStage; 6]) -> Vec<Vec<usize>> {
    graph
        .iter()
        .map(|s| {
            s.deps()
                .iter()
                .map(|d| {
                    graph
                        .iter()
                        .position(|g| g.name() == *d)
                        .expect("stream dep declared before use")
                })
                .collect()
        })
        .collect()
}

/// One run's working set: memoized artifacts, lazily polled slices,
/// and the fold log.
struct Exec<'a> {
    config: &'a StreamConfig,
    firehose: &'a Firehose,
    graph: [&'static dyn FoldStage; 6],
    dep_idx: Vec<Vec<usize>>,
    fps: Vec<Vec<u64>>,
    store: Option<ArtifactStore>,
    memo: HashMap<(usize, usize), StreamArtifact>,
    slices: HashMap<usize, TimeSlice>,
    report: StreamReport,
}

impl Exec<'_> {
    /// Materializes `(stage si, slice k)` into the memo: cache replay
    /// when possible, otherwise recurse to `(si, k − 1)` and the
    /// slice-`k` dependencies and fold.
    fn materialize(&mut self, si: usize, k: usize) -> Result<()> {
        if self.memo.contains_key(&(si, k)) {
            return Ok(());
        }
        let stage = self.graph[si];
        let fp = self.fps[si][k];
        let name = artifact_name(stage.name(), k);
        let fold_start = Instant::now();

        if !self.config.force {
            if let Some(store) = &self.store {
                if let Some(payload) = store.load(&name, fp) {
                    let mut r = ByteReader::new(&payload);
                    if let Ok(value) = stage.decode(&mut r) {
                        if r.is_empty() {
                            self.memo.insert((si, k), value);
                            self.report.folds.push(FoldReport {
                                stage: stage.name(),
                                slice: k,
                                fingerprint: fp,
                                cache: CacheStatus::Hit,
                                wall_ms: fold_start.elapsed().as_secs_f64() * 1e3,
                                bytes: payload.len() as u64,
                            });
                            return Ok(());
                        }
                    }
                }
            }
        }

        if k > 0 {
            self.materialize(si, k - 1)?;
        }
        let deps = self.dep_idx[si].clone();
        for &d in &deps {
            self.materialize(d, k)?;
        }
        if !self.slices.contains_key(&k) {
            self.slices.insert(k, self.firehose.poll(k));
        }
        let slice = &self.slices[&k];
        let prev = if k > 0 { self.memo.get(&(si, k - 1)) } else { None };
        let ups: Vec<&StreamArtifact> = deps.iter().map(|&d| &self.memo[&(d, k)]).collect();
        let value = stage.fold(self.config, prev, &ups, slice)?;
        let mut bytes = 0u64;
        if let Some(store) = &self.store {
            let mut w = ByteWriter::new();
            stage.encode(&value, &mut w)?;
            bytes = w.len() as u64;
            store.save(&name, fp, w.as_bytes())?;
        }
        self.memo.insert((si, k), value);
        self.report.folds.push(FoldReport {
            stage: stage.name(),
            slice: k,
            fingerprint: fp,
            cache: if self.config.force { CacheStatus::Forced } else { CacheStatus::Miss },
            wall_ms: fold_start.elapsed().as_secs_f64() * 1e3,
            bytes,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_synth::WorldConfig;

    /// A deliberately tiny stream: 4 days in 48-hour slices → 2
    /// slices, cheap NMF/Word2Vec budgets.
    fn tiny_config() -> StreamConfig {
        StreamConfig {
            firehose: FirehoseConfig {
                world: WorldConfig {
                    days: 4,
                    n_users: 60,
                    min_influencers: 6,
                    ..WorldConfig::small()
                },
                slice_hours: 48,
            },
            topic: TopicModuleConfig { n_topics: 6, max_iter: 40, ..Default::default() },
            refine_iters: 12,
            event: EventModuleConfig::default(),
            window_slices: 4,
            embed_dim: 8,
            embed_epochs: 1,
            cache_dir: None,
            force: false,
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("nd-stream-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn declaration_order_is_topological_and_names_unique() {
        let mut seen = std::collections::HashSet::new();
        for stage in fold_stages() {
            for dep in stage.deps() {
                assert!(seen.contains(dep), "{} depends on later stage {dep}", stage.name());
            }
            assert!(seen.insert(stage.name()), "duplicate stream stage {}", stage.name());
        }
    }

    #[test]
    fn fingerprints_chain_across_slices_and_cascade() {
        let pipeline = StreamPipeline::new(tiny_config());
        let fps = pipeline.fingerprints(2);
        // All (stage, slice) keys distinct.
        let flat: std::collections::HashSet<u64> =
            fps.iter().flatten().copied().collect();
        assert_eq!(flat.len(), 12, "stream fingerprints collide");
        // A topic-config change re-keys topics at every slice but
        // leaves its upstream untouched.
        let mut changed = tiny_config();
        changed.topic.seed = 1234;
        let fps2 = StreamPipeline::new(changed).fingerprints(2);
        assert_eq!(fps[2], fps2[2], "vectorize must not see topic config");
        assert_ne!(fps[3][0], fps2[3][0]);
        assert_ne!(fps[3][1], fps2[3][1]);
        // Cache knobs never fingerprint.
        let mut cached = tiny_config();
        cached.cache_dir = Some(PathBuf::from("/tmp/x"));
        cached.force = true;
        assert_eq!(fps, StreamPipeline::new(cached).fingerprints(2));
    }

    #[test]
    fn uncached_runs_are_deterministic_and_incremental_state_is_consistent() {
        let pipeline = StreamPipeline::new(tiny_config());
        let (a, ra) = pipeline.run(2).expect("run");
        let (b, _) = pipeline.run(2).expect("run");
        assert_eq!(a.content_digest(), b.content_digest());
        assert_eq!(ra.executed(), 12, "uncached run folds everything");
        assert_eq!(ra.slices_polled, 2);
        // Accumulated state is aligned across stages.
        assert_eq!(a.head, 2);
        assert_eq!(a.world.slices.len(), 2);
        assert_eq!(a.corpora.news_tm.len(), a.world.articles.len());
        assert_eq!(a.corpora.twitter_ed.len(), a.world.tweets.len());
        assert_eq!(a.dtm.n_docs(), a.corpora.news_tm.len());
        assert_eq!(a.topics.model.doc_topic.rows(), a.dtm.n_docs());
        assert_eq!(a.vectors.seen_news, a.corpora.news_tm.len());
        assert!(!a.vectors.vectors.is_empty(), "streaming vectors trained");
    }

    #[test]
    fn warm_replay_loads_head_only_and_is_bit_identical() {
        let dir = tmpdir("warm");
        let config = tiny_config().with_cache_dir(&dir);
        let pipeline = StreamPipeline::new(config);
        let (cold, _) = pipeline.run(2).expect("cold");
        let (warm, report) = pipeline.run(2).expect("warm");
        assert_eq!(cold.content_digest(), warm.content_digest());
        assert_eq!(report.executed(), 0, "warm run must fold nothing");
        assert_eq!(report.folds.len(), 6, "warm run loads only the head slice");
        assert_eq!(report.slices_polled, 0, "warm run must not poll the firehose");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn extending_a_cached_prefix_folds_only_the_new_slice() {
        let dir = tmpdir("extend");
        let config = tiny_config().with_cache_dir(&dir);
        let pipeline = StreamPipeline::new(config);
        pipeline.run(1).expect("prefix");
        let (state, report) = pipeline.run(2).expect("extend");
        let executed = report.executed_folds();
        assert!(
            executed.iter().all(|&(_, k)| k == 1),
            "only slice 1 may fold, got {executed:?}"
        );
        assert_eq!(executed.len(), 6);
        // Bit-identity with a cold fold over both slices.
        let cold_pipeline = StreamPipeline::new(tiny_config());
        let (cold, _) = cold_pipeline.run(2).expect("cold");
        assert_eq!(state.content_digest(), cold.content_digest());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn force_refolds_everything() {
        let dir = tmpdir("force");
        let mut config = tiny_config().with_cache_dir(&dir);
        let pipeline = StreamPipeline::new(config.clone());
        pipeline.run(2).expect("seed");
        config.force = true;
        let (_, report) = StreamPipeline::new(config).run(2).expect("forced");
        assert_eq!(report.executed(), 12);
        assert!(report.folds.iter().all(|f| f.cache == CacheStatus::Forced));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_bounds_are_checked() {
        let pipeline = StreamPipeline::new(tiny_config());
        assert!(matches!(pipeline.run(0), Err(CoreError::EmptyInput(_))));
        let horizon = pipeline.firehose().n_slices();
        assert!(pipeline.run(horizon + 1).is_err());
    }

    #[test]
    fn dtm_codec_roundtrips_bit_exactly() {
        let mut dtm = IncrementalDtm::new(Weighting::TfIdfNormalized);
        dtm.push_docs(&[
            vec!["brexit".into(), "vote".into(), "brexit".into()],
            vec!["tariff".into(), "vote".into()],
        ]);
        let mut w = ByteWriter::new();
        encode_dtm(&dtm, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_dtm(&mut r).expect("decode");
        assert!(r.is_empty());
        let mut w2 = ByteWriter::new();
        encode_dtm(&back, &mut w2);
        assert_eq!(bytes, w2.into_bytes(), "dtm codec must be bit-stable");
    }
}
