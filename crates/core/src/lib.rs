//! # nd-core
//!
//! The paper's proposed solution (§4, Figure 1), assembled from the
//! workspace substrates. Each module mirrors one box of the
//! architecture diagram:
//!
//! | paper module | here |
//! |---|---|
//! | Data Collection | [`collect`] |
//! | Storage (MongoDB) | [`collect`] writing into `nd-store` |
//! | Preprocessing (NewsTM / NewsED / TwitterED) | [`preprocess`] |
//! | Topic Modeling (TFIDF_N + NMF) | [`topic_module`] |
//! | Event Detection (MABED ×2) | [`event_module`] |
//! | Trending News (topic↔news-event correlation) | [`trending`] |
//! | Correlation (trending ↔ Twitter events) | [`correlate`] |
//! | Feature Creation (SW/RND/SWM + metadata, Table 2) | [`features`] |
//! | Audience Interest Prediction (MLP / CNN) | [`predict`] |
//!
//! [`stage`] carves the architecture into an explicit DAG of
//! fingerprinted stages; [`pipeline`] drives that graph over a
//! content-addressed artifact cache, so warm re-runs replay stages
//! from disk bit for bit; [`matching`] implements the minimum-cost-
//! flow matching the paper lists as future work; [`report`] renders
//! the tables the benches print.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod collect;
pub mod correlate;
pub mod error;
pub mod event_module;
pub mod features;
pub mod incremental;
pub mod matching;
pub mod patterns_module;
pub mod pipeline;
pub mod predict;
pub mod preprocess;
pub mod pretrained;
pub mod report;
pub mod stage;
pub mod topic_module;
pub mod trending;

pub use error::{CoreError, Result};
pub use pipeline::{
    CacheConfig, CacheStatus, Pipeline, PipelineConfig, PipelineOutput, RunReport, StageReport,
};
pub use incremental::{
    fold_stages, FoldReport, FoldStage, StreamArtifact, StreamConfig, StreamPipeline,
    StreamReport, StreamState,
};
pub use stage::{ArtifactSet, ArtifactValue, Stage};
