//! # nd-core
//!
//! The paper's proposed solution (§4, Figure 1), assembled from the
//! workspace substrates. Each module mirrors one box of the
//! architecture diagram:
//!
//! | paper module | here |
//! |---|---|
//! | Data Collection | [`collect`] |
//! | Storage (MongoDB) | [`collect`] writing into `nd-store` |
//! | Preprocessing (NewsTM / NewsED / TwitterED) | [`preprocess`] |
//! | Topic Modeling (TFIDF_N + NMF) | [`topic_module`] |
//! | Event Detection (MABED ×2) | [`event_module`] |
//! | Trending News (topic↔news-event correlation) | [`trending`] |
//! | Correlation (trending ↔ Twitter events) | [`correlate`] |
//! | Feature Creation (SW/RND/SWM + metadata, Table 2) | [`features`] |
//! | Audience Interest Prediction (MLP / CNN) | [`predict`] |
//!
//! [`pipeline`] runs the whole thing on a synthetic world;
//! [`matching`] implements the minimum-cost-flow matching the paper
//! lists as future work; [`report`] renders the tables the benches
//! print.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod collect;
pub mod correlate;
pub mod error;
pub mod event_module;
pub mod features;
pub mod matching;
pub mod pipeline;
pub mod predict;
pub mod preprocess;
pub mod pretrained;
pub mod report;
pub mod topic_module;
pub mod trending;

pub use error::{CoreError, Result};
pub use pipeline::{Pipeline, PipelineConfig, PipelineOutput};
