//! Minimum-cost bipartite matching (paper §6 future work).
//!
//! The paper's conclusions propose replacing the greedy best-cosine
//! topic↔event matching with Minimum Cost Flow. For the bipartite
//! one-to-one case that reduces to the assignment problem; we
//! implement the Hungarian algorithm (Jonker–Volgenant style
//! shortest augmenting paths) over a dense cost matrix.
//!
//! `min_cost_assignment` takes *costs* (lower = better); callers
//! matching by similarity pass `1 - similarity`. Pairs whose
//! similarity falls below the caller's threshold can be forbidden with
//! [`FORBIDDEN`].

/// Cost marking a forbidden pairing.
pub const FORBIDDEN: f64 = 1e9;

/// Solves the rectangular assignment problem: returns, for each row,
/// the column assigned to it (`None` when the row ends up unmatched or
/// only forbidden pairings were available).
///
/// Runs the O(n³) shortest-augmenting-path algorithm on the implicit
/// square matrix padded with `FORBIDDEN`.
#[allow(clippy::needless_range_loop)] // Hungarian potentials index several parallel arrays
pub fn min_cost_assignment(costs: &[Vec<f64>]) -> Vec<Option<usize>> {
    let n_rows = costs.len();
    let n_cols = costs.iter().map(Vec::len).max().unwrap_or(0);
    if n_rows == 0 || n_cols == 0 {
        return vec![None; n_rows];
    }
    let n = n_rows.max(n_cols);
    let cost = |r: usize, c: usize| -> f64 {
        if r < n_rows && c < costs[r].len() {
            costs[r][c]
        } else {
            FORBIDDEN
        }
    };

    // Jonker–Volgenant / Hungarian with potentials, 1-indexed helpers.
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col (1-indexed)
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![None; n_rows];
    for j in 1..=n {
        let i = p[j];
        if i >= 1 && i <= n_rows && j <= n_cols {
            let c = cost(i - 1, j - 1);
            if c < FORBIDDEN / 2.0 {
                assignment[i - 1] = Some(j - 1);
            }
        }
    }
    assignment
}

/// Matches rows to columns by *similarity* (higher = better),
/// one-to-one, refusing pairs below `threshold`. Returns
/// `(row, col, similarity)` triples.
pub fn match_by_similarity(
    similarities: &[Vec<f64>],
    threshold: f64,
) -> Vec<(usize, usize, f64)> {
    let costs: Vec<Vec<f64>> = similarities
        .iter()
        .map(|row| {
            row.iter()
                .map(|&s| if s >= threshold { 1.0 - s } else { FORBIDDEN })
                .collect()
        })
        .collect();
    min_cost_assignment(&costs)
        .into_iter()
        .enumerate()
        .filter_map(|(r, c)| c.map(|c| (r, c, similarities[r][c])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_cost(costs: &[Vec<f64>], assignment: &[Option<usize>]) -> f64 {
        assignment
            .iter()
            .enumerate()
            .filter_map(|(r, c)| c.map(|c| costs[r][c]))
            .sum()
    }

    #[test]
    fn simple_square_case() {
        // Optimal: (0,1), (1,0) with cost 2; greedy row-wise would pick
        // (0,0) cost 1 then (1,1) cost 4 -> 5.
        let costs = vec![vec![1.0, 1.5], vec![1.5, 4.0]];
        let a = min_cost_assignment(&costs);
        assert_eq!(a, vec![Some(1), Some(0)]);
        assert_eq!(total_cost(&costs, &a), 3.0);
    }

    #[test]
    fn identity_optimal() {
        let costs = vec![
            vec![0.0, 9.0, 9.0],
            vec![9.0, 0.0, 9.0],
            vec![9.0, 9.0, 0.0],
        ];
        assert_eq!(min_cost_assignment(&costs), vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn beats_greedy_on_crafted_instance() {
        // Greedy picks (0,0)=1 then (1,1)=10 = 11; optimal is 2+2=4.
        let costs = vec![vec![1.0, 2.0], vec![2.0, 10.0]];
        let a = min_cost_assignment(&costs);
        assert_eq!(total_cost(&costs, &a), 4.0);
    }

    #[test]
    fn rectangular_more_rows_than_cols() {
        let costs = vec![vec![5.0], vec![1.0], vec![3.0]];
        let a = min_cost_assignment(&costs);
        let matched: Vec<usize> =
            a.iter().enumerate().filter(|(_, c)| c.is_some()).map(|(r, _)| r).collect();
        assert_eq!(matched, vec![1], "only the cheapest row gets the single column");
    }

    #[test]
    fn rectangular_more_cols_than_rows() {
        let costs = vec![vec![4.0, 1.0, 7.0]];
        assert_eq!(min_cost_assignment(&costs), vec![Some(1)]);
    }

    #[test]
    fn forbidden_pairs_unmatched() {
        let costs = vec![vec![FORBIDDEN, FORBIDDEN]];
        assert_eq!(min_cost_assignment(&costs), vec![None]);
    }

    #[test]
    fn empty_input() {
        assert!(min_cost_assignment(&[]).is_empty());
        let empty_rows: Vec<Vec<f64>> = vec![vec![], vec![]];
        assert_eq!(min_cost_assignment(&empty_rows), vec![None, None]);
    }

    #[test]
    fn similarity_wrapper_thresholds() {
        let sims = vec![vec![0.9, 0.3], vec![0.8, 0.95]];
        let matches = match_by_similarity(&sims, 0.5);
        assert_eq!(matches.len(), 2);
        // One-to-one: row 0 -> col 0, row 1 -> col 1 (sum 1.85 beats 1.1).
        assert!(matches.contains(&(0, 0, 0.9)));
        assert!(matches.contains(&(1, 1, 0.95)));
        // With a high threshold row 1 keeps col 1, row 0 keeps col 0 only if >= thr.
        let strict = match_by_similarity(&sims, 0.92);
        assert_eq!(strict, vec![(1, 1, 0.95)]);
    }

    #[test]
    fn random_instances_beat_or_tie_greedy() {
        use nd_linalg::rng::SplitMix64;
        let mut rng = SplitMix64::new(5);
        for _ in 0..20 {
            let n = 2 + rng.next_usize(5);
            let costs: Vec<Vec<f64>> =
                (0..n).map(|_| (0..n).map(|_| rng.next_f64() * 10.0).collect()).collect();
            let optimal = total_cost(&costs, &min_cost_assignment(&costs));
            // Greedy: each row takes its cheapest unused column.
            let mut used = vec![false; n];
            let mut greedy = 0.0;
            for row in &costs {
                let (best, cost) = row
                    .iter()
                    .enumerate()
                    .filter(|(c, _)| !used[*c])
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap();
                used[best] = true;
                greedy += cost;
            }
            assert!(optimal <= greedy + 1e-9, "optimal {optimal} vs greedy {greedy}");
        }
    }
}
