//! Stage 9 — temporal audience-pattern mining (ROADMAP item 5).
//!
//! Generates seeded per-user trajectories over the world's time
//! window (`nd-synth`), compresses them into symbol sequences, mines
//! frequent sequential patterns (PrefixSpan) and co-occurring pairs
//! (`nd-patterns`), and ranks everything into a serializable
//! [`PatternCatalog`]. The planted ground-truth signatures travel in
//! the artifact alongside the catalog, so any consumer — tests, the
//! `/patterns` endpoint, the drift harness — can check recovery
//! without regenerating the trajectories.

use nd_patterns::{
    cooccurrence, mine, MiningConfig, PatternCatalog, SequenceConfig,
};
use nd_store::{ArtifactError, ByteReader, ByteWriter};
use nd_synth::{generate_trajectories, TrajectoryConfig, World};

/// Configuration slice read by the `patterns` stage.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternStageConfig {
    /// Trajectory-generation knobs. The effective RNG seed is
    /// `world seed ⊕ trajectory seed`, so changing either reshuffles
    /// the trajectories (and the world seed already re-fingerprints
    /// this stage through its `collect` dependency).
    pub trajectory: TrajectoryConfig,
    /// Stream → sequence compression knobs.
    pub sequence: SequenceConfig,
    /// PrefixSpan thresholds (`min_support` is the dirty-cone knob
    /// exercised by the cache tests).
    pub mining: MiningConfig,
    /// Catalog size cap after ranking.
    pub max_patterns: usize,
}

impl Default for PatternStageConfig {
    fn default() -> Self {
        PatternStageConfig {
            // Low per-day noise keeps symbol repetition per user near
            // one across the 150-day default window, so the frequent-
            // pattern space stays small while plants stay exact.
            trajectory: TrajectoryConfig { base_events_per_day: 0.1, ..Default::default() },
            sequence: SequenceConfig::default(),
            mining: MiningConfig::default(),
            max_patterns: 512,
        }
    }
}

/// One planted signature's ground truth, carried in the artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedRecord {
    /// Signature name (`churn`, `funnel_early`, …).
    pub name: String,
    /// `nd_patterns::pattern_id` of the planted motif.
    pub id: u64,
    /// Exact number of users carrying the motif.
    pub n_users: u32,
}

/// The `patterns` stage artifact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PatternsOutput {
    /// Ranked pattern catalog over the full window.
    pub catalog: PatternCatalog,
    /// Ground truth for recovery checks.
    pub planted: Vec<PlantedRecord>,
}

/// Runs the stage body: trajectories → sequences → PrefixSpan +
/// co-occurrence → ranked catalog.
pub fn mine_patterns(world: &World, cfg: &PatternStageConfig) -> PatternsOutput {
    let mut tcfg = cfg.trajectory.clone();
    tcfg.seed ^= world.config.seed;
    let set = generate_trajectories(
        world.config.n_users,
        world.config.start,
        world.config.days,
        &tcfg,
    );
    let db = set.full_db(&cfg.sequence);
    let mined = mine(&db, &cfg.mining);
    let pair_floor = cfg.mining.threshold(db.len()) as usize;
    let pairs = cooccurrence(&db, pair_floor);
    let catalog = PatternCatalog::build(db.len(), mined, pairs, cfg.max_patterns);
    let planted = set
        .planted
        .iter()
        .map(|p| PlantedRecord {
            name: p.name.to_string(),
            id: p.id,
            n_users: p.n_users.min(u32::MAX as usize) as u32,
        })
        .collect();
    PatternsOutput { catalog, planted }
}

/// Serializes the stage artifact.
pub fn encode_patterns(out: &PatternsOutput, w: &mut ByteWriter) {
    out.catalog.encode(w);
    w.put_usize(out.planted.len());
    for p in &out.planted {
        w.put_str(&p.name);
        w.put_u64(p.id);
        w.put_u32(p.n_users);
    }
}

/// Deserializes the stage artifact.
///
/// # Errors
/// [`ArtifactError`] on truncation or codec drift.
pub fn decode_patterns(r: &mut ByteReader<'_>) -> Result<PatternsOutput, ArtifactError> {
    let catalog = PatternCatalog::decode(r)?;
    let n = r.len_prefix()?;
    let mut planted = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        planted.push(PlantedRecord { name: r.str()?, id: r.u64()?, n_users: r.u32()? });
    }
    Ok(PatternsOutput { catalog, planted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_synth::WorldConfig;
    use std::sync::OnceLock;

    fn output() -> &'static PatternsOutput {
        static OUT: OnceLock<PatternsOutput> = OnceLock::new();
        OUT.get_or_init(|| {
            let world = World::generate(WorldConfig::small());
            mine_patterns(&world, &PatternStageConfig::default())
        })
    }

    #[test]
    fn planted_signatures_recovered_by_id_with_exact_support() {
        let out = output();
        assert_eq!(out.planted.len(), 5);
        // Full-window motifs must appear in the catalog with support
        // equal to their cohort size (noise never fakes a motif).
        for name in ["churn", "engagement", "error_chain"] {
            let rec = out.planted.iter().find(|p| p.name == name).expect(name);
            let hit = out
                .catalog
                .find(rec.id)
                .unwrap_or_else(|| panic!("{name} motif missing from catalog"));
            assert_eq!(hit.user_count, rec.n_users, "{name} support");
        }
    }

    #[test]
    fn catalog_respects_config_caps() {
        let out = output();
        let cfg = PatternStageConfig::default();
        assert!(out.catalog.patterns.len() <= cfg.max_patterns);
        assert!(out
            .catalog
            .patterns
            .iter()
            .all(|p| p.sequence.len() <= cfg.mining.max_length));
        let need = cfg.mining.threshold(out.catalog.n_users as usize);
        assert!(out.catalog.patterns.iter().all(|p| p.user_count >= need));
    }

    #[test]
    fn artifact_roundtrips_bit_exactly() {
        let out = output();
        let mut w = ByteWriter::new();
        encode_patterns(out, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_patterns(&mut r).expect("decode");
        assert!(r.is_empty());
        assert_eq!(&back, out);
        let mut w2 = ByteWriter::new();
        encode_patterns(&back, &mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn truncated_artifact_errors() {
        let out = output();
        let mut w = ByteWriter::new();
        encode_patterns(out, &mut w);
        let bytes = w.into_bytes();
        assert!(decode_patterns(&mut ByteReader::new(&bytes[..bytes.len() / 2])).is_err());
    }
}
