//! End-to-end pipeline: the whole of paper Figure 1 on one world.

use crate::correlate::{correlate, correlate_reverse, CorrelationResult};
use crate::error::{CoreError, Result};
use crate::event_module::{detect_news_events, detect_twitter_events, EventModuleConfig};
use crate::features::{assign_tweets, build_dataset, Dataset, DatasetVariant, EventAssignment};
use crate::preprocess::{build_news_ed, build_news_tm, build_twitter_ed};
use crate::pretrained::{train_pretrained, PretrainedConfig};
use crate::topic_module::{extract_topics, NewsTopics, TopicModuleConfig};
use crate::trending::{extract_trending, TrendingTopic};
use nd_embed::WordVectors;
use nd_events::Event;
use nd_synth::{World, WorldConfig};

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Synthetic-world parameters.
    pub world: WorldConfig,
    /// Topic-modeling parameters.
    pub topic: TopicModuleConfig,
    /// Event-detection parameters.
    pub event: EventModuleConfig,
    /// Pretrained-embedding parameters.
    pub pretrained: PretrainedConfig,
    /// News-topic ↔ news-event threshold (paper: 0.7).
    pub trending_threshold: f64,
    /// Trending ↔ Twitter-event threshold (paper: 0.65).
    pub correlation_threshold: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            world: WorldConfig::default(),
            topic: TopicModuleConfig::default(),
            event: EventModuleConfig::default(),
            pretrained: PretrainedConfig::default(),
            trending_threshold: 0.7,
            correlation_threshold: 0.65,
        }
    }
}

impl PipelineConfig {
    /// A fast configuration for tests and examples: two simulated
    /// weeks, 32-dimension embeddings.
    pub fn small() -> Self {
        PipelineConfig {
            world: WorldConfig::small(),
            topic: TopicModuleConfig { n_topics: 10, max_iter: 120, ..Default::default() },
            event: EventModuleConfig::default(),
            pretrained: PretrainedConfig {
                dim: 32,
                n_sentences: 1_500,
                epochs: 5,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// Everything the pipeline produced, stage by stage.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The generated world (ground truth attached).
    pub world: World,
    /// NMF news topics.
    pub topics: NewsTopics,
    /// MABED news events.
    pub news_events: Vec<Event>,
    /// MABED Twitter events (≥ 10 tweets each).
    pub twitter_events: Vec<Event>,
    /// Trending news topics (topic ↔ news-event pairs ≥ 0.7).
    pub trending: Vec<TrendingTopic>,
    /// Forward correlation result (trending → Twitter events).
    pub correlation: CorrelationResult,
    /// Reverse correlation result (Twitter events → trending).
    pub reverse_correlation: CorrelationResult,
    /// Correlated Twitter events (the ones feeding feature creation).
    pub correlated_events: Vec<Event>,
    /// Tweet-to-event assignments over `correlated_events`.
    pub assignments: Vec<EventAssignment>,
    /// The pretrained word vectors.
    pub vectors: WordVectors,
    /// TwitterED token streams, aligned with `world.tweets`.
    pub tweet_tokens: Vec<Vec<String>>,
}

/// The pipeline runner.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a runner.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// Runs every stage of Figure 1 and returns the intermediate and
    /// final artifacts.
    ///
    /// # Errors
    /// Returns [`CoreError::NoOutput`] when a stage that later stages
    /// depend on produces nothing (e.g. no Twitter events survive the
    /// 10-tweet rule).
    pub fn run(&self) -> Result<PipelineOutput> {
        let cfg = &self.config;
        // (1) Data generation / collection.
        let world = World::generate(cfg.world.clone());
        if world.articles.is_empty() || world.tweets.is_empty() {
            return Err(CoreError::EmptyInput("world generation"));
        }

        // (2) Preprocessing: the three corpora.
        let news_tm = build_news_tm(&world.articles);
        let news_ed = build_news_ed(&world.articles);
        let twitter_ed = build_twitter_ed(&world.tweets);
        let tweet_tokens: Vec<Vec<String>> =
            twitter_ed.iter().map(|d| d.tokens.clone()).collect();

        // (3) Topic modeling.
        let topics = extract_topics(&news_tm, &cfg.topic);

        // (4) Event detection.
        let news_events = detect_news_events(&news_ed, &cfg.event);
        if news_events.is_empty() {
            return Err(CoreError::NoOutput("news event detection"));
        }
        let twitter_events = detect_twitter_events(&twitter_ed, &cfg.event);
        if twitter_events.is_empty() {
            return Err(CoreError::NoOutput("twitter event detection"));
        }

        // (5) Pretrained embeddings.
        let vectors = train_pretrained(&cfg.pretrained);

        // (6) Trending news topics.
        let trending =
            extract_trending(&topics.topics, &news_events, &vectors, cfg.trending_threshold);
        if trending.is_empty() {
            return Err(CoreError::NoOutput("trending extraction"));
        }

        // (7) Correlation, both directions.
        let correlation =
            correlate(&trending, &twitter_events, &vectors, cfg.correlation_threshold);
        let reverse_correlation =
            correlate_reverse(&trending, &twitter_events, &vectors, cfg.correlation_threshold);

        // (8) Feature creation inputs: the correlated Twitter events.
        let mut correlated_idx: Vec<usize> =
            correlation.pairs.iter().map(|p| p.twitter_idx).collect();
        correlated_idx.sort_unstable();
        correlated_idx.dedup();
        let correlated_events: Vec<Event> =
            correlated_idx.iter().map(|&i| twitter_events[i].clone()).collect();
        let assignments = assign_tweets(&correlated_events, &world.tweets, &tweet_tokens);

        Ok(PipelineOutput {
            world,
            topics,
            news_events,
            twitter_events,
            trending,
            correlation,
            reverse_correlation,
            correlated_events,
            assignments,
            vectors,
            tweet_tokens,
        })
    }
}

impl PipelineOutput {
    /// Builds one of the §5.6 dataset variants from this run.
    pub fn dataset(&self, variant: DatasetVariant, seed: u64) -> Dataset {
        build_dataset(
            variant,
            &self.correlated_events,
            &self.assignments,
            &self.world.tweets,
            &self.tweet_tokens,
            &self.vectors,
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The small pipeline is expensive enough that tests share a run.
    fn output() -> &'static PipelineOutput {
        static OUT: OnceLock<PipelineOutput> = OnceLock::new();
        OUT.get_or_init(|| Pipeline::new(PipelineConfig::small()).run().expect("pipeline"))
    }

    #[test]
    fn all_stages_produce_output() {
        let o = output();
        assert!(!o.topics.topics.is_empty());
        assert!(!o.news_events.is_empty());
        assert!(!o.twitter_events.is_empty());
        assert!(!o.trending.is_empty());
        assert!(!o.correlation.pairs.is_empty());
        assert!(!o.assignments.is_empty());
    }

    #[test]
    fn every_trending_topic_matches_a_twitter_event() {
        // Paper §5.5: "all the trending news topics have correlations
        // with at least one Twitter event".
        let o = output();
        let matched: std::collections::HashSet<usize> =
            o.correlation.pairs.iter().map(|p| p.trending_idx).collect();
        for (i, t) in o.trending.iter().enumerate() {
            assert!(
                matched.contains(&i),
                "trending topic {i} ({}) matches no Twitter event",
                t.event.main_word
            );
        }
    }

    #[test]
    fn reverse_correlation_same_pair_set() {
        // Paper §5.5/§5.8.
        let o = output();
        let mut fwd: Vec<(usize, usize)> =
            o.correlation.pairs.iter().map(|p| (p.trending_idx, p.twitter_idx)).collect();
        let mut rev: Vec<(usize, usize)> = o
            .reverse_correlation
            .pairs
            .iter()
            .map(|p| (p.trending_idx, p.twitter_idx))
            .collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn some_twitter_events_unrelated_to_news() {
        // Paper §5.5: "multiple Twitter events have no correlated
        // trending news topics" (the Table 7 set).
        let o = output();
        assert!(
            !o.correlation.unmatched_twitter.is_empty(),
            "expected unmatched Twitter chatter events"
        );
    }

    #[test]
    fn datasets_build_with_expected_shapes() {
        let o = output();
        let a1 = o.dataset(DatasetVariant::A1, 0);
        let a2 = o.dataset(DatasetVariant::A2, 0);
        assert!(!a1.is_empty());
        assert_eq!(a1.len(), a2.len());
        assert_eq!(a2.x.cols(), a1.x.cols() + 8);
        assert_eq!(a1.y_likes.len(), a1.len());
        assert!(a1.y_likes.iter().all(|&y| y < 3));
    }
}
