//! End-to-end pipeline: the whole of paper Figure 1 on one world,
//! driven as an explicit stage DAG with a content-addressed artifact
//! cache.
//!
//! The executor walks [`stages`](crate::stage::stages) in topological
//! order. For each stage it computes the fingerprint (config + code
//! version + upstream fingerprints), consults the cache when a
//! [`CacheConfig::dir`] is set, and only executes the stage body on a
//! miss. A warm re-run therefore executes zero stage bodies and is
//! bit-identical to the cold run; a re-run with one knob changed
//! recomputes exactly the downstream cone of that knob.

use crate::correlate::CorrelationResult;
use crate::error::{CoreError, Result};
use crate::event_module::{encode_event_list, EventModuleConfig};
use crate::features::{build_dataset, encode_assignments, Dataset, DatasetVariant, EventAssignment};
use crate::patterns_module::{encode_patterns, PatternStageConfig, PatternsOutput};
use crate::pretrained::{encode_vectors, PretrainedConfig};
use crate::stage::{correlated_events, stages, ArtifactSet};
use crate::topic_module::{encode_topics, NewsTopics, TopicModuleConfig};
use crate::trending::{encode_trending, TrendingTopic};
use nd_embed::WordVectors;
use nd_events::Event;
use nd_store::{fnv1a64, ArtifactStore, ByteReader, ByteWriter};
use nd_synth::{encode_world, World, WorldConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

/// Artifact-cache controls. None of these contribute to stage
/// fingerprints: they steer *whether* cached artifacts are used, not
/// *what* the pipeline computes.
#[derive(Debug, Clone, Default)]
pub struct CacheConfig {
    /// Run directory holding `<stage>-<fingerprint>.art` files plus
    /// the `run_report.json` sidecar. `None` disables caching (every
    /// stage recomputes in memory, nothing is persisted).
    pub dir: Option<PathBuf>,
    /// Recompute every stage even on a cache hit (cold run); results
    /// still overwrite the cache.
    pub force: bool,
    /// Recompute from this stage onward regardless of cache state;
    /// stages before it may still replay from cache.
    pub from: Option<String>,
    /// Stop after this stage; later stages are skipped entirely
    /// (use [`Pipeline::execute`] — a full [`PipelineOutput`] cannot
    /// be assembled from a truncated run).
    pub until: Option<String>,
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Synthetic-world parameters.
    pub world: WorldConfig,
    /// Topic-modeling parameters.
    pub topic: TopicModuleConfig,
    /// Event-detection parameters.
    pub event: EventModuleConfig,
    /// Pretrained-embedding parameters.
    pub pretrained: PretrainedConfig,
    /// News-topic ↔ news-event threshold (paper: 0.7).
    pub trending_threshold: f64,
    /// Trending ↔ Twitter-event threshold (paper: 0.65).
    pub correlation_threshold: f64,
    /// Audience-pattern mining parameters (stage 9).
    pub patterns: PatternStageConfig,
    /// Artifact-cache controls (excluded from stage fingerprints).
    pub cache: CacheConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            world: WorldConfig::default(),
            topic: TopicModuleConfig::default(),
            event: EventModuleConfig::default(),
            pretrained: PretrainedConfig::default(),
            trending_threshold: 0.7,
            correlation_threshold: 0.65,
            patterns: PatternStageConfig::default(),
            cache: CacheConfig::default(),
        }
    }
}

impl PipelineConfig {
    /// A fast configuration for tests and examples: two simulated
    /// weeks, 32-dimension embeddings.
    pub fn small() -> Self {
        PipelineConfig {
            world: WorldConfig::small(),
            topic: TopicModuleConfig { n_topics: 10, max_iter: 120, ..Default::default() },
            event: EventModuleConfig::default(),
            pretrained: PretrainedConfig {
                dim: 32,
                n_sentences: 1_500,
                epochs: 5,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Enables the artifact cache under `dir`.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache.dir = Some(dir.into());
        self
    }

    /// The workspace-shared run directory (`target/nd-run-cache`):
    /// test suites point here so the small world is trained once per
    /// workspace test pass and replayed everywhere else.
    pub fn shared_run_dir() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/nd-run-cache")
    }
}

/// Cache disposition of one stage in one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Replayed from a cached artifact; the body did not execute.
    Hit,
    /// No usable cached artifact; the body executed.
    Miss,
    /// `force`/`from` demanded recomputation; the body executed.
    Forced,
    /// Past the `until` stage; neither cache nor body was touched.
    Skipped,
}

impl CacheStatus {
    /// Stable lowercase label (JSON / metrics).
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Forced => "forced",
            CacheStatus::Skipped => "skipped",
        }
    }

    /// Whether the stage body executed.
    pub fn executed(self) -> bool {
        matches!(self, CacheStatus::Miss | CacheStatus::Forced)
    }
}

/// Per-stage observability record.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage name.
    pub stage: &'static str,
    /// The stage's cache fingerprint for this run.
    pub fingerprint: u64,
    /// What the executor did.
    pub cache: CacheStatus,
    /// Wall time of the stage (body or cache replay).
    pub wall_ms: f64,
    /// Serialized artifact payload size (0 when uncached/skipped).
    pub bytes: u64,
}

/// What one pipeline run did, stage by stage.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-stage records in execution order.
    pub stages: Vec<StageReport>,
    /// End-to-end wall time.
    pub total_ms: f64,
}

impl RunReport {
    /// Looks up one stage's record.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// How many stage bodies executed (cache misses + forced).
    pub fn executed(&self) -> usize {
        self.stages.iter().filter(|s| s.cache.executed()).count()
    }

    /// JSON rendering (the `run_report.json` sidecar format).
    pub fn to_json(&self) -> String {
        let stages: Vec<serde_json::Value> = self
            .stages
            .iter()
            .map(|s| {
                serde_json::json!({
                    "stage": s.stage,
                    "fingerprint": format!("{:016x}", s.fingerprint),
                    "cache": s.cache.as_str(),
                    "wall_ms": s.wall_ms,
                    "bytes": s.bytes,
                })
            })
            .collect();
        serde_json::json!({ "stages": stages, "total_ms": self.total_ms }).to_string()
    }

    /// Parses a `run_report.json` sidecar back into a report. Stage
    /// names are matched against the compiled-in registry; unknown
    /// stages or malformed fields are dropped.
    pub fn from_json(text: &str) -> Option<RunReport> {
        let v: serde_json::Value = serde_json::from_str(text).ok()?;
        let mut report = RunReport { stages: Vec::new(), total_ms: v["total_ms"].as_f64()? };
        for s in v["stages"].as_array()? {
            let name = s["stage"].as_str()?;
            let Some(stage) =
                stages().iter().map(|st| st.name()).find(|n| *n == name)
            else {
                continue;
            };
            let cache = match s["cache"].as_str()? {
                "hit" => CacheStatus::Hit,
                "miss" => CacheStatus::Miss,
                "forced" => CacheStatus::Forced,
                _ => CacheStatus::Skipped,
            };
            report.stages.push(StageReport {
                stage,
                fingerprint: u64::from_str_radix(s["fingerprint"].as_str()?, 16).ok()?,
                cache,
                wall_ms: s["wall_ms"].as_f64()?,
                bytes: s["bytes"].as_u64()?,
            });
        }
        Some(report)
    }
}

/// Everything the pipeline produced, stage by stage.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The generated world (ground truth attached).
    pub world: World,
    /// NMF news topics.
    pub topics: NewsTopics,
    /// MABED news events.
    pub news_events: Vec<Event>,
    /// MABED Twitter events (≥ 10 tweets each).
    pub twitter_events: Vec<Event>,
    /// Trending news topics (topic ↔ news-event pairs ≥ 0.7).
    pub trending: Vec<TrendingTopic>,
    /// Forward correlation result (trending → Twitter events).
    pub correlation: CorrelationResult,
    /// Reverse correlation result (Twitter events → trending).
    pub reverse_correlation: CorrelationResult,
    /// Correlated Twitter events (the ones feeding feature creation).
    pub correlated_events: Vec<Event>,
    /// Tweet-to-event assignments over `correlated_events`.
    pub assignments: Vec<EventAssignment>,
    /// The pretrained word vectors.
    pub vectors: WordVectors,
    /// TwitterED token streams, aligned with `world.tweets` (moved
    /// out of the preprocessing artifact — never copied).
    pub tweet_tokens: Vec<Vec<String>>,
    /// The mined audience-pattern catalog + planted ground truth.
    pub patterns: PatternsOutput,
}

/// The pipeline runner.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a runner.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// Runs every stage of Figure 1 and returns the intermediate and
    /// final artifacts.
    ///
    /// # Errors
    /// Returns [`CoreError::NoOutput`] when a stage that later stages
    /// depend on produces nothing (e.g. no Twitter events survive the
    /// 10-tweet rule).
    pub fn run(&self) -> Result<PipelineOutput> {
        self.run_with_report().map(|(output, _)| output)
    }

    /// Like [`run`](Pipeline::run), also returning the per-stage
    /// cache/timing report.
    ///
    /// # Errors
    /// As [`run`](Pipeline::run); additionally
    /// [`CoreError::Artifact`] when `cache.until` truncated the run
    /// before the final stage.
    pub fn run_with_report(&self) -> Result<(PipelineOutput, RunReport)> {
        let (mut artifacts, report) = self.execute()?;
        let output = PipelineOutput::assemble(&mut artifacts)?;
        Ok((output, report))
    }

    /// Walks the stage DAG, replaying cached artifacts and executing
    /// bodies only on misses. Returns whatever was materialized —
    /// with `cache.until` set, later artifacts are absent.
    ///
    /// # Errors
    /// [`CoreError::Artifact`] for unknown stage names in
    /// `cache.from`/`cache.until` or an unusable cache directory;
    /// stage-body errors propagate unchanged.
    pub fn execute(&self) -> Result<(ArtifactSet, RunReport)> {
        let cfg = &self.config;
        let graph = stages();
        let stage_index = |label: &str, name: &Option<String>| -> Result<Option<usize>> {
            match name {
                None => Ok(None),
                Some(n) => graph
                    .iter()
                    .position(|s| s.name() == n.as_str())
                    .map(Some)
                    .ok_or_else(|| {
                        CoreError::Artifact(format!("unknown stage `{n}` in `{label}`"))
                    }),
            }
        };
        let from_idx = stage_index("from", &cfg.cache.from)?;
        let until_idx = stage_index("until", &cfg.cache.until)?;
        let store = match &cfg.cache.dir {
            Some(dir) => Some(ArtifactStore::open(dir)?),
            None => None,
        };

        let run_start = Instant::now();
        let mut fingerprints: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut artifacts = ArtifactSet::new();
        let mut report = RunReport::default();

        for (i, stage) in graph.iter().enumerate() {
            let input_fps: Vec<u64> =
                stage.deps().iter().map(|d| fingerprints[d]).collect();
            let fp = stage.fingerprint(cfg, &input_fps);
            fingerprints.insert(stage.name(), fp);

            if until_idx.is_some_and(|u| i > u) {
                report.stages.push(StageReport {
                    stage: stage.name(),
                    fingerprint: fp,
                    cache: CacheStatus::Skipped,
                    wall_ms: 0.0,
                    bytes: 0,
                });
                continue;
            }

            let forced = cfg.cache.force || from_idx.is_some_and(|f| i >= f);
            let stage_start = Instant::now();
            let mut bytes = 0u64;

            // A cached artifact is usable only when it decodes fully:
            // truncation, codec drift, or trailing garbage all read as
            // misses and fall through to recomputation.
            let mut replayed = None;
            if !forced {
                if let Some(store) = &store {
                    if let Some(payload) = store.load(stage.name(), fp) {
                        let mut r = ByteReader::new(&payload);
                        if let Ok(value) = stage.decode(&mut r) {
                            if r.is_empty() {
                                bytes = payload.len() as u64;
                                replayed = Some(value);
                            }
                        }
                    }
                }
            }

            let (value, status) = match replayed {
                Some(value) => (value, CacheStatus::Hit),
                None => {
                    let value = stage.run(cfg, &artifacts)?;
                    if let Some(store) = &store {
                        let mut w = ByteWriter::new();
                        stage.encode(&value, &mut w)?;
                        bytes = w.len() as u64;
                        store.save(stage.name(), fp, w.as_bytes())?;
                    }
                    let status =
                        if forced { CacheStatus::Forced } else { CacheStatus::Miss };
                    (value, status)
                }
            };
            artifacts.insert(stage.name(), value);
            report.stages.push(StageReport {
                stage: stage.name(),
                fingerprint: fp,
                cache: status,
                wall_ms: stage_start.elapsed().as_secs_f64() * 1e3,
                bytes,
            });
        }

        report.total_ms = run_start.elapsed().as_secs_f64() * 1e3;
        if let Some(store) = &store {
            store.write_text("run_report.json", &report.to_json())?;
        }
        Ok((artifacts, report))
    }
}

impl PipelineOutput {
    /// Assembles the public output from a fully-materialized artifact
    /// set, moving every artifact out (tweet tokens are moved from the
    /// preprocessing corpus, never cloned).
    ///
    /// # Errors
    /// [`CoreError::Artifact`] when a stage artifact is absent.
    pub fn assemble(artifacts: &mut ArtifactSet) -> Result<PipelineOutput> {
        let world = artifacts.take_world()?;
        let corpora = artifacts.take_corpora()?;
        let topics = artifacts.take_topics()?;
        let events = artifacts.take_events()?;
        let vectors = artifacts.take_vectors()?;
        let trending = artifacts.take_trending()?;
        let correlation_out = artifacts.take_correlation()?;
        let assignments = artifacts.take_assignments()?;
        let patterns = artifacts.take_patterns()?;

        let correlated = correlated_events(&correlation_out.forward, &events.twitter);
        let tweet_tokens: Vec<Vec<String>> =
            corpora.twitter_ed.into_iter().map(|d| d.tokens).collect();
        Ok(PipelineOutput {
            world,
            topics,
            news_events: events.news,
            twitter_events: events.twitter,
            trending,
            correlation: correlation_out.forward,
            reverse_correlation: correlation_out.reverse,
            correlated_events: correlated,
            assignments,
            vectors,
            tweet_tokens,
            patterns,
        })
    }

    /// Builds one of the §5.6 dataset variants from this run.
    pub fn dataset(&self, variant: DatasetVariant, seed: u64) -> Dataset {
        build_dataset(
            variant,
            &self.correlated_events,
            &self.assignments,
            &self.world.tweets,
            &self.tweet_tokens,
            &self.vectors,
            seed,
        )
    }

    /// A stable 64-bit digest over every artifact (all floats hashed
    /// via their bit patterns). Two runs are bit-identical iff their
    /// digests agree — the determinism suite's warm ≡ cold check.
    pub fn content_digest(&self) -> u64 {
        let mut w = ByteWriter::new();
        encode_world(&self.world, &mut w);
        encode_topics(&self.topics, &mut w);
        encode_event_list(&self.news_events, &mut w);
        encode_event_list(&self.twitter_events, &mut w);
        encode_trending(&self.trending, &mut w);
        crate::correlate::encode_correlation(&self.correlation, &mut w);
        crate::correlate::encode_correlation(&self.reverse_correlation, &mut w);
        encode_event_list(&self.correlated_events, &mut w);
        encode_assignments(&self.assignments, &mut w);
        encode_vectors(&self.vectors, &mut w);
        w.put_usize(self.tweet_tokens.len());
        for tokens in &self.tweet_tokens {
            w.put_str_list(tokens);
        }
        encode_patterns(&self.patterns, &mut w);
        fnv1a64(w.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The small pipeline is expensive enough that tests share a run —
    /// and all suites share one on-disk run directory, so the world is
    /// trained at most once per workspace test pass.
    fn output() -> &'static PipelineOutput {
        static OUT: OnceLock<PipelineOutput> = OnceLock::new();
        OUT.get_or_init(|| {
            Pipeline::new(
                PipelineConfig::small().with_cache_dir(PipelineConfig::shared_run_dir()),
            )
            .run()
            .expect("pipeline")
        })
    }

    #[test]
    fn all_stages_produce_output() {
        let o = output();
        assert!(!o.topics.topics.is_empty());
        assert!(!o.news_events.is_empty());
        assert!(!o.twitter_events.is_empty());
        assert!(!o.trending.is_empty());
        assert!(!o.correlation.pairs.is_empty());
        assert!(!o.assignments.is_empty());
    }

    #[test]
    fn every_trending_topic_matches_a_twitter_event() {
        // Paper §5.5: "all the trending news topics have correlations
        // with at least one Twitter event".
        let o = output();
        let matched: std::collections::HashSet<usize> =
            o.correlation.pairs.iter().map(|p| p.trending_idx).collect();
        for (i, t) in o.trending.iter().enumerate() {
            assert!(
                matched.contains(&i),
                "trending topic {i} ({}) matches no Twitter event",
                t.event.main_word
            );
        }
    }

    #[test]
    fn reverse_correlation_same_pair_set() {
        // Paper §5.5/§5.8.
        let o = output();
        let mut fwd: Vec<(usize, usize)> =
            o.correlation.pairs.iter().map(|p| (p.trending_idx, p.twitter_idx)).collect();
        let mut rev: Vec<(usize, usize)> = o
            .reverse_correlation
            .pairs
            .iter()
            .map(|p| (p.trending_idx, p.twitter_idx))
            .collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn some_twitter_events_unrelated_to_news() {
        // Paper §5.5: "multiple Twitter events have no correlated
        // trending news topics" (the Table 7 set).
        let o = output();
        assert!(
            !o.correlation.unmatched_twitter.is_empty(),
            "expected unmatched Twitter chatter events"
        );
    }

    #[test]
    fn datasets_build_with_expected_shapes() {
        let o = output();
        let a1 = o.dataset(DatasetVariant::A1, 0);
        let a2 = o.dataset(DatasetVariant::A2, 0);
        assert!(!a1.is_empty());
        assert_eq!(a1.len(), a2.len());
        assert_eq!(a2.x.cols(), a1.x.cols() + 8);
        assert_eq!(a1.y_likes.len(), a1.len());
        assert!(a1.y_likes.iter().all(|&y| y < 3));
    }

    #[test]
    fn unknown_stage_names_rejected() {
        let mut config = PipelineConfig::small();
        config.cache.from = Some("nonsense".into());
        let err = Pipeline::new(config).execute().unwrap_err();
        assert!(err.to_string().contains("nonsense"), "got: {err}");
    }

    #[test]
    fn run_report_json_roundtrips() {
        let report = RunReport {
            stages: vec![StageReport {
                stage: "collect",
                fingerprint: 0xdead_beef,
                cache: CacheStatus::Hit,
                wall_ms: 1.5,
                bytes: 42,
            }],
            total_ms: 2.0,
        };
        let back = RunReport::from_json(&report.to_json()).expect("parse");
        assert_eq!(back.stages.len(), 1);
        assert_eq!(back.stages[0].stage, "collect");
        assert_eq!(back.stages[0].fingerprint, 0xdead_beef);
        assert_eq!(back.stages[0].cache, CacheStatus::Hit);
        assert_eq!(back.stages[0].bytes, 42);
        assert!((back.total_ms - 2.0).abs() < 1e-12);
    }
}
