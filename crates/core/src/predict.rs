//! Audience Interest Prediction module (paper §4.8, §5.6).
//!
//! Two architectures (paper Figures 2–3):
//!
//! * **MLP** — Dense(in→128) ReLU → Dense(128→64) ReLU → Dense(64→3);
//! * **CNN** — Conv1d(kernel 5, 8 filters) ReLU → MaxPool(4) →
//!   Dense(→64) ReLU → Dense(64→3);
//!
//! each trained with both optimizers after the paper's hyper-parameter
//! tuning: SGD with `lr = 0.5` (MLP 1 / CNN 1) and ADADELTA with
//! `lr = 2` (MLP 2 / CNN 2), batch size 5000, at most 500 epochs,
//! early stopping on loss plateau. Evaluation reports the Eq. (17)
//! average accuracy over a held-out validation split.

use crate::features::Dataset;
use nd_neural::train::train_val_split;
use nd_neural::{
    Activation, ActivationLayer, Adadelta, Conv1d, Dense, EarlyStopping, Loss, MaxPool1d,
    Network, Optimizer, Sgd, TrainReport, Trainer, TrainerConfig,
};

/// Number of engagement classes (Table 2).
pub const N_CLASSES: usize = 3;

/// The four network configurations of §5.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// MLP + SGD(lr = 0.5).
    Mlp1,
    /// MLP + ADADELTA(lr = 2).
    Mlp2,
    /// CNN + SGD(lr = 0.5).
    Cnn1,
    /// CNN + ADADELTA(lr = 2).
    Cnn2,
}

impl NetworkKind {
    /// All four, in the paper's column order.
    pub const ALL: [NetworkKind; 4] =
        [NetworkKind::Mlp1, NetworkKind::Mlp2, NetworkKind::Cnn1, NetworkKind::Cnn2];

    /// Paper label.
    pub fn name(&self) -> &'static str {
        match self {
            NetworkKind::Mlp1 => "MLP 1",
            NetworkKind::Mlp2 => "MLP 2",
            NetworkKind::Cnn1 => "CNN 1",
            NetworkKind::Cnn2 => "CNN 2",
        }
    }

    /// `true` for the convolutional variants.
    pub fn is_cnn(&self) -> bool {
        matches!(self, NetworkKind::Cnn1 | NetworkKind::Cnn2)
    }

    /// The configured optimizer.
    pub fn optimizer(&self) -> Box<dyn Optimizer> {
        match self {
            NetworkKind::Mlp1 | NetworkKind::Cnn1 => Box::new(Sgd::new(0.5)),
            NetworkKind::Mlp2 | NetworkKind::Cnn2 => Box::new(Adadelta::new(2.0)),
        }
    }

    /// Builds the network for an input dimensionality.
    pub fn build(&self, input_dim: usize, seed: u64) -> Network {
        if self.is_cnn() {
            build_cnn(input_dim, seed)
        } else {
            build_mlp(input_dim, seed)
        }
    }
}

/// The MLP of paper Figure 2.
pub fn build_mlp(input_dim: usize, seed: u64) -> Network {
    Network::new(Loss::SoftmaxCrossEntropy)
        .add(Dense::new(input_dim, 128, seed))
        .add(ActivationLayer::new(Activation::Relu))
        .add(Dense::new(128, 64, seed ^ 0x1))
        .add(ActivationLayer::new(Activation::Relu))
        .add(Dense::new(64, N_CLASSES, seed ^ 0x2))
}

/// The CNN of paper Figure 3.
pub fn build_cnn(input_dim: usize, seed: u64) -> Network {
    const KERNEL: usize = 5;
    const FILTERS: usize = 8;
    const POOL: usize = 4;
    let conv = Conv1d::new(input_dim, KERNEL, FILTERS, seed);
    let conv_len = conv.out_len();
    let pool = MaxPool1d::new(FILTERS, conv_len, POOL);
    let flat_dim = FILTERS * pool.out_len();
    Network::new(Loss::SoftmaxCrossEntropy)
        .add(conv)
        .add(ActivationLayer::new(Activation::Relu))
        .add(pool)
        .add(Dense::new(flat_dim, 64, seed ^ 0x3))
        .add(ActivationLayer::new(Activation::Relu))
        .add(Dense::new(64, N_CLASSES, seed ^ 0x4))
}

/// Training/evaluation protocol parameters.
#[derive(Debug, Clone)]
pub struct PredictConfig {
    /// Mini-batch size (paper: 5000).
    pub batch_size: usize,
    /// Epoch cap (paper: 500).
    pub max_epochs: usize,
    /// Early-stopping rule.
    pub early_stopping: Option<EarlyStopping>,
    /// Held-out validation fraction.
    pub val_fraction: f64,
    /// Seed for split/shuffle/init.
    pub seed: u64,
}

impl Default for PredictConfig {
    fn default() -> Self {
        PredictConfig {
            batch_size: 5000,
            max_epochs: 500,
            early_stopping: Some(EarlyStopping { min_delta: 1e-3, patience: 5 }),
            val_fraction: 0.2,
            seed: 42,
        }
    }
}

/// Which label set to predict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Likes (favorites).
    Likes,
    /// Retweets.
    Retweets,
}

/// Outcome of one `(dataset, network, target)` cell of Tables 8–9.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Eq. (17) average accuracy on the validation split.
    pub average_accuracy: f64,
    /// Plain accuracy on the validation split.
    pub accuracy: f64,
    /// Training report (epochs, per-epoch timing, loss curve).
    pub report: TrainReport,
}

/// Trains one network configuration on a dataset and evaluates on the
/// held-out split. This is the cell-level routine behind Tables 8, 9
/// and 10.
pub fn train_and_eval(
    dataset: &Dataset,
    kind: NetworkKind,
    target: Target,
    config: &PredictConfig,
) -> EvalResult {
    let y = match target {
        Target::Likes => &dataset.y_likes,
        Target::Retweets => &dataset.y_retweets,
    };
    let (tx, ty, vx, vy) = train_val_split(&dataset.x, y, config.val_fraction, config.seed);
    let mut network = kind.build(dataset.x.cols(), config.seed);
    let mut optimizer = kind.optimizer();
    let trainer = Trainer::new(TrainerConfig {
        batch_size: config.batch_size,
        max_epochs: config.max_epochs,
        early_stopping: config.early_stopping.clone(),
        seed: config.seed,
    });
    let report = trainer.fit(&mut network, &tx, &ty, optimizer.as_mut());
    let (average_accuracy, accuracy, _cm) =
        trainer.evaluate(&mut network, &vx, &vy, N_CLASSES);
    EvalResult { average_accuracy, accuracy, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_linalg::rng::SplitMix64;
    use nd_linalg::Mat;

    /// A synthetic dataset whose class is a (noisy) linear threshold of
    /// the features — learnable by both architectures.
    fn learnable_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix64::new(seed);
        let mut x = Mat::zeros(n, dim);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let mut s = 0.0;
            for c in 0..dim {
                let v = rng.next_gaussian();
                x.set(r, c, v);
                if c < 4 {
                    s += v;
                }
            }
            let label = if s < -1.0 {
                0
            } else if s < 1.0 {
                1
            } else {
                2
            };
            y.push(label);
        }
        Dataset { name: "T", x, y_likes: y.clone(), y_retweets: y }
    }

    fn quick_config() -> PredictConfig {
        PredictConfig {
            batch_size: 64,
            max_epochs: 40,
            early_stopping: Some(EarlyStopping { min_delta: 1e-4, patience: 3 }),
            val_fraction: 0.25,
            seed: 1,
        }
    }

    #[test]
    fn mlp_learns_synthetic_problem() {
        let ds = learnable_dataset(400, 12, 3);
        let res = train_and_eval(&ds, NetworkKind::Mlp1, Target::Likes, &quick_config());
        assert!(res.accuracy > 0.7, "MLP1 accuracy {}", res.accuracy);
        assert!(res.average_accuracy >= res.accuracy);
    }

    #[test]
    fn cnn_learns_synthetic_problem() {
        let ds = learnable_dataset(400, 12, 4);
        let res = train_and_eval(&ds, NetworkKind::Cnn1, Target::Likes, &quick_config());
        assert!(res.accuracy > 0.6, "CNN1 accuracy {}", res.accuracy);
    }

    #[test]
    fn adadelta_variants_also_learn() {
        let ds = learnable_dataset(300, 10, 5);
        for kind in [NetworkKind::Mlp2, NetworkKind::Cnn2] {
            let res = train_and_eval(&ds, kind, Target::Likes, &quick_config());
            assert!(res.accuracy > 0.5, "{} accuracy {}", kind.name(), res.accuracy);
        }
    }

    #[test]
    fn architectures_match_paper_shapes() {
        let mlp = build_mlp(308, 0);
        assert_eq!(mlp.n_layers(), 5);
        // 308*128+128 + 128*64+64 + 64*3+3
        assert_eq!(mlp.n_params(), 308 * 128 + 128 + 128 * 64 + 64 + 64 * 3 + 3);
        let cnn = build_cnn(308, 0);
        assert_eq!(cnn.n_layers(), 6);
        let summary = cnn.summary().join(" | ");
        assert!(summary.contains("Conv1d"), "{summary}");
        assert!(summary.contains("MaxPool1d"), "{summary}");
    }

    #[test]
    fn network_kind_metadata() {
        assert_eq!(NetworkKind::ALL.len(), 4);
        assert!(NetworkKind::Cnn2.is_cnn());
        assert!(!NetworkKind::Mlp1.is_cnn());
        assert!(NetworkKind::Mlp2.optimizer().name().contains("ADADELTA"));
        assert!(NetworkKind::Cnn1.optimizer().name().contains("SGD"));
    }

    #[test]
    fn targets_use_different_labels() {
        let mut ds = learnable_dataset(200, 8, 7);
        // Make retweet labels constant; likes stay learnable.
        ds.y_retweets = vec![1; ds.len()];
        let likes = train_and_eval(&ds, NetworkKind::Mlp1, Target::Likes, &quick_config());
        let rts = train_and_eval(&ds, NetworkKind::Mlp1, Target::Retweets, &quick_config());
        // Constant labels are trivially 100% predictable.
        assert!(rts.accuracy > 0.95);
        assert!(likes.accuracy > 0.6);
    }

    #[test]
    fn deterministic_by_seed() {
        let ds = learnable_dataset(200, 8, 9);
        let a = train_and_eval(&ds, NetworkKind::Mlp1, Target::Likes, &quick_config());
        let b = train_and_eval(&ds, NetworkKind::Mlp1, Target::Likes, &quick_config());
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.report.epochs, b.report.epochs);
    }
}
