//! Preprocessing module (paper §4.2): builds the three corpora.
//!
//! * **NewsTM** — per-article token streams for topic modeling
//!   (entities-as-concepts, lemmas, no punctuation/stopwords);
//! * **NewsED** — timestamped token streams for news event detection
//!   (punctuation removal + tokenization only);
//! * **TwitterED** — timestamped token streams for Twitter event
//!   detection, with `@mention` counts preserved for MABED.

use nd_events::TimestampedDoc;
use nd_store::{ArtifactError, ByteReader, ByteWriter};
use nd_synth::{NewsArticle, Tweet};
use nd_text::pipeline::{count_mentions, preprocess_event_detection};
use nd_text::preprocess_topic_modeling;

/// The preprocessing stage's artifact: all three corpora of §4.2,
/// each aligned with its source collection.
#[derive(Debug, Clone)]
pub struct Corpora {
    /// NewsTM token streams, aligned with `world.articles`.
    pub news_tm: Vec<Vec<String>>,
    /// NewsED timestamped docs, aligned with `world.articles`.
    pub news_ed: Vec<TimestampedDoc>,
    /// TwitterED timestamped docs, aligned with `world.tweets`.
    pub twitter_ed: Vec<TimestampedDoc>,
}

impl Corpora {
    /// Builds all three corpora from the collected world.
    pub fn build(articles: &[NewsArticle], tweets: &[Tweet]) -> Corpora {
        Corpora {
            news_tm: build_news_tm(articles),
            news_ed: build_news_ed(articles),
            twitter_ed: build_twitter_ed(tweets),
        }
    }
}

/// Encodes the preprocessing artifact.
pub fn encode_corpora(c: &Corpora, out: &mut ByteWriter) {
    out.put_usize(c.news_tm.len());
    for doc in &c.news_tm {
        out.put_str_list(doc);
    }
    encode_timestamped(&c.news_ed, out);
    encode_timestamped(&c.twitter_ed, out);
}

/// Decodes the preprocessing artifact.
///
/// # Errors
/// Truncated or malformed payloads yield an [`ArtifactError`].
pub fn decode_corpora(r: &mut ByteReader<'_>) -> Result<Corpora, ArtifactError> {
    let n = r.len_prefix()?;
    let mut news_tm = Vec::with_capacity(n);
    for _ in 0..n {
        news_tm.push(r.str_list()?);
    }
    Ok(Corpora { news_tm, news_ed: decode_timestamped(r)?, twitter_ed: decode_timestamped(r)? })
}

pub(crate) fn encode_timestamped(docs: &[TimestampedDoc], out: &mut ByteWriter) {
    out.put_usize(docs.len());
    for d in docs {
        out.put_u64(d.timestamp);
        out.put_str_list(&d.tokens);
        out.put_usize(d.mentions);
    }
}

pub(crate) fn decode_timestamped(r: &mut ByteReader<'_>) -> Result<Vec<TimestampedDoc>, ArtifactError> {
    let n = r.len_prefix()?;
    let mut docs = Vec::with_capacity(n);
    for _ in 0..n {
        docs.push(TimestampedDoc {
            timestamp: r.u64()?,
            tokens: r.str_list()?,
            mentions: r.usize()?,
        });
    }
    Ok(docs)
}

/// The NewsTM corpus: one token stream per article, aligned with the
/// input order.
pub fn build_news_tm(articles: &[NewsArticle]) -> Vec<Vec<String>> {
    articles
        .iter()
        .map(|a| {
            let text = format!("{}. {}", a.title, a.content);
            preprocess_topic_modeling(&text)
        })
        .collect()
}

/// The NewsED corpus (news articles carry no mentions).
pub fn build_news_ed(articles: &[NewsArticle]) -> Vec<TimestampedDoc> {
    articles
        .iter()
        .map(|a| {
            let text = format!("{} {}", a.title, a.content);
            TimestampedDoc::new(a.timestamp, preprocess_event_detection(&text), 0)
        })
        .collect()
}

/// The TwitterED corpus, with per-tweet mention counts.
pub fn build_twitter_ed(tweets: &[Tweet]) -> Vec<TimestampedDoc> {
    tweets
        .iter()
        .map(|t| {
            TimestampedDoc::new(
                t.timestamp,
                preprocess_event_detection(&t.text),
                count_mentions(&t.text),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_synth::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig { days: 3, n_users: 50, min_influencers: 5, ..WorldConfig::small() })
    }

    #[test]
    fn news_tm_aligned_and_clean() {
        let w = world();
        let corpus = build_news_tm(&w.articles);
        assert_eq!(corpus.len(), w.articles.len());
        for doc in corpus.iter().take(50) {
            assert!(!doc.is_empty());
            for tok in doc {
                assert!(!nd_text::is_stopword(tok), "stopword {tok} survived");
                assert!(!tok.contains(['.', ',', '!']), "punctuation {tok} survived");
            }
        }
    }

    #[test]
    fn news_ed_keeps_stopwords() {
        let w = world();
        let corpus = build_news_ed(&w.articles);
        let has_stopword = corpus
            .iter()
            .take(100)
            .any(|d| d.tokens.iter().any(|t| nd_text::is_stopword(t)));
        assert!(has_stopword, "ED pipeline must not remove stopwords");
        assert!(corpus.iter().all(|d| d.mentions == 0));
    }

    #[test]
    fn twitter_ed_counts_mentions() {
        let w = world();
        let corpus = build_twitter_ed(&w.tweets);
        assert_eq!(corpus.len(), w.tweets.len());
        let with_mentions = corpus.iter().filter(|d| d.mentions > 0).count();
        assert!(
            with_mentions as f64 / corpus.len() as f64 > 0.4,
            "mentions preserved for MABED: {with_mentions}/{}",
            corpus.len()
        );
    }

    #[test]
    fn timestamps_propagate() {
        let w = world();
        let corpus = build_twitter_ed(&w.tweets);
        for (doc, tweet) in corpus.iter().zip(&w.tweets) {
            assert_eq!(doc.timestamp, tweet.timestamp);
        }
    }

    #[test]
    fn urls_stripped_from_twitter_ed() {
        let w = world();
        let corpus = build_twitter_ed(&w.tweets);
        for d in corpus.iter().take(300) {
            assert!(
                d.tokens.iter().all(|t| !t.contains("https") && !t.contains("t.co")),
                "URL survived: {:?}",
                d.tokens
            );
        }
    }
}
