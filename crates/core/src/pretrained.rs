//! The "pretrained" word-embedding model.
//!
//! The paper vectorizes with a Word2Vec pretrained on the 3-million-
//! word Google News corpus (§4.9) because it is far larger than the
//! collected datasets. We reproduce the *role* of that model: a
//! Word2Vec trained on a large synthetic background corpus that
//! supersets the evaluation vocabulary — so lookups have the same
//! hit/miss structure and intra-topic geometry the pipeline relies
//! on, without any external download.

use nd_embed::{Word2Vec, Word2VecConfig, Word2VecMode, WordVectors};
use nd_linalg::rng::SplitMix64;
use nd_store::{ArtifactError, ByteReader, ByteWriter};
use nd_synth::topics::{topic_inventory, FILLER, OUTLETS};

/// Encodes the pretrained embedding table (insertion order preserved).
pub fn encode_vectors(wv: &WordVectors, out: &mut ByteWriter) {
    out.put_usize(wv.dim());
    out.put_usize(wv.len());
    for (word, vector) in wv.iter() {
        out.put_str(word);
        for &x in vector {
            out.put_f64(x);
        }
    }
}

/// Decodes a pretrained embedding table.
///
/// # Errors
/// Truncated or malformed payloads yield an [`ArtifactError`].
pub fn decode_vectors(r: &mut ByteReader<'_>) -> Result<WordVectors, ArtifactError> {
    let dim = r.usize()?;
    let n = r.len_prefix()?;
    if n.saturating_mul(dim).saturating_mul(8) > r.remaining() {
        return Err(ArtifactError::Truncated { need: n * dim * 8, have: r.remaining() });
    }
    let mut wv = WordVectors::new(dim);
    let mut vector = vec![0.0f64; dim];
    for _ in 0..n {
        let word = r.str()?;
        for slot in vector.iter_mut() {
            *slot = r.f64()?;
        }
        wv.insert(word, &vector);
    }
    if wv.len() != n {
        return Err(ArtifactError::Malformed("duplicate embedding word"));
    }
    Ok(wv)
}

/// Pretraining configuration.
#[derive(Debug, Clone)]
pub struct PretrainedConfig {
    /// Embedding dimensionality (paper: 300).
    pub dim: usize,
    /// Background-corpus sentences.
    pub n_sentences: usize,
    /// Word2Vec epochs.
    pub epochs: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for PretrainedConfig {
    fn default() -> Self {
        PretrainedConfig { dim: 300, n_sentences: 4_000, epochs: 8, seed: 42 }
    }
}

/// Generates the background corpus: topic-coherent sentences drawn
/// from every topic pool plus filler and outlet vocabulary, so the
/// learned geometry clusters words by topic.
pub fn background_corpus(n_sentences: usize, seed: u64) -> Vec<Vec<String>> {
    let topics = topic_inventory();
    let mut rng = SplitMix64::new(seed ^ 0xBAC6);
    let mut corpus = Vec::with_capacity(n_sentences);
    for _ in 0..n_sentences {
        let spec = &topics[rng.next_usize(topics.len())];
        let len = 8 + rng.next_usize(10);
        let mut sent = Vec::with_capacity(len);
        for _ in 0..len {
            let r = rng.next_f64();
            if r < 0.55 {
                sent.push(spec.keywords[rng.next_usize(spec.keywords.len())].to_string());
            } else if r < 0.95 {
                sent.push(FILLER[rng.next_usize(FILLER.len())].to_string());
            } else {
                sent.push(OUTLETS[rng.next_usize(OUTLETS.len())].to_string());
            }
        }
        corpus.push(sent);
    }
    corpus
}

/// Trains the pretrained model. The table is centered (common-
/// component removal) so that cosine similarity between averaged
/// document embeddings discriminates between topics — the property
/// the paper's 0.7 / 0.65 thresholds rely on.
pub fn train_pretrained(config: &PretrainedConfig) -> WordVectors {
    let corpus = background_corpus(config.n_sentences, config.seed);
    let mut wv = Word2Vec::new(Word2VecConfig {
        dim: config.dim,
        window: 5,
        negative: 5,
        epochs: config.epochs,
        learning_rate: 0.025,
        min_count: 2,
        subsample: 1e-3,
        mode: Word2VecMode::Cbow,
        seed: config.seed,
    })
    .train(&corpus);
    wv.center();
    wv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> WordVectors {
        train_pretrained(&PretrainedConfig {
            dim: 32,
            n_sentences: 1_500,
            epochs: 6,
            seed: 7,
        })
    }

    #[test]
    fn covers_topic_vocabulary() {
        let wv = small_model();
        let topics = topic_inventory();
        let mut covered = 0;
        let mut total = 0;
        for t in &topics {
            for k in t.keywords {
                total += 1;
                if wv.contains(k) {
                    covered += 1;
                }
            }
        }
        assert!(
            covered as f64 / total as f64 > 0.95,
            "pretrained model covers {covered}/{total} topic keywords"
        );
    }

    #[test]
    fn intra_topic_words_cluster() {
        let wv = small_model();
        let intra = wv.similarity("brexit", "election").unwrap();
        let inter = wv.similarity("brexit", "rice").unwrap();
        assert!(intra > inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn dimensionality_respected() {
        let wv = small_model();
        assert_eq!(wv.dim(), 32);
        assert_eq!(wv.get("brexit").unwrap().len(), 32);
    }

    #[test]
    fn deterministic() {
        let a = train_pretrained(&PretrainedConfig { dim: 16, n_sentences: 300, epochs: 2, seed: 3 });
        let b = train_pretrained(&PretrainedConfig { dim: 16, n_sentences: 300, epochs: 2, seed: 3 });
        assert_eq!(a.get("brexit"), b.get("brexit"));
    }
}
