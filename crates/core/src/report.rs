//! ASCII table/figure rendering for the reproduction binaries.

/// Renders an ASCII table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = headers.len().max(rows.iter().map(Vec::len).max().unwrap_or(0));
    let mut widths = vec![0usize; n_cols];
    for (i, h) in headers.iter().enumerate() {
        widths[i] = widths[i].max(h.chars().count());
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let sep = |ws: &[usize]| {
        let mut s = String::from("+");
        for w in ws {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    let fmt_row = |cells: &[String], ws: &[usize]| {
        let mut s = String::from("|");
        for (i, w) in ws.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            s.push_str(&format!(" {cell:<w$} |", w = w));
        }
        s
    };
    let mut out = String::new();
    out.push_str(&sep(&widths));
    out.push('\n');
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&sep(&widths));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out.push_str(&sep(&widths));
    out
}

/// Renders a horizontal ASCII bar chart (the textual stand-in for the
/// paper's Figures 4–7). Values are scaled to `width` characters;
/// each entry is `(label, value)`.
pub fn render_bars(title: &str, entries: &[(String, f64)], width: usize) -> String {
    let max = entries.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max).max(1e-12);
    let label_w = entries.iter().map(|(l, _)| l.chars().count()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, value) in entries {
        let bar_len = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "  {label:<label_w$} | {} {value:.3}\n",
            "█".repeat(bar_len),
        ));
    }
    out
}

/// Formats a float to two decimals (the paper's accuracy precision).
pub fn fmt2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["Dataset", "MLP 1"],
            &[
                vec!["A1".to_string(), "0.74".to_string()],
                vec!["A2-long-name".to_string(), "0.83".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with('+'));
        assert!(lines[1].contains("Dataset"));
        assert!(lines[3].contains("A1"));
        // All border lines equal length.
        let len = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == len));
    }

    #[test]
    fn table_handles_ragged_rows() {
        let t = render_table(&["a", "b"], &[vec!["only-one".to_string()]]);
        assert!(t.contains("only-one"));
    }

    #[test]
    fn bars_scale_to_width() {
        let b = render_bars(
            "demo",
            &[("x".to_string(), 1.0), ("y".to_string(), 0.5)],
            10,
        );
        let lines: Vec<&str> = b.lines().collect();
        assert!(lines[1].matches('█').count() == 10);
        assert!(lines[2].matches('█').count() == 5);
    }

    #[test]
    fn fmt2_precision() {
        assert_eq!(fmt2(0.8375), "0.84");
        assert_eq!(fmt2(0.7), "0.70");
    }
}
