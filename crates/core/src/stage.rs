//! The pipeline stage graph (paper Figure 1 as an explicit DAG).
//!
//! Each box of the architecture diagram is a [`Stage`]: a named node
//! with typed input/output artifacts, a content [fingerprint], and a
//! `run` body. The executor in [`crate::pipeline`] walks the graph in
//! topological order, consulting the content-addressed artifact cache
//! (`nd-store`'s [`ArtifactStore`](nd_store::ArtifactStore)) before
//! executing a body — so a re-run with only a downstream knob changed
//! replays every upstream stage from disk, bit for bit.
//!
//! [fingerprint]: Stage::fingerprint
//!
//! ## Fingerprint recipe
//!
//! A stage's fingerprint is the FNV-1a hash of, in order: the cache
//! [`FORMAT_VERSION`], the stage name, its code-version constant
//! (bumped by hand when a stage body changes semantics), its own
//! config fingerprint, and the fingerprints of its dependencies in
//! declaration order. Upstream changes therefore cascade: editing the
//! world seed re-fingerprints every stage, while editing
//! `correlation_threshold` re-fingerprints only `correlation` and
//! `features`, and a mining knob re-fingerprints only `patterns`. Cache-control knobs ([`CacheConfig`]
//! [`crate::pipeline::CacheConfig`]) are deliberately excluded.

use crate::correlate::{correlate, correlate_reverse, CorrelationOutput};
use crate::correlate::{decode_correlation, encode_correlation};
use crate::error::{CoreError, Result};
use crate::event_module::{
    decode_events, detect_news_events, detect_twitter_events, encode_events, DetectedEvents,
};
use crate::features::{assign_tweets, decode_assignments, encode_assignments, EventAssignment};
use crate::patterns_module::{decode_patterns, encode_patterns, mine_patterns, PatternsOutput};
use crate::pipeline::PipelineConfig;
use crate::preprocess::{decode_corpora, encode_corpora, Corpora};
use crate::pretrained::{decode_vectors, encode_vectors, train_pretrained};
use crate::topic_module::{decode_topics, encode_topics, extract_topics, NewsTopics};
use crate::trending::{decode_trending, encode_trending, extract_trending, TrendingTopic};
use nd_embed::WordVectors;
use nd_events::Event;
use nd_store::{fnv1a64, ArtifactError, ByteReader, ByteWriter};
use nd_synth::{decode_world, encode_world, World};
use std::collections::BTreeMap;

/// Bumped when the artifact framing or fingerprint recipe changes;
/// invalidates every cached artifact at once.
pub const FORMAT_VERSION: u64 = 1;

/// One artifact — the output of exactly one stage.
#[derive(Debug, Clone)]
pub enum ArtifactValue {
    /// `collect`: the generated world.
    World(World),
    /// `preprocess`: the three corpora.
    Corpora(Corpora),
    /// `topics`: NMF news topics.
    Topics(NewsTopics),
    /// `events`: both MABED passes.
    Events(DetectedEvents),
    /// `embeddings`: the pretrained word vectors.
    Vectors(WordVectors),
    /// `trending`: trending news topics.
    Trending(Vec<TrendingTopic>),
    /// `correlation`: forward + reverse correlation.
    Correlation(CorrelationOutput),
    /// `features`: tweet-to-event assignments.
    Assignments(Vec<EventAssignment>),
    /// `patterns`: the mined audience-pattern catalog + ground truth.
    Patterns(PatternsOutput),
}

macro_rules! artifact_accessors {
    ($($get:ident, $take:ident, $variant:ident => $ty:ty, $name:literal;)*) => {
        $(
            /// Borrows the artifact, erroring when absent or mistyped.
            ///
            /// # Errors
            /// [`CoreError::Artifact`] when the stage has not run.
            pub fn $get(&self) -> Result<&$ty> {
                match self.map.get($name) {
                    Some(ArtifactValue::$variant(v)) => Ok(v),
                    _ => Err(CoreError::Artifact(format!(
                        "artifact `{}` not materialized", $name
                    ))),
                }
            }

            /// Removes and returns the artifact.
            ///
            /// # Errors
            /// [`CoreError::Artifact`] when the stage has not run.
            pub fn $take(&mut self) -> Result<$ty> {
                match self.map.remove($name) {
                    Some(ArtifactValue::$variant(v)) => Ok(v),
                    _ => Err(CoreError::Artifact(format!(
                        "artifact `{}` not materialized", $name
                    ))),
                }
            }
        )*
    };
}

/// The artifacts materialized so far in one pipeline run, keyed by
/// stage name.
#[derive(Debug, Default)]
pub struct ArtifactSet {
    map: BTreeMap<&'static str, ArtifactValue>,
}

impl ArtifactSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a stage's output.
    pub fn insert(&mut self, name: &'static str, value: ArtifactValue) {
        self.map.insert(name, value);
    }

    /// Whether the named stage's artifact is present.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    artifact_accessors! {
        world, take_world, World => World, "collect";
        corpora, take_corpora, Corpora => Corpora, "preprocess";
        topics, take_topics, Topics => NewsTopics, "topics";
        events, take_events, Events => DetectedEvents, "events";
        vectors, take_vectors, Vectors => WordVectors, "embeddings";
        trending, take_trending, Trending => Vec<TrendingTopic>, "trending";
        correlation, take_correlation, Correlation => CorrelationOutput, "correlation";
        assignments, take_assignments, Assignments => Vec<EventAssignment>, "features";
        patterns, take_patterns, Patterns => PatternsOutput, "patterns";
    }
}

/// One node of the pipeline DAG.
pub trait Stage {
    /// Stable stage name — the artifact id and cache key prefix.
    fn name(&self) -> &'static str;

    /// Upstream stage names, in fingerprint order. Every dependency
    /// appears earlier in [`stages`] (the declaration order is the
    /// topological order).
    fn deps(&self) -> &'static [&'static str];

    /// Bumped by hand when the stage body's semantics change, so old
    /// cached artifacts stop matching.
    fn code_version(&self) -> u64;

    /// Fingerprint of the slice of [`PipelineConfig`] this stage
    /// reads. Cache-control knobs must not contribute.
    fn config_fingerprint(&self, config: &PipelineConfig) -> u64;

    /// The stage's cache key: format version + name + code version +
    /// config fingerprint + upstream fingerprints, FNV-1a combined.
    fn fingerprint(&self, config: &PipelineConfig, input_fps: &[u64]) -> u64 {
        let mut w = ByteWriter::new();
        w.put_u64(FORMAT_VERSION);
        w.put_str(self.name());
        w.put_u64(self.code_version());
        w.put_u64(self.config_fingerprint(config));
        for &fp in input_fps {
            w.put_u64(fp);
        }
        fnv1a64(w.as_bytes())
    }

    /// Executes the stage body against already-materialized inputs.
    ///
    /// # Errors
    /// Stage-specific [`CoreError`]s (empty inputs, no output, ...).
    fn run(&self, config: &PipelineConfig, inputs: &ArtifactSet) -> Result<ArtifactValue>;

    /// Serializes the stage's artifact.
    ///
    /// # Errors
    /// [`CoreError::Artifact`] when handed another stage's variant.
    fn encode(&self, value: &ArtifactValue, out: &mut ByteWriter) -> Result<()>;

    /// Deserializes the stage's artifact. Any error reads as a cache
    /// miss upstream.
    ///
    /// # Errors
    /// [`ArtifactError`] on truncation or structural drift.
    fn decode(&self, r: &mut ByteReader<'_>) -> std::result::Result<ArtifactValue, ArtifactError>;

    /// The streaming counterpart of this stage in the incremental
    /// fold DAG ([`crate::incremental`]), when one exists. Batch-only
    /// stages (trending, correlation, features, patterns) answer
    /// `None`: they are cheap projections recomputed per hot-swap
    /// rather than folded per slice.
    fn incremental(&self) -> Option<&'static dyn crate::incremental::FoldStage> {
        None
    }
}

/// Hashes a sub-config through its `Debug` rendering — stable for a
/// fixed config, and float-precise enough because every knob prints
/// with shortest-roundtrip formatting.
pub(crate) fn debug_fingerprint(value: &impl std::fmt::Debug) -> u64 {
    fnv1a64(format!("{value:?}").as_bytes())
}

fn threshold_fingerprint(threshold: f64) -> u64 {
    fnv1a64(&threshold.to_bits().to_le_bytes())
}

fn wrong_variant(stage: &'static str) -> CoreError {
    CoreError::Artifact(format!("stage `{stage}` handed a foreign artifact variant"))
}

/// Stage 1 — data generation / collection (paper §4.1).
#[derive(Debug, Clone, Copy)]
pub struct CollectStage;

impl Stage for CollectStage {
    fn incremental(&self) -> Option<&'static dyn crate::incremental::FoldStage> {
        Some(&crate::incremental::STREAM_COLLECT)
    }
    fn name(&self) -> &'static str {
        "collect"
    }
    fn deps(&self) -> &'static [&'static str] {
        &[]
    }
    fn code_version(&self) -> u64 {
        1
    }
    fn config_fingerprint(&self, config: &PipelineConfig) -> u64 {
        debug_fingerprint(&config.world)
    }
    fn run(&self, config: &PipelineConfig, _inputs: &ArtifactSet) -> Result<ArtifactValue> {
        let world = World::generate(config.world.clone());
        if world.articles.is_empty() || world.tweets.is_empty() {
            return Err(CoreError::EmptyInput("world generation"));
        }
        Ok(ArtifactValue::World(world))
    }
    fn encode(&self, value: &ArtifactValue, out: &mut ByteWriter) -> Result<()> {
        match value {
            ArtifactValue::World(w) => {
                encode_world(w, out);
                Ok(())
            }
            _ => Err(wrong_variant(self.name())),
        }
    }
    fn decode(&self, r: &mut ByteReader<'_>) -> std::result::Result<ArtifactValue, ArtifactError> {
        decode_world(r).map(ArtifactValue::World)
    }
}

/// Stage 2 — preprocessing into the three corpora (paper §4.2).
#[derive(Debug, Clone, Copy)]
pub struct PreprocessStage;

impl Stage for PreprocessStage {
    fn incremental(&self) -> Option<&'static dyn crate::incremental::FoldStage> {
        Some(&crate::incremental::STREAM_PREPROCESS)
    }
    fn name(&self) -> &'static str {
        "preprocess"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["collect"]
    }
    fn code_version(&self) -> u64 {
        1
    }
    fn config_fingerprint(&self, _config: &PipelineConfig) -> u64 {
        0
    }
    fn run(&self, _config: &PipelineConfig, inputs: &ArtifactSet) -> Result<ArtifactValue> {
        let world = inputs.world()?;
        Ok(ArtifactValue::Corpora(Corpora::build(&world.articles, &world.tweets)))
    }
    fn encode(&self, value: &ArtifactValue, out: &mut ByteWriter) -> Result<()> {
        match value {
            ArtifactValue::Corpora(c) => {
                encode_corpora(c, out);
                Ok(())
            }
            _ => Err(wrong_variant(self.name())),
        }
    }
    fn decode(&self, r: &mut ByteReader<'_>) -> std::result::Result<ArtifactValue, ArtifactError> {
        decode_corpora(r).map(ArtifactValue::Corpora)
    }
}

/// Stage 3 — topic modeling (paper §4.3).
#[derive(Debug, Clone, Copy)]
pub struct TopicStage;

impl Stage for TopicStage {
    fn incremental(&self) -> Option<&'static dyn crate::incremental::FoldStage> {
        Some(&crate::incremental::STREAM_TOPICS)
    }
    fn name(&self) -> &'static str {
        "topics"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["preprocess"]
    }
    fn code_version(&self) -> u64 {
        1
    }
    fn config_fingerprint(&self, config: &PipelineConfig) -> u64 {
        debug_fingerprint(&config.topic)
    }
    fn run(&self, config: &PipelineConfig, inputs: &ArtifactSet) -> Result<ArtifactValue> {
        let corpora = inputs.corpora()?;
        Ok(ArtifactValue::Topics(extract_topics(&corpora.news_tm, &config.topic)))
    }
    fn encode(&self, value: &ArtifactValue, out: &mut ByteWriter) -> Result<()> {
        match value {
            ArtifactValue::Topics(t) => {
                encode_topics(t, out);
                Ok(())
            }
            _ => Err(wrong_variant(self.name())),
        }
    }
    fn decode(&self, r: &mut ByteReader<'_>) -> std::result::Result<ArtifactValue, ArtifactError> {
        decode_topics(r).map(ArtifactValue::Topics)
    }
}

/// Stage 4 — event detection, both MABED passes (paper §4.4).
#[derive(Debug, Clone, Copy)]
pub struct EventStage;

impl Stage for EventStage {
    fn incremental(&self) -> Option<&'static dyn crate::incremental::FoldStage> {
        Some(&crate::incremental::STREAM_EVENTS)
    }
    fn name(&self) -> &'static str {
        "events"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["preprocess"]
    }
    fn code_version(&self) -> u64 {
        1
    }
    fn config_fingerprint(&self, config: &PipelineConfig) -> u64 {
        debug_fingerprint(&config.event)
    }
    fn run(&self, config: &PipelineConfig, inputs: &ArtifactSet) -> Result<ArtifactValue> {
        let corpora = inputs.corpora()?;
        let news = detect_news_events(&corpora.news_ed, &config.event);
        if news.is_empty() {
            return Err(CoreError::NoOutput("news event detection"));
        }
        let twitter = detect_twitter_events(&corpora.twitter_ed, &config.event);
        if twitter.is_empty() {
            return Err(CoreError::NoOutput("twitter event detection"));
        }
        Ok(ArtifactValue::Events(DetectedEvents { news, twitter }))
    }
    fn encode(&self, value: &ArtifactValue, out: &mut ByteWriter) -> Result<()> {
        match value {
            ArtifactValue::Events(e) => {
                encode_events(e, out);
                Ok(())
            }
            _ => Err(wrong_variant(self.name())),
        }
    }
    fn decode(&self, r: &mut ByteReader<'_>) -> std::result::Result<ArtifactValue, ArtifactError> {
        decode_events(r).map(ArtifactValue::Events)
    }
}

/// Stage 5 — the pretrained embedding model (paper §4.9). Depends on
/// no other stage: the background corpus is config-generated.
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingStage;

impl Stage for EmbeddingStage {
    fn incremental(&self) -> Option<&'static dyn crate::incremental::FoldStage> {
        Some(&crate::incremental::STREAM_EMBED)
    }
    fn name(&self) -> &'static str {
        "embeddings"
    }
    fn deps(&self) -> &'static [&'static str] {
        &[]
    }
    fn code_version(&self) -> u64 {
        1
    }
    fn config_fingerprint(&self, config: &PipelineConfig) -> u64 {
        debug_fingerprint(&config.pretrained)
    }
    fn run(&self, config: &PipelineConfig, _inputs: &ArtifactSet) -> Result<ArtifactValue> {
        Ok(ArtifactValue::Vectors(train_pretrained(&config.pretrained)))
    }
    fn encode(&self, value: &ArtifactValue, out: &mut ByteWriter) -> Result<()> {
        match value {
            ArtifactValue::Vectors(v) => {
                encode_vectors(v, out);
                Ok(())
            }
            _ => Err(wrong_variant(self.name())),
        }
    }
    fn decode(&self, r: &mut ByteReader<'_>) -> std::result::Result<ArtifactValue, ArtifactError> {
        decode_vectors(r).map(ArtifactValue::Vectors)
    }
}

/// Stage 6 — trending news topics (paper §4.5).
#[derive(Debug, Clone, Copy)]
pub struct TrendingStage;

impl Stage for TrendingStage {
    fn name(&self) -> &'static str {
        "trending"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["topics", "events", "embeddings"]
    }
    fn code_version(&self) -> u64 {
        1
    }
    fn config_fingerprint(&self, config: &PipelineConfig) -> u64 {
        threshold_fingerprint(config.trending_threshold)
    }
    fn run(&self, config: &PipelineConfig, inputs: &ArtifactSet) -> Result<ArtifactValue> {
        let topics = inputs.topics()?;
        let events = inputs.events()?;
        let vectors = inputs.vectors()?;
        let trending =
            extract_trending(&topics.topics, &events.news, vectors, config.trending_threshold);
        if trending.is_empty() {
            return Err(CoreError::NoOutput("trending extraction"));
        }
        Ok(ArtifactValue::Trending(trending))
    }
    fn encode(&self, value: &ArtifactValue, out: &mut ByteWriter) -> Result<()> {
        match value {
            ArtifactValue::Trending(t) => {
                encode_trending(t, out);
                Ok(())
            }
            _ => Err(wrong_variant(self.name())),
        }
    }
    fn decode(&self, r: &mut ByteReader<'_>) -> std::result::Result<ArtifactValue, ArtifactError> {
        decode_trending(r).map(ArtifactValue::Trending)
    }
}

/// Stage 7 — correlation, both directions (paper §4.6).
#[derive(Debug, Clone, Copy)]
pub struct CorrelationStage;

impl Stage for CorrelationStage {
    fn name(&self) -> &'static str {
        "correlation"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["trending", "events", "embeddings"]
    }
    fn code_version(&self) -> u64 {
        1
    }
    fn config_fingerprint(&self, config: &PipelineConfig) -> u64 {
        threshold_fingerprint(config.correlation_threshold)
    }
    fn run(&self, config: &PipelineConfig, inputs: &ArtifactSet) -> Result<ArtifactValue> {
        let trending = inputs.trending()?;
        let events = inputs.events()?;
        let vectors = inputs.vectors()?;
        let forward =
            correlate(trending, &events.twitter, vectors, config.correlation_threshold);
        let reverse =
            correlate_reverse(trending, &events.twitter, vectors, config.correlation_threshold);
        Ok(ArtifactValue::Correlation(CorrelationOutput { forward, reverse }))
    }
    fn encode(&self, value: &ArtifactValue, out: &mut ByteWriter) -> Result<()> {
        match value {
            ArtifactValue::Correlation(c) => {
                encode_correlation(&c.forward, out);
                encode_correlation(&c.reverse, out);
                Ok(())
            }
            _ => Err(wrong_variant(self.name())),
        }
    }
    fn decode(&self, r: &mut ByteReader<'_>) -> std::result::Result<ArtifactValue, ArtifactError> {
        Ok(ArtifactValue::Correlation(CorrelationOutput {
            forward: decode_correlation(r)?,
            reverse: decode_correlation(r)?,
        }))
    }
}

/// Stage 8 — feature creation: tweet-to-event assignment (paper §4.7).
#[derive(Debug, Clone, Copy)]
pub struct FeatureStage;

impl Stage for FeatureStage {
    fn name(&self) -> &'static str {
        "features"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["correlation", "events", "collect", "preprocess"]
    }
    fn code_version(&self) -> u64 {
        1
    }
    fn config_fingerprint(&self, _config: &PipelineConfig) -> u64 {
        0
    }
    fn run(&self, _config: &PipelineConfig, inputs: &ArtifactSet) -> Result<ArtifactValue> {
        let correlation = inputs.correlation()?;
        let events = inputs.events()?;
        let world = inputs.world()?;
        let corpora = inputs.corpora()?;
        let correlated = correlated_events(&correlation.forward, &events.twitter);
        Ok(ArtifactValue::Assignments(assign_tweets(
            &correlated,
            &world.tweets,
            &corpora.twitter_ed,
        )))
    }
    fn encode(&self, value: &ArtifactValue, out: &mut ByteWriter) -> Result<()> {
        match value {
            ArtifactValue::Assignments(a) => {
                encode_assignments(a, out);
                Ok(())
            }
            _ => Err(wrong_variant(self.name())),
        }
    }
    fn decode(&self, r: &mut ByteReader<'_>) -> std::result::Result<ArtifactValue, ArtifactError> {
        decode_assignments(r).map(ArtifactValue::Assignments)
    }
}

/// Stage 9 — temporal audience-pattern mining (ROADMAP item 5; not a
/// paper module). Depends only on `collect`: trajectories are seeded
/// from the world, and the mined catalog is independent of the
/// text-side stages.
#[derive(Debug, Clone, Copy)]
pub struct PatternsStage;

impl Stage for PatternsStage {
    fn name(&self) -> &'static str {
        "patterns"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["collect"]
    }
    fn code_version(&self) -> u64 {
        1
    }
    fn config_fingerprint(&self, config: &PipelineConfig) -> u64 {
        debug_fingerprint(&config.patterns)
    }
    fn run(&self, config: &PipelineConfig, inputs: &ArtifactSet) -> Result<ArtifactValue> {
        let world = inputs.world()?;
        let output = mine_patterns(world, &config.patterns);
        if output.catalog.patterns.is_empty() {
            return Err(CoreError::NoOutput("pattern mining"));
        }
        Ok(ArtifactValue::Patterns(output))
    }
    fn encode(&self, value: &ArtifactValue, out: &mut ByteWriter) -> Result<()> {
        match value {
            ArtifactValue::Patterns(p) => {
                encode_patterns(p, out);
                Ok(())
            }
            _ => Err(wrong_variant(self.name())),
        }
    }
    fn decode(&self, r: &mut ByteReader<'_>) -> std::result::Result<ArtifactValue, ArtifactError> {
        decode_patterns(r).map(ArtifactValue::Patterns)
    }
}

/// The correlated Twitter events — the forward pair set's event
/// targets, in index order. Derived (not cached): it is a cheap
/// projection of the correlation artifact over the event artifact.
pub fn correlated_events(
    forward: &crate::correlate::CorrelationResult,
    twitter_events: &[Event],
) -> Vec<Event> {
    let mut idx: Vec<usize> = forward.pairs.iter().map(|p| p.twitter_idx).collect();
    idx.sort_unstable();
    idx.dedup();
    idx.into_iter().map(|i| twitter_events[i].clone()).collect()
}

/// The full stage graph in topological (declaration) order.
pub fn stages() -> [&'static dyn Stage; 9] {
    [
        &CollectStage,
        &PreprocessStage,
        &TopicStage,
        &EventStage,
        &EmbeddingStage,
        &TrendingStage,
        &CorrelationStage,
        &FeatureStage,
        &PatternsStage,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declaration_order_is_topological() {
        let all = stages();
        let mut seen = std::collections::HashSet::new();
        for stage in all {
            for dep in stage.deps() {
                assert!(seen.contains(dep), "{} depends on later stage {dep}", stage.name());
            }
            assert!(seen.insert(stage.name()), "duplicate stage {}", stage.name());
        }
    }

    #[test]
    fn fingerprints_differ_across_stages_and_configs() {
        let config = PipelineConfig::small();
        let all = stages();
        let fps: Vec<u64> = all.iter().map(|s| s.fingerprint(&config, &[])).collect();
        let unique: std::collections::HashSet<u64> = fps.iter().copied().collect();
        assert_eq!(unique.len(), fps.len(), "stage fingerprints collide");

        let mut changed = config.clone();
        changed.trending_threshold = 0.42;
        assert_ne!(
            TrendingStage.fingerprint(&config, &[1, 2, 3]),
            TrendingStage.fingerprint(&changed, &[1, 2, 3]),
            "threshold change must re-fingerprint trending"
        );
        assert_eq!(
            CorrelationStage.fingerprint(&config, &[1, 2, 3]),
            CorrelationStage.fingerprint(&changed, &[1, 2, 3]),
            "trending threshold must not touch correlation's own config"
        );
    }

    #[test]
    fn fingerprint_depends_on_inputs() {
        let config = PipelineConfig::small();
        assert_ne!(
            PreprocessStage.fingerprint(&config, &[1]),
            PreprocessStage.fingerprint(&config, &[2])
        );
    }

    #[test]
    fn fingerprints_are_stable_across_calls() {
        let config = PipelineConfig::small();
        for stage in stages() {
            assert_eq!(
                stage.fingerprint(&config, &[7, 9]),
                stage.fingerprint(&config, &[7, 9])
            );
        }
    }

    #[test]
    fn cache_knobs_do_not_fingerprint() {
        let config = PipelineConfig::small();
        let mut cached = config.clone();
        cached.cache.force = true;
        cached.cache.dir = Some(std::path::PathBuf::from("/tmp/x"));
        for stage in stages() {
            assert_eq!(
                stage.fingerprint(&config, &[3]),
                stage.fingerprint(&cached, &[3]),
                "cache knobs leaked into {}'s fingerprint",
                stage.name()
            );
        }
    }
}
