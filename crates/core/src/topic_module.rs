//! Topic Modeling module (paper §4.3).
//!
//! Vectorizes the NewsTM corpus with normalized TF-IDF and extracts
//! topics with NMF — the exact configuration the paper deploys
//! (scikit-learn's `TfidfVectorizer` + `NMF` in the original).

use nd_topics::{Nmf, NmfConfig, Topic, TopicModel};
use nd_vectorize::{DtmBuilder, Weighting};

/// Topic-module configuration.
#[derive(Debug, Clone)]
pub struct TopicModuleConfig {
    /// Number of topics to extract (the paper uses 100 on 261k
    /// articles; scale down proportionally for smaller corpora).
    pub n_topics: usize,
    /// Keywords reported per topic (Table 3 shows 10).
    pub keywords_per_topic: usize,
    /// Vocabulary pruning: minimum document frequency.
    pub min_df: usize,
    /// Vocabulary pruning: maximum document-frequency ratio.
    pub max_df_ratio: f64,
    /// NMF iteration cap.
    pub max_iter: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for TopicModuleConfig {
    fn default() -> Self {
        TopicModuleConfig {
            n_topics: 10,
            keywords_per_topic: 10,
            min_df: 3,
            max_df_ratio: 0.6,
            max_iter: 200,
            seed: 42,
        }
    }
}

/// Output: the fitted model plus the decoded keyword lists.
#[derive(Debug, Clone)]
pub struct NewsTopics {
    /// Fitted NMF model (document memberships available for drill-in).
    pub model: TopicModel,
    /// Topics with their top keywords, by topic id.
    pub topics: Vec<Topic>,
}

/// Runs the topic-modeling module on the NewsTM corpus.
pub fn extract_topics(corpus: &[Vec<String>], config: &TopicModuleConfig) -> NewsTopics {
    let dtm = DtmBuilder::new()
        .min_df(config.min_df)
        .max_df_ratio(config.max_df_ratio)
        .build(corpus);
    let a = dtm.weighted(Weighting::TfIdfNormalized);
    let model = Nmf::new(NmfConfig {
        n_topics: config.n_topics,
        max_iter: config.max_iter,
        tol: 1e-5,
        seed: config.seed,
    })
    .fit(&a, dtm.vocab());
    let topics = model.topics(config.keywords_per_topic);
    NewsTopics { model, topics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::build_news_tm;
    use nd_synth::{World, WorldConfig};

    fn news_topics() -> NewsTopics {
        let w = World::generate(WorldConfig { days: 7, n_users: 50, min_influencers: 5, ..WorldConfig::small() });
        let corpus = build_news_tm(&w.articles);
        extract_topics(&corpus, &TopicModuleConfig { n_topics: 10, ..Default::default() })
    }

    #[test]
    fn extracts_requested_topic_count() {
        let nt = news_topics();
        assert_eq!(nt.topics.len(), 10);
        for t in &nt.topics {
            assert!(!t.keywords.is_empty());
            assert!(t.keywords.len() <= 10);
        }
    }

    #[test]
    fn recovers_ground_truth_topic_vocabulary() {
        // At least 6 of the 10 planted news topics should have an NMF
        // topic whose top keywords are dominated by their pool.
        let nt = news_topics();
        let inventory = nd_synth::topic_inventory();
        let mut recovered = 0;
        for spec in inventory.iter().filter(|s| s.kind == nd_synth::TopicKind::NewsAndTwitter)
        {
            let pool: std::collections::HashSet<&str> = spec.keywords.iter().copied().collect();
            let best_hits = nt
                .topics
                .iter()
                .map(|t| {
                    t.keywords
                        .iter()
                        .filter(|k| {
                            // Lemmatization may alter forms; compare on the lemma.
                            pool.contains(k.as_str())
                                || pool.iter().any(|p| nd_text::lemmatize(p) == **k)
                        })
                        .count()
                })
                .max()
                .unwrap_or(0);
            if best_hits >= 5 {
                recovered += 1;
            }
        }
        assert!(recovered >= 6, "only {recovered}/10 planted topics recovered");
    }

    #[test]
    fn topic_keywords_are_content_words() {
        let nt = news_topics();
        for t in &nt.topics {
            for k in &t.keywords {
                assert!(!nd_text::is_stopword(k), "stopword {k} in topic keywords");
            }
        }
    }
}
