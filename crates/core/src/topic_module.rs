//! Topic Modeling module (paper §4.3).
//!
//! Vectorizes the NewsTM corpus with normalized TF-IDF and extracts
//! topics with NMF — the exact configuration the paper deploys
//! (scikit-learn's `TfidfVectorizer` + `NMF` in the original).

use nd_linalg::Mat;
use nd_store::{ArtifactError, ByteReader, ByteWriter};
use nd_topics::{Nmf, NmfConfig, Topic, TopicModel};
use nd_vectorize::{DtmBuilder, Vocabulary, Weighting};

/// Topic-module configuration.
#[derive(Debug, Clone)]
pub struct TopicModuleConfig {
    /// Number of topics to extract (the paper uses 100 on 261k
    /// articles; scale down proportionally for smaller corpora).
    pub n_topics: usize,
    /// Keywords reported per topic (Table 3 shows 10).
    pub keywords_per_topic: usize,
    /// Vocabulary pruning: minimum document frequency.
    pub min_df: usize,
    /// Vocabulary pruning: maximum document-frequency ratio.
    pub max_df_ratio: f64,
    /// NMF iteration cap.
    pub max_iter: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for TopicModuleConfig {
    fn default() -> Self {
        TopicModuleConfig {
            n_topics: 10,
            keywords_per_topic: 10,
            min_df: 3,
            max_df_ratio: 0.6,
            max_iter: 200,
            seed: 42,
        }
    }
}

/// Output: the fitted model plus the decoded keyword lists.
#[derive(Debug, Clone)]
pub struct NewsTopics {
    /// Fitted NMF model (document memberships available for drill-in).
    pub model: TopicModel,
    /// Topics with their top keywords, by topic id.
    pub topics: Vec<Topic>,
}

/// Runs the topic-modeling module on the NewsTM corpus.
pub fn extract_topics(corpus: &[Vec<String>], config: &TopicModuleConfig) -> NewsTopics {
    let dtm = DtmBuilder::new()
        .min_df(config.min_df)
        .max_df_ratio(config.max_df_ratio)
        .build(corpus);
    let a = dtm.weighted(Weighting::TfIdfNormalized);
    let model = Nmf::new(NmfConfig {
        n_topics: config.n_topics,
        max_iter: config.max_iter,
        tol: 1e-5,
        seed: config.seed,
    })
    .fit(&a, dtm.vocab());
    let topics = model.topics(config.keywords_per_topic);
    NewsTopics { model, topics }
}

/// Encodes the topic-modeling artifact (fitted NMF model + decoded
/// keyword lists).
pub fn encode_topics(t: &NewsTopics, out: &mut ByteWriter) {
    encode_mat(&t.model.doc_topic, out);
    encode_mat(&t.model.topic_term, out);
    out.put_usize(t.model.vocab.len());
    for (_, term) in t.model.vocab.iter() {
        out.put_str(term);
    }
    out.put_f64(t.model.objective);
    out.put_usize(t.model.iterations);
    out.put_usize(t.topics.len());
    for topic in &t.topics {
        out.put_usize(topic.id);
        out.put_str_list(&topic.keywords);
        out.put_f64_slice(&topic.weights);
    }
}

/// Decodes the topic-modeling artifact.
///
/// # Errors
/// Truncated or malformed payloads yield an [`ArtifactError`].
pub fn decode_topics(r: &mut ByteReader<'_>) -> Result<NewsTopics, ArtifactError> {
    let doc_topic = decode_mat(r)?;
    let topic_term = decode_mat(r)?;
    let n_terms = r.len_prefix()?;
    let mut vocab = Vocabulary::new();
    for _ in 0..n_terms {
        vocab.intern(&r.str()?);
    }
    if vocab.len() != n_terms {
        return Err(ArtifactError::Malformed("duplicate vocabulary term"));
    }
    let objective = r.f64()?;
    let iterations = r.usize()?;
    let n_topics = r.len_prefix()?;
    let mut topics = Vec::with_capacity(n_topics);
    for _ in 0..n_topics {
        topics.push(Topic { id: r.usize()?, keywords: r.str_list()?, weights: r.f64_vec()? });
    }
    Ok(NewsTopics {
        model: TopicModel { doc_topic, topic_term, vocab, objective, iterations },
        topics,
    })
}

pub(crate) fn encode_mat(m: &Mat, out: &mut ByteWriter) {
    out.put_usize(m.rows());
    out.put_usize(m.cols());
    for &x in m.as_slice() {
        out.put_f64(x);
    }
}

pub(crate) fn decode_mat(r: &mut ByteReader<'_>) -> Result<Mat, ArtifactError> {
    let rows = r.usize()?;
    let cols = r.usize()?;
    let n = rows
        .checked_mul(cols)
        .ok_or(ArtifactError::Malformed("matrix shape overflows"))?;
    if n.saturating_mul(8) > r.remaining() {
        return Err(ArtifactError::Truncated { need: n * 8, have: r.remaining() });
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(r.f64()?);
    }
    Mat::from_vec(rows, cols, data).map_err(|_| ArtifactError::Malformed("matrix shape"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::build_news_tm;
    use nd_synth::{World, WorldConfig};

    fn news_topics() -> NewsTopics {
        let w = World::generate(WorldConfig { days: 7, n_users: 50, min_influencers: 5, ..WorldConfig::small() });
        let corpus = build_news_tm(&w.articles);
        extract_topics(&corpus, &TopicModuleConfig { n_topics: 10, ..Default::default() })
    }

    #[test]
    fn extracts_requested_topic_count() {
        let nt = news_topics();
        assert_eq!(nt.topics.len(), 10);
        for t in &nt.topics {
            assert!(!t.keywords.is_empty());
            assert!(t.keywords.len() <= 10);
        }
    }

    #[test]
    fn recovers_ground_truth_topic_vocabulary() {
        // At least 6 of the 10 planted news topics should have an NMF
        // topic whose top keywords are dominated by their pool.
        let nt = news_topics();
        let inventory = nd_synth::topic_inventory();
        let mut recovered = 0;
        for spec in inventory.iter().filter(|s| s.kind == nd_synth::TopicKind::NewsAndTwitter)
        {
            let pool: std::collections::HashSet<&str> = spec.keywords.iter().copied().collect();
            let best_hits = nt
                .topics
                .iter()
                .map(|t| {
                    t.keywords
                        .iter()
                        .filter(|k| {
                            // Lemmatization may alter forms; compare on the lemma.
                            pool.contains(k.as_str())
                                || pool.iter().any(|p| nd_text::lemmatize(p) == **k)
                        })
                        .count()
                })
                .max()
                .unwrap_or(0);
            if best_hits >= 5 {
                recovered += 1;
            }
        }
        assert!(recovered >= 6, "only {recovered}/10 planted topics recovered");
    }

    #[test]
    fn topic_keywords_are_content_words() {
        let nt = news_topics();
        for t in &nt.topics {
            for k in &t.keywords {
                assert!(!nd_text::is_stopword(k), "stopword {k} in topic keywords");
            }
        }
    }
}
