//! Trending News module (paper §4.5).
//!
//! Correlates *news topics* (NMF keyword lists) with *news events*
//! (MABED main + related terms): both are embedded with the averaged
//! document embedding over the pretrained word vectors (the paper's
//! NewsTopic2Vec / NewsEvent2Vec) and scored by cosine similarity.
//! Pairs above the threshold become **trending news topics**.

use crate::event_module::{decode_event, encode_event};
use nd_embed::{doc_embedding, AverageStrategy, WordVectors};
use nd_events::Event;
use nd_linalg::vecops::cosine;
use nd_store::{ArtifactError, ByteReader, ByteWriter};
use nd_topics::Topic;
use std::collections::HashMap;

/// Encodes the trending-topics artifact.
pub fn encode_trending(trending: &[TrendingTopic], out: &mut ByteWriter) {
    out.put_usize(trending.len());
    for t in trending {
        out.put_usize(t.topic_id);
        out.put_str_list(&t.keywords);
        encode_event(&t.event, out);
        out.put_f64(t.similarity);
    }
}

/// Decodes the trending-topics artifact.
///
/// # Errors
/// Truncated or malformed payloads yield an [`ArtifactError`].
pub fn decode_trending(r: &mut ByteReader<'_>) -> Result<Vec<TrendingTopic>, ArtifactError> {
    let n = r.len_prefix()?;
    let mut trending = Vec::with_capacity(n);
    for _ in 0..n {
        trending.push(TrendingTopic {
            topic_id: r.usize()?,
            keywords: r.str_list()?,
            event: decode_event(r)?,
            similarity: r.f64()?,
        });
    }
    Ok(trending)
}

/// A `<news topic, news event>` pair above the similarity threshold.
#[derive(Debug, Clone)]
pub struct TrendingTopic {
    /// Index of the news topic.
    pub topic_id: usize,
    /// The topic's keywords.
    pub keywords: Vec<String>,
    /// The matched news event.
    pub event: Event,
    /// Cosine similarity between topic and event embeddings.
    pub similarity: f64,
}

/// Embeds a term list with the SW averaged embedding (the trending
/// module has no OOV handling needs — both sides come from corpus
/// vocabulary).
pub fn embed_terms(vectors: &WordVectors, terms: &[String]) -> Vec<f64> {
    doc_embedding(vectors, terms, AverageStrategy::SkipWords, &HashMap::new(), 0)
}

/// Correlates topics with news events; for each topic the best event
/// at or above `threshold` (paper: 0.7) is kept.
pub fn extract_trending(
    topics: &[Topic],
    news_events: &[Event],
    vectors: &WordVectors,
    threshold: f64,
) -> Vec<TrendingTopic> {
    let event_embeddings: Vec<Vec<f64>> =
        news_events.iter().map(|e| embed_terms(vectors, &e.all_terms())).collect();

    let mut out = Vec::new();
    for topic in topics {
        let t_emb = embed_terms(vectors, &topic.keywords);
        let mut best: Option<(usize, f64)> = None;
        for (ei, e_emb) in event_embeddings.iter().enumerate() {
            let sim = cosine(&t_emb, e_emb);
            if sim >= threshold && best.is_none_or(|(_, b)| sim > b) {
                best = Some((ei, sim));
            }
        }
        if let Some((ei, sim)) = best {
            out.push(TrendingTopic {
                topic_id: topic.id,
                keywords: topic.keywords.clone(),
                event: news_events[ei].clone(),
                similarity: sim,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_embed::WordVectors;

    fn vectors() -> WordVectors {
        let mut wv = WordVectors::new(3);
        // Two orthogonal topic clusters.
        wv.insert("brexit", &[1.0, 0.1, 0.0]);
        wv.insert("vote", &[0.9, 0.2, 0.0]);
        wv.insert("election", &[0.95, 0.0, 0.1]);
        wv.insert("derby", &[0.0, 1.0, 0.1]);
        wv.insert("horse", &[0.1, 0.9, 0.0]);
        wv.insert("race", &[0.0, 0.95, 0.1]);
        wv
    }

    fn topic(id: usize, words: &[&str]) -> Topic {
        Topic {
            id,
            keywords: words.iter().map(|s| s.to_string()).collect(),
            weights: vec![1.0; words.len()],
        }
    }

    fn event(main: &str, related: &[&str], start: u64) -> Event {
        Event {
            main_word: main.to_string(),
            related: related.iter().map(|w| (w.to_string(), 0.8)).collect(),
            start,
            end: start + 3600,
            magnitude: 10.0,
            n_docs: 20,
        }
    }

    #[test]
    fn matches_topic_to_semantically_close_event() {
        let topics = vec![topic(0, &["brexit", "vote"]), topic(1, &["derby", "horse"])];
        let events =
            vec![event("election", &["vote", "brexit"], 0), event("race", &["horse"], 0)];
        let trending = extract_trending(&topics, &events, &vectors(), 0.7);
        assert_eq!(trending.len(), 2);
        assert_eq!(trending[0].topic_id, 0);
        assert_eq!(trending[0].event.main_word, "election");
        assert_eq!(trending[1].event.main_word, "race");
        assert!(trending.iter().all(|t| t.similarity >= 0.7));
    }

    #[test]
    fn below_threshold_topics_dropped() {
        let topics = vec![topic(0, &["brexit", "vote"])];
        let events = vec![event("race", &["horse", "derby"], 0)];
        let trending = extract_trending(&topics, &events, &vectors(), 0.7);
        assert!(trending.is_empty());
    }

    #[test]
    fn picks_best_of_multiple_matches() {
        let topics = vec![topic(0, &["brexit", "vote", "election"])];
        let events = vec![
            event("vote", &["derby"], 0),              // diluted
            event("election", &["brexit", "vote"], 5), // pure
        ];
        let trending = extract_trending(&topics, &events, &vectors(), 0.5);
        assert_eq!(trending.len(), 1);
        assert_eq!(trending[0].event.main_word, "election");
    }

    #[test]
    fn oov_only_topic_matches_nothing() {
        let topics = vec![topic(0, &["zzz", "qqq"])];
        let events = vec![event("election", &["vote"], 0)];
        let trending = extract_trending(&topics, &events, &vectors(), 0.1);
        assert!(trending.is_empty(), "zero embedding must not match");
    }
}
