//! The paper's custom averaged document embeddings (§4.7).
//!
//! Each tweet belonging to an event is encoded by averaging word
//! vectors from the "pretrained" model, restricted to the tweet's
//! terms that appear in the event vocabulary (main + related terms):
//!
//! * **SW_Doc2Vec** — only in-vocabulary word vectors are averaged;
//! * **RND_Doc2Vec** — out-of-vocabulary terms contribute
//!   deterministic pseudo-random vectors in `[-1, 1]`;
//! * **SWM_Doc2Vec** — in-vocabulary vectors are scaled by the word's
//!   *magnitude in the context of the event* (we use the MABED
//!   related-word weight; the main word has magnitude 1) before
//!   averaging.

use crate::vectors::WordVectors;
use nd_linalg::rng::SplitMix64;
use std::collections::HashMap;

/// Averaging strategy — the A/B/C dataset variants of §5.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AverageStrategy {
    /// SW_Doc2Vec: skip out-of-vocabulary words.
    SkipWords,
    /// RND_Doc2Vec: random vectors for out-of-vocabulary words.
    RandomForMissing,
    /// SWM_Doc2Vec: scale known vectors by event-context magnitude.
    ScaledByMagnitude,
}

impl AverageStrategy {
    /// Short name matching the paper's dataset labels.
    pub fn name(&self) -> &'static str {
        match self {
            AverageStrategy::SkipWords => "SW_Doc2Vec",
            AverageStrategy::RandomForMissing => "RND_Doc2Vec",
            AverageStrategy::ScaledByMagnitude => "SWM_Doc2Vec",
        }
    }
}

/// Deterministic pseudo-random vector for an out-of-vocabulary word:
/// the same word always maps to the same vector (seeded by a hash of
/// its bytes), with components uniform in `[-1, 1]`.
pub fn random_vector_for(word: &str, dim: usize, seed: u64) -> Vec<f64> {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in word.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = SplitMix64::new(h);
    (0..dim).map(|_| rng.next_range(-1.0, 1.0)).collect()
}

/// Computes a document embedding by averaging word vectors under the
/// chosen strategy.
///
/// * `tokens` — the document's terms (already filtered to the event
///   vocabulary by the caller, per §4.7).
/// * `magnitudes` — per-term event-context magnitude; only used by
///   [`AverageStrategy::ScaledByMagnitude`]; terms missing from the
///   map default to 1.0.
/// * `seed` — seed for the deterministic OOV vectors of
///   [`AverageStrategy::RandomForMissing`].
///
/// Returns the zero vector when nothing contributes (e.g. all tokens
/// OOV under `SkipWords`) — downstream cosine treats that as
/// "matches nothing".
pub fn doc_embedding(
    vectors: &WordVectors,
    tokens: &[String],
    strategy: AverageStrategy,
    magnitudes: &HashMap<String, f64>,
    seed: u64,
) -> Vec<f64> {
    let dim = vectors.dim();
    let mut acc = vec![0.0; dim];
    let mut n = 0usize;
    for tok in tokens {
        match (vectors.get(tok), strategy) {
            (Some(v), AverageStrategy::SkipWords | AverageStrategy::RandomForMissing) => {
                for (a, &x) in acc.iter_mut().zip(v) {
                    *a += x;
                }
                n += 1;
            }
            (Some(v), AverageStrategy::ScaledByMagnitude) => {
                let m = magnitudes.get(tok).copied().unwrap_or(1.0);
                for (a, &x) in acc.iter_mut().zip(v) {
                    *a += m * x;
                }
                n += 1;
            }
            (None, AverageStrategy::RandomForMissing) => {
                let rv = random_vector_for(tok, dim, seed);
                for (a, x) in acc.iter_mut().zip(rv) {
                    *a += x;
                }
                n += 1;
            }
            (None, _) => {}
        }
    }
    if n > 0 {
        let inv = 1.0 / n as f64;
        acc.iter_mut().for_each(|a| *a *= inv);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> WordVectors {
        let mut wv = WordVectors::new(2);
        wv.insert("brexit", &[1.0, 0.0]);
        wv.insert("vote", &[0.0, 1.0]);
        wv
    }

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn sw_averages_known_words_only() {
        let e = doc_embedding(
            &table(),
            &toks(&["brexit", "vote", "unknown"]),
            AverageStrategy::SkipWords,
            &HashMap::new(),
            0,
        );
        assert_eq!(e, vec![0.5, 0.5]);
    }

    #[test]
    fn sw_all_oov_gives_zero_vector() {
        let e = doc_embedding(
            &table(),
            &toks(&["x", "y"]),
            AverageStrategy::SkipWords,
            &HashMap::new(),
            0,
        );
        assert_eq!(e, vec![0.0, 0.0]);
    }

    #[test]
    fn rnd_contributes_for_missing_words() {
        let known_only = doc_embedding(
            &table(),
            &toks(&["brexit"]),
            AverageStrategy::RandomForMissing,
            &HashMap::new(),
            7,
        );
        let with_oov = doc_embedding(
            &table(),
            &toks(&["brexit", "zzz"]),
            AverageStrategy::RandomForMissing,
            &HashMap::new(),
            7,
        );
        assert_ne!(known_only, with_oov);
    }

    #[test]
    fn rnd_oov_vectors_deterministic_and_bounded() {
        let a = random_vector_for("zzz", 16, 7);
        let b = random_vector_for("zzz", 16, 7);
        let c = random_vector_for("zzz", 16, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn swm_scales_by_magnitude() {
        let mut mags = HashMap::new();
        mags.insert("brexit".to_string(), 2.0);
        mags.insert("vote".to_string(), 0.5);
        let e = doc_embedding(
            &table(),
            &toks(&["brexit", "vote"]),
            AverageStrategy::ScaledByMagnitude,
            &mags,
            0,
        );
        assert_eq!(e, vec![1.0, 0.25]);
    }

    #[test]
    fn swm_missing_magnitude_defaults_to_one() {
        let e = doc_embedding(
            &table(),
            &toks(&["brexit"]),
            AverageStrategy::ScaledByMagnitude,
            &HashMap::new(),
            0,
        );
        assert_eq!(e, vec![1.0, 0.0]);
    }

    #[test]
    fn empty_tokens_zero_vector() {
        let e = doc_embedding(&table(), &[], AverageStrategy::SkipWords, &HashMap::new(), 0);
        assert_eq!(e, vec![0.0, 0.0]);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(AverageStrategy::SkipWords.name(), "SW_Doc2Vec");
        assert_eq!(AverageStrategy::RandomForMissing.name(), "RND_Doc2Vec");
        assert_eq!(AverageStrategy::ScaledByMagnitude.name(), "SWM_Doc2Vec");
    }
}
