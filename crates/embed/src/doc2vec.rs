//! Doc2Vec paragraph vectors (Le & Mikolov 2014).
//!
//! The paper (§3.4) describes both PVDM (the document vector joins the
//! context when predicting the center word) and PVDBOW (the document
//! vector alone predicts words sampled from the document). §4.9
//! explains why the deployed system prefers averaged pretrained
//! Word2Vecs over these models (small training corpora generalize
//! poorly) — both are implemented here so the `ablation_embeddings`
//! bench can quantify that design decision.

use nd_linalg::rng::SplitMix64;
use std::collections::{BTreeMap, HashMap};

/// Doc2Vec architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Doc2VecMode {
    /// Distributed Memory: doc vector + context average predicts the
    /// center word.
    Pvdm,
    /// Distributed Bag-of-Words: doc vector predicts sampled words.
    Pvdbow,
}

/// Doc2Vec hyper-parameters.
#[derive(Debug, Clone)]
pub struct Doc2VecConfig {
    /// Embedding dimensionality (documents and words share it).
    pub dim: usize,
    /// Context window radius (PVDM only).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Minimum word count.
    pub min_count: usize,
    /// Architecture.
    pub mode: Doc2VecMode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Doc2VecConfig {
    fn default() -> Self {
        Doc2VecConfig {
            dim: 100,
            window: 5,
            negative: 5,
            epochs: 10,
            learning_rate: 0.025,
            min_count: 2,
            mode: Doc2VecMode::Pvdm,
            seed: 42,
        }
    }
}

/// A trained Doc2Vec model: one vector per training document.
#[derive(Debug, Clone)]
pub struct Doc2VecModel {
    /// Per-document vectors, aligned with the training corpus order.
    pub doc_vectors: Vec<Vec<f64>>,
    /// Dimensionality.
    pub dim: usize,
}

impl Doc2VecModel {
    /// Cosine similarity between two training documents.
    pub fn similarity(&self, a: usize, b: usize) -> f64 {
        nd_linalg::vecops::cosine(&self.doc_vectors[a], &self.doc_vectors[b])
    }
}

/// The Doc2Vec trainer.
#[derive(Debug, Clone)]
pub struct Doc2Vec {
    config: Doc2VecConfig,
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x.clamp(-6.0, 6.0)).exp())
}

impl Doc2Vec {
    /// Creates a trainer.
    pub fn new(config: Doc2VecConfig) -> Self {
        Doc2Vec { config }
    }

    /// Trains paragraph vectors over the corpus.
    pub fn train(&self, corpus: &[Vec<String>]) -> Doc2VecModel {
        let cfg = &self.config;
        let dim = cfg.dim;
        let n_docs = corpus.len();

        // Vocabulary. BTreeMap: the collect below iterates it, and
        // vocabulary order seeds ids and init vectors downstream.
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for doc in corpus {
            for t in doc {
                *counts.entry(t.as_str()).or_insert(0) += 1;
            }
        }
        let mut vocab: Vec<(&str, usize)> = counts
            .iter()
            .filter(|(_, &c)| c >= cfg.min_count)
            .map(|(&w, &c)| (w, c))
            .collect();
        vocab.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let word_id: HashMap<&str, usize> =
            vocab.iter().enumerate().map(|(i, &(w, _))| (w, i)).collect();
        let v = vocab.len();

        let mut rng = SplitMix64::new(cfg.seed);
        let bound = 0.5 / dim as f64;
        let mut doc_vecs: Vec<f64> =
            (0..n_docs * dim).map(|_| rng.next_range(-bound, bound)).collect();

        if v == 0 {
            return Doc2VecModel {
                doc_vectors: doc_vecs.chunks(dim.max(1)).map(|c| c.to_vec()).collect(),
                dim,
            };
        }

        let mut word_vecs: Vec<f64> =
            (0..v * dim).map(|_| rng.next_range(-bound, bound)).collect();
        let mut out_vecs: Vec<f64> = vec![0.0; v * dim];

        // Unigram^0.75 table.
        // nd-lint: allow(fp-reduction-order) — serial sum over the sorted vocab; order fixed by construction.
        let pow_sum: f64 = vocab.iter().map(|&(_, c)| (c as f64).powf(0.75)).sum();
        let table_size = 1 << 16;
        let mut table = Vec::with_capacity(table_size);
        {
            let mut i = 0usize;
            let mut cum = (vocab[0].1 as f64).powf(0.75) / pow_sum;
            for t in 0..table_size {
                table.push(i as u32);
                if (t as f64 + 1.0) / table_size as f64 > cum && i + 1 < v {
                    i += 1;
                    cum += (vocab[i].1 as f64).powf(0.75) / pow_sum;
                }
            }
        }

        let encoded: Vec<Vec<u32>> = corpus
            .iter()
            .map(|doc| {
                doc.iter()
                    .filter_map(|t| word_id.get(t.as_str()).map(|&i| i as u32))
                    .collect()
            })
            .collect();

        let total_tokens: usize = encoded.iter().map(Vec::len).sum();
        let total_steps = (cfg.epochs * total_tokens).max(1) as f64;
        let mut step = 0usize;
        let mut hidden = vec![0.0; dim];
        let mut grad = vec![0.0; dim];

        for _epoch in 0..cfg.epochs {
            for (d, sent) in encoded.iter().enumerate() {
                for (pos, &center) in sent.iter().enumerate() {
                    step += 1;
                    let lr = (cfg.learning_rate * (1.0 - step as f64 / (total_steps + 1.0)))
                        .max(cfg.learning_rate * 1e-4);

                    // Assemble the predictor vector.
                    let mut n_inputs = 1usize;
                    hidden.copy_from_slice(&doc_vecs[d * dim..(d + 1) * dim]);
                    let context: Vec<u32> = if cfg.mode == Doc2VecMode::Pvdm {
                        let lo = pos.saturating_sub(cfg.window);
                        let hi = (pos + cfg.window).min(sent.len() - 1);
                        (lo..=hi).filter(|&p| p != pos).map(|p| sent[p]).collect()
                    } else {
                        Vec::new()
                    };
                    for &c in &context {
                        let row = &word_vecs[c as usize * dim..(c as usize + 1) * dim];
                        for (h, &x) in hidden.iter_mut().zip(row) {
                            *h += x;
                        }
                        n_inputs += 1;
                    }
                    if n_inputs > 1 {
                        let inv = 1.0 / n_inputs as f64;
                        hidden.iter_mut().for_each(|h| *h *= inv);
                    }

                    // Negative-sampling step on the center word.
                    grad.iter_mut().for_each(|g| *g = 0.0);
                    for k in 0..=cfg.negative {
                        let (word, label) = if k == 0 {
                            (center as usize, 1.0)
                        } else {
                            (table[rng.next_usize(table.len())] as usize, 0.0)
                        };
                        if k > 0 && word == center as usize {
                            continue;
                        }
                        let out = &mut out_vecs[word * dim..(word + 1) * dim];
                        let mut dot = 0.0;
                        for (h, o) in hidden.iter().zip(out.iter()) {
                            dot += h * o;
                        }
                        let g = (label - sigmoid(dot)) * lr;
                        for (gr, &o) in grad.iter_mut().zip(out.iter()) {
                            *gr += g * o;
                        }
                        for (o, &h) in out.iter_mut().zip(hidden.iter()) {
                            *o += g * h;
                        }
                    }

                    // Propagate to the document vector (and context
                    // words under PVDM).
                    let dv = &mut doc_vecs[d * dim..(d + 1) * dim];
                    for (x, &g) in dv.iter_mut().zip(&grad) {
                        *x += g;
                    }
                    for &c in &context {
                        let row =
                            &mut word_vecs[c as usize * dim..(c as usize + 1) * dim];
                        for (x, &g) in row.iter_mut().zip(&grad) {
                            *x += g;
                        }
                    }
                }
            }
        }

        Doc2VecModel {
            doc_vectors: doc_vecs.chunks(dim).map(|c| c.to_vec()).collect(),
            dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grouped_corpus() -> Vec<Vec<String>> {
        let pol = ["election", "vote", "party", "minister", "coalition"];
        let spo = ["derby", "race", "horse", "jockey", "track"];
        let mut rng = SplitMix64::new(3);
        let mut corpus = Vec::new();
        for i in 0..40 {
            let pool: &[&str] = if i % 2 == 0 { &pol } else { &spo };
            corpus.push(
                (0..15).map(|_| pool[rng.next_usize(pool.len())].to_string()).collect(),
            );
        }
        corpus
    }

    fn avg_sims(model: &Doc2VecModel) -> (f64, f64) {
        let mut intra = 0.0;
        let mut inter = 0.0;
        let mut ni = 0;
        let mut nx = 0;
        for a in 0..20 {
            for b in (a + 1)..20 {
                let s = model.similarity(2 * a, 2 * b); // even = politics
                intra += s;
                ni += 1;
                let s = model.similarity(2 * a, 2 * b + 1);
                inter += s;
                nx += 1;
            }
        }
        (intra / ni as f64, inter / nx as f64)
    }

    #[test]
    fn pvdm_groups_similar_documents() {
        let model = Doc2Vec::new(Doc2VecConfig {
            dim: 24,
            epochs: 20,
            mode: Doc2VecMode::Pvdm,
            min_count: 1,
            seed: 1,
            ..Default::default()
        })
        .train(&grouped_corpus());
        let (intra, inter) = avg_sims(&model);
        assert!(intra > inter + 0.1, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn pvdbow_groups_similar_documents() {
        let model = Doc2Vec::new(Doc2VecConfig {
            dim: 24,
            epochs: 20,
            mode: Doc2VecMode::Pvdbow,
            min_count: 1,
            seed: 1,
            ..Default::default()
        })
        .train(&grouped_corpus());
        let (intra, inter) = avg_sims(&model);
        assert!(intra > inter + 0.1, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn one_vector_per_document() {
        let corpus = grouped_corpus();
        let model =
            Doc2Vec::new(Doc2VecConfig { dim: 8, epochs: 1, ..Default::default() }).train(&corpus);
        assert_eq!(model.doc_vectors.len(), corpus.len());
        assert!(model.doc_vectors.iter().all(|v| v.len() == 8));
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = Doc2VecConfig { dim: 8, epochs: 2, seed: 11, ..Default::default() };
        let a = Doc2Vec::new(cfg.clone()).train(&grouped_corpus());
        let b = Doc2Vec::new(cfg).train(&grouped_corpus());
        assert_eq!(a.doc_vectors, b.doc_vectors);
    }

    #[test]
    fn empty_corpus() {
        let model = Doc2Vec::new(Doc2VecConfig::default()).train(&[]);
        assert!(model.doc_vectors.is_empty());
    }

    #[test]
    fn vectors_finite() {
        let model = Doc2Vec::new(Doc2VecConfig { dim: 8, epochs: 3, ..Default::default() })
            .train(&grouped_corpus());
        for v in &model.doc_vectors {
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }
}
