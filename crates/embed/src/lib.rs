//! # nd-embed
//!
//! Embeddings (paper §3.4): a from-scratch [Word2Vec](word2vec)
//! trainer (CBOW and skip-gram, both with negative sampling), the two
//! [Doc2Vec](doc2vec) paragraph-vector models the paper discusses
//! (PVDM and PVDBOW), and the paper's three custom *averaged*
//! document embeddings (§4.7):
//!
//! * **SW** — average of the in-vocabulary word vectors only;
//! * **RND** — out-of-vocabulary words contribute deterministic random
//!   vectors in `[-1, 1]` before averaging;
//! * **SWM** — in-vocabulary word vectors scaled by the word's
//!   magnitude in the event context before averaging.
//!
//! The "pretrained Google News model" of the paper is replaced by a
//! Word2Vec trained on a synthetic background corpus (see `nd-synth`);
//! this crate only sees the resulting [`WordVectors`] lookup table, so
//! the substitution is invisible to the pipeline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod average;
pub mod doc2vec;
pub mod vectors;
pub mod word2vec;

pub use average::{doc_embedding, AverageStrategy};
pub use vectors::WordVectors;
pub use word2vec::{Word2Vec, Word2VecConfig, Word2VecMode};
