//! Word-vector lookup table.

use nd_linalg::vecops::{cosine, normalize};
use std::collections::HashMap;

/// A trained word-embedding table: `word → dense vector`.
///
/// This is the only interface the rest of the pipeline sees — whether
/// the vectors came from our Word2Vec trainer or anywhere else.
#[derive(Debug, Clone)]
pub struct WordVectors {
    dim: usize,
    index: HashMap<String, usize>,
    /// Words in row order — the insertion order, kept alongside the
    /// hash index so [`WordVectors::iter`] is deterministic without
    /// giving up O(1) lookup.
    words: Vec<String>,
    /// Flat row-major storage, one row per word.
    data: Vec<f64>,
}

impl WordVectors {
    /// Creates an empty table of the given dimensionality.
    pub fn new(dim: usize) -> Self {
        WordVectors { dim, index: HashMap::new(), words: Vec::new(), data: Vec::new() }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of words in the table.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when the table contains no words.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Inserts (or replaces) a word's vector.
    ///
    /// # Panics
    /// Panics when `vector.len() != dim` — table construction is
    /// internal code, a mismatch is a logic error.
    pub fn insert(&mut self, word: impl Into<String>, vector: &[f64]) {
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        let word = word.into();
        match self.index.get(&word) {
            Some(&row) => {
                self.data[row * self.dim..(row + 1) * self.dim].copy_from_slice(vector);
            }
            None => {
                let row = self.index.len();
                self.index.insert(word.clone(), row);
                self.words.push(word);
                self.data.extend_from_slice(vector);
            }
        }
    }

    /// The vector for `word`, if present.
    pub fn get(&self, word: &str) -> Option<&[f64]> {
        self.index.get(word).map(|&row| &self.data[row * self.dim..(row + 1) * self.dim])
    }

    /// `true` when `word` is in the vocabulary.
    pub fn contains(&self, word: &str) -> bool {
        self.index.contains_key(word)
    }

    /// Iterator over `(word, vector)` pairs in insertion order —
    /// deterministic, since trainers insert in sorted-vocabulary
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[f64])> {
        self.words
            .iter()
            .enumerate()
            .map(move |(row, w)| (w.as_str(), &self.data[row * self.dim..(row + 1) * self.dim]))
    }

    /// Cosine similarity between two words; `None` if either is
    /// missing.
    pub fn similarity(&self, a: &str, b: &str) -> Option<f64> {
        Some(cosine(self.get(a)?, self.get(b)?))
    }

    /// The `k` nearest words to `word` by cosine similarity
    /// (excluding the word itself); empty when `word` is unknown.
    pub fn most_similar(&self, word: &str, k: usize) -> Vec<(String, f64)> {
        let Some(target) = self.get(word) else {
            return Vec::new();
        };
        let mut scored: Vec<(String, f64)> = self
            .iter()
            .filter(|(w, _)| *w != word)
            .map(|(w, v)| (w.to_string(), cosine(target, v)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }

    /// ℓ²-normalizes every vector in place (useful before bulk cosine
    /// scans, which then reduce to dot products).
    pub fn normalize_all(&mut self) {
        for row in 0..self.index.len() {
            normalize(&mut self.data[row * self.dim..(row + 1) * self.dim]);
        }
    }

    /// Removes the common component: subtracts the mean vector from
    /// every entry ("all-but-the-top", Mu & Viswanath 2018).
    ///
    /// Word2Vec tables trained on topical corpora develop a large
    /// shared direction (everything co-occurs with function words);
    /// without centering, cosine similarity between *any* two averaged
    /// document embeddings saturates near 1 and the correlation
    /// thresholds of the paper (0.7 / 0.65) stop discriminating.
    pub fn center(&mut self) {
        let n = self.index.len();
        if n == 0 {
            return;
        }
        let mut mean = vec![0.0; self.dim];
        for row in 0..n {
            for (m, &v) in mean.iter_mut().zip(&self.data[row * self.dim..(row + 1) * self.dim]) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        for row in 0..n {
            for (v, &m) in self.data[row * self.dim..(row + 1) * self.dim]
                .iter_mut()
                .zip(&mean)
            {
                *v -= m;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> WordVectors {
        let mut wv = WordVectors::new(3);
        wv.insert("a", &[1.0, 0.0, 0.0]);
        wv.insert("b", &[0.9, 0.1, 0.0]);
        wv.insert("c", &[0.0, 0.0, 1.0]);
        wv
    }

    #[test]
    fn insert_get_roundtrip() {
        let wv = table();
        assert_eq!(wv.len(), 3);
        assert_eq!(wv.get("a"), Some(&[1.0, 0.0, 0.0][..]));
        assert_eq!(wv.get("missing"), None);
        assert!(wv.contains("b"));
    }

    #[test]
    fn insert_replaces_existing() {
        let mut wv = table();
        wv.insert("a", &[0.0, 1.0, 0.0]);
        assert_eq!(wv.len(), 3);
        assert_eq!(wv.get("a"), Some(&[0.0, 1.0, 0.0][..]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut wv = WordVectors::new(3);
        wv.insert("x", &[1.0]);
    }

    #[test]
    fn similarity_and_neighbors() {
        let wv = table();
        let sim_ab = wv.similarity("a", "b").unwrap();
        let sim_ac = wv.similarity("a", "c").unwrap();
        assert!(sim_ab > sim_ac);
        assert_eq!(wv.similarity("a", "zzz"), None);

        let near = wv.most_similar("a", 1);
        assert_eq!(near[0].0, "b");
        assert!(wv.most_similar("zzz", 3).is_empty());
    }

    #[test]
    fn center_removes_mean() {
        let mut wv = table();
        wv.center();
        let dim = wv.dim();
        let mut mean = vec![0.0; dim];
        for (_, v) in wv.iter() {
            for (m, &x) in mean.iter_mut().zip(v) {
                *m += x;
            }
        }
        for m in &mean {
            assert!((m / wv.len() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn center_empty_table_safe() {
        let mut wv = WordVectors::new(4);
        wv.center();
        assert!(wv.is_empty());
    }

    #[test]
    fn normalize_all_unit_norm() {
        let mut wv = table();
        wv.normalize_all();
        for (_, v) in wv.iter() {
            let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((n - 1.0).abs() < 1e-12);
        }
    }
}
