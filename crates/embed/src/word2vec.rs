//! Word2Vec with negative sampling (Mikolov et al. 2013).
//!
//! Both architectures from the paper's §3.4 are implemented:
//!
//! * **CBOW** — the averaged context window predicts the center word;
//! * **Skip-gram** — the center word predicts each context word.
//!
//! Training uses negative sampling with the standard unigram^0.75
//! noise distribution, frequent-word subsampling, and a linearly
//! decaying learning rate. All randomness is seeded.

use crate::vectors::WordVectors;
use nd_linalg::rng::SplitMix64;
use std::collections::HashMap;

/// Architecture selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Word2VecMode {
    /// Continuous bag-of-words.
    Cbow,
    /// Skip-gram.
    SkipGram,
}

/// Word2Vec hyper-parameters.
#[derive(Debug, Clone)]
pub struct Word2VecConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 1e-4 of itself).
    pub learning_rate: f64,
    /// Words occurring fewer times are dropped from the vocabulary.
    pub min_count: usize,
    /// Subsampling threshold for frequent words (`0.0` disables; the
    /// classic value is `1e-3`..`1e-5`).
    pub subsample: f64,
    /// Architecture.
    pub mode: Word2VecMode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Word2VecConfig {
            dim: 100,
            window: 5,
            negative: 5,
            epochs: 5,
            learning_rate: 0.025,
            min_count: 2,
            subsample: 1e-3,
            mode: Word2VecMode::Cbow,
            seed: 42,
        }
    }
}

/// The Word2Vec trainer.
#[derive(Debug, Clone)]
pub struct Word2Vec {
    config: Word2VecConfig,
}

const UNIGRAM_TABLE_SIZE: usize = 1 << 17;
const SIGMOID_CLAMP: f64 = 6.0;

#[inline]
fn sigmoid(x: f64) -> f64 {
    let x = x.clamp(-SIGMOID_CLAMP, SIGMOID_CLAMP);
    1.0 / (1.0 + (-x).exp())
}

impl Word2Vec {
    /// Creates a trainer with the given configuration.
    pub fn new(config: Word2VecConfig) -> Self {
        Word2Vec { config }
    }

    /// Trains on a corpus of token streams, returning the input-side
    /// word vectors.
    pub fn train(&self, corpus: &[Vec<String>]) -> WordVectors {
        let cfg = &self.config;
        // --- Vocabulary with counts.
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for doc in corpus {
            for tok in doc {
                *counts.entry(tok.as_str()).or_insert(0) += 1;
            }
        }
        let mut vocab: Vec<(&str, usize)> = counts
            .iter()
            .filter(|(_, &c)| c >= cfg.min_count)
            .map(|(&w, &c)| (w, c))
            .collect();
        // Deterministic: count desc, then lexical.
        vocab.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let word_id: HashMap<&str, usize> =
            vocab.iter().enumerate().map(|(i, &(w, _))| (w, i)).collect();
        let v = vocab.len();
        if v == 0 {
            return WordVectors::new(cfg.dim);
        }
        let total_tokens: usize = vocab.iter().map(|&(_, c)| c).sum();

        // --- Unigram^0.75 table for negative sampling.
        let pow_sum: f64 = vocab.iter().map(|&(_, c)| (c as f64).powf(0.75)).sum();
        let mut table = Vec::with_capacity(UNIGRAM_TABLE_SIZE);
        {
            let mut i = 0usize;
            let mut cum = (vocab[0].1 as f64).powf(0.75) / pow_sum;
            for t in 0..UNIGRAM_TABLE_SIZE {
                table.push(i as u32);
                if (t as f64 + 1.0) / UNIGRAM_TABLE_SIZE as f64 > cum && i + 1 < v {
                    i += 1;
                    cum += (vocab[i].1 as f64).powf(0.75) / pow_sum;
                }
            }
        }

        // --- Parameter matrices: input (syn0) and output (syn1neg).
        let mut rng = SplitMix64::new(cfg.seed);
        let bound = 0.5 / cfg.dim as f64;
        let mut syn0: Vec<f64> =
            (0..v * cfg.dim).map(|_| rng.next_range(-bound, bound)).collect();
        let mut syn1: Vec<f64> = vec![0.0; v * cfg.dim];

        // --- Keep-probability for subsampling.
        let keep_prob: Vec<f64> = vocab
            .iter()
            .map(|&(_, c)| {
                if cfg.subsample <= 0.0 {
                    1.0
                } else {
                    let f = c as f64 / total_tokens as f64;
                    ((cfg.subsample / f).sqrt() + cfg.subsample / f).min(1.0)
                }
            })
            .collect();

        // --- Encode corpus as id streams.
        let encoded: Vec<Vec<u32>> = corpus
            .iter()
            .map(|doc| {
                doc.iter()
                    .filter_map(|t| word_id.get(t.as_str()).map(|&i| i as u32))
                    .collect()
            })
            .collect();

        // --- Training loop.
        let total_steps = (cfg.epochs * total_tokens).max(1) as f64;
        let mut step = 0usize;
        let mut neu1 = vec![0.0; cfg.dim];
        let mut grad = vec![0.0; cfg.dim];

        for epoch in 0..cfg.epochs {
            for sent in &encoded {
                // Subsample per epoch for variety.
                let kept: Vec<u32> = sent
                    .iter()
                    .copied()
                    .filter(|&id| {
                        keep_prob[id as usize] >= 1.0
                            || rng.next_f64() < keep_prob[id as usize]
                    })
                    .collect();
                for (pos, &center) in kept.iter().enumerate() {
                    step += 1;
                    let lr = (cfg.learning_rate
                        * (1.0 - step as f64 / (total_steps + 1.0)))
                        .max(cfg.learning_rate * 1e-4);
                    // Randomized effective window as in the reference
                    // implementation.
                    let b = rng.next_usize(cfg.window.max(1));
                    let win = cfg.window - b;
                    let lo = pos.saturating_sub(win);
                    let hi = (pos + win).min(kept.len().saturating_sub(1));
                    let context: Vec<u32> = (lo..=hi)
                        .filter(|&p| p != pos)
                        .map(|p| kept[p])
                        .collect();
                    if context.is_empty() {
                        continue;
                    }
                    match cfg.mode {
                        Word2VecMode::Cbow => {
                            // Average context -> predict center.
                            neu1.iter_mut().for_each(|x| *x = 0.0);
                            for &c in &context {
                                let row = &syn0[c as usize * cfg.dim..(c as usize + 1) * cfg.dim];
                                for (a, &b) in neu1.iter_mut().zip(row) {
                                    *a += b;
                                }
                            }
                            let inv = 1.0 / context.len() as f64;
                            neu1.iter_mut().for_each(|x| *x *= inv);
                            grad.iter_mut().for_each(|x| *x = 0.0);
                            self.negative_step(
                                &neu1, &mut grad, &mut syn1, center, &table, &mut rng, lr,
                                cfg.dim, cfg.negative, v,
                            );
                            for &c in &context {
                                let row = &mut syn0
                                    [c as usize * cfg.dim..(c as usize + 1) * cfg.dim];
                                for (a, &g) in row.iter_mut().zip(&grad) {
                                    *a += g;
                                }
                            }
                        }
                        Word2VecMode::SkipGram => {
                            for &ctx in &context {
                                let row_start = ctx as usize * cfg.dim;
                                neu1.copy_from_slice(
                                    &syn0[row_start..row_start + cfg.dim],
                                );
                                grad.iter_mut().for_each(|x| *x = 0.0);
                                self.negative_step(
                                    &neu1, &mut grad, &mut syn1, center, &table, &mut rng,
                                    lr, cfg.dim, cfg.negative, v,
                                );
                                let row = &mut syn0[row_start..row_start + cfg.dim];
                                for (a, &g) in row.iter_mut().zip(&grad) {
                                    *a += g;
                                }
                            }
                        }
                    }
                }
            }
            let _ = epoch;
        }

        // --- Export input vectors.
        let mut out = WordVectors::new(cfg.dim);
        for (i, &(w, _)) in vocab.iter().enumerate() {
            out.insert(w, &syn0[i * cfg.dim..(i + 1) * cfg.dim]);
        }
        out
    }

    /// One negative-sampling update: `hidden` is the predictor vector,
    /// `grad` accumulates its gradient, `syn1` holds output vectors.
    #[allow(clippy::too_many_arguments)]
    fn negative_step(
        &self,
        hidden: &[f64],
        grad: &mut [f64],
        syn1: &mut [f64],
        target: u32,
        table: &[u32],
        rng: &mut SplitMix64,
        lr: f64,
        dim: usize,
        negative: usize,
        vocab_size: usize,
    ) {
        for k in 0..=negative {
            let (word, label) = if k == 0 {
                (target as usize, 1.0)
            } else {
                let mut w = table[rng.next_usize(table.len())] as usize;
                if w == target as usize {
                    w = (w + 1 + rng.next_usize(vocab_size.saturating_sub(1).max(1)))
                        % vocab_size;
                }
                (w, 0.0)
            };
            let out_row = &mut syn1[word * dim..(word + 1) * dim];
            let mut dot = 0.0;
            for (h, o) in hidden.iter().zip(out_row.iter()) {
                dot += h * o;
            }
            let g = (label - sigmoid(dot)) * lr;
            for (gr, &o) in grad.iter_mut().zip(out_row.iter()) {
                *gr += g * o;
            }
            for (o, &h) in out_row.iter_mut().zip(hidden) {
                *o += g * h;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic corpus with two disjoint co-occurrence clusters.
    fn clustered_corpus(n_sent: usize) -> Vec<Vec<String>> {
        let cluster_a = ["king", "queen", "royal", "palace", "crown"];
        let cluster_b = ["tariff", "trade", "import", "export", "market"];
        let mut rng = SplitMix64::new(99);
        let mut corpus = Vec::new();
        for i in 0..n_sent {
            let pool: &[&str] = if i % 2 == 0 { &cluster_a } else { &cluster_b };
            let sent: Vec<String> =
                (0..12).map(|_| pool[rng.next_usize(pool.len())].to_string()).collect();
            corpus.push(sent);
        }
        corpus
    }

    fn train(mode: Word2VecMode, seed: u64) -> WordVectors {
        Word2Vec::new(Word2VecConfig {
            dim: 24,
            window: 4,
            negative: 5,
            epochs: 12,
            min_count: 1,
            subsample: 0.0,
            mode,
            seed,
            ..Default::default()
        })
        .train(&clustered_corpus(300))
    }

    fn check_clusters(wv: &WordVectors) {
        // Intra-cluster similarity must exceed inter-cluster.
        let intra = wv.similarity("king", "queen").unwrap();
        let inter = wv.similarity("king", "tariff").unwrap();
        assert!(
            intra > inter + 0.2,
            "intra {intra} should clearly exceed inter {inter}"
        );
    }

    #[test]
    fn cbow_learns_cooccurrence_structure() {
        check_clusters(&train(Word2VecMode::Cbow, 1));
    }

    #[test]
    fn skipgram_learns_cooccurrence_structure() {
        check_clusters(&train(Word2VecMode::SkipGram, 1));
    }

    #[test]
    fn most_similar_finds_cluster_mates() {
        let wv = train(Word2VecMode::Cbow, 2);
        let near: Vec<String> =
            wv.most_similar("trade", 3).into_iter().map(|(w, _)| w).collect();
        let trade_cluster = ["tariff", "import", "export", "market"];
        let hits = near.iter().filter(|w| trade_cluster.contains(&w.as_str())).count();
        assert!(hits >= 2, "neighbors of 'trade' were {near:?}");
    }

    #[test]
    fn min_count_prunes() {
        let mut corpus = clustered_corpus(50);
        corpus.push(vec!["hapaxword".to_string()]);
        let wv = Word2Vec::new(Word2VecConfig {
            dim: 8,
            epochs: 1,
            min_count: 2,
            ..Default::default()
        })
        .train(&corpus);
        assert!(!wv.contains("hapaxword"));
        assert!(wv.contains("king"));
    }

    #[test]
    fn deterministic_by_seed() {
        let a = train(Word2VecMode::Cbow, 7);
        let b = train(Word2VecMode::Cbow, 7);
        assert_eq!(a.get("king"), b.get("king"));
    }

    #[test]
    fn empty_corpus_gives_empty_table() {
        let wv = Word2Vec::new(Word2VecConfig::default()).train(&[]);
        assert!(wv.is_empty());
        assert_eq!(wv.dim(), 100);
    }

    #[test]
    fn vectors_finite() {
        let wv = train(Word2VecMode::SkipGram, 5);
        for (_, v) in wv.iter() {
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn sigmoid_bounds() {
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }
}
