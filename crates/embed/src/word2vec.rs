//! Word2Vec with negative sampling (Mikolov et al. 2013).
//!
//! Both architectures from the paper's §3.4 are implemented:
//!
//! * **CBOW** — the averaged context window predicts the center word;
//! * **Skip-gram** — the center word predicts each context word.
//!
//! Training uses negative sampling with the standard unigram^0.75
//! noise distribution, frequent-word subsampling, and a linearly
//! decaying learning rate. All randomness is seeded.
//!
//! # Parallel training and determinism
//!
//! Sentences are processed in fixed-size batches. Every sentence
//! derives its own RNG stream from `(seed, epoch, sentence index)`,
//! computes its gradient contributions against the parameter snapshot
//! taken at the start of its batch (mini-batch semantics rather than
//! Hogwild), and the contributions are applied in ascending sentence
//! order. Sentences within a batch run across threads via [`nd_par`],
//! but neither the derived randomness nor the apply order depends on
//! the thread count, so training is bit-for-bit reproducible at any
//! `NEWSDIFF_THREADS` setting. The learning-rate schedule decays over
//! *raw* token positions (prefix sums of sentence lengths), not over
//! stochastic post-subsampling counts, for the same reason.

use crate::vectors::WordVectors;
use nd_linalg::rng::SplitMix64;
use std::collections::{BTreeMap, HashMap};

/// Architecture selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Word2VecMode {
    /// Continuous bag-of-words.
    Cbow,
    /// Skip-gram.
    SkipGram,
}

/// Word2Vec hyper-parameters.
#[derive(Debug, Clone)]
pub struct Word2VecConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 1e-4 of itself).
    pub learning_rate: f64,
    /// Words occurring fewer times are dropped from the vocabulary.
    pub min_count: usize,
    /// Subsampling threshold for frequent words (`0.0` disables; the
    /// classic value is `1e-3`..`1e-5`).
    pub subsample: f64,
    /// Architecture.
    pub mode: Word2VecMode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Word2VecConfig {
            dim: 100,
            window: 5,
            negative: 5,
            epochs: 5,
            learning_rate: 0.025,
            min_count: 2,
            subsample: 1e-3,
            mode: Word2VecMode::Cbow,
            seed: 42,
        }
    }
}

/// The Word2Vec trainer.
#[derive(Debug, Clone)]
pub struct Word2Vec {
    config: Word2VecConfig,
}

const UNIGRAM_TABLE_SIZE: usize = 1 << 17;
const SIGMOID_CLAMP: f64 = 6.0;
/// Sentences per batch-synchronous update. Small enough that the
/// snapshot gradients stay close to sequential SGD, large enough to
/// amortise the parallel fan-out.
const BATCH_SENTENCES: usize = 8;

#[inline]
fn sigmoid(x: f64) -> f64 {
    let x = x.clamp(-SIGMOID_CLAMP, SIGMOID_CLAMP);
    1.0 / (1.0 + (-x).exp())
}

/// Derives the per-sentence RNG stream. A pure function of the seed,
/// epoch, and sentence index — independent of processing order, so
/// any scheduling of sentences across threads sees identical draws.
fn sentence_rng(seed: u64, epoch: usize, sent: usize) -> SplitMix64 {
    let key = seed
        ^ (epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (sent as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    SplitMix64::new(key)
}

/// One sentence's gradient contributions: parallel row-id / delta
/// arrays for the input (`syn0`) and output (`syn1`) matrices, each
/// delta `dim` wide. Recorded in generation order and applied in the
/// same order.
#[derive(Default)]
struct SentGrad {
    rows0: Vec<u32>,
    delta0: Vec<f64>,
    rows1: Vec<u32>,
    delta1: Vec<f64>,
}

/// Adds each recorded delta row into `params` in recorded order.
fn apply_deltas(params: &mut [f64], dim: usize, rows: &[u32], deltas: &[f64]) {
    for (i, &r) in rows.iter().enumerate() {
        let row = &mut params[r as usize * dim..(r as usize + 1) * dim];
        for (p, &d) in row.iter_mut().zip(&deltas[i * dim..(i + 1) * dim]) {
            *p += d;
        }
    }
}

/// Reusable per-sentence workspace. One slot exists per batch lane
/// (`BATCH_SENTENCES` of them), allocated once per training run; every
/// temporary the gradient pass needs lives here, so the epoch loop
/// performs no per-sentence heap allocation once the slots have grown
/// to the corpus's working set.
struct SentScratch {
    /// The sentence's recorded gradient contributions.
    grad: SentGrad,
    /// Post-subsampling token ids.
    kept: Vec<u32>,
    /// Current context-window token ids.
    context: Vec<u32>,
    /// Hidden/predictor vector (`dim` wide).
    neu1: Vec<f64>,
    /// Gradient accumulator for the predictor (`dim` wide).
    gvec: Vec<f64>,
}

impl SentScratch {
    fn new(dim: usize) -> Self {
        SentScratch {
            grad: SentGrad::default(),
            kept: Vec::new(),
            context: Vec::new(),
            neu1: vec![0.0; dim],
            gvec: vec![0.0; dim],
        }
    }

    /// Clears the per-sentence state while keeping every allocation.
    fn clear(&mut self) {
        self.grad.rows0.clear();
        self.grad.delta0.clear();
        self.grad.rows1.clear();
        self.grad.delta1.clear();
        self.kept.clear();
        self.context.clear();
    }
}

impl Word2Vec {
    /// Creates a trainer with the given configuration.
    pub fn new(config: Word2VecConfig) -> Self {
        Word2Vec { config }
    }

    /// Trains on a corpus of token streams, returning the input-side
    /// word vectors.
    pub fn train(&self, corpus: &[Vec<String>]) -> WordVectors {
        self.train_from(corpus, None)
    }

    /// Online continuation (DESIGN.md §17): trains on `corpus` with
    /// known words resuming from `prev` and merges the result over
    /// `prev`, so words absent from this corpus keep their previous
    /// vectors. The streaming pipeline calls this once per time slice
    /// with a slice-scoped seed.
    pub fn train_continue(&self, corpus: &[Vec<String>], prev: &WordVectors) -> WordVectors {
        let trained = self.train_from(corpus, Some(prev));
        if prev.dim() != self.config.dim {
            // Dimension change: nothing to resume from or merge with.
            return trained;
        }
        let mut out = prev.clone();
        for (w, vec) in trained.iter() {
            out.insert(w, vec);
        }
        out
    }

    /// Trains on a corpus, optionally seeding input rows from prior
    /// vectors.
    ///
    /// The RNG consumption is independent of `init`: the full random
    /// initialization is drawn first (bit-identical to a cold run),
    /// then rows of words present in `init` are overwritten with the
    /// prior vectors. New-vocabulary rows therefore come from exactly
    /// the stream positions a cold run would give them, which is what
    /// makes warm continuation reproducible without replaying history.
    fn train_from(&self, corpus: &[Vec<String>], init: Option<&WordVectors>) -> WordVectors {
        let cfg = &self.config;
        // --- Vocabulary with counts. BTreeMap: the collect below
        // iterates it, and vocabulary order seeds everything
        // downstream (ids, init vectors, negative-sampling table).
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for doc in corpus {
            for tok in doc {
                *counts.entry(tok.as_str()).or_insert(0) += 1;
            }
        }
        let mut vocab: Vec<(&str, usize)> = counts
            .iter()
            .filter(|(_, &c)| c >= cfg.min_count)
            .map(|(&w, &c)| (w, c))
            .collect();
        // Deterministic: count desc, then lexical.
        vocab.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let word_id: HashMap<&str, usize> =
            vocab.iter().enumerate().map(|(i, &(w, _))| (w, i)).collect();
        let v = vocab.len();
        if v == 0 {
            return WordVectors::new(cfg.dim);
        }
        let total_tokens: usize = vocab.iter().map(|&(_, c)| c).sum();

        // --- Unigram^0.75 table for negative sampling.
        // nd-lint: allow(fp-reduction-order) — serial sum over the sorted vocab; order fixed by construction.
        let pow_sum: f64 = vocab.iter().map(|&(_, c)| (c as f64).powf(0.75)).sum();
        let mut table = Vec::with_capacity(UNIGRAM_TABLE_SIZE);
        {
            let mut i = 0usize;
            let mut cum = (vocab[0].1 as f64).powf(0.75) / pow_sum;
            for t in 0..UNIGRAM_TABLE_SIZE {
                table.push(i as u32);
                if (t as f64 + 1.0) / UNIGRAM_TABLE_SIZE as f64 > cum && i + 1 < v {
                    i += 1;
                    cum += (vocab[i].1 as f64).powf(0.75) / pow_sum;
                }
            }
        }

        // --- Parameter matrices: input (syn0) and output (syn1neg).
        let mut rng = SplitMix64::new(cfg.seed);
        let bound = 0.5 / cfg.dim as f64;
        let mut syn0: Vec<f64> =
            (0..v * cfg.dim).map(|_| rng.next_range(-bound, bound)).collect();
        if let Some(iv) = init.filter(|iv| iv.dim() == cfg.dim) {
            // Warm continuation: known words resume from their prior
            // vectors; unknown rows keep the fresh draws above.
            for (i, &(w, _)) in vocab.iter().enumerate() {
                if let Some(row) = iv.get(w) {
                    syn0[i * cfg.dim..(i + 1) * cfg.dim].copy_from_slice(row);
                }
            }
        }
        let mut syn1: Vec<f64> = vec![0.0; v * cfg.dim];

        // --- Keep-probability for subsampling.
        let keep_prob: Vec<f64> = vocab
            .iter()
            .map(|&(_, c)| {
                if cfg.subsample <= 0.0 {
                    1.0
                } else {
                    let f = c as f64 / total_tokens as f64;
                    ((cfg.subsample / f).sqrt() + cfg.subsample / f).min(1.0)
                }
            })
            .collect();

        // --- Encode corpus as id streams.
        let encoded: Vec<Vec<u32>> = corpus
            .iter()
            .map(|doc| {
                doc.iter()
                    .filter_map(|t| word_id.get(t.as_str()).map(|&i| i as u32))
                    .collect()
            })
            .collect();

        // --- Training loop: deterministic batch-synchronous SGD.
        let total_steps = (cfg.epochs * total_tokens).max(1) as f64;
        // Raw-token prefix sums drive the linear learning-rate decay;
        // the schedule must not depend on stochastic subsampling
        // outcomes or on which thread reached a sentence first.
        let mut sent_offsets = Vec::with_capacity(encoded.len());
        let mut acc = 0usize;
        for sent in &encoded {
            sent_offsets.push(acc);
            acc += sent.len();
        }
        let avg_len = total_tokens / encoded.len().max(1);
        let work_hint =
            avg_len.saturating_mul(cfg.dim).saturating_mul(cfg.negative + 2).max(1);

        // One scratch slot per batch lane, allocated once for the whole
        // run; every batch reuses them, so the epoch loop is free of
        // per-sentence heap traffic once the buffers have grown.
        let mut slots: Vec<SentScratch> = (0..BATCH_SENTENCES.min(encoded.len()))
            .map(|_| SentScratch::new(cfg.dim))
            .collect();

        for epoch in 0..cfg.epochs {
            let epoch_base = epoch * total_tokens;
            let mut batch_start = 0;
            while batch_start < encoded.len() {
                let batch_len = BATCH_SENTENCES.min(encoded.len() - batch_start);
                let syn0_ref = &syn0;
                let syn1_ref = &syn1;
                let encoded_ref = &encoded;
                let keep_prob_ref = &keep_prob;
                let table_ref = &table;
                // One row (= one scratch slot) per sentence: chunk
                // boundaries are fixed and each slot is written by
                // exactly one worker, whatever the thread count.
                nd_par::par_for_rows(&mut slots[..batch_len], 1, 1, work_hint, |bi, slot| {
                    let ws = &mut slot[0];
                    let si = batch_start + bi;
                    let tokens_before = epoch_base + sent_offsets[si];
                    let lr = (cfg.learning_rate
                        * (1.0 - tokens_before as f64 / (total_steps + 1.0)))
                        .max(cfg.learning_rate * 1e-4);
                    let mut srng = sentence_rng(cfg.seed, epoch, si);
                    sentence_gradients(
                        cfg,
                        &encoded_ref[si],
                        keep_prob_ref,
                        table_ref,
                        syn0_ref,
                        syn1_ref,
                        lr,
                        v,
                        &mut srng,
                        ws,
                    );
                });
                // Apply in ascending sentence order — the merge order
                // is part of the determinism contract.
                for ws in &slots[..batch_len] {
                    apply_deltas(&mut syn0, cfg.dim, &ws.grad.rows0, &ws.grad.delta0);
                    apply_deltas(&mut syn1, cfg.dim, &ws.grad.rows1, &ws.grad.delta1);
                }
                batch_start += batch_len;
            }
        }

        // --- Export input vectors.
        let mut out = WordVectors::new(cfg.dim);
        for (i, &(w, _)) in vocab.iter().enumerate() {
            out.insert(w, &syn0[i * cfg.dim..(i + 1) * cfg.dim]);
        }
        out
    }
}

/// Computes one sentence's gradient contributions against a frozen
/// parameter snapshot, writing them into `ws.grad`. Consumes the
/// sentence's private RNG stream for subsampling, window jitter, and
/// negative draws. All temporaries live in `ws`, so a warm slot does
/// no heap allocation.
#[allow(clippy::too_many_arguments)]
fn sentence_gradients(
    cfg: &Word2VecConfig,
    sent: &[u32],
    keep_prob: &[f64],
    table: &[u32],
    syn0: &[f64],
    syn1: &[f64],
    lr: f64,
    vocab_size: usize,
    rng: &mut SplitMix64,
    ws: &mut SentScratch,
) {
    let dim = cfg.dim;
    ws.clear();
    ws.kept.extend(
        sent.iter()
            .copied()
            .filter(|&id| keep_prob[id as usize] >= 1.0 || rng.next_f64() < keep_prob[id as usize]),
    );
    for pos in 0..ws.kept.len() {
        let center = ws.kept[pos];
        // Randomized effective window as in the reference
        // implementation.
        let b = rng.next_usize(cfg.window.max(1));
        let win = cfg.window - b;
        let lo = pos.saturating_sub(win);
        let hi = (pos + win).min(ws.kept.len().saturating_sub(1));
        ws.context.clear();
        for p in lo..=hi {
            if p != pos {
                ws.context.push(ws.kept[p]);
            }
        }
        if ws.context.is_empty() {
            continue;
        }
        match cfg.mode {
            Word2VecMode::Cbow => {
                // Average context -> predict center.
                ws.neu1.iter_mut().for_each(|x| *x = 0.0);
                for &c in &ws.context {
                    let row = &syn0[c as usize * dim..(c as usize + 1) * dim];
                    for (a, &b) in ws.neu1.iter_mut().zip(row) {
                        *a += b;
                    }
                }
                let inv = 1.0 / ws.context.len() as f64;
                ws.neu1.iter_mut().for_each(|x| *x *= inv);
                ws.gvec.iter_mut().for_each(|x| *x = 0.0);
                negative_grads(
                    &ws.neu1,
                    &mut ws.gvec,
                    syn1,
                    center,
                    table,
                    rng,
                    lr,
                    dim,
                    cfg.negative,
                    vocab_size,
                    &mut ws.grad,
                );
                for &c in &ws.context {
                    ws.grad.rows0.push(c);
                    ws.grad.delta0.extend_from_slice(&ws.gvec);
                }
            }
            Word2VecMode::SkipGram => {
                for ci in 0..ws.context.len() {
                    let ctx = ws.context[ci];
                    let row_start = ctx as usize * dim;
                    ws.neu1.copy_from_slice(&syn0[row_start..row_start + dim]);
                    ws.gvec.iter_mut().for_each(|x| *x = 0.0);
                    negative_grads(
                        &ws.neu1,
                        &mut ws.gvec,
                        syn1,
                        center,
                        table,
                        rng,
                        lr,
                        dim,
                        cfg.negative,
                        vocab_size,
                        &mut ws.grad,
                    );
                    ws.grad.rows0.push(ctx);
                    ws.grad.delta0.extend_from_slice(&ws.gvec);
                }
            }
        }
    }
}

/// One negative-sampling step against the snapshot: `hidden` is the
/// predictor vector, `grad` accumulates its gradient, and each output
/// row's update is *recorded* into `sg` instead of applied in place.
#[allow(clippy::too_many_arguments)]
fn negative_grads(
    hidden: &[f64],
    grad: &mut [f64],
    syn1: &[f64],
    target: u32,
    table: &[u32],
    rng: &mut SplitMix64,
    lr: f64,
    dim: usize,
    negative: usize,
    vocab_size: usize,
    sg: &mut SentGrad,
) {
    for k in 0..=negative {
        let (word, label) = if k == 0 {
            (target as usize, 1.0)
        } else {
            let mut w = table[rng.next_usize(table.len())] as usize;
            if w == target as usize {
                w = (w + 1 + rng.next_usize(vocab_size.saturating_sub(1).max(1))) % vocab_size;
            }
            (w, 0.0)
        };
        let out_row = &syn1[word * dim..(word + 1) * dim];
        let mut dot = 0.0;
        for (h, o) in hidden.iter().zip(out_row.iter()) {
            dot += h * o;
        }
        let g = (label - sigmoid(dot)) * lr;
        for (gr, &o) in grad.iter_mut().zip(out_row.iter()) {
            *gr += g * o;
        }
        sg.rows1.push(word as u32);
        sg.delta1.extend(hidden.iter().map(|&h| g * h));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic corpus with two disjoint co-occurrence clusters.
    fn clustered_corpus(n_sent: usize) -> Vec<Vec<String>> {
        let cluster_a = ["king", "queen", "royal", "palace", "crown"];
        let cluster_b = ["tariff", "trade", "import", "export", "market"];
        let mut rng = SplitMix64::new(99);
        let mut corpus = Vec::new();
        for i in 0..n_sent {
            let pool: &[&str] = if i % 2 == 0 { &cluster_a } else { &cluster_b };
            let sent: Vec<String> =
                (0..12).map(|_| pool[rng.next_usize(pool.len())].to_string()).collect();
            corpus.push(sent);
        }
        corpus
    }

    fn train(mode: Word2VecMode, seed: u64) -> WordVectors {
        Word2Vec::new(Word2VecConfig {
            dim: 24,
            window: 4,
            negative: 5,
            epochs: 12,
            min_count: 1,
            subsample: 0.0,
            mode,
            seed,
            ..Default::default()
        })
        .train(&clustered_corpus(300))
    }

    fn check_clusters(wv: &WordVectors) {
        // Intra-cluster similarity must exceed inter-cluster.
        let intra = wv.similarity("king", "queen").unwrap();
        let inter = wv.similarity("king", "tariff").unwrap();
        assert!(
            intra > inter + 0.2,
            "intra {intra} should clearly exceed inter {inter}"
        );
    }

    #[test]
    fn cbow_learns_cooccurrence_structure() {
        check_clusters(&train(Word2VecMode::Cbow, 1));
    }

    #[test]
    fn skipgram_learns_cooccurrence_structure() {
        check_clusters(&train(Word2VecMode::SkipGram, 1));
    }

    #[test]
    fn most_similar_finds_cluster_mates() {
        let wv = train(Word2VecMode::Cbow, 2);
        let near: Vec<String> =
            wv.most_similar("trade", 3).into_iter().map(|(w, _)| w).collect();
        let trade_cluster = ["tariff", "import", "export", "market"];
        let hits = near.iter().filter(|w| trade_cluster.contains(&w.as_str())).count();
        assert!(hits >= 2, "neighbors of 'trade' were {near:?}");
    }

    #[test]
    fn min_count_prunes() {
        let mut corpus = clustered_corpus(50);
        corpus.push(vec!["hapaxword".to_string()]);
        let wv = Word2Vec::new(Word2VecConfig {
            dim: 8,
            epochs: 1,
            min_count: 2,
            ..Default::default()
        })
        .train(&corpus);
        assert!(!wv.contains("hapaxword"));
        assert!(wv.contains("king"));
    }

    #[test]
    fn deterministic_by_seed() {
        let a = train(Word2VecMode::Cbow, 7);
        let b = train(Word2VecMode::Cbow, 7);
        assert_eq!(a.get("king"), b.get("king"));
    }

    #[test]
    fn parallel_training_is_bit_identical() {
        // The determinism contract: results do not depend on the
        // thread count. Other tests in this binary may race on the
        // env var, but by that same contract a mid-run change cannot
        // alter their values — only their parallelism.
        let run = |threads: &str| {
            std::env::set_var("NEWSDIFF_THREADS", threads);
            let wv = train(Word2VecMode::SkipGram, 13);
            std::env::remove_var("NEWSDIFF_THREADS");
            wv
        };
        let serial = run("1");
        let parallel = run("8");
        for (w, va) in serial.iter() {
            let vb = parallel.get(w).expect("same vocabulary");
            assert_eq!(va.len(), vb.len());
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(x.to_bits(), y.to_bits(), "word {w}");
            }
        }
    }

    #[test]
    fn continuation_resumes_and_retains_prior_vocabulary() {
        let corpus = clustered_corpus(120);
        let trainer = Word2Vec::new(Word2VecConfig {
            dim: 16,
            epochs: 3,
            min_count: 1,
            subsample: 0.0,
            seed: 21,
            ..Default::default()
        });
        let base = trainer.train(&corpus);
        // Continue on a disjoint mini-corpus: its words get vectors,
        // and every base word keeps one (untouched words bit-exact).
        let fresh: Vec<Vec<String>> = (0..20)
            .map(|_| ["brexit", "vote", "poll"].iter().map(|s| s.to_string()).collect())
            .collect();
        let cont = trainer.train_continue(&fresh, &base);
        assert!(cont.contains("brexit"));
        for (w, v) in base.iter() {
            let kept = cont.get(w).expect("prior word retained");
            for (a, b) in v.iter().zip(kept) {
                assert_eq!(a.to_bits(), b.to_bits(), "untouched word {w} drifted");
            }
        }
    }

    #[test]
    fn continuation_is_deterministic() {
        let corpus = clustered_corpus(80);
        let trainer = Word2Vec::new(Word2VecConfig {
            dim: 12,
            epochs: 2,
            min_count: 1,
            subsample: 0.0,
            seed: 33,
            ..Default::default()
        });
        let base = trainer.train(&corpus[..40]);
        let a = trainer.train_continue(&corpus[40..], &base);
        let b = trainer.train_continue(&corpus[40..], &base);
        for (w, va) in a.iter() {
            let vb = b.get(w).unwrap();
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(x.to_bits(), y.to_bits(), "word {w}");
            }
        }
        // And training moved the resumed vectors: continuation is not
        // a no-op on words the new corpus contains.
        let moved = corpus[40..]
            .iter()
            .flatten()
            .any(|w| a.get(w).zip(base.get(w)).is_some_and(|(x, y)| x != y));
        assert!(moved, "continuation left every resumed vector untouched");
    }

    #[test]
    fn dimension_change_falls_back_to_cold_training() {
        let corpus = clustered_corpus(40);
        let base = Word2Vec::new(Word2VecConfig {
            dim: 8,
            epochs: 1,
            min_count: 1,
            ..Default::default()
        })
        .train(&corpus);
        let wide = Word2Vec::new(Word2VecConfig {
            dim: 16,
            epochs: 1,
            min_count: 1,
            ..Default::default()
        });
        let cont = wide.train_continue(&corpus, &base);
        assert_eq!(cont.dim(), 16);
        let cold = wide.train(&corpus);
        assert_eq!(cont.get("king"), cold.get("king"));
    }

    #[test]
    fn empty_corpus_gives_empty_table() {
        let wv = Word2Vec::new(Word2VecConfig::default()).train(&[]);
        assert!(wv.is_empty());
        assert_eq!(wv.dim(), 100);
    }

    #[test]
    fn vectors_finite() {
        let wv = train(Word2VecMode::SkipGram, 5);
        for (_, v) in wv.iter() {
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn sigmoid_bounds() {
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }
}
