//! Property tests: embedding invariants.

use nd_embed::{doc_embedding, AverageStrategy, Word2Vec, Word2VecConfig, WordVectors};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_table() -> impl Strategy<Value = WordVectors> {
    prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 4), 1..8).prop_map(|rows| {
        let mut wv = WordVectors::new(4);
        for (i, row) in rows.iter().enumerate() {
            wv.insert(format!("w{i}"), row);
        }
        wv
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn similarity_is_symmetric_and_bounded(wv in arb_table()) {
        let words: Vec<String> = wv.iter().map(|(w, _)| w.to_string()).collect();
        for a in &words {
            for b in &words {
                let s1 = wv.similarity(a, b).unwrap();
                let s2 = wv.similarity(b, a).unwrap();
                prop_assert!((s1 - s2).abs() < 1e-12);
                prop_assert!((-1.0..=1.0).contains(&s1));
            }
        }
    }

    #[test]
    fn most_similar_excludes_self_and_is_sorted(wv in arb_table()) {
        for (w, _) in wv.iter() {
            let near = wv.most_similar(w, 10);
            prop_assert!(near.iter().all(|(n, _)| n != w));
            for pair in near.windows(2) {
                prop_assert!(pair[0].1 >= pair[1].1 - 1e-12);
            }
        }
    }

    #[test]
    fn centering_preserves_pairwise_differences(wv in arb_table()) {
        let mut centered = wv.clone();
        centered.center();
        let words: Vec<String> = wv.iter().map(|(w, _)| w.to_string()).collect();
        if words.len() >= 2 {
            let (a, b) = (&words[0], &words[1]);
            let diff_before: Vec<f64> = wv
                .get(a).unwrap().iter().zip(wv.get(b).unwrap()).map(|(x, y)| x - y).collect();
            let diff_after: Vec<f64> = centered
                .get(a).unwrap().iter().zip(centered.get(b).unwrap()).map(|(x, y)| x - y).collect();
            for (x, y) in diff_before.iter().zip(&diff_after) {
                prop_assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn doc_embedding_of_known_words_is_convex_average(
        wv in arb_table(),
        picks in prop::collection::vec(0usize..8, 1..6),
    ) {
        let tokens: Vec<String> = picks.iter().map(|i| format!("w{i}")).collect();
        let emb = doc_embedding(&wv, &tokens, AverageStrategy::SkipWords, &HashMap::new(), 0);
        // Components bounded by the extreme component over contributing words.
        let known: Vec<&[f64]> =
            tokens.iter().filter_map(|t| wv.get(t)).collect();
        if known.is_empty() {
            prop_assert!(emb.iter().all(|&v| v == 0.0));
        } else {
            for d in 0..4 {
                let lo = known.iter().map(|v| v[d]).fold(f64::INFINITY, f64::min);
                let hi = known.iter().map(|v| v[d]).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(emb[d] >= lo - 1e-12 && emb[d] <= hi + 1e-12);
            }
        }
    }

    #[test]
    fn word2vec_training_is_total(
        sentences in prop::collection::vec(
            prop::collection::vec("[a-c]", 1..6),
            1..10,
        )
    ) {
        let wv = Word2Vec::new(Word2VecConfig {
            dim: 4,
            epochs: 1,
            min_count: 1,
            window: 2,
            negative: 2,
            ..Default::default()
        })
        .train(&sentences);
        for (_, v) in wv.iter() {
            prop_assert!(v.iter().all(|x| x.is_finite()));
        }
    }
}
