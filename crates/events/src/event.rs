//! The event type produced by MABED.

/// A detected event: main word (label), weighted related words, and
/// the period of interest (paper §4.4).
#[derive(Debug, Clone)]
pub struct Event {
    /// The main word — the event's label.
    pub main_word: String,
    /// Related words with their Eq. (9) weights, descending by weight.
    pub related: Vec<(String, f64)>,
    /// Event start (unix seconds, inclusive).
    pub start: u64,
    /// Event end (unix seconds, exclusive).
    pub end: u64,
    /// Magnitude of impact — the summed anomaly over the period; the
    /// score events are ranked by.
    pub magnitude: f64,
    /// Number of documents that fall in the period and contain the
    /// main word.
    pub n_docs: usize,
}

impl Event {
    /// All event terms: main word first, then related words.
    pub fn all_terms(&self) -> Vec<String> {
        let mut v = Vec::with_capacity(1 + self.related.len());
        v.push(self.main_word.clone());
        v.extend(self.related.iter().map(|(w, _)| w.clone()));
        v
    }

    /// Terms joined by spaces — the form the correlation module embeds.
    pub fn term_string(&self) -> String {
        self.all_terms().join(" ")
    }

    /// `true` when `ts` falls inside the event period.
    pub fn contains_time(&self, ts: u64) -> bool {
        ts >= self.start && ts < self.end
    }

    /// The paper's tweet-membership rule (§4.7): the document was
    /// posted during the event period, contains the main word, and
    /// contains at least `related_fraction` (default 0.2 in the paper)
    /// of the related words.
    pub fn matches_document(&self, ts: u64, tokens: &[String], related_fraction: f64) -> bool {
        if !self.contains_time(ts) {
            return false;
        }
        if !tokens.contains(&self.main_word) {
            return false;
        }
        if self.related.is_empty() {
            return true;
        }
        let needed = (related_fraction * self.related.len() as f64).ceil() as usize;
        let hits = self
            .related
            .iter()
            .filter(|(w, _)| tokens.iter().any(|t| t == w))
            .count();
        hits >= needed.max(1).min(self.related.len())
    }

    /// Fraction of overlap between this event's period and another's,
    /// relative to the shorter period. Used by redundancy merging.
    pub fn period_overlap(&self, other: &Event) -> f64 {
        let lo = self.start.max(other.start);
        let hi = self.end.min(other.end);
        if hi <= lo {
            return 0.0;
        }
        let overlap = (hi - lo) as f64;
        let len_a = (self.end - self.start) as f64;
        let len_b = (other.end - other.start) as f64;
        overlap / len_a.min(len_b).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> Event {
        Event {
            main_word: "brexit".into(),
            related: vec![
                ("vote".into(), 0.9),
                ("party".into(), 0.85),
                ("election".into(), 0.8),
                ("poll".into(), 0.75),
                ("seat".into(), 0.72),
            ],
            start: 1000,
            end: 2000,
            magnitude: 50.0,
            n_docs: 42,
        }
    }

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn all_terms_and_string() {
        let e = event();
        assert_eq!(e.all_terms()[0], "brexit");
        assert_eq!(e.all_terms().len(), 6);
        assert!(e.term_string().starts_with("brexit vote"));
    }

    #[test]
    fn contains_time_bounds() {
        let e = event();
        assert!(e.contains_time(1000));
        assert!(e.contains_time(1999));
        assert!(!e.contains_time(2000));
        assert!(!e.contains_time(999));
    }

    #[test]
    fn matches_document_rule() {
        let e = event();
        // In window, main word + 1 of 5 related (20%) -> match.
        assert!(e.matches_document(1500, &toks(&["brexit", "vote", "noise"]), 0.2));
        // Missing main word -> no match even with related words.
        assert!(!e.matches_document(1500, &toks(&["vote", "party", "election"]), 0.2));
        // Out of window -> no match.
        assert!(!e.matches_document(5000, &toks(&["brexit", "vote"]), 0.2));
        // Main word but zero related words -> below 20% threshold.
        assert!(!e.matches_document(1500, &toks(&["brexit", "noise"]), 0.2));
    }

    #[test]
    fn matches_document_higher_fraction() {
        let e = event();
        let t = toks(&["brexit", "vote", "party"]);
        assert!(e.matches_document(1500, &t, 0.4)); // needs 2 of 5
        assert!(!e.matches_document(1500, &t, 0.8)); // needs 4 of 5
    }

    #[test]
    fn no_related_words_only_main_required() {
        let mut e = event();
        e.related.clear();
        assert!(e.matches_document(1500, &toks(&["brexit"]), 0.2));
    }

    #[test]
    fn period_overlap_values() {
        let a = event();
        let mut b = event();
        // Identical periods -> 1.0
        assert!((a.period_overlap(&b) - 1.0).abs() < 1e-12);
        // Disjoint -> 0.0
        b.start = 3000;
        b.end = 4000;
        assert_eq!(a.period_overlap(&b), 0.0);
        // Half overlap relative to shorter.
        b.start = 1500;
        b.end = 2500;
        assert!((a.period_overlap(&b) - 0.5).abs() < 1e-12);
    }
}
