//! # nd-events
//!
//! Event detection over timestamped document streams — the pyMABED
//! substitute of DESIGN.md §1.
//!
//! The paper (§3.3, §4.4) detects *news events* and *Twitter events*
//! with Mention-Anomaly-Based Event Detection (MABED, Guille & Favre
//! 2014). An event is
//!
//! 1. a **main word** (the event label),
//! 2. a set of weighted **related words**, and
//! 3. the **period of time** when the topic is of interest.
//!
//! The pipeline: partition documents into fixed-width [time
//! slices](timeslice), score every sufficiently-frequent word's
//! mention-anomaly series, find the interval maximizing the magnitude
//! of impact, then select related words whose count series co-move
//! with the main word's over that interval — the weight of paper
//! Eq. (9)–(10), computed with the Erdem first-order autocorrelation
//! coefficient from `nd-linalg`.
//!
//! News articles carry no `@mentions`, so the detector also supports a
//! presence-anomaly mode ([`AnomalySource::Presence`]) in which every
//! document "engages"; this is how the paper's NewsED corpus is
//! processed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod mabed;
pub mod timeslice;
pub mod window;

pub use event::Event;
pub use mabed::{AnomalySource, Mabed, MabedConfig};
pub use timeslice::{SlicedCorpus, TimestampedDoc};
pub use window::SlidingWindow;
