//! Mention-Anomaly-Based Event Detection (Guille & Favre 2014).
//!
//! For every sufficiently-frequent word `t`:
//!
//! 1. Build the per-slice **anomaly series**
//!    `anomaly_t^i = O_t^i − E_t^i`, where `O_t^i` is the observed
//!    number of engaging documents containing `t` in slice `i`
//!    ("engaging" = carrying a `@mention` in [`AnomalySource::Mentions`]
//!    mode, every document in [`AnomalySource::Presence`] mode), and
//!    `E_t^i = docs_in_slice_i · (total_engaging_t / n_docs)` is the
//!    count expected if `t`'s engagement were uniform over time.
//! 2. Find the contiguous interval `I = [a, b]` maximizing the
//!    **magnitude of impact** `Σ_{i∈I} anomaly_t^i` (Kadane's
//!    maximum-sum subarray), bounded by `max_duration_slices`.
//! 3. Rank words by magnitude; the top words become event **main
//!    words**.
//! 4. For each event, score candidate **related words** (words
//!    co-occurring with the main word inside `I`) with the weight of
//!    paper Eq. (9)–(10) — the Erdem first-order autocorrelation of
//!    the two presence series over `I`, mapped to `[0, 1]` — and keep
//!    those above `theta`.
//! 5. Drop redundant events (same or mutually-related main words with
//!    overlapping periods).

use crate::event::Event;
use crate::timeslice::SlicedCorpus;
use nd_linalg::stats::erdem_weight;
use std::collections::BTreeMap;

/// Which engagement signal drives the anomaly measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalySource {
    /// Documents containing `@mentions` (original MABED; use for
    /// tweets).
    Mentions,
    /// Every document counts (use for news articles, which carry no
    /// mentions).
    Presence,
}

/// MABED configuration.
#[derive(Debug, Clone)]
pub struct MabedConfig {
    /// Number of events to detect (top-k by magnitude).
    pub n_events: usize,
    /// Maximum related words per event.
    pub max_related: usize,
    /// Related-word weight threshold `theta` ∈ [0, 1].
    pub theta: f64,
    /// Minimum total documents containing a word for it to be a main
    /// word (absolute count).
    pub min_word_docs: u64,
    /// Maximum fraction of the corpus a main word may appear in
    /// (filters ubiquitous terms).
    pub max_word_doc_ratio: f64,
    /// Maximum event duration, in slices (`sigma`); `0` = unbounded.
    pub max_duration_slices: usize,
    /// Engagement signal.
    pub source: AnomalySource,
    /// Period-overlap fraction above which two events with mutually
    /// related main words are merged.
    pub merge_overlap: f64,
    /// Exclude stopwords from main and related words (pyMABED ships a
    /// stopword list and applies exactly this filter; without it the
    /// highest-anomaly "events" are function words whose series track
    /// total volume).
    pub filter_stopwords: bool,
}

impl Default for MabedConfig {
    fn default() -> Self {
        MabedConfig {
            n_events: 10,
            max_related: 10,
            theta: 0.7,
            min_word_docs: 10,
            max_word_doc_ratio: 0.5,
            max_duration_slices: 0,
            source: AnomalySource::Mentions,
            merge_overlap: 0.5,
            filter_stopwords: true,
        }
    }
}

/// The MABED detector.
#[derive(Debug, Clone)]
pub struct Mabed {
    config: MabedConfig,
}

/// A candidate main word with its best burst interval.
struct Candidate {
    word: String,
    magnitude: f64,
    from: usize,
    to: usize,
}

impl Mabed {
    /// Creates a detector with the given configuration.
    pub fn new(config: MabedConfig) -> Self {
        Mabed { config }
    }

    /// Detects the top events in a sliced corpus, ordered by
    /// descending magnitude of impact.
    pub fn detect(&self, corpus: &SlicedCorpus) -> Vec<Event> {
        if corpus.n_slices == 0 || corpus.n_docs == 0 {
            return Vec::new();
        }
        let candidates = self.rank_candidates(corpus);
        let mut events: Vec<Event> = Vec::new();

        for cand in candidates {
            if events.len() >= self.config.n_events {
                break;
            }
            let event = self.build_event(corpus, &cand);
            if self.is_redundant(&event, &events) {
                continue;
            }
            events.push(event);
        }
        events
    }

    /// Computes each eligible word's anomaly series, finds its maximal
    /// burst, and ranks by magnitude.
    fn rank_candidates(&self, corpus: &SlicedCorpus) -> Vec<Candidate> {
        let n_docs = corpus.n_docs as f64;
        let max_docs = (self.config.max_word_doc_ratio * n_docs).ceil() as u64;
        let mut candidates = Vec::new();

        for (word, stats) in corpus.iter_words() {
            if stats.total_presence < self.config.min_word_docs
                || stats.total_presence > max_docs
            {
                continue;
            }
            if self.config.filter_stopwords
                && (nd_text::is_stopword(word) || word.chars().all(|c| c.is_ascii_digit()))
            {
                continue;
            }
            let (observed, total_engaged) = match self.config.source {
                AnomalySource::Mentions => (&stats.mention, stats.total_mention),
                AnomalySource::Presence => (&stats.presence, stats.total_presence),
            };
            if total_engaged == 0 {
                continue;
            }
            let rate = total_engaged as f64 / n_docs;
            // anomaly_i = O_i - N_i * rate
            let anomaly: Vec<f64> = observed
                .iter()
                .zip(&corpus.docs_per_slice)
                .map(|(&o, &n)| o as f64 - n as f64 * rate)
                .collect();
            let (magnitude, from, to) =
                max_sum_interval(&anomaly, self.config.max_duration_slices);
            if magnitude <= 0.0 {
                continue;
            }
            candidates.push(Candidate { word: word.to_string(), magnitude, from, to });
        }
        candidates.sort_by(|a, b| {
            b.magnitude
                .partial_cmp(&a.magnitude)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.word.cmp(&b.word))
        });
        candidates
    }

    /// Selects the related words of a candidate event by the Eq. (9)
    /// co-movement weight over the event interval.
    fn build_event(&self, corpus: &SlicedCorpus, cand: &Candidate) -> Event {
        let main_stats = corpus.word(&cand.word).expect("candidate word exists");
        let main_series: Vec<f64> =
            main_stats.presence[cand.from..=cand.to].iter().map(|&v| v as f64).collect();

        // Candidate related words: co-occurring with the main word in
        // documents inside the interval.
        // BTreeMap: the weighting loop below iterates this, and ties
        // at the `max_related` cut must break identically every run.
        let mut cooc: BTreeMap<&str, u32> = BTreeMap::new();
        let mut n_docs_with_main = 0usize;
        for doc_id in corpus.docs_in_slices(cand.from, cand.to) {
            let toks = corpus.doc_tokens(doc_id);
            if !toks.contains(&cand.word) {
                continue;
            }
            n_docs_with_main += 1;
            for t in toks {
                if *t != cand.word {
                    *cooc.entry(t.as_str()).or_insert(0) += 1;
                }
            }
        }

        // Weight each co-occurring word; require it in at least 10% of
        // the main word's documents to avoid one-off noise.
        let min_cooc = (n_docs_with_main as f64 * 0.1).ceil().max(1.0) as u32;
        let mut related: Vec<(String, f64)> = Vec::new();
        for (word, count) in cooc {
            if count < min_cooc {
                continue;
            }
            if self.config.filter_stopwords
                && (nd_text::is_stopword(word) || word.chars().all(|c| c.is_ascii_digit()))
            {
                continue;
            }
            let Some(stats) = corpus.word(word) else { continue };
            let series: Vec<f64> =
                stats.presence[cand.from..=cand.to].iter().map(|&v| v as f64).collect();
            let w = erdem_weight(&main_series, &series);
            if w >= self.config.theta {
                related.push((word.to_string(), w));
            }
        }
        related.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.0.cmp(&b.0))
        });
        related.truncate(self.config.max_related);

        Event {
            main_word: cand.word.clone(),
            related,
            start: corpus.slice_start(cand.from),
            end: corpus.slice_end(cand.to),
            magnitude: cand.magnitude,
            n_docs: n_docs_with_main,
        }
    }

    /// An event is redundant when an already-accepted event has an
    /// overlapping period and either shares the main word or lists it
    /// among its related words (and vice versa).
    fn is_redundant(&self, event: &Event, accepted: &[Event]) -> bool {
        accepted.iter().any(|a| {
            if a.period_overlap(event) < self.config.merge_overlap {
                return false;
            }
            a.main_word == event.main_word
                || a.related.iter().any(|(w, _)| *w == event.main_word)
                || event.related.iter().any(|(w, _)| *w == a.main_word)
        })
    }
}

/// Kadane's maximum-sum contiguous subarray, optionally bounded to
/// `max_len` elements (`0` = unbounded). Returns `(sum, from, to)`
/// with inclusive indices; for an all-negative series returns the
/// single largest element.
fn max_sum_interval(xs: &[f64], max_len: usize) -> (f64, usize, usize) {
    debug_assert!(!xs.is_empty());
    if max_len == 0 {
        // Classic Kadane.
        let mut best = xs[0];
        let (mut best_from, mut best_to) = (0, 0);
        let mut cur = xs[0];
        let mut cur_from = 0;
        for (i, &x) in xs.iter().enumerate().skip(1) {
            if cur + x < x {
                cur = x;
                cur_from = i;
            } else {
                cur += x;
            }
            if cur > best {
                best = cur;
                best_from = cur_from;
                best_to = i;
            }
        }
        (best, best_from, best_to)
    } else {
        // Bounded length: sliding-window prefix-sum scan, O(n·1) via a
        // monotone minimum over the window of prefix sums.
        let n = xs.len();
        let mut prefix = vec![0.0; n + 1];
        for i in 0..n {
            prefix[i + 1] = prefix[i] + xs[i];
        }
        let mut best = f64::NEG_INFINITY;
        let (mut bf, mut bt) = (0, 0);
        for to in 0..n {
            let lo = to.saturating_sub(max_len - 1);
            for from in lo..=to {
                let s = prefix[to + 1] - prefix[from];
                if s > best {
                    best = s;
                    bf = from;
                    bt = to;
                }
            }
        }
        (best, bf, bt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeslice::TimestampedDoc;

    const HOUR: u64 = 3600;

    fn doc(ts: u64, words: &[&str], mentions: usize) -> TimestampedDoc {
        TimestampedDoc::new(ts, words.iter().map(|s| s.to_string()).collect(), mentions)
    }

    /// A corpus with background chatter plus one planted burst of
    /// "brexit vote" around hours 10–14.
    fn bursty_corpus() -> Vec<TimestampedDoc> {
        let mut docs = Vec::new();
        for h in 0..48u64 {
            // Constant background: 5 docs/hour talking about weather.
            for k in 0..5 {
                docs.push(doc(h * HOUR + k * 60, &["weather", "sunny", "day"], 1));
            }
            // Burst between hours 10..14: 20 extra docs/hour on brexit.
            if (10..14).contains(&h) {
                for k in 0..20 {
                    docs.push(doc(
                        h * HOUR + k * 120 + 7,
                        &["brexit", "vote", "party", "referendum"],
                        1,
                    ));
                }
            }
        }
        docs
    }

    fn detect(config: MabedConfig) -> Vec<Event> {
        let corpus = SlicedCorpus::build(&bursty_corpus(), HOUR);
        Mabed::new(config).detect(&corpus)
    }

    #[test]
    fn detects_planted_burst() {
        let events = detect(MabedConfig {
            n_events: 3,
            min_word_docs: 10,
            theta: 0.5,
            ..Default::default()
        });
        assert!(!events.is_empty());
        let top = &events[0];
        assert!(
            ["brexit", "vote", "party", "referendum"].contains(&top.main_word.as_str()),
            "unexpected main word {}",
            top.main_word
        );
        // Period should cover the planted burst hours (10..14).
        assert!(top.start <= 10 * HOUR, "start {}", top.start);
        assert!(top.end >= 13 * HOUR, "end {}", top.end);
    }

    #[test]
    fn related_words_come_from_burst_vocabulary() {
        let events = detect(MabedConfig {
            n_events: 1,
            min_word_docs: 10,
            theta: 0.5,
            ..Default::default()
        });
        let top = &events[0];
        let related: Vec<&str> = top.related.iter().map(|(w, _)| w.as_str()).collect();
        assert!(!related.is_empty());
        for w in &related {
            assert!(
                ["brexit", "vote", "party", "referendum"].contains(w),
                "unexpected related word {w}"
            );
        }
        // Weights in [theta, 1].
        for (_, w) in &top.related {
            assert!((0.5..=1.0).contains(w));
        }
    }

    #[test]
    fn steady_background_word_not_an_event() {
        let events = detect(MabedConfig {
            n_events: 10,
            min_word_docs: 5,
            theta: 0.5,
            ..Default::default()
        });
        // "weather" has a flat profile; its anomaly is ~0 everywhere.
        // It must not outrank the burst words.
        assert_ne!(events[0].main_word, "weather");
    }

    #[test]
    fn redundant_events_merged() {
        // brexit/vote/party/referendum all burst together; after
        // dedup we should get far fewer than 4 events for them.
        let events = detect(MabedConfig {
            n_events: 10,
            min_word_docs: 10,
            theta: 0.5,
            ..Default::default()
        });
        let burst_mains = events
            .iter()
            .filter(|e| ["brexit", "vote", "party", "referendum"].contains(&e.main_word.as_str()))
            .count();
        assert!(burst_mains <= 2, "expected dedup, got {burst_mains} burst events");
    }

    #[test]
    fn presence_mode_works_without_mentions() {
        // Same corpus but zero mentions everywhere: Mentions mode
        // finds nothing, Presence mode still finds the burst.
        let docs: Vec<TimestampedDoc> = bursty_corpus()
            .into_iter()
            .map(|mut d| {
                d.mentions = 0;
                d
            })
            .collect();
        let corpus = SlicedCorpus::build(&docs, HOUR);
        let none = Mabed::new(MabedConfig {
            source: AnomalySource::Mentions,
            min_word_docs: 10,
            ..Default::default()
        })
        .detect(&corpus);
        assert!(none.is_empty());
        let events = Mabed::new(MabedConfig {
            source: AnomalySource::Presence,
            min_word_docs: 10,
            theta: 0.5,
            ..Default::default()
        })
        .detect(&corpus);
        assert!(!events.is_empty());
    }

    #[test]
    fn max_duration_bounds_period() {
        let events = detect(MabedConfig {
            n_events: 1,
            min_word_docs: 10,
            theta: 0.5,
            max_duration_slices: 2,
            ..Default::default()
        });
        let top = &events[0];
        assert!(top.end - top.start <= 2 * HOUR);
    }

    #[test]
    fn empty_corpus_no_events() {
        let corpus = SlicedCorpus::build(&[], HOUR);
        assert!(Mabed::new(MabedConfig::default()).detect(&corpus).is_empty());
    }

    #[test]
    fn events_sorted_by_magnitude() {
        let events = detect(MabedConfig {
            n_events: 10,
            min_word_docs: 5,
            theta: 0.3,
            ..Default::default()
        });
        for pair in events.windows(2) {
            assert!(pair[0].magnitude >= pair[1].magnitude);
        }
    }

    #[test]
    fn kadane_unbounded() {
        assert_eq!(max_sum_interval(&[1.0, -2.0, 3.0, 4.0, -1.0], 0), (7.0, 2, 3));
        assert_eq!(max_sum_interval(&[-5.0, -1.0, -3.0], 0), (-1.0, 1, 1));
        assert_eq!(max_sum_interval(&[2.0], 0), (2.0, 0, 0));
    }

    #[test]
    fn kadane_bounded() {
        let (s, f, t) = max_sum_interval(&[1.0, 1.0, 1.0, 1.0], 2);
        assert_eq!(s, 2.0);
        assert_eq!(t - f, 1);
        let (s, _, _) = max_sum_interval(&[5.0, -1.0, 5.0], 3);
        assert_eq!(s, 9.0);
    }

    #[test]
    fn deterministic() {
        let a = detect(MabedConfig { min_word_docs: 10, theta: 0.5, ..Default::default() });
        let b = detect(MabedConfig { min_word_docs: 10, theta: 0.5, ..Default::default() });
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.main_word, y.main_word);
            assert_eq!(x.start, y.start);
        }
    }
}
