//! Time-slicing of timestamped document streams.
//!
//! MABED operates on per-slice word statistics: the paper uses 60-min
//! slices for news and 30-min slices for tweets (§5.3–5.4).

use std::collections::BTreeMap;

/// A preprocessed document with its publication timestamp.
#[derive(Debug, Clone)]
pub struct TimestampedDoc {
    /// Unix timestamp (seconds).
    pub timestamp: u64,
    /// Preprocessed tokens (event-detection pipeline output).
    pub tokens: Vec<String>,
    /// Number of `@mentions` in the raw text (0 for news articles).
    pub mentions: usize,
}

impl TimestampedDoc {
    /// Convenience constructor.
    pub fn new(timestamp: u64, tokens: Vec<String>, mentions: usize) -> Self {
        TimestampedDoc { timestamp, tokens, mentions }
    }
}

impl AsRef<[String]> for TimestampedDoc {
    /// A doc *is* its token stream for consumers that only need the
    /// tokens — lets downstream modules borrow corpora in place
    /// instead of re-materializing `Vec<Vec<String>>` copies.
    fn as_ref(&self) -> &[String] {
        &self.tokens
    }
}

/// Per-word, per-slice statistics for one corpus.
#[derive(Debug, Clone)]
pub struct SlicedCorpus {
    /// Slice width in seconds.
    pub slice_secs: u64,
    /// Timestamp where slice 0 begins.
    pub origin: u64,
    /// Number of slices.
    pub n_slices: usize,
    /// Total number of documents.
    pub n_docs: usize,
    /// Documents per slice.
    pub docs_per_slice: Vec<u32>,
    /// For each word: per-slice count of documents containing it
    /// (`N_t^i` in the paper), plus the same restricted to documents
    /// with ≥1 mention (`M_t^i`), plus totals. A `BTreeMap` so
    /// [`SlicedCorpus::iter_words`] yields a deterministic
    /// (lexicographic) order — downstream event ranking iterates this
    /// and must be bit-stable run to run.
    words: BTreeMap<String, WordStats>,
    /// Document index per slice (indices into the input corpus), used
    /// to gather event keyword candidates.
    slice_docs: Vec<Vec<u32>>,
    /// Tokens of every document (deduplicated per doc), retained for
    /// co-occurrence lookups.
    doc_tokens: Vec<Vec<String>>,
}

/// Per-word statistics.
#[derive(Debug, Clone, Default)]
pub struct WordStats {
    /// Documents containing the word, per slice (`N_t^i`).
    pub presence: Vec<u32>,
    /// Mentioning documents containing the word, per slice (`M_t^i`).
    pub mention: Vec<u32>,
    /// Total documents containing the word.
    pub total_presence: u64,
    /// Total mentioning documents containing the word.
    pub total_mention: u64,
}

impl SlicedCorpus {
    /// Builds slice statistics from documents.
    ///
    /// Empty corpora produce a zero-slice result. Slices cover
    /// `[min_ts, max_ts]` inclusive at `slice_secs` width.
    ///
    /// # Panics
    /// Panics if `slice_secs == 0` (a configuration error).
    pub fn build(docs: &[TimestampedDoc], slice_secs: u64) -> Self {
        assert!(slice_secs > 0, "slice width must be positive");
        if docs.is_empty() {
            return SlicedCorpus {
                slice_secs,
                origin: 0,
                n_slices: 0,
                n_docs: 0,
                docs_per_slice: Vec::new(),
                words: BTreeMap::new(),
                slice_docs: Vec::new(),
                doc_tokens: Vec::new(),
            };
        }
        let origin = docs.iter().map(|d| d.timestamp).min().expect("non-empty");
        let max_ts = docs.iter().map(|d| d.timestamp).max().expect("non-empty");
        let n_slices = ((max_ts - origin) / slice_secs + 1) as usize;

        let mut docs_per_slice = vec![0u32; n_slices];
        let mut words: BTreeMap<String, WordStats> = BTreeMap::new();
        let mut slice_docs: Vec<Vec<u32>> = vec![Vec::new(); n_slices];
        let mut doc_tokens: Vec<Vec<String>> = Vec::with_capacity(docs.len());

        for (doc_id, doc) in docs.iter().enumerate() {
            let slice = ((doc.timestamp - origin) / slice_secs) as usize;
            docs_per_slice[slice] += 1;
            slice_docs[slice].push(doc_id as u32);
            let has_mention = doc.mentions > 0;

            // Unique tokens per document.
            let mut uniq: Vec<String> = doc.tokens.clone();
            uniq.sort_unstable();
            uniq.dedup();
            for tok in &uniq {
                let stats = words.entry(tok.clone()).or_insert_with(|| WordStats {
                    presence: vec![0; n_slices],
                    mention: vec![0; n_slices],
                    total_presence: 0,
                    total_mention: 0,
                });
                stats.presence[slice] += 1;
                stats.total_presence += 1;
                if has_mention {
                    stats.mention[slice] += 1;
                    stats.total_mention += 1;
                }
            }
            doc_tokens.push(uniq);
        }

        SlicedCorpus {
            slice_secs,
            origin,
            n_slices,
            n_docs: docs.len(),
            docs_per_slice,
            words,
            slice_docs,
            doc_tokens,
        }
    }

    /// Statistics for `word`, if it occurs in the corpus.
    pub fn word(&self, word: &str) -> Option<&WordStats> {
        self.words.get(word)
    }

    /// Iterator over `(word, stats)` pairs in lexicographic word
    /// order (deterministic across runs and platforms).
    pub fn iter_words(&self) -> impl Iterator<Item = (&str, &WordStats)> {
        self.words.iter().map(|(w, s)| (w.as_str(), s))
    }

    /// Number of distinct words.
    pub fn n_words(&self) -> usize {
        self.words.len()
    }

    /// Document ids falling in slice range `[from, to]` (inclusive).
    pub fn docs_in_slices(&self, from: usize, to: usize) -> Vec<u32> {
        let to = to.min(self.n_slices.saturating_sub(1));
        let mut out = Vec::new();
        for s in from..=to {
            out.extend_from_slice(&self.slice_docs[s]);
        }
        out
    }

    /// Unique tokens of document `doc_id`.
    pub fn doc_tokens(&self, doc_id: u32) -> &[String] {
        &self.doc_tokens[doc_id as usize]
    }

    /// Timestamp at which slice `i` begins.
    pub fn slice_start(&self, i: usize) -> u64 {
        self.origin + i as u64 * self.slice_secs
    }

    /// Timestamp at which slice `i` ends (exclusive).
    pub fn slice_end(&self, i: usize) -> u64 {
        self.slice_start(i) + self.slice_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(ts: u64, words: &[&str], mentions: usize) -> TimestampedDoc {
        TimestampedDoc::new(ts, words.iter().map(|s| s.to_string()).collect(), mentions)
    }

    #[test]
    fn slices_cover_time_range() {
        let docs = vec![doc(100, &["a"], 0), doc(250, &["b"], 0), doc(399, &["c"], 0)];
        let sc = SlicedCorpus::build(&docs, 100);
        assert_eq!(sc.origin, 100);
        assert_eq!(sc.n_slices, 3);
        assert_eq!(sc.docs_per_slice, vec![1, 1, 1]);
        assert_eq!(sc.slice_start(1), 200);
        assert_eq!(sc.slice_end(1), 300);
    }

    #[test]
    fn word_presence_counts() {
        let docs = vec![
            doc(0, &["brexit", "vote"], 1),
            doc(10, &["brexit"], 0),
            doc(100, &["brexit"], 1),
        ];
        let sc = SlicedCorpus::build(&docs, 100);
        let w = sc.word("brexit").unwrap();
        assert_eq!(w.presence, vec![2, 1]);
        assert_eq!(w.mention, vec![1, 1]);
        assert_eq!(w.total_presence, 3);
        assert_eq!(w.total_mention, 2);
        assert!(sc.word("unknown").is_none());
    }

    #[test]
    fn duplicate_tokens_in_doc_counted_once() {
        let docs = vec![doc(0, &["x", "x", "x"], 0)];
        let sc = SlicedCorpus::build(&docs, 60);
        assert_eq!(sc.word("x").unwrap().total_presence, 1);
    }

    #[test]
    fn docs_in_slices_gathers_range() {
        let docs = vec![doc(0, &["a"], 0), doc(150, &["b"], 0), doc(250, &["c"], 0)];
        let sc = SlicedCorpus::build(&docs, 100);
        assert_eq!(sc.docs_in_slices(0, 1), vec![0, 1]);
        assert_eq!(sc.docs_in_slices(1, 99), vec![1, 2], "range end clamped");
    }

    #[test]
    fn empty_corpus() {
        let sc = SlicedCorpus::build(&[], 60);
        assert_eq!(sc.n_slices, 0);
        assert_eq!(sc.n_docs, 0);
        assert_eq!(sc.n_words(), 0);
    }

    #[test]
    #[should_panic(expected = "slice width")]
    fn zero_slice_width_panics() {
        SlicedCorpus::build(&[], 0);
    }

    #[test]
    fn single_doc_single_slice() {
        let sc = SlicedCorpus::build(&[doc(1_000_000, &["only"], 0)], 1800);
        assert_eq!(sc.n_slices, 1);
        assert_eq!(sc.docs_per_slice, vec![1]);
    }
}
