//! Sliding-window document buffer for streaming MABED.
//!
//! Batch MABED scores anomalies over the *whole* collection window,
//! so every new document re-reads all of history. The streaming
//! pipeline (DESIGN.md §17) instead maintains a bounded
//! [`SlidingWindow`]: each fold pushes the new time slice's documents
//! and evicts the documents that have aged out of the detection
//! horizon, then re-detects over the bounded buffer only. Eviction
//! semantics:
//!
//! * The window covers `[head − window_secs, head)`, where `head` is
//!   the end of the most recently pushed slice.
//! * A document is evicted the moment its timestamp falls strictly
//!   before the window start — detection never sees it again, and an
//!   event whose support has fully aged out disappears with it.
//! * Documents must arrive in slice order (the firehose guarantees
//!   it), so the buffer stays timestamp-sorted and eviction is a
//!   prefix drain.
//!
//! The buffer *is* the fold state: it serializes with the detected
//! events, so a decoded window continues exactly where the encoded
//! one stopped.

use crate::timeslice::{SlicedCorpus, TimestampedDoc};

/// A timestamp-sorted document buffer bounded by a time horizon.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    /// Detection horizon in seconds.
    window_secs: u64,
    /// End of the most recently pushed slice (stream head).
    head: u64,
    /// Buffered documents, timestamp-sorted.
    docs: Vec<TimestampedDoc>,
    /// Total documents evicted over the window's lifetime.
    evicted: usize,
}

impl SlidingWindow {
    /// Empty window with the given horizon.
    pub fn new(window_secs: u64) -> Self {
        SlidingWindow { window_secs, head: 0, docs: Vec::new(), evicted: 0 }
    }

    /// Rebuilds a window from serialized state.
    pub fn from_parts(window_secs: u64, head: u64, docs: Vec<TimestampedDoc>, evicted: usize) -> Self {
        SlidingWindow { window_secs, head, docs, evicted }
    }

    /// Serializable state: `(window_secs, head, docs, evicted)`.
    pub fn parts(&self) -> (u64, u64, &[TimestampedDoc], usize) {
        (self.window_secs, self.head, &self.docs, self.evicted)
    }

    /// Detection horizon in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// End of the most recently pushed slice.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Documents currently inside the window, timestamp-sorted.
    pub fn docs(&self) -> &[TimestampedDoc] {
        &self.docs
    }

    /// Total documents evicted so far.
    pub fn evicted(&self) -> usize {
        self.evicted
    }

    /// Window start: `head − window_secs` (saturating).
    pub fn window_start(&self) -> u64 {
        self.head.saturating_sub(self.window_secs)
    }

    /// Pushes one slice's documents (timestamp-sorted, all `< slice_end`)
    /// and advances the head to `slice_end`, evicting everything that
    /// aged out. Returns the number of documents evicted by this push.
    pub fn push_slice<I>(&mut self, docs: I, slice_end: u64) -> usize
    where
        I: IntoIterator<Item = TimestampedDoc>,
    {
        debug_assert!(slice_end >= self.head, "slices must arrive in order");
        let mut last = self.docs.last().map(|d| d.timestamp).unwrap_or(0);
        for d in docs {
            debug_assert!(d.timestamp >= last, "documents must be timestamp-sorted");
            last = d.timestamp;
            self.docs.push(d);
        }
        self.head = self.head.max(slice_end);
        self.evict_before(self.window_start())
    }

    /// Drops every document with `timestamp < t0`; returns how many.
    pub fn evict_before(&mut self, t0: u64) -> usize {
        let keep_from = self.docs.partition_point(|d| d.timestamp < t0);
        self.docs.drain(..keep_from);
        self.evicted += keep_from;
        keep_from
    }

    /// Slices the buffered documents for MABED.
    pub fn to_sliced(&self, slice_secs: u64) -> SlicedCorpus {
        SlicedCorpus::build(&self.docs, slice_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(ts: u64, word: &str) -> TimestampedDoc {
        TimestampedDoc::new(ts, vec![word.to_string()], 0)
    }

    #[test]
    fn push_appends_and_advances_head() {
        let mut w = SlidingWindow::new(1000);
        assert_eq!(w.push_slice([doc(10, "a"), doc(20, "b")], 100), 0);
        assert_eq!(w.head(), 100);
        assert_eq!(w.docs().len(), 2);
    }

    #[test]
    fn eviction_is_a_prefix_drain_at_the_horizon() {
        let mut w = SlidingWindow::new(100);
        w.push_slice([doc(10, "a"), doc(50, "b")], 60);
        // Head moves to 160: window start 60, both docs age out.
        let evicted = w.push_slice([doc(100, "c"), doc(150, "d")], 160);
        assert_eq!(evicted, 2);
        assert_eq!(w.docs().len(), 2);
        assert_eq!(w.docs()[0].timestamp, 100);
        assert_eq!(w.evicted(), 2);
    }

    #[test]
    fn boundary_document_survives_exactly_at_window_start() {
        let mut w = SlidingWindow::new(100);
        w.push_slice([doc(60, "a")], 70);
        w.push_slice([doc(159, "b")], 160);
        // Window start is 60; a timestamp of exactly 60 is kept.
        assert_eq!(w.docs().len(), 2);
        w.push_slice([doc(170, "c")], 161);
        assert_eq!(w.window_start(), 61);
        assert_eq!(w.docs()[0].timestamp, 159);
    }

    #[test]
    fn parts_roundtrip_continues_identically() {
        let mut a = SlidingWindow::new(100);
        a.push_slice([doc(10, "x"), doc(90, "y")], 100);
        let (secs, head, docs, evicted) = a.parts();
        let mut b = SlidingWindow::from_parts(secs, head, docs.to_vec(), evicted);
        a.push_slice([doc(150, "z")], 200);
        b.push_slice([doc(150, "z")], 200);
        assert_eq!(a.docs().len(), b.docs().len());
        assert_eq!(a.evicted(), b.evicted());
        assert_eq!(a.head(), b.head());
    }

    #[test]
    fn sliced_corpus_covers_only_the_window() {
        let mut w = SlidingWindow::new(200);
        w.push_slice([doc(0, "old")], 100);
        w.push_slice([doc(250, "new"), doc(299, "new")], 300);
        let sliced = w.to_sliced(100);
        assert_eq!(sliced.n_docs, 2, "evicted doc must not reach MABED");
    }
}
