//! Property tests: MABED invariants over arbitrary corpora.

use nd_events::{AnomalySource, Mabed, MabedConfig, SlicedCorpus, TimestampedDoc};
use proptest::prelude::*;

fn arb_docs() -> impl Strategy<Value = Vec<TimestampedDoc>> {
    prop::collection::vec(
        (
            0u64..100_000,
            prop::collection::vec("[a-e]{1,2}", 1..6),
            0usize..3,
        ),
        1..60,
    )
    .prop_map(|items| {
        items
            .into_iter()
            .map(|(ts, tokens, mentions)| TimestampedDoc::new(ts, tokens, mentions))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn slicing_partitions_every_document(docs in arb_docs()) {
        let sc = SlicedCorpus::build(&docs, 3_600);
        let total: u32 = sc.docs_per_slice.iter().sum();
        prop_assert_eq!(total as usize, docs.len());
        prop_assert_eq!(sc.n_docs, docs.len());
        prop_assert_eq!(sc.docs_in_slices(0, sc.n_slices.saturating_sub(1)).len(), docs.len());
    }

    #[test]
    fn word_stats_bounded_by_doc_count(docs in arb_docs()) {
        let sc = SlicedCorpus::build(&docs, 3_600);
        for (_, stats) in sc.iter_words() {
            prop_assert!(stats.total_mention <= stats.total_presence);
            prop_assert!(stats.total_presence as usize <= docs.len());
            let per_slice: u64 = stats.presence.iter().map(|&v| v as u64).sum();
            prop_assert_eq!(per_slice, stats.total_presence);
        }
    }

    #[test]
    fn detection_never_panics_and_events_are_wellformed(
        docs in arb_docs(),
        theta in 0.0f64..1.0,
        n_events in 1usize..6,
    ) {
        let sc = SlicedCorpus::build(&docs, 1_800);
        let events = Mabed::new(MabedConfig {
            n_events,
            theta,
            min_word_docs: 1,
            source: AnomalySource::Presence,
            filter_stopwords: false,
            ..Default::default()
        })
        .detect(&sc);
        prop_assert!(events.len() <= n_events);
        for e in &events {
            prop_assert!(e.end > e.start);
            prop_assert!(e.magnitude > 0.0);
            for (_, w) in &e.related {
                prop_assert!((theta..=1.0).contains(w), "related weight {w} below theta {theta}");
            }
            // Related words never repeat the main word.
            prop_assert!(e.related.iter().all(|(w, _)| *w != e.main_word));
        }
        // Ranking is descending by magnitude.
        for pair in events.windows(2) {
            prop_assert!(pair[0].magnitude >= pair[1].magnitude);
        }
    }

    #[test]
    fn membership_rule_requires_window_and_main_word(
        docs in arb_docs(),
        ts in 0u64..200_000,
    ) {
        let sc = SlicedCorpus::build(&docs, 1_800);
        let events = Mabed::new(MabedConfig {
            n_events: 3,
            theta: 0.3,
            min_word_docs: 1,
            source: AnomalySource::Presence,
            filter_stopwords: false,
            ..Default::default()
        })
        .detect(&sc);
        for e in &events {
            let toks = vec!["zzz".to_string()];
            prop_assert!(!e.matches_document(ts, &toks, 0.2), "match without main word");
            let with_main = vec![e.main_word.clone()];
            if !e.contains_time(ts) {
                prop_assert!(!e.matches_document(ts, &with_main, 0.2), "match out of window");
            }
        }
    }
}
