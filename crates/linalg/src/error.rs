//! Error types for linear-algebra operations.

use std::fmt;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors produced by linear-algebra operations.
///
/// Dimension mismatches are the dominant failure mode; they are reported
/// with both shapes so callers can log actionable diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A matrix was constructed from data whose length does not match
    /// `rows * cols`.
    BadBuffer {
        /// Requested shape.
        shape: (usize, usize),
        /// Actual buffer length.
        len: usize,
    },
    /// An operation required a non-empty matrix or vector.
    Empty(&'static str),
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Routine that failed (e.g. `"truncated_svd"`).
        op: &'static str,
        /// Number of iterations performed.
        iters: usize,
    },
    /// An index was out of bounds.
    OutOfBounds {
        /// Offending index.
        index: usize,
        /// Exclusive bound.
        bound: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::BadBuffer { shape, len } => write!(
                f,
                "buffer of length {len} cannot form a {}x{} matrix",
                shape.0, shape.1
            ),
            LinalgError::Empty(op) => write!(f, "{op} requires non-empty input"),
            LinalgError::NoConvergence { op, iters } => {
                write!(f, "{op} did not converge after {iters} iterations")
            }
            LinalgError::OutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (< {bound} required)")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(e.to_string(), "shape mismatch in matmul: lhs is 2x3, rhs is 4x5");
    }

    #[test]
    fn display_bad_buffer() {
        let e = LinalgError::BadBuffer { shape: (2, 2), len: 3 };
        assert!(e.to_string().contains("length 3"));
        assert!(e.to_string().contains("2x2"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LinalgError::Empty("norm"));
    }
}
