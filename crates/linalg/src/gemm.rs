//! Packed, register-blocked GEMM microkernel.
//!
//! This is the single dense-product engine for the workspace: every
//! `Mat` product (`matmul`, `transpose_matmul_into`, `gram_into`,
//! `matvec_into`) and the neural-layer backends route through
//! [`gemm_into`]. The design is a BLIS-style packed kernel, std-only
//! and `forbid(unsafe)`-clean:
//!
//! - **Packing.** A is repacked into MR-row micropanels
//!   (`apack[p*MR*k + kk*MR + r]`, k-major within a panel) and B into
//!   NR-column micropanels (`bpack[q*NR*k + kk*NR + c]`), both
//!   zero-padded at the ragged edge. Packing makes every microkernel
//!   read a contiguous streaming load and absorbs both transpose
//!   orientations for free.
//! - **Microkernel.** An MR×NR = 3×12 register tile accumulated in a
//!   local `[[f64; NR]; MR]`, k-unrolled ×4. With FMA available the
//!   `mul_add` calls compile to `vfmadd` on 256-bit vectors (see
//!   `.cargo/config.toml`); without it they lower to the plain
//!   multiply-add written in [`fmadd`].
//! - **Determinism.** The KC-blocked depth loop is serial and outermost;
//!   within one depth block, threads split the output over fixed
//!   MC-row chunks (MC = 126 = 42 micropanels, so chunk boundaries are
//!   always panel-aligned regardless of thread count). Each output
//!   entry is written by exactly one thread per depth block, and its
//!   accumulation order — ascending depth blocks × the fixed in-kernel
//!   k order — never depends on `NEWSDIFF_THREADS`. Dispatch decisions
//!   that pick between code paths (naive vs packed, matvec) depend only
//!   on the operand shapes, never on thread count or data.
//!
//! Scratch: callers thread a [`GemmScratch`] through hot loops so the
//! packing buffers are allocated once and reused; [`with_tls_scratch`]
//! offers a thread-local fallback for `&self` call sites (inference).

use crate::mat::Mat;
use std::cell::RefCell;

/// Rows per A micropanel (register tile height).
pub const MR: usize = 3;
/// Columns per B micropanel (register tile width).
pub const NR: usize = 12;
/// Depth (k) block size; one A panel slice of a depth block is
/// `MR * KC * 8 = 6` KiB, one B panel slice is `NR * KC * 8 = 24` KiB —
/// both L1/L2 resident.
pub const KC: usize = 256;
/// Output rows per parallel chunk. Must be a multiple of `MR` so the
/// fixed chunk boundaries used by `nd-par` never split a micropanel:
/// 126 = 42 panels of 3 rows.
pub const MC: usize = 126;
/// Depth-loop unroll factor in the microkernel.
const KU: usize = 4;
/// Below this `m*n*k` element-op count the packed path's packing and
/// padding overhead is not worth it; a serial naive triple loop wins
/// and is trivially thread-count invariant. Shape-only cutoff, so the
/// path choice is deterministic.
const NAIVE_CUTOFF: usize = 64 * 64 * 64;

/// Reusable packing buffers for [`gemm_into`].
///
/// Holds the packed A and B panels between calls so hot loops (NMF
/// iterations, SVD power steps, training steps) never allocate. Buffers
/// only grow; contents are fully overwritten by each pack, so reuse
/// across different shapes is safe.
#[derive(Debug, Default)]
pub struct GemmScratch {
    apack: Vec<f64>,
    bpack: Vec<f64>,
}

impl GemmScratch {
    /// Creates an empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        GemmScratch {
            apack: Vec::new(),
            bpack: Vec::new(),
        }
    }

    /// Returns the two packing buffers resized to at least the
    /// requested lengths. Contents are unspecified; the pack loops
    /// write every slot (including zero padding) before the kernel
    /// reads any.
    fn panels(&mut self, a_len: usize, b_len: usize) -> (&mut [f64], &mut [f64]) {
        if self.apack.len() < a_len {
            self.apack.resize(a_len, 0.0);
        }
        if self.bpack.len() < b_len {
            self.bpack.resize(b_len, 0.0);
        }
        (&mut self.apack[..a_len], &mut self.bpack[..b_len])
    }
}

thread_local! {
    static TLS_SCRATCH: RefCell<GemmScratch> = RefCell::new(GemmScratch::new());
}

/// Runs `f` with a thread-local [`GemmScratch`], for `&self` call sites
/// that cannot hold one (e.g. inference paths). Falls back to a fresh
/// scratch if the thread-local is already borrowed (re-entrant call).
pub fn with_tls_scratch<R>(f: impl FnOnce(&mut GemmScratch) -> R) -> R {
    TLS_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut GemmScratch::new()),
    })
}

/// Fused (or plain) multiply-add: `a * b + acc`.
///
/// `cfg!` is a compile-time constant, so the branch folds away: with
/// the `fma` target feature this is a single hardware `vfmadd`
/// (`mul_add` would otherwise call the slow libm softfloat fallback,
/// which is why the plain expression is kept for non-FMA builds).
#[inline(always)]
fn fmadd(a: f64, b: f64, acc: f64) -> f64 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// General matrix multiply on raw row-major slices:
/// `out (m×n) = op(A) · op(B)` (or `+=` when `accumulate`).
///
/// `op(A)` is logically m×k: stored m×k when `!a_trans`, stored k×m
/// when `a_trans` (and analogously `op(B)` is k×n, stored n×k when
/// `b_trans`). `out` must have exactly `m*n` elements; when
/// `accumulate` is false every entry is overwritten, so `out` need not
/// be zeroed. Panics via slice indexing if any operand is too short.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    a_trans: bool,
    b: &[f64],
    b_trans: bool,
    accumulate: bool,
    scratch: &mut GemmScratch,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), m * n, "gemm_into: out length mismatch");
    debug_assert!(a.len() >= m * k, "gemm_into: A too short");
    debug_assert!(b.len() >= k * n, "gemm_into: B too short");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            out.fill(0.0);
        }
        return;
    }
    // n == 1: both storage orders of B are a contiguous length-k vector.
    if n == 1 && !a_trans {
        matvec_into(m, k, a, false, &b[..k], accumulate, out);
        return;
    }
    if n == 1 && a_trans {
        matvec_into(m, k, a, true, &b[..k], accumulate, out);
        return;
    }
    if m.saturating_mul(n).saturating_mul(k) <= NAIVE_CUTOFF {
        gemm_naive(m, k, n, a, a_trans, b, b_trans, accumulate, out);
        return;
    }
    gemm_packed(m, k, n, a, a_trans, b, b_trans, accumulate, scratch, out);
}

/// `out (m×1) = op(A) · x` (or `+=` when `accumulate`), where `op(A)`
/// is logically m×k. Row-parallel with the shared `vecops::dot` for the
/// non-transposed case; strided column dots for the transposed case.
/// Needs no packing scratch.
pub fn matvec_into(
    m: usize,
    k: usize,
    a: &[f64],
    a_trans: bool,
    x: &[f64],
    accumulate: bool,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), m, "matvec_into: out length mismatch");
    debug_assert!(x.len() >= k, "matvec_into: x too short");
    if m == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            out.fill(0.0);
        }
        return;
    }
    if a_trans {
        // A stored k×m; out[i] = Σ_kk a[kk*m + i] * x[kk]. Strided column
        // reads, but each output is still an independent serial dot.
        let chunk = nd_par::auto_chunk_len(m, 64);
        nd_par::par_for_rows(out, 1, chunk, k, |i0, block| {
            for (off, o) in block.iter_mut().enumerate() {
                let i = i0 + off;
                let mut s = 0.0;
                for (kk, &xv) in x[..k].iter().enumerate() {
                    s = fmadd(a[kk * m + i], xv, s);
                }
                if accumulate {
                    *o += s;
                } else {
                    *o = s;
                }
            }
        });
    } else {
        let chunk = nd_par::auto_chunk_len(m, 64);
        nd_par::par_for_rows(out, 1, chunk, k, |i0, block| {
            for (off, o) in block.iter_mut().enumerate() {
                let i = i0 + off;
                let s = crate::vecops::dot(&a[i * k..i * k + k], &x[..k]);
                if accumulate {
                    *o += s;
                } else {
                    *o = s;
                }
            }
        });
    }
}

/// Serial reference triple loop, dot-ordered (`i`, `j`, ascending `kk`).
/// Used below the size cutoff and by the equivalence tests as the
/// ground truth. Serial, so trivially thread-count invariant.
#[allow(clippy::too_many_arguments)]
fn gemm_naive(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    a_trans: bool,
    b: &[f64],
    b_trans: bool,
    accumulate: bool,
    out: &mut [f64],
) {
    for i in 0..m {
        let orow = &mut out[i * n..i * n + n];
        for (j, o) in orow.iter_mut().enumerate() {
            let mut s = 0.0;
            for kk in 0..k {
                let av = if a_trans { a[kk * m + i] } else { a[i * k + kk] };
                let bv = if b_trans { b[j * k + kk] } else { b[kk * n + j] };
                s = fmadd(av, bv, s);
            }
            if accumulate {
                *o += s;
            } else {
                *o = s;
            }
        }
    }
}

/// Packs `op(A)` (logical m×k) into MR-row micropanels:
/// `apack[p*MR*k + kk*MR + r] = op(A)[p*MR + r, kk]`, rows past `m`
/// zero-padded. Parallel over panels (disjoint writes; packed values
/// are independent of which worker writes them).
fn pack_a(apack: &mut [f64], a: &[f64], a_trans: bool, m: usize, k: usize) {
    let panel_len = MR * k;
    let panels = apack.len() / panel_len;
    let chunk = nd_par::auto_chunk_len(panels, 4);
    nd_par::par_for_rows(apack, panel_len, chunk, panel_len, |p0, block| {
        for (pi, panel) in block.chunks_exact_mut(panel_len).enumerate() {
            let p = p0 + pi;
            if a_trans {
                // A stored k×m: one source row per kk, contiguous in r.
                for (kk, dst) in panel.chunks_exact_mut(MR).enumerate() {
                    let src = &a[kk * m..kk * m + m];
                    for (r, d) in dst.iter_mut().enumerate() {
                        let row = p * MR + r;
                        *d = if row < m { src[row] } else { 0.0 };
                    }
                }
            } else {
                for r in 0..MR {
                    let row = p * MR + r;
                    if row < m {
                        let src = &a[row * k..row * k + k];
                        for (kk, &v) in src.iter().enumerate() {
                            panel[kk * MR + r] = v;
                        }
                    } else {
                        for kk in 0..k {
                            panel[kk * MR + r] = 0.0;
                        }
                    }
                }
            }
        }
    });
}

/// Packs `op(B)` (logical k×n) into NR-column micropanels:
/// `bpack[q*NR*k + kk*NR + c] = op(B)[kk, q*NR + c]`, columns past `n`
/// zero-padded. Parallel over panels.
fn pack_b(bpack: &mut [f64], b: &[f64], b_trans: bool, k: usize, n: usize) {
    let panel_len = NR * k;
    let panels = bpack.len() / panel_len;
    let chunk = nd_par::auto_chunk_len(panels, 2);
    nd_par::par_for_rows(bpack, panel_len, chunk, panel_len, |q0, block| {
        for (qi, panel) in block.chunks_exact_mut(panel_len).enumerate() {
            let q = q0 + qi;
            if b_trans {
                // B stored n×k: one source row per output column.
                for c in 0..NR {
                    let col = q * NR + c;
                    if col < n {
                        let src = &b[col * k..col * k + k];
                        for (kk, &v) in src.iter().enumerate() {
                            panel[kk * NR + c] = v;
                        }
                    } else {
                        for kk in 0..k {
                            panel[kk * NR + c] = 0.0;
                        }
                    }
                }
            } else {
                for (kk, dst) in panel.chunks_exact_mut(NR).enumerate() {
                    let src = &b[kk * n..kk * n + n];
                    for (c, d) in dst.iter_mut().enumerate() {
                        let col = q * NR + c;
                        *d = if col < n { src[col] } else { 0.0 };
                    }
                }
            }
        }
    });
}

/// One MR×NR register tile over a depth slice of `kc` steps. The
/// accumulator lives in locals (returned by value) so the compiler
/// keeps the whole tile in registers; ×4 depth unroll feeds the FMA
/// pipes. Accumulation order over `kk` is fixed and serial.
#[inline]
fn microkernel(apanel: &[f64], bpanel: &[f64], kc: usize) -> [[f64; NR]; MR] {
    #[inline(always)]
    fn step(acc: &mut [[f64; NR]; MR], av: &[f64], bv: &[f64]) {
        let av = &av[..MR];
        let bv = &bv[..NR];
        for (accr, &ar) in acc.iter_mut().zip(av) {
            for (x, &bc) in accr.iter_mut().zip(bv) {
                *x = fmadd(ar, bc, *x);
            }
        }
    }

    let mut acc = [[0.0f64; NR]; MR];
    let mut kk = 0;
    while kk + KU <= kc {
        step(&mut acc, &apanel[kk * MR..], &bpanel[kk * NR..]);
        step(&mut acc, &apanel[(kk + 1) * MR..], &bpanel[(kk + 1) * NR..]);
        step(&mut acc, &apanel[(kk + 2) * MR..], &bpanel[(kk + 2) * NR..]);
        step(&mut acc, &apanel[(kk + 3) * MR..], &bpanel[(kk + 3) * NR..]);
        kk += KU;
    }
    while kk < kc {
        step(&mut acc, &apanel[kk * MR..], &bpanel[kk * NR..]);
        kk += 1;
    }
    acc
}

/// The packed path: pack both operands fully, then run a serial
/// KC-blocked depth loop; within each depth block, one `par_for_rows`
/// dispatch splits the output over MC-row (panel-aligned) chunks.
/// Per chunk, B panels are the outer loop (one 24 KiB panel slice stays
/// L1-hot while the chunk's A panels stream from L2).
#[allow(clippy::too_many_arguments)]
fn gemm_packed(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    a_trans: bool,
    b: &[f64],
    b_trans: bool,
    accumulate: bool,
    scratch: &mut GemmScratch,
    out: &mut [f64],
) {
    let mpanels = m.div_ceil(MR);
    let npanels = n.div_ceil(NR);
    let (apack, bpack) = scratch.panels(mpanels * MR * k, npanels * NR * k);
    pack_a(apack, a, a_trans, m, k);
    pack_b(bpack, b, b_trans, k, n);
    let apack = &*apack;
    let bpack = &*bpack;

    for k0 in (0..k).step_by(KC) {
        let kc = KC.min(k - k0);
        // First depth block stores (unless accumulating into existing
        // contents); later blocks always add. Each entry is visited
        // exactly once per depth block, so the per-entry accumulation
        // order is ascending k0 × the kernel's fixed kk order.
        let store = k0 == 0 && !accumulate;
        nd_par::par_for_rows(out, n, MC, n * kc, |i0, block| {
            let i_end = i0 + block.len() / n;
            // i0 is a multiple of MC (= 42 whole panels), so p_first is
            // panel-aligned for every chunk the dispatcher produces.
            let p_first = i0 / MR;
            let p_last = i_end.div_ceil(MR);
            for q in 0..npanels {
                let bbase = q * NR * k;
                let bpanel = &bpack[bbase + k0 * NR..bbase + (k0 + kc) * NR];
                let cmax = NR.min(n - q * NR);
                for p in p_first..p_last {
                    let abase = p * MR * k;
                    let apanel = &apack[abase + k0 * MR..abase + (k0 + kc) * MR];
                    let acc = microkernel(apanel, bpanel, kc);
                    let rmax = MR.min(i_end - p * MR);
                    for (r, accr) in acc.iter().enumerate().take(rmax) {
                        let row = p * MR + r;
                        let obase = (row - i0) * n + q * NR;
                        let orow = &mut block[obase..obase + cmax];
                        if store {
                            orow.copy_from_slice(&accr[..cmax]);
                        } else {
                            for (o, &v) in orow.iter_mut().zip(accr) {
                                *o += v;
                            }
                        }
                    }
                }
            }
        });
    }
}

/// A linear operator exposing matrix-shaped products, so algorithms
/// like the randomized SVD can run on any representation — dense
/// [`Mat`] here, `CsrMatrix` in `nd-vectorize` — without densifying.
pub trait MatOp {
    /// Rows of the operator.
    fn nrows(&self) -> usize;
    /// Columns of the operator.
    fn ncols(&self) -> usize;
    /// `out = A · rhs` where `rhs` is `ncols × p`; `out` is reshaped to
    /// `nrows × p`. Implementations may ignore `scratch`.
    fn apply_into(&self, rhs: &Mat, scratch: &mut GemmScratch, out: &mut Mat);
    /// `out = Aᵀ · rhs` where `rhs` is `nrows × p`; `out` is reshaped to
    /// `ncols × p`. Implementations may ignore `scratch`.
    fn apply_t_into(&self, rhs: &Mat, scratch: &mut GemmScratch, out: &mut Mat);
}

impl MatOp for Mat {
    fn nrows(&self) -> usize {
        self.rows()
    }

    fn ncols(&self) -> usize {
        self.cols()
    }

    fn apply_into(&self, rhs: &Mat, scratch: &mut GemmScratch, out: &mut Mat) {
        debug_assert_eq!(self.cols(), rhs.rows(), "apply_into: dimension mismatch");
        self.matmul_unchecked_into(rhs, scratch, out);
    }

    fn apply_t_into(&self, rhs: &Mat, scratch: &mut GemmScratch, out: &mut Mat) {
        debug_assert_eq!(self.rows(), rhs.rows(), "apply_t_into: dimension mismatch");
        self.transpose_matmul_into(rhs, scratch, out);
    }
}
