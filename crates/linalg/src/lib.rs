//! # nd-linalg
//!
//! Dense linear-algebra substrate for the `newsdiff` workspace.
//!
//! Everything the higher layers (topic modeling, embeddings, neural
//! networks) need is implemented here from scratch on top of `std`:
//!
//! * [`Mat`] — a row-major dense `f64` matrix with the usual algebra
//!   (products, transposes, element-wise maps, reductions, slicing).
//! * [`vecops`] — free functions over `&[f64]` slices (dot products,
//!   norms, cosine similarity, softmax, …).
//! * [`svd`] — truncated singular value decomposition via randomized
//!   subspace iteration, used by the LSA topic model.
//! * [`stats`] — descriptive statistics and correlation coefficients,
//!   used by the MABED event-detection weights.
//! * [`rng`] — small deterministic RNG helpers so every stochastic
//!   component in the workspace is seedable and reproducible.
//!
//! The crate is deliberately dependency-light (only `rand`) and uses
//! `f64` throughout: the workloads in this workspace are small enough
//! that the precision/robustness win dominates the memory cost.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod mat;
pub mod rng;
pub mod stats;
pub mod svd;
pub mod vecops;

pub use error::{LinalgError, Result};
pub use mat::Mat;
pub use svd::{truncated_svd, Svd};
