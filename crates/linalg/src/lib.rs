//! # nd-linalg
//!
//! Dense linear-algebra substrate for the `newsdiff` workspace.
//!
//! Everything the higher layers (topic modeling, embeddings, neural
//! networks) need is implemented here from scratch on top of `std`:
//!
//! * [`Mat`] — a row-major dense `f64` matrix with the usual algebra
//!   (products, transposes, element-wise maps, reductions, slicing).
//! * [`gemm`] — the packed, register-blocked GEMM microkernel every
//!   dense product routes through, plus the [`MatOp`] operator trait
//!   that lets algorithms run matrix-free over other representations.
//! * [`vecops`] — free functions over `&[f64]` slices (dot products,
//!   norms, cosine similarity, softmax, …).
//! * [`svd`] — truncated singular value decomposition via randomized
//!   subspace iteration over any [`MatOp`], used by the LSA topic
//!   model (sparse, matrix-free) and available densely via [`Mat`].
//! * [`stats`] — descriptive statistics and correlation coefficients,
//!   used by the MABED event-detection weights.
//! * [`rng`] — small deterministic RNG helpers so every stochastic
//!   component in the workspace is seedable and reproducible.
//!
//! The crate is deliberately dependency-light (only `rand`) and uses
//! `f64` throughout: the workloads in this workspace are small enough
//! that the precision/robustness win dominates the memory cost.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod gemm;
pub mod mat;
pub mod rng;
pub mod stats;
pub mod svd;
pub mod vecops;

pub use error::{LinalgError, Result};
pub use gemm::{GemmScratch, MatOp};
pub use mat::Mat;
pub use svd::{truncated_svd, truncated_svd_op, Svd};
