//! Row-major dense `f64` matrix.

use crate::error::{LinalgError, Result};
use crate::rng::SplitMix64;

/// A dense, row-major matrix of `f64` values.
///
/// `Mat` is the workhorse type shared by the NMF topic model, the
/// embedding trainers, and the neural-network layers. It keeps one
/// contiguous `Vec<f64>`; the hot paths (matrix products, transpose)
/// route through the packed GEMM microkernel ([`crate::gemm`]) and
/// run across threads via `nd-par`, with fixed panel boundaries
/// and accumulation order so results are bit-for-bit
/// identical at any `NEWSDIFF_THREADS` setting.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Mat { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    /// Returns [`LinalgError::BadBuffer`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::BadBuffer { shape: (rows, cols), len: data.len() });
        }
        Ok(Mat { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    /// Returns [`LinalgError::BadBuffer`] if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Mat::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::BadBuffer {
                    shape: (rows.len(), cols),
                    len: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Mat { rows: rows.len(), cols, data })
    }

    /// Creates a matrix where entry `(i, j)` is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Creates a matrix with entries drawn uniformly from `[lo, hi)`,
    /// deterministically from `seed`.
    pub fn random_uniform(rows: usize, cols: usize, lo: f64, hi: f64, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(lo + (hi - lo) * rng.next_f64());
        }
        Mat { rows, cols, data }
    }

    /// Creates a matrix with entries drawn from a normal distribution
    /// `N(mean, std^2)`, deterministically from `seed`.
    pub fn random_normal(rows: usize, cols: usize, mean: f64, std: f64, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(mean + std * rng.next_gaussian());
        }
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Reshapes to `rows x cols` in place and zero-fills, reusing the
    /// existing allocation whenever capacity allows.
    ///
    /// This is the backbone of the `*_into` scratch-reuse API: a
    /// workspace `Mat` starts as `Mat::zeros(0, 0)` and is re-shaped
    /// by every call that writes into it, so iteration loops allocate
    /// once on the first pass and never again.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Entry at `(i, j)`.
    ///
    /// # Panics
    /// Panics if `i >= rows` or `j >= cols`; out-of-bounds access is an
    /// internal logic error, never a data-dependent condition.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets the entry at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// Allocates; on hot paths prefer [`Mat::col_view`] (strided, no
    /// allocation) or [`Mat::copy_col_into`] (reusable buffer).
    pub fn col(&self, j: usize) -> Vec<f64> {
        self.col_view(j).iter().collect()
    }

    /// Strided, non-allocating view of column `j`.
    #[inline]
    pub fn col_view(&self, j: usize) -> ColView<'_> {
        debug_assert!(j < self.cols || self.rows == 0);
        ColView { data: &self.data, cols: self.cols.max(1), j }
    }

    /// Copies column `j` into `out`, which must hold `rows` elements.
    pub fn copy_col_into(&self, j: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.rows);
        for (o, v) in out.iter_mut().zip(self.col_view(j).iter()) {
            *o = v;
        }
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Matrix transpose.
    ///
    /// Processes the matrix in 32×32 blocks so both the source rows
    /// and destination rows stay cache-resident, and splits the
    /// destination rows across threads for large matrices.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(0, 0);
        self.transpose_into(&mut out);
        out
    }

    /// [`Mat::transpose`] into a caller-provided scratch matrix
    /// (reshaped and overwritten). Iteration-hot call sites reuse
    /// `out` across calls so the transpose allocates only once.
    pub fn transpose_into(&self, out: &mut Mat) {
        const BLOCK: usize = 32;
        let (r, c) = (self.rows, self.cols);
        out.reset_zeroed(c, r);
        if r == 0 || c == 0 {
            return;
        }
        let src = &self.data;
        nd_par::par_for_rows(&mut out.data, r, BLOCK, r, |j0, block| {
            for i0 in (0..r).step_by(BLOCK) {
                let i_end = (i0 + BLOCK).min(r);
                for (jj, orow) in block.chunks_exact_mut(r).enumerate() {
                    let j = j0 + jj;
                    for (i, o) in orow[i0..i_end].iter_mut().enumerate() {
                        *o = src[(i0 + i) * c + j];
                    }
                }
            }
        });
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] when `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Mat) -> Result<Mat> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(self.matmul_unchecked(rhs))
    }

    /// Matrix product without the shape `Result`; for iteration-hot
    /// call sites that validate shapes once up front.
    ///
    /// Runs on the packed register-blocked kernel in [`crate::gemm`]
    /// using a thread-local packing scratch, so repeated calls do not
    /// re-allocate. Accumulation order per entry is fixed by the
    /// kernel's panel schedule, so any thread count produces
    /// identical bits.
    ///
    /// # Panics
    /// Debug-asserts `self.cols == rhs.rows`.
    pub fn matmul_unchecked(&self, rhs: &Mat) -> Mat {
        let mut out = Mat::zeros(0, 0);
        crate::gemm::with_tls_scratch(|scratch| {
            self.matmul_unchecked_into(rhs, scratch, &mut out);
        });
        out
    }

    /// [`Mat::matmul_unchecked`] into caller-provided scratch:
    /// `scratch` holds the GEMM packing panels and `out` receives the
    /// product (reshaped and overwritten). Iteration loops reuse both
    /// across calls, eliminating per-call packing allocations.
    /// Bit-identical to the allocating version.
    ///
    /// # Panics
    /// Debug-asserts `self.cols == rhs.rows`.
    pub fn matmul_unchecked_into(
        &self,
        rhs: &Mat,
        scratch: &mut crate::gemm::GemmScratch,
        out: &mut Mat,
    ) {
        debug_assert_eq!(self.cols, rhs.rows, "matmul_unchecked_into shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        out.reset_zeroed(m, n);
        crate::gemm::gemm_into(m, k, n, &self.data, false, &rhs.data, false, false, scratch, &mut out.data);
    }

    /// `selfᵀ * rhs` without materializing the transpose, into
    /// caller-provided scratch (`out` reshaped and overwritten). The
    /// packed kernel absorbs the transposed orientation during panel
    /// packing, so this costs the same as a plain product.
    ///
    /// # Panics
    /// Debug-asserts `self.rows == rhs.rows`.
    pub fn transpose_matmul_into(
        &self,
        rhs: &Mat,
        scratch: &mut crate::gemm::GemmScratch,
        out: &mut Mat,
    ) {
        debug_assert_eq!(self.rows, rhs.rows, "transpose_matmul_into shape mismatch");
        let (m, k, n) = (self.cols, self.rows, rhs.cols);
        out.reset_zeroed(m, n);
        crate::gemm::gemm_into(m, k, n, &self.data, true, &rhs.data, false, false, scratch, &mut out.data);
    }

    /// `self * rhsᵀ` without materializing the transpose, into
    /// caller-provided scratch (`out` reshaped and overwritten).
    ///
    /// # Panics
    /// Debug-asserts `self.cols == rhs.cols`.
    pub fn matmul_transpose_into(
        &self,
        rhs: &Mat,
        scratch: &mut crate::gemm::GemmScratch,
        out: &mut Mat,
    ) {
        debug_assert_eq!(self.cols, rhs.cols, "matmul_transpose_into shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        out.reset_zeroed(m, n);
        crate::gemm::gemm_into(m, k, n, &self.data, false, &rhs.data, true, false, scratch, &mut out.data);
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != self.cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.matvec_into(v, &mut out)?;
        Ok(out)
    }

    /// [`Mat::matvec`] into a caller-provided scratch vector (resized
    /// and overwritten). Scan loops that apply the same matrix to many
    /// vectors — SVD power iteration, cosine scans — reuse `out`
    /// across calls instead of allocating a fresh result per query.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != self.cols`.
    pub fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        out.clear();
        out.resize(self.rows, 0.0);
        crate::gemm::matvec_into(self.rows, self.cols, &self.data, false, v, false, out);
        Ok(())
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] on shape disagreement.
    pub fn add(&self, rhs: &Mat) -> Result<Mat> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] on shape disagreement.
    pub fn sub(&self, rhs: &Mat) -> Result<Mat> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] on shape disagreement.
    pub fn hadamard(&self, rhs: &Mat) -> Result<Mat> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    /// Element-wise quotient with an epsilon guard on the denominator:
    /// `self[i] / (rhs[i] + eps)`. This is the exact form the NMF
    /// multiplicative updates need to avoid division by zero.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] on shape disagreement.
    pub fn div_eps(&self, rhs: &Mat, eps: f64) -> Result<Mat> {
        self.zip_with(rhs, "div_eps", |a, b| a / (b + eps))
    }

    fn zip_with(&self, rhs: &Mat, op: &'static str, f: impl Fn(f64, f64) -> f64) -> Result<Mat> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch { op, lhs: self.shape(), rhs: rhs.shape() });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Mat { rows: self.rows, cols: self.cols, data })
    }

    /// In-place element-wise addition.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] on shape disagreement.
    pub fn add_assign(&mut self, rhs: &Mat) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add_assign",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        Ok(())
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f64) -> Mat {
        self.map(|v| v * scalar)
    }

    /// In-place scalar multiplication.
    pub fn scale_assign(&mut self, scalar: f64) {
        for v in &mut self.data {
            *v *= scalar;
        }
    }

    /// Returns a new matrix with `f` applied to every entry.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_assign(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Clamps every entry below `min` up to `min` (used to keep NMF
    /// factors strictly non-negative in the face of rounding).
    pub fn clamp_min_assign(&mut self, min: f64) {
        for v in &mut self.data {
            if *v < min {
                *v = min;
            }
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all entries; `0.0` for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            // nd-lint: allow(fp-reduction-order) — serial sum in storage order; never parallelized.
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm `sqrt(sum of squared entries)`.
    pub fn frobenius_norm(&self) -> f64 {
        // nd-lint: allow(fp-reduction-order) — serial sum in storage order; never parallelized.
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Squared Frobenius distance `||self - rhs||_F^2`, the NMF objective
    /// of paper Eq. (6).
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] on shape disagreement.
    pub fn frobenius_dist_sq(&self, rhs: &Mat) -> Result<f64> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "frobenius_dist_sq",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum())
    }

    /// Per-row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        self.row_iter().map(|r| r.iter().sum()).collect()
    }

    /// Per-column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for row in self.row_iter() {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        sums
    }

    /// Index of the maximum entry in row `i` (ties resolve to the first).
    ///
    /// # Errors
    /// Returns [`LinalgError::Empty`] when the matrix has zero columns.
    pub fn row_argmax(&self, i: usize) -> Result<usize> {
        if self.cols == 0 {
            return Err(LinalgError::Empty("row_argmax"));
        }
        let row = self.row(i);
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        Ok(best)
    }

    /// Indices of the `k` largest entries of row `i`, descending by value.
    pub fn row_top_k(&self, i: usize, k: usize) -> Vec<usize> {
        let row = self.row(i);
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap_or(std::cmp::Ordering::Equal));
        idx.truncate(k);
        idx
    }

    /// Extracts a contiguous block of rows `[start, end)` as a new matrix.
    ///
    /// # Errors
    /// Returns [`LinalgError::OutOfBounds`] when `end > rows` or
    /// `start > end`.
    pub fn row_block(&self, start: usize, end: usize) -> Result<Mat> {
        if end > self.rows || start > end {
            return Err(LinalgError::OutOfBounds { index: end, bound: self.rows + 1 });
        }
        Ok(Mat {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        })
    }

    /// Stacks two matrices vertically.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] when column counts differ.
    pub fn vstack(&self, below: &Mat) -> Result<Mat> {
        if self.cols != below.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: below.shape(),
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + below.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&below.data);
        Ok(Mat { rows: self.rows + below.rows, cols: self.cols, data })
    }

    /// Concatenates two matrices horizontally.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] when row counts differ.
    pub fn hstack(&self, right: &Mat) -> Result<Mat> {
        if self.rows != right.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: right.shape(),
            });
        }
        let cols = self.cols + right.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(right.row(i));
        }
        Ok(Mat { rows: self.rows, cols, data })
    }

    /// Normalizes every row to unit ℓ² norm; rows with zero norm are left
    /// untouched.
    pub fn normalize_rows(&mut self) {
        let cols = self.cols;
        for i in 0..self.rows {
            let row = &mut self.data[i * cols..(i + 1) * cols];
            // nd-lint: allow(fp-reduction-order) — serial sum over one row in storage order.
            let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                for v in row {
                    *v /= norm;
                }
            }
        }
    }

    /// `A^T * A` without materializing the transpose.
    ///
    /// Routed through the packed GEMM kernel with `self` packed once
    /// per side (transposed for the left operand, plain for the
    /// right), using a thread-local packing scratch. The kernel's
    /// fixed panel schedule makes the result bit-for-bit independent
    /// of the thread count.
    pub fn gram(&self) -> Mat {
        let mut out = Mat::zeros(0, 0);
        crate::gemm::with_tls_scratch(|scratch| {
            self.gram_into(scratch, &mut out);
        });
        out
    }

    /// [`Mat::gram`] into caller-provided scratch (`out` reshaped and
    /// overwritten, `scratch` holding the packing panels).
    /// Iteration-hot call sites reuse both across calls; bit-identical
    /// to the allocating version.
    pub fn gram_into(&self, scratch: &mut crate::gemm::GemmScratch, out: &mut Mat) {
        let (r, c) = (self.rows, self.cols);
        out.reset_zeroed(c, c);
        crate::gemm::gemm_into(c, r, c, &self.data, true, &self.data, false, false, scratch, &mut out.data);
    }
}

/// Non-allocating, strided view of one matrix column.
///
/// Produced by [`Mat::col_view`]; replaces the allocating
/// [`Mat::col`] on hot paths (NMF objective, SVD orthonormalisation).
#[derive(Debug, Clone, Copy)]
pub struct ColView<'a> {
    data: &'a [f64],
    cols: usize,
    j: usize,
}

impl<'a> ColView<'a> {
    /// Number of entries (the matrix's row count).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.cols
    }

    /// `true` when the column has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Entry `i` of the column.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.data[i * self.cols + self.j]
    }

    /// Iterator over the column's entries, top to bottom.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = f64> + 'a {
        self.data.get(self.j..).unwrap_or(&[]).iter().step_by(self.cols).copied()
    }

    /// Dot product with another column view of equal length.
    pub fn dot(&self, other: &ColView<'_>) -> f64 {
        debug_assert_eq!(self.len(), other.len());
        self.iter().zip(other.iter()).map(|(a, b)| a * b).sum()
    }
}

impl std::fmt::Display for Mat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            let row = self.row(i);
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:>10.4}")).collect();
            let ellipsis = if self.cols > 8 { " …" } else { "" };
            writeln!(f, "  [{}{}]", cells.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  … ({} more rows)", self.rows - show_rows)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat2x3() -> Mat {
        Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let m = mat2x3();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(matches!(
            Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0]),
            Err(LinalgError::BadBuffer { .. })
        ));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Mat::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
    }

    #[test]
    fn from_rows_empty_is_0x0() {
        let m = Mat::from_rows(&[]).unwrap();
        assert_eq!(m.shape(), (0, 0));
        assert!(m.is_empty());
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let m = mat2x3();
        let i3 = Mat::eye(3);
        assert_eq!(m.matmul(&i3).unwrap(), m);
        let i2 = Mat::eye(2);
        assert_eq!(i2.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Mat::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = mat2x3();
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = mat2x3();
        let v = vec![1.0, 0.5, 2.0];
        let got = a.matvec(&v).unwrap();
        assert_eq!(got, vec![1.0 + 1.0 + 6.0, 4.0 + 2.5 + 12.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = mat2x3();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let m = mat2x3();
        let s = m.add(&m).unwrap();
        assert_eq!(s.get(1, 1), 10.0);
        let d = m.sub(&m).unwrap();
        assert_eq!(d.sum(), 0.0);
        let h = m.hadamard(&m).unwrap();
        assert_eq!(h.get(1, 2), 36.0);
    }

    #[test]
    fn div_eps_guards_zero() {
        let num = Mat::filled(1, 2, 1.0);
        let den = Mat::from_vec(1, 2, vec![0.0, 2.0]).unwrap();
        let q = num.div_eps(&den, 1e-9).unwrap();
        assert!(q.get(0, 0).is_finite());
        assert!((q.get(0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn frobenius_norm_and_distance() {
        let m = Mat::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        let z = Mat::zeros(1, 2);
        assert!((m.frobenius_dist_sq(&z).unwrap() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn sums_and_argmax() {
        let m = mat2x3();
        assert_eq!(m.row_sums(), vec![6.0, 15.0]);
        assert_eq!(m.col_sums(), vec![5.0, 7.0, 9.0]);
        assert_eq!(m.row_argmax(0).unwrap(), 2);
        assert_eq!(m.row_top_k(1, 2), vec![2, 1]);
    }

    #[test]
    fn row_argmax_ties_pick_first() {
        let m = Mat::from_vec(1, 3, vec![2.0, 2.0, 1.0]).unwrap();
        assert_eq!(m.row_argmax(0).unwrap(), 0);
    }

    #[test]
    fn stacking() {
        let m = mat2x3();
        let v = m.vstack(&m).unwrap();
        assert_eq!(v.shape(), (4, 3));
        assert_eq!(v.row(2), m.row(0));
        let h = m.hstack(&m).unwrap();
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.get(0, 3), 1.0);
        assert!(m.vstack(&Mat::zeros(1, 2)).is_err());
        assert!(m.hstack(&Mat::zeros(3, 1)).is_err());
    }

    #[test]
    fn row_block_extraction() {
        let m = mat2x3();
        let b = m.row_block(1, 2).unwrap();
        assert_eq!(b.shape(), (1, 3));
        assert_eq!(b.row(0), m.row(1));
        assert!(m.row_block(1, 5).is_err());
    }

    #[test]
    fn normalize_rows_unit_norm_and_zero_row_safe() {
        let mut m = Mat::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]).unwrap();
        m.normalize_rows();
        let n0: f64 = m.row(0).iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((n0 - 1.0).abs() < 1e-12);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let m = mat2x3();
        let explicit = m.transpose().matmul(&m).unwrap();
        let g = m.gram();
        for (a, b) in g.as_slice().iter().zip(explicit.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn random_matrices_deterministic_by_seed() {
        let a = Mat::random_uniform(3, 3, -1.0, 1.0, 7);
        let b = Mat::random_uniform(3, 3, -1.0, 1.0, 7);
        let c = Mat::random_uniform(3, 3, -1.0, 1.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn random_normal_has_plausible_moments() {
        let m = Mat::random_normal(100, 100, 2.0, 0.5, 42);
        let mean = m.mean();
        assert!((mean - 2.0).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn map_scale_clamp() {
        let mut m = mat2x3();
        let doubled = m.scale(2.0);
        assert_eq!(doubled.get(0, 1), 4.0);
        m.map_assign(|v| -v);
        m.clamp_min_assign(-2.0);
        assert_eq!(m.get(1, 2), -2.0);
        assert_eq!(m.get(0, 0), -1.0);
    }

    #[test]
    fn col_view_matches_allocating_col() {
        let m = mat2x3();
        let v = m.col_view(1);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(0), 2.0);
        assert_eq!(v.iter().collect::<Vec<_>>(), m.col(1));
        let mut buf = vec![0.0; 2];
        m.copy_col_into(2, &mut buf);
        assert_eq!(buf, vec![3.0, 6.0]);
    }

    #[test]
    fn col_view_dot() {
        let m = mat2x3();
        let d = m.col_view(0).dot(&m.col_view(2));
        assert_eq!(d, 1.0 * 3.0 + 4.0 * 6.0);
    }

    #[test]
    fn large_matmul_matches_naive_reference() {
        // Big enough to cross the parallel/tiling thresholds.
        let a = Mat::random_uniform(70, 90, -1.0, 1.0, 1);
        let b = Mat::random_uniform(90, 80, -1.0, 1.0, 2);
        let fast = a.matmul(&b).unwrap();
        let mut naive = Mat::zeros(70, 80);
        for i in 0..70 {
            for j in 0..80 {
                let mut s = 0.0;
                for k in 0..90 {
                    s += a.get(i, k) * b.get(k, j);
                }
                naive.set(i, j, s);
            }
        }
        for (x, y) in fast.as_slice().iter().zip(naive.as_slice()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn large_transpose_round_trips() {
        let m = Mat::random_uniform(123, 77, -1.0, 1.0, 3);
        let t = m.transpose();
        assert_eq!(t.shape(), (77, 123));
        assert_eq!(t.transpose(), m);
        for i in 0..123 {
            for j in 0..77 {
                assert_eq!(m.get(i, j), t.get(j, i));
            }
        }
    }

    #[test]
    fn into_variants_reuse_dirty_scratch_bitwise() {
        let a = Mat::random_uniform(33, 21, -1.0, 1.0, 9);
        let b = Mat::random_uniform(21, 17, -1.0, 1.0, 10);
        // Dirty, wrongly-shaped scratch must not leak into results.
        let mut scratch = crate::gemm::GemmScratch::new();
        let mut out = Mat::filled(2, 2, -3.0);
        a.matmul_unchecked_into(&b, &mut scratch, &mut out);
        assert_eq!(out, a.matmul_unchecked(&b));
        // Reusing the now-dirty packing scratch must be bit-identical.
        let mut out2 = Mat::filled(5, 1, 11.0);
        a.matmul_unchecked_into(&b, &mut scratch, &mut out2);
        assert_eq!(out, out2);

        let mut t = Mat::filled(1, 9, 4.0);
        a.transpose_into(&mut t);
        assert_eq!(t, a.transpose());

        let mut g = Mat::filled(40, 2, 1.0);
        a.gram_into(&mut scratch, &mut g);
        assert_eq!(g, a.gram());

        let v: Vec<f64> = (0..21).map(|i| (i as f64).cos()).collect();
        let mut mv = vec![9.0; 3];
        a.matvec_into(&v, &mut mv).unwrap();
        assert_eq!(mv, a.matvec(&v).unwrap());
        // A second call must reuse the allocation, not grow it.
        let cap = mv.capacity();
        a.matvec_into(&v, &mut mv).unwrap();
        assert_eq!(cap, mv.capacity());
        // Shape errors still surface through the _into path.
        assert!(a.matvec_into(&[1.0], &mut mv).is_err());
    }

    #[test]
    fn reset_zeroed_reuses_capacity() {
        let mut m = Mat::filled(8, 8, 5.0);
        let ptr = m.as_slice().as_ptr();
        m.reset_zeroed(4, 6);
        assert_eq!(m.shape(), (4, 6));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(ptr, m.as_slice().as_ptr(), "smaller reshape must not reallocate");
    }

    #[test]
    fn matmul_unchecked_matches_matmul() {
        let a = Mat::random_uniform(9, 13, -2.0, 2.0, 4);
        let b = Mat::random_uniform(13, 6, -2.0, 2.0, 5);
        assert_eq!(a.matmul(&b).unwrap(), a.matmul_unchecked(&b));
    }

    #[test]
    fn display_does_not_panic_on_large() {
        let m = Mat::zeros(20, 20);
        let s = format!("{m}");
        assert!(s.contains("more rows"));
    }
}
