//! Deterministic random-number helpers.
//!
//! Every stochastic component in the workspace (weight initialization,
//! negative sampling, synthetic data generation) must be reproducible
//! from an explicit seed. [`SplitMix64`] is the shared primitive: it is
//! tiny, has no external state, and its output for a given seed is
//! stable across platforms and crate versions — unlike `rand`'s
//! `StdRng`, whose stream may change between `rand` releases.

/// A SplitMix64 pseudo-random generator.
///
/// SplitMix64 passes BigCrush, has a 2^64 period, and needs only one
/// `u64` of state. It is *not* cryptographically secure — it exists so
/// that experiments are exactly reproducible from a seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
    /// Cached second half of a Box–Muller pair.
    gauss_spare: Option<f64>,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Two generators with the same
    /// seed produce identical streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed, gauss_spare: None }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> exactly representable double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`; asking for an index into an empty range
    /// is always a logic error at the call site.
    #[inline]
    pub fn next_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_usize bound must be positive");
        // Rejection-free multiply-shift; bias is negligible for the
        // bounds used in this workspace (< 2^32).
        ((self.next_u64() >> 32).wrapping_mul(bound as u64) >> 32) as usize
    }

    /// Standard normal deviate via Box–Muller (cached pairs).
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(s) = self.gauss_spare.take() {
            return s;
        }
        // Avoid log(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(1e-300);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples an index from an unnormalized non-negative weight vector.
    /// Falls back to a uniform draw if all weights are zero.
    ///
    /// # Panics
    /// Panics if `weights` is empty.
    pub fn sample_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "sample_weighted needs at least one weight");
        // nd-lint: allow(fp-reduction-order) — serial sum in the caller's slice order.
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return self.next_usize(weights.len());
        }
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Draws a sample from a Zipf-like power-law over `{1, …, max}` with
    /// exponent `alpha` using inverse-CDF on a continuous Pareto
    /// approximation. Used for synthetic follower counts.
    pub fn next_powerlaw(&mut self, alpha: f64, max: u64) -> u64 {
        debug_assert!(alpha > 1.0);
        let u = self.next_f64().max(1e-12);
        let x = u.powf(-1.0 / (alpha - 1.0));
        (x.round() as u64).min(max).max(1)
    }

    /// Derives an independent child generator; convenient for giving
    /// each synthetic entity its own stream.
    pub fn fork(&mut self, tag: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn usize_respects_bound() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.next_usize(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn usize_zero_bound_panics() {
        SplitMix64::new(0).next_usize(0);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SplitMix64::new(77);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn weighted_sampling_prefers_heavy_weights() {
        let mut r = SplitMix64::new(3);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.sample_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn weighted_sampling_all_zero_falls_back_to_uniform() {
        let mut r = SplitMix64::new(3);
        let weights = [0.0, 0.0];
        let mut hit = [false, false];
        for _ in 0..100 {
            hit[r.sample_weighted(&weights)] = true;
        }
        assert!(hit[0] && hit[1]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "50 elements should not stay in order");
    }

    #[test]
    fn powerlaw_bounds_and_skew() {
        let mut r = SplitMix64::new(21);
        let samples: Vec<u64> = (0..20_000).map(|_| r.next_powerlaw(2.0, 1_000_000)).collect();
        assert!(samples.iter().all(|&v| (1..=1_000_000).contains(&v)));
        let small = samples.iter().filter(|&&v| v < 100).count();
        assert!(small as f64 / samples.len() as f64 > 0.9, "power law should be bottom-heavy");
        assert!(samples.iter().any(|&v| v > 1_000), "tail should reach large values");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SplitMix64::new(1);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
