//! Descriptive statistics and correlation coefficients.
//!
//! The MABED event detector (paper §3.3) scores candidate words with a
//! first-order autocorrelation coefficient over time series of mention
//! counts (paper Eq. 9–10, following Erdem et al. 2014). The building
//! blocks live here so they can be unit-tested in isolation.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        // nd-lint: allow(fp-reduction-order) — serial sum in slice order; never parallelized.
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    // nd-lint: allow(fp-reduction-order) — serial sum in slice order; never parallelized.
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient between two equal-length series.
///
/// Returns `0.0` when either series is constant (zero variance) or the
/// series are shorter than 2, mirroring how MABED treats uninformative
/// candidate words.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return 0.0;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    (cov / (vx * vy).sqrt()).clamp(-1.0, 1.0)
}

/// Erdem et al. (2014) first-order correlation coefficient between two
/// bivariate time series, the `rho` of paper Eq. (10).
///
/// Operates on first differences: for series `x` and `y` over the
/// interval `[a, b]` (indices `0..n`), computes
///
/// ```text
/// rho = sum_i (x_i - x_{i-1}) (y_i - y_{i-1})  /  ((n-1) * A_x * A_y)
/// ```
///
/// where `A_x`, `A_y` are the root-mean-square first differences
/// (paper's definitions (2) and (3)). Returns `0.0` when either series
/// has no movement, or the series are shorter than 2 slices.
///
/// The result lies in `[-1, 1]`; MABED maps it to a weight in `[0, 1]`
/// via `(rho + 1) / 2` (paper Eq. 9) — see [`erdem_weight`].
pub fn erdem_rho(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let m = (n - 1) as f64;
    let mut num = 0.0;
    let mut ax2 = 0.0;
    let mut ay2 = 0.0;
    for i in 1..n {
        let dx = xs[i] - xs[i - 1];
        let dy = ys[i] - ys[i - 1];
        num += dx * dy;
        ax2 += dx * dx;
        ay2 += dy * dy;
    }
    let ax = (ax2 / m).sqrt();
    let ay = (ay2 / m).sqrt();
    if ax == 0.0 || ay == 0.0 {
        return 0.0;
    }
    (num / (m * ax * ay)).clamp(-1.0, 1.0)
}

/// MABED candidate-word weight, paper Eq. (9): `(erdem_rho + 1) / 2`,
/// guaranteed to lie in `[0, 1]`.
pub fn erdem_weight(xs: &[f64], ys: &[f64]) -> f64 {
    (erdem_rho(xs, ys) + 1.0) / 2.0
}

/// Simple online accumulator for mean/variance (Welford's algorithm);
/// used by the store's index statistics and the training-loop metric
/// summaries.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; `0.0` for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Minimum observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(erdem_rho(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|v| -v).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn erdem_rho_comoving_series() {
        // Two series with identical increments -> rho = 1.
        let xs = [0.0, 1.0, 3.0, 2.0, 5.0];
        let ys = [10.0, 11.0, 13.0, 12.0, 15.0];
        assert!((erdem_rho(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erdem_rho_antimoving_series() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0, 0.0];
        assert!((erdem_rho(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn erdem_rho_flat_series_is_zero() {
        let flat = [2.0, 2.0, 2.0];
        let moving = [0.0, 1.0, 0.0];
        assert_eq!(erdem_rho(&flat, &moving), 0.0);
    }

    #[test]
    fn erdem_weight_in_unit_interval() {
        let xs = [0.0, 3.0, 1.0, 4.0, 1.0];
        let ys = [5.0, 0.0, 4.0, 1.0, 3.0];
        let w = erdem_weight(&xs, &ys);
        assert!((0.0..=1.0).contains(&w));
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(rs.min(), Some(2.0));
        assert_eq!(rs.max(), Some(9.0));
    }

    #[test]
    fn running_stats_empty() {
        let rs = RunningStats::new();
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.min(), None);
        assert_eq!(rs.max(), None);
    }
}
