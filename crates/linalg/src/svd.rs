//! Truncated singular value decomposition.
//!
//! The LSA topic model (one of the comparison points in the paper's
//! §4.9 design discussion) needs the top-`k` singular triplets of a
//! document-term matrix. We implement randomized subspace iteration
//! (Halko, Martinsson & Tropp 2011): project onto a random sketch,
//! orthonormalize, iterate a few power steps, then solve the small
//! projected problem by Jacobi eigendecomposition of its Gram matrix.
//!
//! The algorithm is **matrix-free**: [`truncated_svd_op`] only touches
//! `A` through the [`MatOp`] trait (`apply_into` / `apply_t_into`), so
//! it runs directly on a sparse `CsrMatrix` — sketch-sized GEMMs plus
//! SpMM — without ever densifying, and never materializes `Aᵀ` even in
//! the dense case.

use crate::error::{LinalgError, Result};
use crate::gemm::{GemmScratch, MatOp};
use crate::mat::Mat;

/// Result of a truncated SVD: `A ≈ U * diag(S) * V^T`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m x k` (columns orthonormal).
    pub u: Mat,
    /// Singular values, descending, length `k`.
    pub s: Vec<f64>,
    /// Right singular vectors, `n x k` (columns orthonormal).
    pub v: Mat,
}

/// Computes the top-`k` singular triplets of `a` using randomized
/// subspace iteration.
///
/// * `k` — number of singular values requested (clamped to
///   `min(rows, cols)`).
/// * `n_iter` — power-iteration steps; 4–7 is plenty for topic-model
///   spectra.
/// * `seed` — sketch randomness; fixed seed ⇒ deterministic output.
///
/// # Errors
/// Returns [`LinalgError::Empty`] for an empty matrix or `k == 0`.
pub fn truncated_svd(a: &Mat, k: usize, n_iter: usize, seed: u64) -> Result<Svd> {
    truncated_svd_op(a, k, n_iter, seed)
}

/// Matrix-free variant of [`truncated_svd`]: computes the top-`k`
/// singular triplets of any [`MatOp`] (dense [`Mat`], sparse
/// `CsrMatrix`, …) touching the operator only through
/// `apply_into`/`apply_t_into`. Peak memory is the sketch
/// (`rows × p` + `cols × p`), never a densified or transposed copy
/// of the operator itself.
///
/// # Errors
/// Returns [`LinalgError::Empty`] for an empty operator or `k == 0`.
pub fn truncated_svd_op<A: MatOp + ?Sized>(
    a: &A,
    k: usize,
    n_iter: usize,
    seed: u64,
) -> Result<Svd> {
    let (rows, cols) = (a.nrows(), a.ncols());
    if rows == 0 || cols == 0 || k == 0 {
        return Err(LinalgError::Empty("truncated_svd"));
    }
    let k = k.min(rows).min(cols);
    // Oversample the sketch for accuracy, then truncate at the end.
    let p = (k + 8).min(rows).min(cols);

    // Random sketch: Y = A * Omega, Omega ~ N(0,1)^{n x p}.
    let omega = Mat::random_normal(cols, p, 0.0, 1.0, seed);
    let mut scratch = GemmScratch::new();
    let mut y = Mat::zeros(0, 0);
    a.apply_into(&omega, &mut scratch, &mut y);
    orthonormalize_cols(&mut y);
    let mut z = Mat::zeros(0, 0);
    for _ in 0..n_iter {
        a.apply_t_into(&y, &mut scratch, &mut z);
        orthonormalize_cols(&mut z);
        a.apply_into(&z, &mut scratch, &mut y);
        orthonormalize_cols(&mut y);
    }
    // Bᵀ = Aᵀ Q  (n x p): one more transpose-apply, reusing the power
    // iteration's workspace. SVD of B = QᵀA gives the triplets of A.
    let mut bt = z;
    a.apply_t_into(&y, &mut scratch, &mut bt);
    // B Bᵀ = (Bᵀ)ᵀ (Bᵀ): a p x p Gram of the stored Bᵀ, through the
    // packed kernel's scratch — no intermediate B or B·Bᵀ temporaries.
    let mut bbt = Mat::zeros(0, 0);
    bt.gram_into(&mut scratch, &mut bbt);
    let (eigvals, eigvecs) = jacobi_eigen_symmetric(&bbt, jacobi_sweep_cap(p));

    // Sort by eigenvalue descending.
    let mut order: Vec<usize> = (0..eigvals.len()).collect();
    order.sort_by(|&i, &j| eigvals[j].partial_cmp(&eigvals[i]).unwrap_or(std::cmp::Ordering::Equal));
    order.truncate(k);

    let mut s = Vec::with_capacity(k);
    let mut u = Mat::zeros(rows, k);
    let mut v = Mat::zeros(cols, k);
    // All three buffers are reused across the assembly loop:
    // `Mat::col` / `Mat::matvec` would allocate fresh vectors per
    // singular triplet.
    let mut w = vec![0.0; eigvecs.rows()];
    let mut qu = Vec::new();
    let mut av = Vec::new();
    for (out_col, &ei) in order.iter().enumerate() {
        let sigma = eigvals[ei].max(0.0).sqrt();
        s.push(sigma);
        // Left singular vector of A: Q * w where w is the eigenvector.
        eigvecs.copy_col_into(ei, &mut w);
        y.matvec_cols_into(&w, &mut qu);
        for (i, &val) in qu.iter().enumerate() {
            u.set(i, out_col, val);
        }
        // Right singular vector: v = Aᵀu/σ = AᵀQw/σ = Bᵀw/σ — a linear
        // combination of the already-materialized Bᵀ columns, so no
        // extra pass over the operator is needed.
        if sigma > 1e-12 {
            bt.matvec_cols_into(&w, &mut av);
            for (i, &val) in av.iter().enumerate() {
                v.set(i, out_col, val / sigma);
            }
        }
    }
    Ok(Svd { u, s, v })
}

/// Sweep cap for the Jacobi eigensolver on the projected `p x p`
/// problem. Cyclic Jacobi converges quadratically once a handful of
/// sweeps have mixed every pair, so small sketches (`p` = k + 8
/// oversampling, a few dozen at most) need nowhere near the old fixed
/// cap of 200 sweeps.
fn jacobi_sweep_cap(p: usize) -> usize {
    8 + 2 * (usize::BITS - p.leading_zeros()) as usize
}

impl Mat {
    /// `self * w` where `w` indexes columns of `self` — i.e. a linear
    /// combination of this matrix's columns, written into the reusable
    /// `out` buffer. Helper for SVD assembly.
    fn matvec_cols_into(&self, w: &[f64], out: &mut Vec<f64>) {
        debug_assert_eq!(w.len(), self.cols());
        out.clear();
        out.resize(self.rows(), 0.0);
        for (o, row) in out.iter_mut().zip(self.row_iter()) {
            *o = row.iter().zip(w).map(|(a, b)| a * b).sum();
        }
    }
}

/// Modified Gram–Schmidt orthonormalization of a matrix's columns,
/// in place. Columns that collapse to (near) zero are re-seeded with
/// a deterministic pseudo-random direction and re-orthogonalized so
/// the basis keeps full rank.
fn orthonormalize_cols(m: &mut Mat) {
    let (rows, cols) = m.shape();
    for j in 0..cols {
        // Subtract projections onto previous columns.
        for prev in 0..j {
            let mut proj = 0.0;
            for i in 0..rows {
                proj += m.get(i, j) * m.get(i, prev);
            }
            for i in 0..rows {
                let v = m.get(i, j) - proj * m.get(i, prev);
                m.set(i, j, v);
            }
        }
        let mut norm = 0.0;
        for i in 0..rows {
            norm += m.get(i, j) * m.get(i, j);
        }
        norm = norm.sqrt();
        if norm < 1e-12 {
            // Degenerate column: replace with a fresh direction.
            let mut rng = crate::rng::SplitMix64::new(0xC0FFEE ^ j as u64);
            for i in 0..rows {
                m.set(i, j, rng.next_gaussian());
            }
            // One re-orthogonalization pass is enough in practice.
            for prev in 0..j {
                let mut proj = 0.0;
                for i in 0..rows {
                    proj += m.get(i, j) * m.get(i, prev);
                }
                for i in 0..rows {
                    let v = m.get(i, j) - proj * m.get(i, prev);
                    m.set(i, j, v);
                }
            }
            norm = 0.0;
            for i in 0..rows {
                norm += m.get(i, j) * m.get(i, j);
            }
            norm = norm.sqrt().max(1e-12);
        }
        for i in 0..rows {
            let v = m.get(i, j) / norm;
            m.set(i, j, v);
        }
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors in columns.
/// Convergence is declared when the off-diagonal Frobenius mass drops
/// below `1e-24` absolutely *or* below `1e-28` of the diagonal mass —
/// the relative test lets well-scaled matrices (the usual case: B·Bᵀ
/// of an orthonormal sketch) exit after a few sweeps instead of
/// polishing toward an absolute threshold they may never reach.
fn jacobi_eigen_symmetric(a: &Mat, max_sweeps: usize) -> (Vec<f64>, Mat) {
    let n = a.rows();
    debug_assert_eq!(n, a.cols());
    let mut d = a.clone();
    let mut v = Mat::eye(n);

    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += d.get(i, j) * d.get(i, j);
            }
        }
        // nd-lint: allow(fp-reduction-order) — serial sum over diagonal indices in order.
        let diag: f64 = (0..n).map(|i| d.get(i, i) * d.get(i, i)).sum();
        if off < 1e-24 || off <= diag * 1e-28 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = d.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = d.get(p, p);
                let aqq = d.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply Givens rotation to rows/cols p and q.
                for i in 0..n {
                    let dip = d.get(i, p);
                    let diq = d.get(i, q);
                    d.set(i, p, c * dip - s * diq);
                    d.set(i, q, s * dip + c * diq);
                }
                for i in 0..n {
                    let dpi = d.get(p, i);
                    let dqi = d.get(q, i);
                    d.set(p, i, c * dpi - s * dqi);
                    d.set(q, i, s * dpi + c * dqi);
                }
                for i in 0..n {
                    let vip = v.get(i, p);
                    let viq = v.get(i, q);
                    v.set(i, p, c * vip - s * viq);
                    v.set(i, q, s * vip + c * viq);
                }
            }
        }
    }
    let eigvals: Vec<f64> = (0..n).map(|i| d.get(i, i)).collect();
    (eigvals, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;

    fn reconstruct(svd: &Svd) -> Mat {
        let k = svd.s.len();
        let mut us = svd.u.clone();
        for i in 0..us.rows() {
            for j in 0..k {
                let v = us.get(i, j) * svd.s[j];
                us.set(i, j, v);
            }
        }
        us.matmul(&svd.v.transpose()).unwrap()
    }

    #[test]
    fn exact_recovery_of_low_rank_matrix() {
        // Rank-2 matrix built from two outer products.
        let u1 = [1.0, 2.0, 3.0, 4.0];
        let u2 = [1.0, -1.0, 1.0, -1.0];
        let v1 = [1.0, 0.0, 2.0];
        let v2 = [0.0, 3.0, 1.0];
        let a = Mat::from_fn(4, 3, |i, j| 5.0 * u1[i] * v1[j] + 2.0 * u2[i] * v2[j]);
        let svd = truncated_svd(&a, 2, 7, 42).unwrap();
        let approx = reconstruct(&svd);
        let err = a.frobenius_dist_sq(&approx).unwrap().sqrt() / a.frobenius_norm();
        assert!(err < 1e-8, "relative error {err}");
        assert!(svd.s[0] >= svd.s[1]);
    }

    #[test]
    fn singular_values_of_diagonal_matrix() {
        let a = Mat::from_fn(3, 3, |i, j| if i == j { (3 - i) as f64 } else { 0.0 });
        let svd = truncated_svd(&a, 3, 5, 1).unwrap();
        assert!((svd.s[0] - 3.0).abs() < 1e-8);
        assert!((svd.s[1] - 2.0).abs() < 1e-8);
        assert!((svd.s[2] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn u_and_v_columns_orthonormal() {
        let a = Mat::random_normal(20, 12, 0.0, 1.0, 3);
        let svd = truncated_svd(&a, 4, 6, 9).unwrap();
        for j1 in 0..4 {
            for j2 in 0..4 {
                let du = vecops::dot(&svd.u.col(j1), &svd.u.col(j2));
                let dv = vecops::dot(&svd.v.col(j1), &svd.v.col(j2));
                let expect = if j1 == j2 { 1.0 } else { 0.0 };
                assert!((du - expect).abs() < 1e-6, "U^T U [{j1},{j2}] = {du}");
                assert!((dv - expect).abs() < 1e-6, "V^T V [{j1},{j2}] = {dv}");
            }
        }
    }

    #[test]
    fn truncation_error_bounded_by_tail() {
        let a = Mat::random_normal(30, 20, 0.0, 1.0, 5);
        let full = truncated_svd(&a, 20, 10, 2).unwrap();
        let k = 5;
        let part = truncated_svd(&a, k, 10, 2).unwrap();
        let approx = reconstruct(&part);
        let err2 = a.frobenius_dist_sq(&approx).unwrap();
        let tail2: f64 = full.s[k..].iter().map(|s| s * s).sum();
        // Randomized SVD is near-optimal: error within 2x of the optimal tail.
        assert!(err2 <= tail2 * 2.0 + 1e-6, "err2={err2} tail2={tail2}");
    }

    #[test]
    fn rejects_empty_and_zero_k() {
        let a = Mat::zeros(0, 3);
        assert!(truncated_svd(&a, 2, 3, 0).is_err());
        let b = Mat::eye(3);
        assert!(truncated_svd(&b, 0, 3, 0).is_err());
    }

    #[test]
    fn k_clamped_to_min_dimension() {
        let a = Mat::eye(3);
        let svd = truncated_svd(&a, 10, 3, 0).unwrap();
        assert_eq!(svd.s.len(), 3);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = Mat::random_normal(10, 8, 0.0, 1.0, 1);
        let s1 = truncated_svd(&a, 3, 5, 77).unwrap();
        let s2 = truncated_svd(&a, 3, 5, 77).unwrap();
        assert_eq!(s1.s, s2.s);
        assert_eq!(s1.u, s2.u);
    }

    #[test]
    fn jacobi_eigen_known_matrix() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Mat::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let (mut vals, _) = jacobi_eigen_symmetric(&a, 50);
        vals.sort_by(|x, y| y.partial_cmp(x).unwrap());
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
    }
}
