//! Free functions over `&[f64]` slices.
//!
//! These are the primitive kernels shared by the embedding, similarity
//! and neural-network code: dot products, norms, cosine similarity
//! (paper Eq. 11), softmax, and simple in-place updates.

/// Dot product of two equal-length slices.
///
/// Accumulates into four independent lanes (combined as
/// `(s0 + s1) + (s2 + s3)`) so the compiler can vectorize and overlap
/// the FMA chains; the summation order is fixed, making results
/// reproducible across runs and thread counts.
///
/// # Panics
/// Debug-asserts equal lengths; in release, the shorter length wins
/// (zip semantics) — callers in this workspace always pass equal
/// lengths by construction.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let quads = n / 4;
    for q in 0..quads {
        let i = q * 4;
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for i in quads * 4..n {
        s += a[i] * b[i];
    }
    s
}

/// ℓ² (Euclidean) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// ℓ¹ norm (sum of absolute values).
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// Scales `a` in place to unit ℓ² norm; a zero vector is left unchanged.
pub fn normalize(a: &mut [f64]) {
    let n = norm2(a);
    if n > 0.0 {
        for v in a {
            *v /= n;
        }
    }
}

/// Cosine similarity (paper Eq. 11).
///
/// Returns `0.0` when either vector has zero norm — the paper's
/// similarity pipeline treats an unembeddable document as matching
/// nothing, and this convention avoids NaN propagation.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let (na, nb) = (norm2(a), norm2(b));
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Euclidean distance.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // nd-lint: allow(fp-reduction-order) — serial zip in slice order; never parallelized.
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// `y += alpha * x`, the BLAS `axpy` kernel.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Element-wise mean of a set of equal-length vectors; `None` when the
/// set is empty.
pub fn mean_of(vectors: &[&[f64]]) -> Option<Vec<f64>> {
    let first = vectors.first()?;
    let mut acc = vec![0.0; first.len()];
    for v in vectors {
        debug_assert_eq!(v.len(), acc.len());
        for (a, &x) in acc.iter_mut().zip(*v) {
            *a += x;
        }
    }
    let n = vectors.len() as f64;
    for a in &mut acc {
        *a /= n;
    }
    Some(acc)
}

/// Numerically-stable softmax: `exp(z - max) / sum`.
pub fn softmax(z: &[f64]) -> Vec<f64> {
    if z.is_empty() {
        return Vec::new();
    }
    let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = z.iter().map(|&v| (v - max).exp()).collect();
    // nd-lint: allow(fp-reduction-order) — serial sum in slice order; never parallelized.
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Index of the maximum element (first index on ties); `None` for empty
/// input.
pub fn argmax(a: &[f64]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in a.iter().enumerate() {
        if v > a[best] {
            best = i;
        }
    }
    Some(best)
}

/// Indices of the `k` largest elements, descending by value.
pub fn top_k(a: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..a.len()).collect();
    idx.sort_by(|&x, &y| a[y].partial_cmp(&a[x]).unwrap_or(std::cmp::Ordering::Equal));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm1(&[-1.0, 2.0]), 3.0);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn cosine_properties() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
        assert!(cosine(&a, &b).abs() < 1e-12);
        assert!((cosine(&a, &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine(&a, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = [0.3, -0.7, 2.0];
        let b = [1.2, 0.4, -0.1];
        let scaled: Vec<f64> = b.iter().map(|v| v * 42.0).collect();
        assert!((cosine(&a, &b) - cosine(&a, &scaled)).abs() < 1e-12);
    }

    #[test]
    fn euclidean_known() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn mean_of_vectors() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let m = mean_of(&[&a, &b]).unwrap();
        assert_eq!(m, vec![2.0, 3.0]);
        assert!(mean_of(&[]).is_none());
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_stable_for_large_inputs() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_empty() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn argmax_and_topk() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
        assert_eq!(top_k(&[1.0, 5.0, 3.0], 2), vec![1, 2]);
        assert_eq!(top_k(&[1.0], 5), vec![0]);
    }
}
