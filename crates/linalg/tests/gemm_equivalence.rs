//! Equivalence tests for the packed GEMM kernel.
//!
//! The packed path (`gemm_packed`) only engages above a size cutoff,
//! so these tests compare it against an independent naive reference on
//! shapes chosen to stress every edge: dimensions that are not
//! multiples of the register block (MR=3, NR=12), the depth blocking
//! (KC=256), and the row-panel parallel grain (MC=126), plus the
//! degenerate k=1, 1×n, and m×1 cases and all four transpose
//! orientations.

use nd_linalg::gemm::{gemm_into, GemmScratch, KC, MC, MR, NR};
use nd_linalg::rng::SplitMix64;
use nd_linalg::Mat;

/// Textbook triple loop, written independently of the kernel under
/// test (no fused multiply-add, no blocking).
#[allow(clippy::too_many_arguments)]
fn reference(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    a_trans: bool,
    b: &[f64],
    b_trans: bool,
    accumulate: bool,
    out: &mut [f64],
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                let av = if a_trans { a[kk * m + i] } else { a[i * k + kk] };
                let bv = if b_trans { b[j * k + kk] } else { b[kk * n + j] };
                acc += av * bv;
            }
            if accumulate {
                out[i * n + j] += acc;
            } else {
                out[i * n + j] = acc;
            }
        }
    }
}

fn fill(rng: &mut SplitMix64, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.next_range(-1.0, 1.0)).collect()
}

/// Shapes stressing block boundaries and degenerate extents. The
/// largest ones exceed the naive cutoff so the packed path is
/// exercised; the block-constant arithmetic keeps them honest if the
/// constants ever change.
fn ragged_shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 1, 1),
        (MR, 5, NR),
        (MR + 1, 7, NR + 1),
        (1, 40, 97),             // 1×n
        (97, 40, 1),             // m×1 (matvec path)
        (50, 1, 60),             // k=1
        (MC, KC, NR),            // exact panel/depth blocks
        (MC + 1, KC + 1, NR + 1),
        (2 * MC - 1, KC / 2, 3 * NR - 5),
        (129, 257, 63),
        (100, 300, 50),
    ]
}

#[test]
fn packed_matches_reference_all_orientations() {
    let mut rng = SplitMix64::new(0xE0_17);
    let mut scratch = GemmScratch::new();
    for (m, k, n) in ragged_shapes() {
        for (a_trans, b_trans) in [(false, false), (true, false), (false, true), (true, true)] {
            let a = fill(&mut rng, m * k);
            let b = fill(&mut rng, k * n);
            let mut got = vec![0.0; m * n];
            let mut want = vec![0.0; m * n];
            gemm_into(m, k, n, &a, a_trans, &b, b_trans, false, &mut scratch, &mut got);
            reference(m, k, n, &a, a_trans, &b, b_trans, false, &mut want);
            for (idx, (g, w)) in got.iter().zip(&want).enumerate() {
                // Different summation orders (blocked + FMA vs serial):
                // allow rounding at the scale of the dot length.
                let tol = 1e-13 * (k as f64).max(1.0);
                assert!(
                    (g - w).abs() <= tol,
                    "({m},{k},{n}) trans=({a_trans},{b_trans}) idx {idx}: {g} vs {w}"
                );
            }
        }
    }
}

#[test]
fn accumulate_adds_onto_existing_output() {
    let mut rng = SplitMix64::new(0xACC);
    let mut scratch = GemmScratch::new();
    for (m, k, n) in [(5, 9, 7), (129, 257, 63)] {
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let seed_out = fill(&mut rng, m * n);
        let mut got = seed_out.clone();
        let mut want = seed_out.clone();
        gemm_into(m, k, n, &a, false, &b, false, true, &mut scratch, &mut got);
        reference(m, k, n, &a, false, &b, false, true, &mut want);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-13 * k as f64, "accumulate ({m},{k},{n}): {g} vs {w}");
        }
    }
}

#[test]
fn zero_extents_are_safe() {
    let mut scratch = GemmScratch::new();
    // k == 0 zeroes the output (empty sum) unless accumulating.
    let mut out = vec![7.0; 6];
    gemm_into(2, 0, 3, &[], false, &[], false, false, &mut scratch, &mut out);
    assert!(out.iter().all(|&v| v == 0.0));
    let mut out = vec![7.0; 6];
    gemm_into(2, 0, 3, &[], false, &[], false, true, &mut scratch, &mut out);
    assert!(out.iter().all(|&v| v == 7.0));
    // m == 0 / n == 0 touch nothing.
    gemm_into(0, 4, 3, &[], false, &[0.0; 12], false, false, &mut scratch, &mut []);
    gemm_into(2, 4, 0, &[0.0; 8], false, &[], false, false, &mut scratch, &mut []);
}

#[test]
fn scratch_reuse_across_shapes_is_bitwise_stable() {
    // A dirty scratch left over from a larger product must not leak
    // into a smaller one: packing writes every slot it reads.
    let mut rng = SplitMix64::new(0x5C);
    let (m, k, n) = (129, 257, 63);
    let a = fill(&mut rng, m * k);
    let b = fill(&mut rng, k * n);
    let mut fresh = vec![0.0; m * n];
    gemm_into(m, k, n, &a, false, &b, false, false, &mut GemmScratch::new(), &mut fresh);

    let mut dirty = GemmScratch::new();
    let big_a = fill(&mut rng, 300 * 300);
    let big_b = fill(&mut rng, 300 * 300);
    let mut big_out = vec![0.0; 300 * 300];
    gemm_into(300, 300, 300, &big_a, false, &big_b, false, false, &mut dirty, &mut big_out);
    let mut reused = vec![0.0; m * n];
    gemm_into(m, k, n, &a, false, &b, false, false, &mut dirty, &mut reused);
    for (f, r) in fresh.iter().zip(&reused) {
        assert_eq!(f.to_bits(), r.to_bits(), "dirty scratch changed the result");
    }
}

#[test]
fn fused_transpose_products_bit_identical_to_composed() {
    // The `_into` fusions used by NMF must be drop-in: same bits as
    // materializing the transpose and multiplying.
    let mut scratch = GemmScratch::new();
    let h = Mat::random_normal(20, 130, 0.0, 1.0, 0xF0);
    let w = Mat::random_normal(130, 20, 0.0, 1.0, 0xF1);

    // h · hᵀ (b_trans) vs h · transpose(h).
    let mut fused = Mat::zeros(20, 20);
    h.matmul_transpose_into(&h, &mut scratch, &mut fused);
    let composed = h.matmul(&h.transpose()).unwrap();
    for (f, c) in fused.as_slice().iter().zip(composed.as_slice()) {
        assert_eq!(f.to_bits(), c.to_bits(), "matmul_transpose_into differs");
    }

    // wᵀ · x via transpose_matmul_into (a_trans) vs transpose(w) · x.
    let x = Mat::random_normal(130, 45, 0.0, 1.0, 0xF2);
    let mut fused = Mat::zeros(20, 45);
    w.transpose_matmul_into(&x, &mut scratch, &mut fused);
    let composed = w.transpose().matmul(&x).unwrap();
    for (f, c) in fused.as_slice().iter().zip(composed.as_slice()) {
        assert_eq!(f.to_bits(), c.to_bits(), "transpose_matmul_into differs");
    }

    // gram_into vs transpose(w) · w.
    let mut fused = Mat::zeros(20, 20);
    w.gram_into(&mut scratch, &mut fused);
    let composed = w.transpose().matmul(&w).unwrap();
    for (f, c) in fused.as_slice().iter().zip(composed.as_slice()) {
        assert_eq!(f.to_bits(), c.to_bits(), "gram_into differs");
    }
}
