//! Property-based tests for the linear-algebra substrate.

use nd_linalg::{vecops, Mat};
use proptest::prelude::*;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #[test]
    fn cosine_in_unit_range(a in vec_strategy(8), b in vec_strategy(8)) {
        let c = vecops::cosine(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn cosine_symmetric(a in vec_strategy(6), b in vec_strategy(6)) {
        let c1 = vecops::cosine(&a, &b);
        let c2 = vecops::cosine(&b, &a);
        prop_assert!((c1 - c2).abs() < 1e-12);
    }

    #[test]
    fn normalize_gives_unit_norm_or_zero(mut a in vec_strategy(5)) {
        vecops::normalize(&mut a);
        let n = vecops::norm2(&a);
        prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-9);
    }

    #[test]
    fn softmax_is_distribution(z in vec_strategy(7)) {
        let p = vecops::softmax(&z);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn matmul_associates_with_identity(data in vec_strategy(12)) {
        let m = Mat::from_vec(3, 4, data).unwrap();
        let out = m.matmul(&Mat::eye(4)).unwrap();
        prop_assert_eq!(out, m);
    }

    #[test]
    fn transpose_preserves_frobenius(data in vec_strategy(12)) {
        let m = Mat::from_vec(4, 3, data).unwrap();
        prop_assert!((m.frobenius_norm() - m.transpose().frobenius_norm()).abs() < 1e-9);
    }

    #[test]
    fn matmul_distributes_over_add(a in vec_strategy(6), b in vec_strategy(6), c in vec_strategy(6)) {
        let ma = Mat::from_vec(2, 3, a).unwrap();
        let mb = Mat::from_vec(3, 2, b).unwrap();
        let mc = Mat::from_vec(3, 2, c).unwrap();
        let lhs = ma.matmul(&mb.add(&mc).unwrap()).unwrap();
        let rhs = ma.matmul(&mb).unwrap().add(&ma.matmul(&mc).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn erdem_weight_unit_interval(a in vec_strategy(10), b in vec_strategy(10)) {
        let w = nd_linalg::stats::erdem_weight(&a, &b);
        prop_assert!((0.0..=1.0).contains(&w));
    }

    #[test]
    fn gram_is_symmetric_psd_diag(data in vec_strategy(12)) {
        let m = Mat::from_vec(4, 3, data).unwrap();
        let g = m.gram();
        for i in 0..3 {
            prop_assert!(g.get(i, i) >= -1e-9, "diagonal must be non-negative");
            for j in 0..3 {
                prop_assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-9);
            }
        }
    }
}
