//! A lightweight recursive-descent parser over the lossless lexer.
//!
//! The token rules in [`crate::rules`] see one statement at a time;
//! the flow rules in [`crate::flow`] need *structure*: which calls
//! happen inside which loop, which guard is live on which path, which
//! function a `let _ =` discards. This module turns the significant
//! token stream into an item/statement/expression tree that is exact
//! where the rules need precision (items, blocks, `if`/`match`/loop
//! structure, `let` bindings) and deliberately flat where they do not
//! (expression "chains" keep operands as raw token runs).
//!
//! Two properties the rest of the analyzer leans on:
//!
//! 1. **Total coverage.** The parser consumes tokens strictly left to
//!    right through a single [`Parser::bump`]; every significant token
//!    lands in exactly one node. [`Coverage`] records the guarantee
//!    and the round-trip test in `tests/ast_roundtrip.rs` asserts it
//!    over every file in the workspace — there are no silent skip
//!    regions where a rule could be blind.
//! 2. **Never fails.** Unknown constructs degrade to flat token runs
//!    ([`Part::Tok`]) instead of errors, the same recovery philosophy
//!    as the lexer: rules act only on shapes they recognize.

use crate::lexer::{lex, Tok, TokKind};

/// A significant token: text, kind, and 1-based line, with whitespace
/// and comments already filtered out.
#[derive(Debug, Clone)]
pub struct SigTok {
    /// Exact source text.
    pub text: String,
    /// Token class from the lexer.
    pub kind: TokKind,
    /// 1-based source line of the first byte.
    pub line: u32,
}

/// Lexes `src` and keeps only significant tokens.
pub fn significant(src: &str) -> Vec<SigTok> {
    lex(src)
        .into_iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
            )
        })
        .map(|t| SigTok { text: t.text, kind: t.kind, line: t.line })
        .collect()
}

/// Comment tokens of `src` as `(line, text)` pairs, for suppression
/// and SAFETY lookups.
pub fn comments(src: &str) -> Vec<(u32, String)> {
    lex(src)
        .into_iter()
        .filter(|t| matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|t: Tok| (t.line, t.text))
        .collect()
}

/// One parsed file: a flat list of top-level items.
#[derive(Debug)]
pub struct AstFile {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// Proof object for the total-coverage guarantee: how many significant
/// tokens the file has and how many the parser consumed (always equal
/// by construction; the round-trip test re-checks it).
#[derive(Debug, Clone, Copy)]
pub struct Coverage {
    /// Significant tokens in the file.
    pub total: usize,
    /// Tokens consumed into the tree.
    pub consumed: usize,
}

/// A top-level or nested item with its token span `[lo, hi)`.
#[derive(Debug)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// First token index.
    pub lo: usize,
    /// One past the last token index.
    pub hi: usize,
    /// Line of the first token.
    pub line: u32,
    /// Annotated `#[test]` / `#[cfg(test)]` (rules skip the subtree).
    pub is_test: bool,
}

/// Item flavors the rules distinguish.
#[derive(Debug)]
pub enum ItemKind {
    /// A function with an optional body.
    Fn(FnItem),
    /// `impl` / `trait` / `mod` — a named container of nested items.
    Container {
        /// `impl`, `trait`, or `mod`.
        keyword: &'static str,
        /// Self type (impl), trait name, or module name.
        name: Option<String>,
        /// Nested items (empty for `mod x;`).
        items: Vec<Item>,
    },
    /// Everything else (`struct`, `use`, `static`, …) — opaque.
    Other,
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Flattened return-type text (empty when none), e.g.
    /// `Result < Vec < f64 > , ServeError >`.
    pub ret_text: String,
    /// Return type mentions `Result`.
    pub returns_result: bool,
    /// Body, or `None` for declarations (`fn f();` in traits).
    pub body: Option<Block>,
}

/// `{ … }` — a sequence of statements.
#[derive(Debug)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Token index of the opening brace.
    pub lo: usize,
    /// One past the closing brace.
    pub hi: usize,
    /// Line of the opening brace.
    pub line: u32,
}

/// One statement.
#[derive(Debug)]
pub struct Stmt {
    /// Statement flavor.
    pub kind: StmtKind,
    /// First token index.
    pub lo: usize,
    /// One past the last token.
    pub hi: usize,
    /// Line of the first token.
    pub line: u32,
}

/// Statement flavors.
#[derive(Debug)]
pub enum StmtKind {
    /// `let pat [: ty] [= init] [else { … }];`
    Let(LetStmt),
    /// Expression statement (with or without trailing `;`).
    Expr(Chain),
    /// A nested item (`fn`, `use`, `const`, …).
    Item(Box<Item>),
    /// A bare `;`.
    Empty,
}

/// A `let` statement, decomposed.
#[derive(Debug)]
pub struct LetStmt {
    /// Bound name for simple patterns (`let [mut|ref] name …`),
    /// `None` for destructuring.
    pub name: Option<String>,
    /// The pattern is exactly `_`.
    pub is_wild: bool,
    /// Flattened type-annotation text (empty when none).
    pub ty_text: String,
    /// Initializer expression.
    pub init: Option<Chain>,
    /// `let … else { … }` diverging block.
    pub else_block: Option<Block>,
}

/// A flat expression: a run of parts in source order. Operators,
/// operands, and paths stay as raw tokens; parenthesized groups nest;
/// control-flow constructs embed as [`Part::Nested`].
#[derive(Debug)]
pub struct Chain {
    /// Parts in source order.
    pub parts: Vec<Part>,
    /// First token index (`== hi` for an empty chain).
    pub lo: usize,
    /// One past the last token.
    pub hi: usize,
    /// Line of the first token.
    pub line: u32,
}

/// One element of a [`Chain`].
#[derive(Debug)]
pub enum Part {
    /// A single significant token (index into the token slice).
    Tok(usize),
    /// `( … )` or `[ … ]` including both delimiters.
    Group {
        /// Opening delimiter token index.
        open: usize,
        /// Contents.
        parts: Vec<Part>,
        /// Closing delimiter token index (== `open` when unterminated).
        close: usize,
    },
    /// An embedded structured expression (`if`, `match`, a block, …).
    Nested(Box<StructExpr>),
}

/// A structured (control-flow) expression.
#[derive(Debug)]
pub struct StructExpr {
    /// Which construct.
    pub kind: StructKind,
    /// First token index.
    pub lo: usize,
    /// One past the last token.
    pub hi: usize,
    /// Line of the first token.
    pub line: u32,
}

/// Structured expression flavors.
#[derive(Debug)]
pub enum StructKind {
    /// `if cond { … } [else …]` (covers `if let`).
    If {
        /// Condition (struct literals cannot appear bare here, so the
        /// body brace is unambiguous).
        cond: Chain,
        /// Then-block.
        then: Block,
        /// `else` block or chained `else if`.
        els: Option<Box<StructExpr>>,
    },
    /// `while cond { … }` (covers `while let`).
    While {
        /// Condition.
        cond: Chain,
        /// Loop body.
        body: Block,
    },
    /// `for pat in iter { … }`.
    For {
        /// Flattened pattern text.
        pat_text: String,
        /// Iterated expression.
        iter: Chain,
        /// Loop body.
        body: Block,
    },
    /// `loop { … }`.
    Loop {
        /// Loop body.
        body: Block,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Scrutinized expression.
        scrutinee: Chain,
        /// Match arms.
        arms: Vec<Arm>,
    },
    /// A bare or `unsafe` block (also absorbs struct literals and
    /// macro braces — harmless over-approximation).
    Block {
        /// The block.
        block: Block,
        /// Preceded by `unsafe`.
        is_unsafe: bool,
    },
}

/// One `pat [if guard] => body` match arm.
#[derive(Debug)]
pub struct Arm {
    /// Flattened pattern text, e.g. `Err ( _ )`.
    pub pat_text: String,
    /// Guard expression after `if`.
    pub guard: Option<Chain>,
    /// Arm body (a block body arrives as a one-part chain).
    pub body: Chain,
    /// Line of the pattern's first token.
    pub line: u32,
}

impl Chain {
    /// Visits every token index in this chain, recursing into groups
    /// but **not** into nested structured expressions (those are
    /// separate evaluation units).
    pub fn flat_tokens(&self, f: &mut impl FnMut(usize)) {
        fn walk(parts: &[Part], f: &mut impl FnMut(usize)) {
            for p in parts {
                match p {
                    Part::Tok(i) => f(*i),
                    Part::Group { open, parts, close } => {
                        f(*open);
                        walk(parts, f);
                        if close != open {
                            f(*close);
                        }
                    }
                    Part::Nested(_) => {}
                }
            }
        }
        walk(&self.parts, f);
    }

    /// Visits every nested structured expression, shallowly.
    pub fn nested(&self, f: &mut impl FnMut(&StructExpr)) {
        fn walk<'a>(parts: &'a [Part], f: &mut impl FnMut(&'a StructExpr)) {
            for p in parts {
                match p {
                    Part::Tok(_) => {}
                    Part::Group { parts, .. } => walk(parts, f),
                    Part::Nested(s) => f(s),
                }
            }
        }
        walk(&self.parts, f);
    }
}

/// Parses a file's significant tokens into an [`AstFile`].
pub fn parse_file(toks: &[SigTok]) -> (AstFile, Coverage) {
    let mut p = Parser { t: toks, pos: 0, consumed: 0 };
    let items = p.parse_items(false);
    debug_assert_eq!(p.consumed, toks.len(), "parser must consume every token");
    (AstFile { items }, Coverage { total: toks.len(), consumed: p.consumed })
}

struct Parser<'a> {
    t: &'a [SigTok],
    pos: usize,
    consumed: usize,
}

/// Keywords that begin an item in statement position.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "impl", "mod", "trait", "struct", "enum", "union", "use", "static", "const",
    "type", "macro_rules", "extern", "pub",
];

impl<'a> Parser<'a> {
    fn eof(&self) -> bool {
        self.pos >= self.t.len()
    }

    fn txt(&self, ahead: usize) -> &str {
        self.t.get(self.pos + ahead).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn at(&self, s: &str) -> bool {
        self.txt(0) == s
    }

    fn line(&self) -> u32 {
        self.t.get(self.pos).map(|t| t.line).unwrap_or(0)
    }

    /// The single point where tokens are consumed: advances one token
    /// and counts it toward [`Coverage`].
    fn bump(&mut self) -> usize {
        debug_assert!(!self.eof(), "bump past EOF");
        let i = self.pos;
        self.pos += 1;
        self.consumed += 1;
        i
    }

    /// Consumes a balanced `open … close` region (both delimiters
    /// included), counting only this delimiter pair. The cursor must
    /// sit on `open`.
    fn consume_matched(&mut self, open: &str, close: &str) {
        debug_assert!(self.at(open));
        let mut depth = 0i32;
        while !self.eof() {
            if self.at(open) {
                depth += 1;
            } else if self.at(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    // ---------------------------------------------------- items ----

    /// Parses items until EOF (`until_close == false`) or an
    /// unconsumed `}` (`true`).
    fn parse_items(&mut self, until_close: bool) -> Vec<Item> {
        let mut items = Vec::new();
        while !self.eof() {
            if until_close && self.at("}") {
                break;
            }
            items.push(self.parse_item());
        }
        items
    }

    fn parse_item(&mut self) -> Item {
        let lo = self.pos;
        let line = self.line();
        let is_test = self.parse_attrs();
        // Visibility / qualifier modifiers before the defining keyword.
        loop {
            match self.txt(0) {
                "pub" => {
                    self.bump();
                    if self.at("(") {
                        self.consume_matched("(", ")");
                    }
                }
                "const" if self.txt(1) == "fn" => {
                    self.bump();
                }
                "unsafe" if matches!(self.txt(1), "fn" | "impl" | "trait" | "extern") => {
                    self.bump();
                }
                "async" | "default" => {
                    self.bump();
                }
                "extern" if self.t.get(self.pos + 1).is_some_and(|t| t.kind == TokKind::StrLit) => {
                    self.bump();
                    self.bump();
                }
                _ => break,
            }
        }
        let kind = match self.txt(0) {
            "fn" => ItemKind::Fn(self.parse_fn()),
            "impl" | "trait" | "mod" => self.parse_container(),
            "struct" | "enum" | "union" => {
                self.bump();
                // Head until `{ … }` (done) or `;` (done).
                while !self.eof() {
                    match self.txt(0) {
                        "{" => {
                            self.consume_matched("{", "}");
                            break;
                        }
                        ";" => {
                            self.bump();
                            break;
                        }
                        "(" => self.consume_matched("(", ")"),
                        "[" => self.consume_matched("[", "]"),
                        _ => {
                            self.bump();
                        }
                    }
                }
                ItemKind::Other
            }
            "use" | "static" | "const" | "type" => {
                while !self.eof() {
                    match self.txt(0) {
                        ";" => {
                            self.bump();
                            break;
                        }
                        "(" => self.consume_matched("(", ")"),
                        "[" => self.consume_matched("[", "]"),
                        "{" => self.consume_matched("{", "}"),
                        _ => {
                            self.bump();
                        }
                    }
                }
                ItemKind::Other
            }
            "macro_rules" => {
                self.bump();
                if self.at("!") {
                    self.bump();
                }
                if self.t.get(self.pos).is_some_and(|t| t.kind == TokKind::Ident) {
                    self.bump();
                }
                match self.txt(0) {
                    "{" => self.consume_matched("{", "}"),
                    "(" => {
                        self.consume_matched("(", ")");
                        if self.at(";") {
                            self.bump();
                        }
                    }
                    _ => {}
                }
                ItemKind::Other
            }
            "extern" => {
                // `extern crate x;` or `extern { … }`.
                self.bump();
                while !self.eof() {
                    match self.txt(0) {
                        ";" => {
                            self.bump();
                            break;
                        }
                        "{" => {
                            self.consume_matched("{", "}");
                            break;
                        }
                        _ => {
                            self.bump();
                        }
                    }
                }
                ItemKind::Other
            }
            _ => {
                // Recovery: consume one token so the parser advances.
                if !self.eof() {
                    self.bump();
                }
                ItemKind::Other
            }
        };
        Item { kind, lo, hi: self.pos, line, is_test }
    }

    /// Consumes leading `#[…]` / `#![…]` attributes, returning whether
    /// any marks the item as test-only.
    fn parse_attrs(&mut self) -> bool {
        let mut is_test = false;
        while self.at("#") && (self.txt(1) == "[" || (self.txt(1) == "!" && self.txt(2) == "[")) {
            self.bump(); // #
            if self.at("!") {
                self.bump();
            }
            let body_lo = self.pos + 1;
            self.consume_matched("[", "]");
            let body: Vec<&str> =
                self.t[body_lo..self.pos.saturating_sub(1)].iter().map(|t| t.text.as_str()).collect();
            if body.first() == Some(&"test") || (body.contains(&"cfg") && body.contains(&"test")) {
                is_test = true;
            }
        }
        is_test
    }

    fn parse_fn(&mut self) -> FnItem {
        self.bump(); // fn
        let name = if self.t.get(self.pos).is_some_and(|t| t.kind == TokKind::Ident) {
            self.t[self.bump()].text.clone()
        } else {
            String::new()
        };
        // Signature: consume until the body `{` or a terminating `;`,
        // capturing return-type tokens after a top-level `->`.
        let mut ret = String::new();
        let mut in_ret = false;
        loop {
            if self.eof() {
                return FnItem { name, returns_result: ret.contains("Result"), ret_text: ret, body: None };
            }
            match self.txt(0) {
                "{" => break,
                ";" => {
                    self.bump();
                    return FnItem {
                        name,
                        returns_result: ret.contains("Result"),
                        ret_text: ret,
                        body: None,
                    };
                }
                "(" => {
                    let lo = self.pos;
                    self.consume_matched("(", ")");
                    if in_ret {
                        for t in &self.t[lo..self.pos] {
                            ret.push_str(&t.text);
                            ret.push(' ');
                        }
                    }
                }
                "[" => self.consume_matched("[", "]"),
                "-" if self.txt(1) == ">" => {
                    self.bump();
                    self.bump();
                    in_ret = true;
                }
                "where" => {
                    in_ret = false;
                    self.bump();
                }
                _ => {
                    if in_ret {
                        ret.push_str(self.txt(0));
                        ret.push(' ');
                    }
                    self.bump();
                }
            }
        }
        let body = self.parse_block();
        FnItem { name, returns_result: ret.contains("Result"), ret_text: ret, body: Some(body) }
    }

    fn parse_container(&mut self) -> ItemKind {
        let keyword: &'static str = match self.txt(0) {
            "impl" => "impl",
            "trait" => "trait",
            _ => "mod",
        };
        self.bump();
        // Header until the body `{` or a `;` (mod declarations,
        // trait aliases). Generic `>` after `-` (fn-pointer returns in
        // bounds) must not end generics early, but since we only scan
        // for `{` / `;` at group depth 0, `<`/`>` need no tracking.
        let header_lo = self.pos;
        while !self.eof() && !self.at("{") && !self.at(";") {
            match self.txt(0) {
                "(" => self.consume_matched("(", ")"),
                "[" => self.consume_matched("[", "]"),
                _ => {
                    self.bump();
                }
            }
        }
        let name = container_name(&self.t[header_lo..self.pos]);
        if self.at(";") {
            self.bump();
            return ItemKind::Container { keyword, name, items: Vec::new() };
        }
        if self.at("{") {
            self.bump();
            let items = self.parse_items(true);
            if self.at("}") {
                self.bump();
            }
            return ItemKind::Container { keyword, name, items };
        }
        ItemKind::Container { keyword, name, items: Vec::new() }
    }

    // ----------------------------------------------- statements ----

    fn parse_block(&mut self) -> Block {
        debug_assert!(self.at("{"));
        let lo = self.pos;
        let line = self.line();
        self.bump(); // {
        let mut stmts = Vec::new();
        while !self.eof() && !self.at("}") {
            let before = self.pos;
            stmts.push(self.parse_stmt());
            if self.pos == before {
                // Recovery: a statement parse that cannot advance
                // (stray closer) is consumed as a bare token.
                let i = self.bump();
                stmts.push(Stmt {
                    kind: StmtKind::Expr(Chain {
                        parts: vec![Part::Tok(i)],
                        lo: i,
                        hi: i + 1,
                        line: self.t[i].line,
                    }),
                    lo: i,
                    hi: i + 1,
                    line: self.t[i].line,
                });
            }
        }
        if self.at("}") {
            self.bump();
        }
        Block { stmts, lo, hi: self.pos, line }
    }

    fn parse_stmt(&mut self) -> Stmt {
        let lo = self.pos;
        let line = self.line();
        // Attributes: `#[test]`-annotated statements become items.
        if self.at("#") && (self.txt(1) == "[" || (self.txt(1) == "!" && self.txt(2) == "[")) {
            let item = self.parse_item();
            return Stmt { lo, hi: self.pos, line, kind: StmtKind::Item(Box::new(item)) };
        }
        if self.at(";") {
            self.bump();
            return Stmt { kind: StmtKind::Empty, lo, hi: self.pos, line };
        }
        if self.at("let") {
            let letstmt = self.parse_let();
            return Stmt { kind: StmtKind::Let(letstmt), lo, hi: self.pos, line };
        }
        // `union` is contextual: only `union Name {` is the item form.
        let is_item_start = ITEM_KEYWORDS.contains(&self.txt(0))
            && (self.txt(0) != "union"
                || (self.t.get(self.pos + 1).is_some_and(|t| t.kind == TokKind::Ident)
                    && self.txt(2) == "{"));
        if is_item_start {
            let item = self.parse_item();
            return Stmt { lo, hi: self.pos, line, kind: StmtKind::Item(Box::new(item)) };
        }
        // Statement-position block constructs (`if`, `match`, a bare
        // block, …) terminate the statement at their closing brace —
        // mirroring Rust's own statement rule — unless a method chain
        // (`.` / `?`) continues the expression.
        if self.at_struct_start() {
            let s = self.parse_struct_expr();
            let s_lo = s.lo;
            let s_line = s.line;
            let mut parts = vec![Part::Nested(Box::new(s))];
            if self.at(".") || self.at("?") {
                let rest = self.parse_chain(&[";"], false);
                parts.extend(rest.parts);
            }
            if self.at(";") {
                self.bump();
            }
            let chain = Chain { parts, lo: s_lo, hi: self.pos, line: s_line };
            return Stmt { kind: StmtKind::Expr(chain), lo, hi: self.pos, line };
        }
        // Expression statement: a chain (structured constructs embed
        // as nested parts), then an optional `;`.
        let chain = self.parse_chain(&[";"], false);
        if self.at(";") {
            self.bump();
        }
        Stmt { kind: StmtKind::Expr(chain), lo, hi: self.pos, line }
    }

    fn parse_let(&mut self) -> LetStmt {
        self.bump(); // let
        // Pattern (+ optional type) until a top-level `=`, `;`, or
        // `else`. `==` cannot appear in pattern/type position, so a
        // bare `=` is the initializer.
        let pat_lo = self.pos;
        let mut colon_at: Option<usize> = None;
        loop {
            if self.eof() {
                break;
            }
            match self.txt(0) {
                "=" | ";" => break,
                "else" if self.txt(1) == "{" => break,
                "(" => self.consume_matched("(", ")"),
                "[" => self.consume_matched("[", "]"),
                "{" => self.consume_matched("{", "}"),
                ":" if colon_at.is_none() && self.txt(1) != ":" => {
                    colon_at = Some(self.pos);
                    self.bump();
                }
                ":" if self.txt(1) == ":" => {
                    self.bump();
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
        let pat_hi = colon_at.unwrap_or(self.pos);
        let pat_toks = &self.t[pat_lo..pat_hi];
        let ty_text = colon_at
            .map(|c| {
                self.t[c + 1..self.pos].iter().map(|t| t.text.as_str()).collect::<Vec<_>>().join(" ")
            })
            .unwrap_or_default();
        let (name, is_wild) = simple_pat_name(pat_toks);
        let mut init = None;
        let mut else_block = None;
        if self.at("=") {
            self.bump();
            // A bare top-level `else` only occurs in `let … else`
            // (if-else consumes its own `else` inside the nested
            // expression), so it safely ends the initializer.
            init = Some(self.parse_chain(&[";", "else"], false));
            if self.at("else") && self.txt(1) == "{" {
                self.bump();
                else_block = Some(self.parse_block());
            }
        }
        if self.at(";") {
            self.bump();
        }
        LetStmt { name, is_wild, ty_text, init, else_block }
    }

    // ---------------------------------------------- expressions ----

    /// True when the cursor sits on a structured-expression opener.
    /// `for` followed by `<` is an HRTB (`dyn for<'a> Fn(…)`), not a
    /// loop.
    fn at_struct_start(&self) -> bool {
        match self.txt(0) {
            "if" | "while" | "loop" | "match" | "{" => true,
            "for" => self.txt(1) != "<",
            "unsafe" => self.txt(1) == "{",
            _ => false,
        }
    }

    /// Parses a flat expression run. Stops (without consuming) at any
    /// of `stops` at group depth 0, at `}` / `)` / `]` (enclosing
    /// closers), and — when `stop_at_arrow` — at a `=>`.
    fn parse_chain(&mut self, stops: &[&str], stop_at_arrow: bool) -> Chain {
        let lo = self.pos;
        let line = self.line();
        let mut parts = Vec::new();
        while !self.eof() {
            let t = self.txt(0);
            if stops.contains(&t) || matches!(t, "}" | ")" | "]") {
                break;
            }
            if stop_at_arrow && t == "=" && self.txt(1) == ">" {
                break;
            }
            match t {
                "(" => parts.push(self.parse_group("(", ")")),
                "[" => parts.push(self.parse_group("[", "]")),
                _ if self.at_struct_start() => {
                    let s = self.parse_struct_expr();
                    parts.push(Part::Nested(Box::new(s)));
                }
                _ => parts.push(Part::Tok(self.bump())),
            }
        }
        Chain { parts, lo, hi: self.pos, line }
    }

    /// Parses `( … )` / `[ … ]` with nested structure.
    fn parse_group(&mut self, _open: &str, close: &str) -> Part {
        let open_idx = self.bump();
        let mut parts = Vec::new();
        while !self.eof() && !self.at(close) {
            match self.txt(0) {
                "(" => parts.push(self.parse_group("(", ")")),
                "[" => parts.push(self.parse_group("[", "]")),
                _ if self.at_struct_start() => {
                    let s = self.parse_struct_expr();
                    parts.push(Part::Nested(Box::new(s)));
                }
                // Anything else — including a stray closer of the
                // *other* kind — is consumed to keep coverage total.
                _ => parts.push(Part::Tok(self.bump())),
            }
        }
        let close_idx = if self.at(close) { self.bump() } else { open_idx };
        Part::Group { open: open_idx, parts, close: close_idx }
    }

    fn parse_struct_expr(&mut self) -> StructExpr {
        let lo = self.pos;
        let line = self.line();
        let kind = match self.txt(0) {
            "if" => {
                self.bump();
                let cond = self.parse_chain(&["{"], false);
                let then = if self.at("{") {
                    self.parse_block()
                } else {
                    Block { stmts: Vec::new(), lo: self.pos, hi: self.pos, line }
                };
                let els = if self.at("else") {
                    self.bump();
                    if self.at("if") {
                        Some(Box::new(self.parse_struct_expr()))
                    } else if self.at("{") {
                        let b_lo = self.pos;
                        let b_line = self.line();
                        let block = self.parse_block();
                        Some(Box::new(StructExpr {
                            kind: StructKind::Block { block, is_unsafe: false },
                            lo: b_lo,
                            hi: self.pos,
                            line: b_line,
                        }))
                    } else {
                        None
                    }
                } else {
                    None
                };
                StructKind::If { cond, then, els }
            }
            "while" => {
                self.bump();
                let cond = self.parse_chain(&["{"], false);
                let body = if self.at("{") {
                    self.parse_block()
                } else {
                    Block { stmts: Vec::new(), lo: self.pos, hi: self.pos, line }
                };
                StructKind::While { cond, body }
            }
            "loop" => {
                self.bump();
                let body = if self.at("{") {
                    self.parse_block()
                } else {
                    Block { stmts: Vec::new(), lo: self.pos, hi: self.pos, line }
                };
                StructKind::Loop { body }
            }
            "for" => {
                self.bump();
                // Pattern until the top-level `in`.
                let pat_lo = self.pos;
                while !self.eof() && !self.at("in") && !self.at("{") {
                    match self.txt(0) {
                        "(" => self.consume_matched("(", ")"),
                        "[" => self.consume_matched("[", "]"),
                        _ => {
                            self.bump();
                        }
                    }
                }
                let pat_text: String = self.t[pat_lo..self.pos]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect::<Vec<_>>()
                    .join(" ");
                if self.at("in") {
                    self.bump();
                }
                let iter = self.parse_chain(&["{"], false);
                let body = if self.at("{") {
                    self.parse_block()
                } else {
                    Block { stmts: Vec::new(), lo: self.pos, hi: self.pos, line }
                };
                StructKind::For { pat_text, iter, body }
            }
            "match" => {
                self.bump();
                let scrutinee = self.parse_chain(&["{"], false);
                let mut arms = Vec::new();
                if self.at("{") {
                    self.bump();
                    while !self.eof() && !self.at("}") {
                        let before = self.pos;
                        arms.push(self.parse_arm());
                        if self.pos == before {
                            self.bump();
                        }
                    }
                    if self.at("}") {
                        self.bump();
                    }
                }
                StructKind::Match { scrutinee, arms }
            }
            "unsafe" => {
                self.bump();
                let block = if self.at("{") {
                    self.parse_block()
                } else {
                    Block { stmts: Vec::new(), lo: self.pos, hi: self.pos, line }
                };
                StructKind::Block { block, is_unsafe: true }
            }
            _ => {
                // "{": bare block / struct literal / macro braces.
                let block = self.parse_block();
                StructKind::Block { block, is_unsafe: false }
            }
        };
        StructExpr { kind, lo, hi: self.pos, line }
    }

    fn parse_arm(&mut self) -> Arm {
        let line = self.line();
        // Pattern until a top-level `=>` or `if` guard.
        let pat_lo = self.pos;
        while !self.eof() {
            match self.txt(0) {
                "=" if self.txt(1) == ">" => break,
                "if" => break,
                "}" => break,
                "(" => self.consume_matched("(", ")"),
                "[" => self.consume_matched("[", "]"),
                "{" => self.consume_matched("{", "}"),
                _ => {
                    self.bump();
                }
            }
        }
        let pat_text: String =
            self.t[pat_lo..self.pos].iter().map(|t| t.text.as_str()).collect::<Vec<_>>().join(" ");
        let guard = if self.at("if") {
            self.bump();
            Some(self.parse_chain(&[","], true))
        } else {
            None
        };
        if self.at("=") && self.txt(1) == ">" {
            self.bump();
            self.bump();
        }
        // A block-shaped body ends the arm at its closing brace (the
        // comma is optional after `=> { … }` — rustfmt omits it), so
        // the next arm's pattern is never swallowed. Expression
        // bodies run to the mandatory `,` or the match's `}`.
        let body = if self.at_struct_start() {
            let s = self.parse_struct_expr();
            let s_lo = s.lo;
            let s_line = s.line;
            let mut parts = vec![Part::Nested(Box::new(s))];
            if self.at(".") || self.at("?") {
                let rest = self.parse_chain(&[",", ";"], false);
                parts.extend(rest.parts);
            }
            Chain { parts, lo: s_lo, hi: self.pos, line: s_line }
        } else {
            self.parse_chain(&[",", ";"], false)
        };
        if self.at(",") {
            self.bump();
        }
        Arm { pat_text, guard, body, line }
    }
}

/// Extracts the defining name from an `impl`/`trait`/`mod` header:
/// the last path segment after `for` when present (`impl Tr for Ty`),
/// otherwise the first path after the generics.
fn container_name(header: &[SigTok]) -> Option<String> {
    // Find the last top-level `for` not followed by `<` (HRTB).
    let mut start = 0usize;
    for (i, t) in header.iter().enumerate() {
        if t.text == "for" && header.get(i + 1).map(|n| n.text.as_str()) != Some("<") {
            start = i + 1;
        }
    }
    if start == 0 {
        // Skip leading generics `<…>`; `>` directly after `-` is a
        // fn-pointer return arrow, not a generics closer.
        let mut i = 0usize;
        if header.first().map(|t| t.text.as_str()) == Some("<") {
            let mut depth = 0i32;
            while i < header.len() {
                match header[i].text.as_str() {
                    "<" => depth += 1,
                    ">" if i > 0 && header[i - 1].text == "-" => {}
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        start = i;
    }
    // Last segment of the path that starts at `start`.
    let mut name = None;
    let mut i = start;
    while i < header.len() {
        let t = &header[i];
        if t.kind == TokKind::Ident {
            name = Some(t.text.clone());
            if header.get(i + 1).map(|n| n.text.as_str()) == Some(":")
                && header.get(i + 2).map(|n| n.text.as_str()) == Some(":")
            {
                i += 3;
                continue;
            }
            break;
        }
        if matches!(t.text.as_str(), "&" | "mut" | "dyn") || t.kind == TokKind::Lifetime {
            i += 1;
            continue;
        }
        break;
    }
    name
}

/// `let` pattern shape: `Some(name)` for `[ref] [mut] name`, wild
/// flag for `_`.
fn simple_pat_name(pat: &[SigTok]) -> (Option<String>, bool) {
    let core: Vec<&SigTok> =
        pat.iter().filter(|t| !matches!(t.text.as_str(), "ref" | "mut")).collect();
    match core.as_slice() {
        [t] if t.text == "_" => (None, true),
        [t] if t.kind == TokKind::Ident => (Some(t.text.clone()), false),
        _ => (None, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> AstFile {
        let sig = significant(src);
        let (ast, cov) = parse_file(&sig);
        assert_eq!(cov.consumed, cov.total, "total coverage on:\n{src}");
        ast
    }

    fn only_fn(ast: &AstFile) -> &FnItem {
        for item in &ast.items {
            if let ItemKind::Fn(f) = &item.kind {
                return f;
            }
        }
        panic!("no fn item");
    }

    #[test]
    fn covers_every_token_of_varied_source() {
        let src = r#"
            use std::collections::BTreeMap;
            pub struct S { pub x: Vec<u8> }
            impl S {
                pub fn get(&self, i: usize) -> Option<&u8> { self.x.get(i) }
            }
            fn main() {
                let mut m: BTreeMap<String, u32> = BTreeMap::new();
                for (k, v) in &m { println!("{k} {v}"); }
                let r = if m.is_empty() { 0 } else { m.len() };
                match r { 0 => {}, n if n > 3 => { work(n); }, _ => () }
                'outer: loop { while r < 10 { break 'outer; } }
                let s = S { x: vec![1, 2] };
                let _ = s.x.iter().map(|b| *b as u32).sum::<u32>();
            }
        "#;
        parse(src);
    }

    #[test]
    fn fn_return_type_and_result_detection() {
        let ast = parse("fn f(a: u32) -> Result<Vec<f64>, Error> { todo!() }");
        let f = only_fn(&ast);
        assert_eq!(f.name, "f");
        assert!(f.returns_result);
        let ast2 = parse("fn g() -> io::Result<()>;");
        assert!(only_fn(&ast2).returns_result);
        let ast3 = parse("fn h(x: Result<u8, ()>) -> u8 { 0 }");
        assert!(!only_fn(&ast3).returns_result, "param Result is not a return Result");
    }

    #[test]
    fn let_decomposition() {
        let ast = parse("fn f() { let mut g = m.lock(); let _ = send(); let (a, b) = t; }");
        let f = only_fn(&ast);
        let body = f.body.as_ref().unwrap();
        let lets: Vec<&LetStmt> = body
            .stmts
            .iter()
            .filter_map(|s| match &s.kind {
                StmtKind::Let(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(lets.len(), 3);
        assert_eq!(lets[0].name.as_deref(), Some("g"));
        assert!(!lets[0].is_wild);
        assert!(lets[1].is_wild);
        assert_eq!(lets[2].name, None);
    }

    #[test]
    fn let_with_type_annotation_splits_ty() {
        let ast = parse("fn f() { let acc: f64 = 0.0; }");
        let f = only_fn(&ast);
        let StmtKind::Let(l) = &f.body.as_ref().unwrap().stmts[0].kind else { panic!() };
        assert_eq!(l.name.as_deref(), Some("acc"));
        assert_eq!(l.ty_text, "f64");
    }

    #[test]
    fn match_arms_and_guards() {
        let src = r#"
            fn f(r: Result<u8, E>) {
                match r {
                    Ok(v) if v > 1 => use_it(v),
                    Err(_) => {},
                    _ => other(),
                }
            }
        "#;
        let ast = parse(src);
        let f = only_fn(&ast);
        let StmtKind::Expr(chain) = &f.body.as_ref().unwrap().stmts[0].kind else { panic!() };
        let mut arms_seen = 0;
        chain.nested(&mut |s| {
            if let StructKind::Match { arms, .. } = &s.kind {
                arms_seen = arms.len();
                assert_eq!(arms[0].pat_text, "Ok ( v )");
                assert!(arms[0].guard.is_some());
                assert_eq!(arms[1].pat_text, "Err ( _ )");
                assert!(arms[1].guard.is_none());
            }
        });
        assert_eq!(arms_seen, 3);
    }

    #[test]
    fn range_patterns_do_not_confuse_the_arrow() {
        let src = "fn f(x: u8) -> u8 { match x { 1..=9 => 1, _ => 0 } }";
        let ast = parse(src);
        let f = only_fn(&ast);
        let StmtKind::Expr(chain) = &f.body.as_ref().unwrap().stmts[0].kind else { panic!() };
        chain.nested(&mut |s| {
            if let StructKind::Match { arms, .. } = &s.kind {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0].pat_text, "1 . . = 9");
            }
        });
    }

    #[test]
    fn loops_nest_and_label() {
        let src = r#"
            fn f(xs: &[f64]) -> f64 {
                let mut acc = 0.0;
                for c in xs.chunks(4) {
                    for v in c { acc += v; }
                }
                acc
            }
        "#;
        let ast = parse(src);
        let f = only_fn(&ast);
        let body = f.body.as_ref().unwrap();
        let StmtKind::Expr(chain) = &body.stmts[1].kind else { panic!() };
        let mut outer_seen = false;
        chain.nested(&mut |s| {
            if let StructKind::For { iter, body, .. } = &s.kind {
                outer_seen = true;
                let mut texts = Vec::new();
                iter.flat_tokens(&mut |_| texts.push(()));
                assert!(!texts.is_empty());
                // Inner for nested in body.
                let StmtKind::Expr(inner) = &body.stmts[0].kind else { panic!() };
                let mut inner_for = false;
                inner.nested(&mut |s2| {
                    inner_for |= matches!(s2.kind, StructKind::For { .. });
                });
                assert!(inner_for);
            }
        });
        assert!(outer_seen);
    }

    #[test]
    fn impl_and_trait_names_resolve() {
        let ast = parse(
            "impl<T: Ord> Registry<T> { fn a(&self) {} }\n\
             impl Display for Finding { fn fmt(&self) {} }\n\
             mod inner { fn b() {} }",
        );
        let names: Vec<(Option<&str>, usize)> = ast
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Container { name, items, .. } => Some((name.as_deref(), items.len())),
                _ => None,
            })
            .collect();
        assert_eq!(
            names,
            [(Some("Registry"), 1), (Some("Finding"), 1), (Some("inner"), 1)]
        );
    }

    #[test]
    fn cfg_test_items_marked() {
        let ast = parse(
            "fn real() {}\n#[cfg(test)]\nmod tests { fn t() {} }\n#[test]\nfn t2() {}",
        );
        let flags: Vec<bool> = ast.items.iter().map(|i| i.is_test).collect();
        assert_eq!(flags, [false, true, true]);
    }

    #[test]
    fn let_else_and_question_mark_parse() {
        let src = r#"
            fn f() -> Result<u8, E> {
                let Some(x) = maybe() else { return Err(E); };
                let y = fallible()?;
                Ok(x + y)
            }
        "#;
        parse(src);
    }

    #[test]
    fn struct_literals_and_closures_stay_covered() {
        let src = r#"
            fn f() {
                let c = Config { depth: 3, names: vec!["a".into()] };
                let h = std::thread::spawn(move || { work(c) });
                let v: Vec<u32> = (0..4).map(|i| i * 2).filter(|x| *x > 1).collect();
            }
        "#;
        parse(src);
    }

    #[test]
    fn torture_inputs_terminate_with_full_coverage() {
        for src in [
            "fn f( {",
            "match {",
            "}}}",
            "fn f() { let = ; }",
            "impl for {}",
            "fn f() { x.do(|| { loop { if } }) }",
            "#![allow(dead_code)] fn f() {}",
        ] {
            let sig = significant(src);
            let (_, cov) = parse_file(&sig);
            assert_eq!(cov.consumed, cov.total, "coverage on torture input {src:?}");
        }
    }
}
