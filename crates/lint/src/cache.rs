//! Incremental analysis cache.
//!
//! Mirrors the artifact-store's content-fingerprint discipline
//! (nd-store `NDART01`): each workspace file's analysis record is
//! keyed by the FNV-1a hash of its contents, so a warm run re-parses
//! only changed files and replays everything else from the cache. The
//! cached record is the *complete* per-file product — token-rule
//! findings, flow findings, function summaries, drop candidates,
//! suppression comments, parser coverage — which is exactly the input
//! the workspace-global pass needs; the global pass itself is cheap
//! and recomputed every run, so warm and cold runs emit byte-identical
//! reports.
//!
//! The on-disk format is a versioned line-oriented text file written
//! atomically (tmp + rename). The header embeds the rule list: adding
//! or renaming a rule invalidates every cached record at once. Any
//! parse problem discards the whole cache — it is a pure accelerator,
//! never a source of truth.

use crate::flow::{DropCandidate, FileFlow, FnSummary};
use crate::rules::{Finding, RULE_NAMES};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

/// Format version; bump when record semantics change.
const FORMAT: &str = "ndlint-cache 1";

/// FNV-1a 64-bit (same parameters as nd-store's artifact checksums).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One file's cached analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct FileRecord {
    /// FNV-1a of the file contents the record was computed from.
    pub hash: u64,
    /// Token-tier findings (suppressions already applied).
    pub token_findings: Vec<Finding>,
    /// Flow-tier product (local findings, summaries, candidates,
    /// allow comments, coverage).
    pub flow: FileFlow,
}

/// The whole cache: workspace-relative path → record.
#[derive(Debug, Default)]
pub struct Cache {
    /// Records by file path.
    pub entries: BTreeMap<String, FileRecord>,
}

impl Cache {
    /// Loads a cache file; any error or version/rule mismatch yields
    /// an empty cache (a full re-analysis, never a wrong one).
    pub fn load(path: &Path) -> Cache {
        match std::fs::read_to_string(path) {
            Ok(text) => parse(&text).unwrap_or_default(),
            Err(_) => Cache::default(),
        }
    }

    /// Writes the cache atomically (`path.tmp` + rename).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(render(self).as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }
}

// ---- escaping ----------------------------------------------------------
// Field separator is TAB, entry separator is `;`, subfield is `,`.
// Only free-text fields (messages, comments, pattern-ish names) are
// escaped; lock ids and fn names are identifier paths by construction.

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            ';' => out.push_str("\\s"),
            ',' => out.push_str("\\c"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('s') => out.push(';'),
            Some('c') => out.push(','),
            other => {
                out.push('\\');
                if let Some(o) = other {
                    out.push(o);
                }
            }
        }
    }
    out
}

/// Rule names are interned: findings hold `&'static str`.
fn intern_rule(name: &str) -> Option<&'static str> {
    RULE_NAMES.iter().find(|&&r| r == name).copied()
}

// ---- render ------------------------------------------------------------

fn render(cache: &Cache) -> String {
    let mut out = String::new();
    out.push_str(FORMAT);
    out.push('\n');
    out.push_str(&format!("rules {}\n", RULE_NAMES.join(",")));
    for (path, rec) in &cache.entries {
        out.push_str(&format!("F {:016x} {path}\n", rec.hash));
        for f in &rec.token_findings {
            render_finding(&mut out, 'f', f);
        }
        for f in &rec.flow.findings {
            render_finding(&mut out, 'g', f);
        }
        for s in &rec.flow.summaries {
            out.push_str(&format!(
                "s {}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                s.name,
                s.line,
                if s.returns_result { 1 } else { 0 },
                join(&s.acquires, |(l, n)| format!("{l},{n}")),
                join(&s.ordered, |(a, b, n)| format!("{a},{b},{n}")),
                join(&s.calls, |(c, m)| format!("{c},{}", u8::from(*m))),
                join(&s.calls_holding, |(l, c, m, n)| {
                    format!("{l},{c},{},{n}", u8::from(*m))
                }),
                join(&s.io_holding, |(l, c, n)| format!("{l},{c},{n}")),
                s.io_calls.join(";"),
            ));
        }
        for c in &rec.flow.candidates {
            out.push_str(&format!(
                "d {}\t{}\n",
                c.line,
                join(&c.calls, |(name, m)| format!("{name},{}", u8::from(*m)))
            ));
        }
        for (line, text) in &rec.flow.allow_comments {
            out.push_str(&format!("a {line}\t{}\n", esc(text)));
        }
        out.push_str(&format!(
            "v {} {}\n",
            rec.flow.coverage.0, rec.flow.coverage.1
        ));
    }
    out
}

fn render_finding(out: &mut String, tag: char, f: &Finding) {
    out.push_str(&format!("{tag} {}\t{}\t{}\n", f.rule, f.line, esc(&f.message)));
}

fn join<T>(items: &[T], f: impl Fn(&T) -> String) -> String {
    items.iter().map(f).collect::<Vec<_>>().join(";")
}

// ---- parse -------------------------------------------------------------

fn parse(text: &str) -> Option<Cache> {
    let mut lines = text.lines();
    if lines.next()? != FORMAT {
        return None;
    }
    if lines.next()? != format!("rules {}", RULE_NAMES.join(",")) {
        return None; // rule set changed — every record is stale
    }
    let mut cache = Cache::default();
    let mut cur: Option<(String, FileRecord)> = None;
    for line in lines {
        let (tag, rest) = line.split_once(' ')?;
        match tag {
            "F" => {
                if let Some((path, rec)) = cur.take() {
                    cache.entries.insert(path, rec);
                }
                let (hash_hex, path) = rest.split_once(' ')?;
                let hash = u64::from_str_radix(hash_hex, 16).ok()?;
                cur = Some((
                    path.to_string(),
                    FileRecord {
                        hash,
                        token_findings: Vec::new(),
                        flow: FileFlow::default(),
                    },
                ));
            }
            "f" | "g" => {
                let file = cur.as_ref()?.0.clone();
                let rec = &mut cur.as_mut()?.1;
                let mut it = rest.split('\t');
                let rule = intern_rule(it.next()?)?;
                let line_no: u32 = it.next()?.parse().ok()?;
                let message = unesc(it.next()?);
                let finding = Finding { rule, file, line: line_no, message };
                if tag == "f" {
                    rec.token_findings.push(finding);
                } else {
                    rec.flow.findings.push(finding);
                }
            }
            "s" => {
                let file = cur.as_ref()?.0.clone();
                let rec = &mut cur.as_mut()?.1;
                let mut it = rest.split('\t');
                let name = it.next()?.to_string();
                let line_no: u32 = it.next()?.parse().ok()?;
                let returns_result = it.next()? == "1";
                let acquires = split(it.next()?, |p| {
                    let (l, n) = p.rsplit_once(',')?;
                    Some((l.to_string(), n.parse().ok()?))
                })?;
                let ordered = split(it.next()?, |p| {
                    let mut q = p.split(',');
                    Some((
                        q.next()?.to_string(),
                        q.next()?.to_string(),
                        q.next()?.parse().ok()?,
                    ))
                })?;
                let calls = split(it.next()?, |p| {
                    let (c, m) = p.rsplit_once(',')?;
                    Some((c.to_string(), m == "1"))
                })?;
                let calls_holding = split(it.next()?, |p| {
                    let mut q = p.split(',');
                    Some((
                        q.next()?.to_string(),
                        q.next()?.to_string(),
                        q.next()? == "1",
                        q.next()?.parse().ok()?,
                    ))
                })?;
                let io_holding = split(it.next()?, |p| {
                    let mut q = p.split(',');
                    Some((
                        q.next()?.to_string(),
                        q.next()?.to_string(),
                        q.next()?.parse().ok()?,
                    ))
                })?;
                let io_calls: Vec<String> = it
                    .next()
                    .map(|s| {
                        s.split(';')
                            .filter(|p| !p.is_empty())
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
                rec.flow.summaries.push(FnSummary {
                    name,
                    file,
                    line: line_no,
                    returns_result,
                    acquires,
                    ordered,
                    calls,
                    calls_holding,
                    io_holding,
                    io_calls,
                });
            }
            "d" => {
                let file = cur.as_ref()?.0.clone();
                let rec = &mut cur.as_mut()?.1;
                let (line_no, calls) = rest.split_once('\t')?;
                rec.flow.candidates.push(DropCandidate {
                    file,
                    line: line_no.parse().ok()?,
                    calls: calls
                        .split(';')
                        .filter(|p| !p.is_empty())
                        .map(|p| {
                            let (name, m) = p.split_once(',')?;
                            Some((name.to_string(), m == "1"))
                        })
                        .collect::<Option<Vec<_>>>()?,
                });
            }
            "a" => {
                let rec = &mut cur.as_mut()?.1;
                let (line_no, text) = rest.split_once('\t')?;
                rec.flow
                    .allow_comments
                    .push((line_no.parse().ok()?, unesc(text)));
            }
            "v" => {
                let rec = &mut cur.as_mut()?.1;
                let (a, b) = rest.split_once(' ')?;
                rec.flow.coverage = (a.parse().ok()?, b.parse().ok()?);
            }
            _ => return None,
        }
    }
    if let Some((path, rec)) = cur.take() {
        cache.entries.insert(path, rec);
    }
    Some(cache)
}

fn split<T>(s: &str, f: impl Fn(&str) -> Option<T>) -> Option<Vec<T>> {
    s.split(';').filter(|p| !p.is_empty()).map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::file_flow;
    use crate::rules::analyze;

    #[test]
    fn fnv_matches_store_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"newsdiff"), fnv1a64(b"newsdifg"));
    }

    #[test]
    fn roundtrip_preserves_records_exactly() {
        let rel = "crates/serve/src/fixture.rs";
        let src = r#"
            impl S {
                fn f(&self, out: &mut TcpStream) -> Result<(), E> {
                    let g = self.state.lock().unwrap();
                    let _ = self.tx.send(1);
                    out.write_all(g.bytes())?;
                    Ok(())
                }
            }
            // nd-lint: allow(result-dropped) — best effort
        "#;
        let mut cache = Cache::default();
        cache.entries.insert(
            rel.to_string(),
            FileRecord {
                hash: fnv1a64(src.as_bytes()),
                token_findings: analyze(rel, src),
                flow: file_flow(rel, src),
            },
        );
        let dir = std::env::temp_dir().join("nd-lint-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.cache");
        cache.save(&path).unwrap();
        let loaded = Cache::load(&path);
        assert_eq!(loaded.entries.len(), 1);
        let (orig, got) = (&cache.entries[rel], &loaded.entries[rel]);
        assert_eq!(orig.hash, got.hash);
        assert_eq!(orig.token_findings, got.token_findings);
        assert_eq!(orig.flow, got.flow);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_or_rule_mismatch_discards() {
        let dir = std::env::temp_dir().join("nd-lint-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.cache");
        std::fs::write(&path, "ndlint-cache 0\nrules x\n").unwrap();
        assert!(Cache::load(&path).entries.is_empty());
        std::fs::write(
            &path,
            format!("{FORMAT}\nrules not,the,same\nF 0000000000000000 a.rs\n"),
        )
        .unwrap();
        assert!(Cache::load(&path).entries.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty_cache() {
        let c = Cache::load(Path::new("/nonexistent/nd-lint.cache"));
        assert!(c.entries.is_empty());
    }

    #[test]
    fn escaping_roundtrips_hostile_text() {
        let hostile = "a\tb;c,d\\e\nf";
        assert_eq!(unesc(&esc(hostile)), hostile);
    }
}
