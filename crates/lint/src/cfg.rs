//! Per-function control-flow graphs and guard liveness.
//!
//! [`build_flow`] lowers a parsed function body ([`crate::ast`]) into
//! basic blocks of *evaluation units* — flat expression runs — joined
//! by edges for `if`/`else`, loops (with back edges), `match` arms,
//! `return`, `?`, `break`, and `continue`. Lexical scopes become
//! explicit `Enter`/`Exit` markers so a forward may-analysis can track
//! **lock-guard liveness** path-sensitively: a guard acquired by
//! `let g = m.lock()…` lives until its scope exits or an explicit
//! `drop(g)`, a temporary acquired in a `for`-loop head or `match`
//! scrutinee lives for the whole construct, and a temporary inside a
//! plain statement dies with the statement.
//!
//! The fixpoint fills [`Eval::held_before`] with the set of guards
//! that may be live on *some* path into each unit — exactly what the
//! `lock-order` rule needs to build held→acquired edges and to flag
//! blocking I/O under a live guard.

use crate::ast::{Block, Chain, FnItem, StmtKind, StructExpr, StructKind, SigTok};
use crate::lexer::TokKind;

/// Methods whose empty-argument call acquires a `Mutex`/`RwLock`
/// guard. `stream.write(buf)` (I/O, has arguments) never matches.
pub const GUARD_METHODS: &[&str] =
    &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// One basic block.
#[derive(Debug)]
pub struct BasicBlock {
    /// Units in execution order.
    pub units: Vec<Unit>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// One element of a basic block.
#[derive(Debug, Clone, Copy)]
pub enum Unit {
    /// Evaluate `evals[i]`.
    Eval(usize),
    /// A lexical scope opens.
    Enter(u32),
    /// A lexical scope closes: guards bound in it die.
    Exit(u32),
}

/// A lock guard tracked by the liveness analysis.
#[derive(Debug)]
pub struct GuardDef {
    /// `let`-bound name, or `None` for construct-scoped temporaries.
    pub name: Option<String>,
    /// Normalized lock identity (receiver path, `self` resolved to
    /// the impl type).
    pub lock: String,
    /// Scope whose exit kills the guard.
    pub scope: u32,
    /// Acquisition line.
    pub line: u32,
}

/// One evaluation unit: a flat token run from a [`Chain`].
#[derive(Debug)]
pub struct Eval {
    /// Token indices (into the file's significant tokens) evaluated
    /// here, in source order. Nested structured expressions are their
    /// own units and are excluded.
    pub toks: Vec<usize>,
    /// Line of the unit's first token.
    pub line: u32,
    /// Guards acquired in this unit, with the token index of each
    /// acquisition.
    pub gens: Vec<(usize, usize)>,
    /// Guards explicitly dropped here (`drop(name)`).
    pub drops: Vec<usize>,
    /// Liveness result: bitmask over guard ids that may be held
    /// entering this unit.
    pub held_before: u64,
}

/// The flow-analysis product for one function.
#[derive(Debug)]
pub struct FnFlow {
    /// Basic blocks; index 0 is the entry, index 1 the exit.
    pub blocks: Vec<BasicBlock>,
    /// All guards.
    pub guards: Vec<GuardDef>,
    /// All evaluation units.
    pub evals: Vec<Eval>,
}

/// A call site found in an evaluation unit.
#[derive(Debug)]
pub struct CallSite {
    /// Callee's simple name (last path segment).
    pub name: String,
    /// Receiver method call (`x.f(…)`) rather than a free call.
    pub is_method: bool,
    /// Token index of the callee name.
    pub tok: usize,
    /// Source line.
    pub line: u32,
}

impl FnFlow {
    /// Lock ids (sorted, deduped) of the guards in `mask`.
    pub fn held_locks(&self, mask: u64) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .guards
            .iter()
            .enumerate()
            .filter(|(i, _)| *i < 64 && mask & (1 << i) != 0)
            .map(|(_, g)| g.lock.as_str())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Finds guard acquisitions in a flat token run: `recv.lock()` etc.
/// Returns `(lock_id, name_tok_idx)` pairs. `self` in the receiver is
/// rewritten to `self_ty` when known.
pub fn find_acquisitions(
    toks: &[SigTok],
    flat: &[usize],
    self_ty: Option<&str>,
) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for w in 0..flat.len() {
        let i = flat[w];
        if toks[i].text != "." {
            continue;
        }
        let (Some(&m), Some(&op)) = (flat.get(w + 1), flat.get(w + 2)) else { continue };
        if !GUARD_METHODS.contains(&toks[m].text.as_str()) || toks[op].text != "(" {
            continue;
        }
        // Empty argument list only.
        let Some(&cl) = flat.get(w + 3) else { continue };
        if toks[cl].text != ")" {
            continue;
        }
        if let Some(id) = receiver_path(toks, flat, w, self_ty) {
            out.push((id, m));
        }
    }
    out
}

/// Walks back from the `.` at `flat[dot_w]` collecting the receiver
/// path (`self.inner`, `state.workers`). Returns `None` when the
/// receiver is not a simple path (e.g. a call result) — unknown
/// receivers must not alias each other, so they are skipped.
fn receiver_path(
    toks: &[SigTok],
    flat: &[usize],
    dot_w: usize,
    self_ty: Option<&str>,
) -> Option<String> {
    let mut segs: Vec<&str> = Vec::new();
    let mut w = dot_w;
    loop {
        if w == 0 {
            break;
        }
        let prev = flat[w - 1];
        if toks[prev].kind != TokKind::Ident {
            break;
        }
        segs.push(toks[prev].text.as_str());
        // Another `ident .` hop before it?
        if w >= 2 && toks[flat[w - 2]].text == "." {
            w -= 2;
            continue;
        }
        break;
    }
    if segs.is_empty() {
        return None;
    }
    segs.reverse();
    if segs[0] == "self" {
        if let Some(ty) = self_ty {
            segs[0] = ty;
        }
    }
    Some(segs.join("."))
}

/// Finds call sites in a flat token run: `name(…)` and `recv.name(…)`.
/// Macros (`name!(…)`) and control keywords are excluded.
pub fn find_calls(toks: &[SigTok], flat: &[usize]) -> Vec<CallSite> {
    const NOT_CALLS: &[&str] = &[
        "if", "while", "for", "match", "loop", "return", "fn", "move", "in", "as", "let",
    ];
    let mut out = Vec::new();
    for w in 0..flat.len() {
        let i = flat[w];
        if toks[i].kind != TokKind::Ident || NOT_CALLS.contains(&toks[i].text.as_str()) {
            continue;
        }
        let Some(&nx) = flat.get(w + 1) else { continue };
        if toks[nx].text != "(" {
            continue;
        }
        let is_method = w > 0 && toks[flat[w - 1]].text == ".";
        out.push(CallSite {
            name: toks[i].text.clone(),
            is_method,
            tok: i,
            line: toks[i].line,
        });
    }
    out
}

/// Builds the CFG + guard liveness for one function body.
pub fn build_flow(f: &FnItem, toks: &[SigTok], self_ty: Option<&str>) -> Option<FnFlow> {
    let body = f.body.as_ref()?;
    let mut b = Builder {
        toks,
        self_ty,
        blocks: vec![
            BasicBlock { units: Vec::new(), succs: Vec::new() }, // entry
            BasicBlock { units: Vec::new(), succs: Vec::new() }, // exit
        ],
        guards: Vec::new(),
        evals: Vec::new(),
        cur: 0,
        next_scope: 0,
        scope_stack: Vec::new(),
        loop_stack: Vec::new(),
    };
    b.walk_block(body);
    let last = b.cur;
    b.blocks[last].succs.push(1);
    let mut flow = FnFlow { blocks: b.blocks, guards: b.guards, evals: b.evals };
    run_liveness(&mut flow);
    Some(flow)
}

struct Builder<'a> {
    toks: &'a [SigTok],
    self_ty: Option<&'a str>,
    blocks: Vec<BasicBlock>,
    guards: Vec<GuardDef>,
    evals: Vec<Eval>,
    cur: usize,
    next_scope: u32,
    scope_stack: Vec<u32>,
    /// `(continue_target, break_target, scope_depth_at_entry)` per
    /// enclosing loop. The depth lets `break`/`continue` edges kill
    /// every guard bound in a scope opened inside the loop — jumping
    /// straight to the head would otherwise carry a block-scoped guard
    /// over the back edge and fake a re-acquisition.
    loop_stack: Vec<(usize, usize, usize)>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(BasicBlock { units: Vec::new(), succs: Vec::new() });
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Starts a fresh block with an edge from the current one.
    fn advance(&mut self) -> usize {
        let b = self.new_block();
        let cur = self.cur;
        self.edge(cur, b);
        self.cur = b;
        b
    }

    fn emit(&mut self, u: Unit) {
        let cur = self.cur;
        self.blocks[cur].units.push(u);
    }

    fn open_scope(&mut self) -> u32 {
        let s = self.next_scope;
        self.next_scope += 1;
        self.scope_stack.push(s);
        self.emit(Unit::Enter(s));
        s
    }

    fn close_scope(&mut self, s: u32) {
        self.scope_stack.pop();
        self.emit(Unit::Exit(s));
    }

    fn walk_block(&mut self, b: &Block) {
        let s = self.open_scope();
        for stmt in &b.stmts {
            match &stmt.kind {
                StmtKind::Let(l) => {
                    if let Some(init) = &l.init {
                        self.expand_nested(init);
                        let bind =
                            if l.is_wild { None } else { l.name.as_deref() };
                        self.eval_chain(init, bind);
                    }
                    if let Some(els) = &l.else_block {
                        // Diverging path: the else block runs, then
                        // exits the function.
                        let after = self.new_block();
                        let cur = self.cur;
                        self.edge(cur, after);
                        let els_b = self.new_block();
                        self.edge(cur, els_b);
                        self.cur = els_b;
                        self.walk_block(els);
                        let els_end = self.cur;
                        self.edge(els_end, 1);
                        self.cur = after;
                    }
                }
                StmtKind::Expr(chain) => {
                    self.expand_nested(chain);
                    self.eval_chain(chain, None);
                }
                StmtKind::Item(_) | StmtKind::Empty => {}
            }
        }
        self.close_scope(s);
    }

    /// Emits CFG structure for every nested structured expression of
    /// `chain` (groups included — closure bodies are analyzed inline,
    /// a conservative approximation).
    fn expand_nested(&mut self, chain: &Chain) {
        chain.nested(&mut |s| self.walk_struct(s));
        // `nested` is shallow over parts but recurses into groups, so
        // every embedded construct is covered exactly once.
    }

    /// Creates the evaluation unit for the flat tokens of `chain`,
    /// registering guard acquisitions and control-flow escapes.
    fn eval_chain(&mut self, chain: &Chain, bind: Option<&str>) {
        let mut flat = Vec::new();
        chain.flat_tokens(&mut |i| flat.push(i));
        if flat.is_empty() {
            return;
        }
        let line = self.toks[flat[0]].line;
        let acqs = find_acquisitions(self.toks, &flat, self.self_ty);
        let scope = *self.scope_stack.last().unwrap_or(&0);
        let mut gens = Vec::new();
        for (lock, tok) in acqs {
            // A `let`-bound acquisition lives until its scope exits; a
            // temporary in a plain statement dies with the statement
            // and only matters for within-unit ordering.
            let gid = self.guards.len();
            self.guards.push(GuardDef {
                name: bind.map(str::to_string),
                lock,
                scope,
                line: self.toks[tok].line,
            });
            if bind.is_some() {
                gens.push((gid, tok));
            } else {
                // Keep the guard def for within-unit ordering but do
                // not let it survive the unit.
                gens.push((gid, tok));
            }
        }
        let temp = bind.is_none();
        let mut drops = Vec::new();
        for w in 0..flat.len() {
            let i = flat[w];
            if self.toks[i].text == "drop"
                && flat.get(w + 1).is_some_and(|&p| self.toks[p].text == "(")
            {
                if let Some(&n) = flat.get(w + 2) {
                    let name = self.toks[n].text.as_str();
                    for (gid, g) in self.guards.iter().enumerate() {
                        if g.name.as_deref() == Some(name) {
                            drops.push(gid);
                        }
                    }
                }
            }
        }
        let eid = self.evals.len();
        self.evals.push(Eval { toks: flat.clone(), line, gens, drops, held_before: 0 });
        self.emit(Unit::Eval(eid));
        if temp {
            // Statement-scoped temporaries die immediately: model as
            // an exit of a zero-length scope by recording the kill in
            // the same unit (drops applied after gens in transfer).
            let eval = self.evals.last_mut().expect("just pushed");
            let kills: Vec<usize> = eval.gens.iter().map(|&(g, _)| g).collect();
            eval.drops.extend(kills);
        }
        // Control-flow escapes.
        let has = |s: &str| flat.iter().any(|&i| self.toks[i].text == s);
        if has("return") {
            let cur = self.cur;
            self.edge(cur, 1);
            self.cur = self.new_block(); // unreachable continuation
        } else if has("?") {
            let cur = self.cur;
            self.edge(cur, 1); // early-error path
            self.advance();
        }
        if has("break") {
            if let Some(&(_, after, depth)) = self.loop_stack.last() {
                self.escape_edge(after, depth);
            }
        }
        if has("continue") {
            if let Some(&(head, _, depth)) = self.loop_stack.last() {
                self.escape_edge(head, depth);
            }
        }
    }

    /// Routes a `break`/`continue` to `target` through a synthetic
    /// block that exits every scope opened since the loop was entered
    /// (`depth` = scope-stack depth at loop entry), so block-scoped
    /// guards die on the jump path without affecting the fall-through.
    fn escape_edge(&mut self, target: usize, depth: usize) {
        let cur = self.cur;
        let esc = self.new_block();
        self.edge(cur, esc);
        for &s in self.scope_stack[depth..].iter().rev() {
            self.blocks[esc].units.push(Unit::Exit(s));
        }
        self.edge(esc, target);
    }

    fn walk_struct(&mut self, s: &StructExpr) {
        match &s.kind {
            StructKind::If { cond, then, els } => {
                self.expand_nested(cond);
                self.eval_chain(cond, None);
                let cond_b = self.cur;
                let join = self.new_block();
                let then_b = self.new_block();
                self.edge(cond_b, then_b);
                self.cur = then_b;
                self.walk_block(then);
                let then_end = self.cur;
                self.edge(then_end, join);
                if let Some(e) = els {
                    let els_b = self.new_block();
                    self.edge(cond_b, els_b);
                    self.cur = els_b;
                    self.walk_struct(e);
                    let els_end = self.cur;
                    self.edge(els_end, join);
                } else {
                    self.edge(cond_b, join);
                }
                self.cur = join;
            }
            StructKind::While { cond, body } => {
                let head = self.advance();
                self.expand_nested(cond);
                self.eval_chain(cond, None);
                let after = self.new_block();
                let body_b = self.new_block();
                self.edge(head, body_b);
                self.edge(head, after);
                let depth = self.scope_stack.len();
                self.loop_stack.push((head, after, depth));
                self.cur = body_b;
                self.walk_block(body);
                let body_end = self.cur;
                self.edge(body_end, head);
                self.loop_stack.pop();
                self.cur = after;
            }
            StructKind::Loop { body } => {
                let head = self.advance();
                let after = self.new_block();
                let body_b = self.new_block();
                self.edge(head, body_b);
                let depth = self.scope_stack.len();
                self.loop_stack.push((head, after, depth));
                self.cur = body_b;
                self.walk_block(body);
                let body_end = self.cur;
                self.edge(body_end, head);
                // Conservative exit edge: loops without `break` never
                // take it, which only over-approximates liveness.
                self.edge(body_end, after);
                self.loop_stack.pop();
                self.cur = after;
            }
            StructKind::For { iter, body, .. } => {
                // Iterator temporaries (e.g. a guard acquired in the
                // loop head) live for the whole loop: wrap the
                // construct in a scope of its own.
                let scope = self.open_scope();
                self.expand_nested(iter);
                self.eval_for_head(iter, scope);
                let head = self.advance();
                let after = self.new_block();
                let body_b = self.new_block();
                self.edge(head, body_b);
                self.edge(head, after);
                let depth = self.scope_stack.len();
                self.loop_stack.push((head, after, depth));
                self.cur = body_b;
                self.walk_block(body);
                let body_end = self.cur;
                self.edge(body_end, head);
                self.loop_stack.pop();
                self.cur = after;
                self.close_scope(scope);
            }
            StructKind::Match { scrutinee, arms } => {
                let scope = self.open_scope();
                self.expand_nested(scrutinee);
                self.eval_for_head(scrutinee, scope);
                let scrut_b = self.cur;
                let join = self.new_block();
                for arm in arms {
                    let arm_b = self.new_block();
                    self.edge(scrut_b, arm_b);
                    self.cur = arm_b;
                    if let Some(g) = &arm.guard {
                        self.expand_nested(g);
                        self.eval_chain(g, None);
                    }
                    self.expand_nested(&arm.body);
                    self.eval_chain(&arm.body, None);
                    let arm_end = self.cur;
                    self.edge(arm_end, join);
                }
                if arms.is_empty() {
                    self.edge(scrut_b, join);
                }
                self.cur = join;
                self.close_scope(scope);
            }
            StructKind::Block { block, .. } => {
                self.walk_block(block);
            }
        }
    }

    /// Like [`Builder::eval_chain`] but acquisitions become
    /// construct-scoped temporaries (`for` heads, `match` scrutinees):
    /// live until `scope` exits.
    fn eval_for_head(&mut self, chain: &Chain, scope: u32) {
        let mut flat = Vec::new();
        chain.flat_tokens(&mut |i| flat.push(i));
        if flat.is_empty() {
            return;
        }
        let line = self.toks[flat[0]].line;
        let acqs = find_acquisitions(self.toks, &flat, self.self_ty);
        let mut gens = Vec::new();
        for (lock, tok) in acqs {
            let gid = self.guards.len();
            self.guards.push(GuardDef {
                name: None,
                lock,
                scope,
                line: self.toks[tok].line,
            });
            gens.push((gid, tok));
        }
        let eid = self.evals.len();
        self.evals.push(Eval { toks: flat, line, gens, drops: Vec::new(), held_before: 0 });
        self.emit(Unit::Eval(eid));
    }
}

/// Forward may-analysis filling [`Eval::held_before`].
fn run_liveness(flow: &mut FnFlow) {
    let n = flow.blocks.len();
    // Guards beyond 64 are ignored (no function here comes close);
    // the analysis stays sound for the first 64.
    let scope_mask: Vec<u64> = {
        let max_scope =
            flow.guards.iter().map(|g| g.scope + 1).max().unwrap_or(0) as usize;
        let mut m = vec![0u64; max_scope];
        for (i, g) in flow.guards.iter().enumerate().take(64) {
            m[g.scope as usize] |= 1 << i;
        }
        m
    };
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, blk) in flow.blocks.iter().enumerate() {
        for &s in &blk.succs {
            preds[s].push(b);
        }
    }
    let mut out_state = vec![0u64; n];
    let mut in_state = vec![0u64; n];
    // Monotone over a finite lattice: converges within n+1 passes.
    for _ in 0..n + 1 {
        let mut changed = false;
        for b in 0..n {
            let mut inm = 0u64;
            for &p in &preds[b] {
                inm |= out_state[p];
            }
            in_state[b] = inm;
            let mut cur = inm;
            for u in &flow.blocks[b].units {
                match *u {
                    Unit::Enter(_) => {}
                    Unit::Exit(s) => {
                        cur &= !scope_mask.get(s as usize).copied().unwrap_or(0)
                    }
                    Unit::Eval(e) => {
                        let ev = &flow.evals[e];
                        for &(g, _) in &ev.gens {
                            if g < 64 {
                                cur |= 1 << g;
                            }
                        }
                        for &g in &ev.drops {
                            if g < 64 {
                                cur &= !(1 << g);
                            }
                        }
                    }
                }
            }
            if out_state[b] != cur {
                out_state[b] = cur;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Final pass: record the held-set entering every unit.
    #[allow(clippy::needless_range_loop)] // `b` indexes two arrays in lockstep
    for b in 0..n {
        let mut cur = in_state[b];
        for u in &flow.blocks[b].units {
            match *u {
                Unit::Enter(_) => {}
                Unit::Exit(s) => cur &= !scope_mask.get(s as usize).copied().unwrap_or(0),
                Unit::Eval(e) => {
                    flow.evals[e].held_before = cur;
                    let ev = &flow.evals[e];
                    let gens: Vec<usize> = ev.gens.iter().map(|&(g, _)| g).collect();
                    let drops = ev.drops.clone();
                    for g in gens {
                        if g < 64 {
                            cur |= 1 << g;
                        }
                    }
                    for g in drops {
                        if g < 64 {
                            cur &= !(1 << g);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{parse_file, significant, ItemKind};

    fn flow_of(src: &str) -> FnFlow {
        let sig = significant(src);
        let (ast, cov) = parse_file(&sig);
        assert_eq!(cov.consumed, cov.total);
        for item in &ast.items {
            if let ItemKind::Fn(f) = &item.kind {
                return build_flow(f, &sig, Some("T")).expect("fn has a body");
            }
        }
        panic!("no fn in source");
    }

    /// Held-locks at the unit whose tokens contain `marker`.
    fn held_at(src: &str, marker: &str) -> Vec<String> {
        let sig = significant(src);
        let (ast, _) = parse_file(&sig);
        for item in &ast.items {
            if let ItemKind::Fn(f) = &item.kind {
                let flow = build_flow(f, &sig, Some("T")).unwrap();
                for ev in &flow.evals {
                    if ev.toks.iter().any(|&i| sig[i].text == marker) {
                        return flow
                            .held_locks(ev.held_before)
                            .into_iter()
                            .map(str::to_string)
                            .collect();
                    }
                }
            }
        }
        panic!("marker {marker} not found");
    }

    #[test]
    fn guard_live_until_scope_end() {
        let src = r#"
            fn f(m: &Mutex<u32>) {
                let g = m.lock().unwrap();
                use_it(&g);
                after();
            }
        "#;
        assert_eq!(held_at(src, "use_it"), ["m"]);
        assert_eq!(held_at(src, "after"), ["m"]);
    }

    #[test]
    fn inner_block_releases_guard() {
        let src = r#"
            fn f(m: &Mutex<u32>) {
                {
                    let g = m.lock().unwrap();
                    use_it(&g);
                }
                after();
            }
        "#;
        assert_eq!(held_at(src, "use_it"), ["m"]);
        assert_eq!(held_at(src, "after"), Vec::<String>::new());
    }

    #[test]
    fn explicit_drop_releases_guard() {
        let src = r#"
            fn f(m: &Mutex<u32>) {
                let g = m.lock().unwrap();
                use_it(&g);
                drop(g);
                after();
            }
        "#;
        assert_eq!(held_at(src, "after"), Vec::<String>::new());
    }

    #[test]
    fn self_receiver_normalizes_to_impl_type() {
        let src = r#"
            fn f(&self) {
                let g = self.inner.lock().unwrap();
                use_it(&g);
            }
        "#;
        assert_eq!(held_at(src, "use_it"), ["T.inner"]);
    }

    #[test]
    fn for_head_temporary_lives_through_body() {
        let src = r#"
            fn f(ws: &Mutex<Vec<W>>) {
                for w in ws.lock().unwrap().drain(..) {
                    body(w);
                }
                after();
            }
        "#;
        assert_eq!(held_at(src, "body"), ["ws"]);
        assert_eq!(held_at(src, "after"), Vec::<String>::new());
    }

    #[test]
    fn statement_temporary_dies_with_the_statement() {
        let src = r#"
            fn f(m: &Mutex<Vec<u32>>) {
                m.lock().unwrap().push(1);
                after();
            }
        "#;
        assert_eq!(held_at(src, "after"), Vec::<String>::new());
    }

    #[test]
    fn continue_releases_inner_scope_guards() {
        // The worker-loop shape: a guard is block-scoped inside a
        // `loop`, and a `continue` jumps back to the head from within
        // that block. The back edge must kill the guard — otherwise
        // the next acquisition looks like a self-deadlock.
        let src = r#"
            fn f(m: &Mutex<Q>) {
                loop {
                    let batch = {
                        let g = m.lock().unwrap();
                        if g.is_empty() {
                            continue;
                        }
                        take(g)
                    };
                    run(batch);
                }
            }
        "#;
        let sig = significant(src);
        let (ast, _) = parse_file(&sig);
        let ItemKind::Fn(f) = &ast.items[0].kind else { panic!() };
        let flow = build_flow(f, &sig, None).unwrap();
        for ev in &flow.evals {
            for &(_, tok) in &ev.gens {
                assert_eq!(
                    flow.held_locks(ev.held_before),
                    Vec::<&str>::new(),
                    "no lock held entering the acquisition at line {}",
                    sig[tok].line
                );
            }
        }
        assert_eq!(held_at(src, "run"), Vec::<String>::new());
    }

    #[test]
    fn break_releases_inner_scope_guards() {
        let src = r#"
            fn f(m: &Mutex<u32>) {
                while cond() {
                    let g = m.lock().unwrap();
                    if g.done() {
                        break;
                    }
                }
                after();
            }
        "#;
        assert_eq!(held_at(src, "after"), Vec::<String>::new());
    }

    #[test]
    fn branches_merge_as_may_analysis() {
        let src = r#"
            fn f(m: &Mutex<u32>, c: bool) {
                let g = if c { Some(m.lock().unwrap()) } else { None };
                after(g);
            }
        "#;
        // The acquisition happens in a nested block whose scope closed:
        // conservatively no guard is live after (known blind spot —
        // binding a guard through a branch is not house style).
        let _ = held_at(src, "after");
    }

    #[test]
    fn wildcard_let_is_statement_scoped() {
        let src = r#"
            fn f(m: &Mutex<u32>) {
                let _ = m.lock().unwrap();
                after();
            }
        "#;
        assert_eq!(held_at(src, "after"), Vec::<String>::new());
    }

    #[test]
    fn calls_found_methods_and_free() {
        let sig = significant("fn f() { foo::bar(1); x.method(2); mac!(3); if cond(x) {} }");
        let (ast, _) = parse_file(&sig);
        let ItemKind::Fn(f) = &ast.items[0].kind else { panic!() };
        let flow = build_flow(f, &sig, None).unwrap();
        let mut names = Vec::new();
        for ev in &flow.evals {
            for c in find_calls(&sig, &ev.toks) {
                names.push((c.name, c.is_method));
            }
        }
        names.sort();
        assert!(names.contains(&("bar".into(), false)));
        assert!(names.contains(&("method".into(), true)));
        assert!(names.contains(&("cond".into(), false)));
        assert!(!names.iter().any(|(n, _)| n == "mac"), "macros are not calls: {names:?}");
    }

    #[test]
    fn guard_counts_stay_small() {
        let flow = flow_of(
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) { let x = a.lock().unwrap(); let y = b.lock().unwrap(); }",
        );
        assert_eq!(flow.guards.len(), 2);
        assert_eq!(flow.guards[0].lock, "a");
        assert_eq!(flow.guards[1].lock, "b");
    }
}
