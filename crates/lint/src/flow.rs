//! Flow-sensitive rules over the AST/CFG tier.
//!
//! [`file_flow`] runs per file: it parses ([`crate::ast`]), builds
//! per-function CFGs with guard liveness ([`crate::cfg`]), extracts a
//! [`FnSummary`] per function (locks acquired, acquisition order,
//! calls made while holding, blocking I/O), and evaluates the local
//! parts of the four flow rules:
//!
//! - `result-dropped` (serve + store): `let _ =` a fallible call,
//!   empty `Err(_) => {}` arms, and dead `.ok();` statements.
//! - `fp-reduction-order` (kernel crates): float `.sum()`/`.product()`
//!   and mutable float accumulators over chunked iteration — both
//!   bypass nd-par's fixed reduction order and break bit-identity.
//! - `unbounded-growth` (serve): collections growing inside
//!   `while`/`loop` (iteration count not tied to a finite input) with
//!   no observable bound in the function.
//!
//! [`global_pass`] then joins every file's summaries into the
//! workspace lock-acquisition graph: acquired-lock closures propagate
//! through the call graph, cycles (including self-reacquisition)
//! become `lock-order` findings, blocking I/O under a live guard —
//! direct or through a callee — is flagged in the serve path, and
//! `let _ =` candidates resolve against workspace functions that
//! return `Result`.

use crate::ast::{
    self, Arm, Block, Chain, FnItem, Item, ItemKind, SigTok, StmtKind, StructExpr,
    StructKind,
};
use crate::cfg::{build_flow, find_calls, Unit, GUARD_METHODS};
use crate::lexer::TokKind;
use crate::rules::{comment_allows, scope_for, Finding, IO_CALLS};
use std::collections::{BTreeMap, BTreeSet};

/// Callee names whose dropped return value is a dropped `Result`
/// regardless of workspace summaries (std / known-fallible surface).
const FALLIBLE_METHODS: &[&str] = &[
    "join",
    "send",
    "recv",
    "write",
    "write_all",
    "write_fmt",
    "flush",
    "persist",
    "sync_all",
    "read_exact",
    "read_to_end",
    "set_read_timeout",
    "set_write_timeout",
    "set_nodelay",
    "set_nonblocking",
    "shutdown",
    "remove_file",
    "rename",
    "create_dir_all",
];

/// Method names that collide with the std prelude surface
/// (collections, iterators, channels, threads). A method call with one
/// of these names is almost always `Vec::drain`, `HashMap::get`,
/// `Sender::send`, … — never the workspace fn that happens to share
/// the name — so the global resolver refuses to bind them even when
/// the name is unique in the workspace. Free calls are unaffected.
const STD_METHODS: &[&str] = &[
    "append", "as_ref", "clear", "clone", "collect", "contains", "contains_key",
    "count", "drain", "entry", "extend", "filter", "find", "flush", "fold", "get",
    "get_mut", "insert", "into_iter", "is_empty", "iter", "iter_mut", "join", "keys",
    "len", "map", "max", "min", "next", "notify_all", "notify_one", "parse", "pop",
    "position", "push", "read", "recv", "remove", "replace", "reserve", "resize",
    "retain", "send", "sort", "sort_by", "split", "split_off", "sum", "swap", "take",
    "truncate", "values", "wait", "write",
];

/// Iterator adapters that split data into chunks: accumulating across
/// them in ad-hoc order is exactly what nd-par's in-order reduction
/// exists to prevent.
const CHUNK_SOURCES: &[&str] =
    &["chunks", "chunks_exact", "chunk_ranges", "par_chunks", "rchunks", "windows"];

/// Growth methods watched by `unbounded-growth`.
const GROW_METHODS: &[&str] =
    &["push", "push_back", "push_front", "extend", "extend_from_slice", "append", "insert"];

/// Methods that count as an observable bound on a collection.
const BOUND_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "truncate",
    "pop",
    "pop_front",
    "pop_back",
    "remove",
    "drain",
    "clear",
    "swap_remove",
    "split_off",
    "capacity",
];

/// What one function does with locks, calls, and I/O — the unit the
/// workspace-global pass joins over.
#[derive(Debug, Clone, PartialEq)]
pub struct FnSummary {
    /// Function name (unqualified).
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// Definition line.
    pub line: u32,
    /// Return type mentions `Result`.
    pub returns_result: bool,
    /// Locks acquired directly: `(lock_id, line)`.
    pub acquires: Vec<(String, u32)>,
    /// Acquisition-order edges observed directly:
    /// `(held, acquired, line)`.
    pub ordered: Vec<(String, String, u32)>,
    /// Callees (deduped): `(name, is_method)`.
    pub calls: Vec<(String, bool)>,
    /// Calls made while holding a lock:
    /// `(held_lock, callee, is_method, line)`.
    pub calls_holding: Vec<(String, String, bool, u32)>,
    /// Blocking I/O performed while holding a lock:
    /// `(lock, io_call, line)`.
    pub io_holding: Vec<(String, String, u32)>,
    /// Blocking I/O performed at all (deduped call names).
    pub io_calls: Vec<String>,
}

/// A `let _ = call(…)` site whose fallibility needs workspace
/// knowledge: resolved in [`global_pass`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropCandidate {
    /// Workspace-relative file.
    pub file: String,
    /// Site line.
    pub line: u32,
    /// Callees in the discarded expression: `(name, is_method)`.
    pub calls: Vec<(String, bool)>,
}

/// Everything the per-file pass produces. Cacheable: a file's record
/// depends only on its own contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileFlow {
    /// Local findings (suppression comments already honored).
    pub findings: Vec<Finding>,
    /// Per-function summaries for the global pass.
    pub summaries: Vec<FnSummary>,
    /// Unresolved `let _ =` sites.
    pub candidates: Vec<DropCandidate>,
    /// `nd-lint:` comments, for suppressing global findings that land
    /// in this file: `(line, text)`.
    pub allow_comments: Vec<(u32, String)>,
    /// Parser coverage: `(consumed, total)` significant tokens.
    pub coverage: (usize, usize),
}

/// Runs the flow tier on one file.
pub fn file_flow(rel: &str, src: &str) -> FileFlow {
    let scope = scope_for(rel);
    let toks = ast::significant(src);
    let (parsed, cov) = ast::parse_file(&toks);
    let comments = ast::comments(src);
    let allow_comments: Vec<(u32, String)> = comments
        .iter()
        .filter(|(_, t)| t.contains("nd-lint:"))
        .map(|(l, t)| (*l, t.clone()))
        .collect();

    let mut fx = FileCx {
        rel,
        toks: &toks,
        findings: Vec::new(),
        summaries: Vec::new(),
        candidates: Vec::new(),
        error_flow: scope.error_flow,
        fp_order: scope.fp_order,
        growth: scope.growth,
    };
    fx.walk_items(&parsed.items, None);

    let mut findings = fx.findings;
    findings.retain(|f| {
        !allow_comments
            .iter()
            .any(|(l, t)| (*l == f.line || *l + 1 == f.line) && comment_allows(t, f.rule))
    });
    findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));

    FileFlow {
        findings,
        summaries: fx.summaries,
        candidates: fx.candidates,
        allow_comments,
        coverage: (cov.consumed, cov.total),
    }
}

struct FileCx<'a> {
    rel: &'a str,
    toks: &'a [SigTok],
    findings: Vec<Finding>,
    summaries: Vec<FnSummary>,
    candidates: Vec<DropCandidate>,
    error_flow: bool,
    fp_order: bool,
    growth: bool,
}

impl<'a> FileCx<'a> {
    fn walk_items(&mut self, items: &[Item], self_ty: Option<&str>) {
        for item in items {
            if item.is_test {
                continue;
            }
            match &item.kind {
                ItemKind::Fn(f) => self.visit_fn(f, self_ty, item.line),
                ItemKind::Container { keyword, name, items } => {
                    let inner_ty =
                        if *keyword == "impl" { name.as_deref() } else { None };
                    self.walk_items(items, inner_ty);
                }
                ItemKind::Other => {}
            }
        }
    }

    fn visit_fn(&mut self, f: &FnItem, self_ty: Option<&str>, line: u32) {
        let Some(body) = &f.body else { return };
        self.summarize(f, self_ty, line);
        if self.error_flow {
            self.rule_result_dropped(body);
        }
        if self.fp_order {
            self.rule_fp_reduction(body);
        }
        if self.growth {
            let mut scopes: Vec<GrowScope> = vec![GrowScope::default()];
            let evidence = self.bound_evidence(body);
            self.rule_growth_block(body, &mut scopes, &evidence);
        }
    }

    fn push(&mut self, rule: &'static str, line: u32, message: String) {
        self.findings.push(Finding {
            rule,
            file: self.rel.to_string(),
            line,
            message,
        });
    }

    // ---- summaries (locks / calls / io) --------------------------------

    fn summarize(&mut self, f: &FnItem, self_ty: Option<&str>, line: u32) {
        let Some(flow) = build_flow(f, self.toks, self_ty) else { return };
        let mut s = FnSummary {
            name: f.name.clone(),
            file: self.rel.to_string(),
            line,
            returns_result: f.returns_result,
            acquires: Vec::new(),
            ordered: Vec::new(),
            calls: Vec::new(),
            calls_holding: Vec::new(),
            io_holding: Vec::new(),
            io_calls: Vec::new(),
        };
        let mut calls_seen: BTreeSet<(String, bool)> = BTreeSet::new();
        let mut io_seen: BTreeSet<String> = BTreeSet::new();
        for blk in &flow.blocks {
            for u in &blk.units {
                let Unit::Eval(e) = *u else { continue };
                let ev = &flow.evals[e];
                let held = flow.held_locks(ev.held_before);
                let gens: Vec<(&str, usize, u32)> = ev
                    .gens
                    .iter()
                    .map(|&(g, tok)| {
                        (flow.guards[g].lock.as_str(), tok, flow.guards[g].line)
                    })
                    .collect();
                for &(lock, _, gline) in &gens {
                    s.acquires.push((lock.to_string(), gline));
                    for &h in &held {
                        s.ordered.push((h.to_string(), lock.to_string(), gline));
                    }
                }
                for (i, &(a, ta, _)) in gens.iter().enumerate() {
                    for &(b, tb, bline) in &gens[i + 1..] {
                        if ta < tb {
                            s.ordered.push((a.to_string(), b.to_string(), bline));
                        }
                    }
                }
                for c in find_calls(self.toks, &ev.toks) {
                    if GUARD_METHODS.contains(&c.name.as_str()) || c.name == "drop" {
                        continue;
                    }
                    if calls_seen.insert((c.name.clone(), c.is_method)) {
                        s.calls.push((c.name.clone(), c.is_method));
                    }
                    // Locks live at this call: held on entry plus any
                    // acquired earlier in the same statement.
                    let mut at_call: Vec<&str> = held.clone();
                    for &(lock, tok, _) in &gens {
                        if tok < c.tok {
                            at_call.push(lock);
                        }
                    }
                    at_call.sort_unstable();
                    at_call.dedup();
                    for &lock in &at_call {
                        s.calls_holding.push((
                            lock.to_string(),
                            c.name.clone(),
                            c.is_method,
                            c.line,
                        ));
                    }
                    if IO_CALLS.contains(&c.name.as_str()) {
                        if io_seen.insert(c.name.clone()) {
                            s.io_calls.push(c.name.clone());
                        }
                        for &lock in &at_call {
                            s.io_holding.push((
                                lock.to_string(),
                                c.name.clone(),
                                c.line,
                            ));
                        }
                    }
                }
            }
        }
        self.summaries.push(s);
    }

    // ---- result-dropped ------------------------------------------------

    fn rule_result_dropped(&mut self, body: &Block) {
        self.result_block(body);
    }

    fn result_block(&mut self, b: &Block) {
        let n = b.stmts.len();
        for (i, stmt) in b.stmts.iter().enumerate() {
            match &stmt.kind {
                StmtKind::Let(l) => {
                    if let Some(init) = &l.init {
                        if l.is_wild {
                            self.check_wild_let(init);
                        }
                        self.result_nested(init);
                    }
                    if let Some(els) = &l.else_block {
                        self.result_block(els);
                    }
                }
                StmtKind::Expr(chain) => {
                    // Dead `.ok();` — a value-position `.ok()` (last
                    // expression) is a conversion, not a drop.
                    if i + 1 < n {
                        self.check_ok_tail(chain);
                    }
                    self.result_nested(chain);
                }
                StmtKind::Item(item) => {
                    if let ItemKind::Fn(f) = &item.kind {
                        if let Some(inner) = &f.body {
                            if !item.is_test {
                                self.result_block(inner);
                            }
                        }
                    }
                }
                StmtKind::Empty => {}
            }
        }
    }

    fn result_nested(&mut self, chain: &Chain) {
        chain.nested(&mut |s| match &s.kind {
            StructKind::If { cond, then, els } => {
                self.result_nested(cond);
                self.result_block(then);
                if let Some(e) = els {
                    self.result_struct(e);
                }
            }
            StructKind::While { cond, body } => {
                self.result_nested(cond);
                self.result_block(body);
            }
            StructKind::For { iter, body, .. } => {
                self.result_nested(iter);
                self.result_block(body);
            }
            StructKind::Loop { body } => self.result_block(body),
            StructKind::Match { scrutinee, arms } => {
                self.result_nested(scrutinee);
                for arm in arms {
                    self.check_err_arm(arm);
                    self.result_nested(&arm.body);
                    arm.body.nested(&mut |inner| self.result_struct(inner));
                }
            }
            StructKind::Block { block, .. } => self.result_block(block),
        });
    }

    fn result_struct(&mut self, s: &StructExpr) {
        // Wrap a single struct expr as a chain-free visit.
        match &s.kind {
            StructKind::If { cond, then, els } => {
                self.result_nested(cond);
                self.result_block(then);
                if let Some(e) = els {
                    self.result_struct(e);
                }
            }
            StructKind::While { cond, body } => {
                self.result_nested(cond);
                self.result_block(body);
            }
            StructKind::For { iter, body, .. } => {
                self.result_nested(iter);
                self.result_block(body);
            }
            StructKind::Loop { body } => self.result_block(body),
            StructKind::Match { scrutinee, arms } => {
                self.result_nested(scrutinee);
                for arm in arms {
                    self.check_err_arm(arm);
                    self.result_nested(&arm.body);
                }
            }
            StructKind::Block { block, .. } => self.result_block(block),
        }
    }

    fn check_wild_let(&mut self, init: &Chain) {
        let mut flat = Vec::new();
        init.flat_tokens(&mut |i| flat.push(i));
        let calls = find_calls(self.toks, &flat);
        if calls.is_empty() {
            return;
        }
        let line = self.toks[flat[0]].line;
        if let Some(c) =
            calls.iter().find(|c| FALLIBLE_METHODS.contains(&c.name.as_str()))
        {
            self.push(
                "result-dropped",
                line,
                format!(
                    "`let _ =` discards the Result of `{}` — handle the error or match on it explicitly",
                    c.name
                ),
            );
            return;
        }
        // Workspace-defined callee? Resolved in the global pass.
        self.candidates.push(DropCandidate {
            file: self.rel.to_string(),
            line,
            calls: calls.into_iter().map(|c| (c.name, c.is_method)).collect(),
        });
    }

    fn check_ok_tail(&mut self, chain: &Chain) {
        let mut flat = Vec::new();
        chain.flat_tokens(&mut |i| flat.push(i));
        let n = flat.len();
        if n < 5 {
            return; // needs at least a call before the `.ok()`
        }
        let t = |w: usize| self.toks[flat[w]].text.as_str();
        if t(n - 4) == "." && t(n - 3) == "ok" && t(n - 2) == "(" && t(n - 1) == ")" {
            let has_call = find_calls(self.toks, &flat[..n - 4])
                .iter()
                .any(|c| !GUARD_METHODS.contains(&c.name.as_str()));
            if has_call {
                self.push(
                    "result-dropped",
                    self.toks[flat[0]].line,
                    "statement ends in `.ok()` — the error is silently discarded; handle it or `let _ =` with a justification".to_string(),
                );
            }
        }
    }

    fn check_err_arm(&mut self, arm: &Arm) {
        if !arm.pat_text.starts_with("Err") {
            return;
        }
        // A guard (`Err(e) if e.kind() == Interrupted => {}`) means the
        // author discriminated a specific error and chose to continue —
        // the EINTR-retry idiom, not swallowing.
        if arm.guard.is_some() {
            return;
        }
        let mut flat = Vec::new();
        arm.body.flat_tokens(&mut |i| flat.push(i));
        let texts: Vec<&str> =
            flat.iter().map(|&i| self.toks[i].text.as_str()).collect();
        let unit_body = texts == ["(", ")"];
        let mut empty_block = false;
        if texts.is_empty() {
            let mut blocks = 0usize;
            let mut empty = true;
            arm.body.nested(&mut |s| {
                blocks += 1;
                if let StructKind::Block { block, .. } = &s.kind {
                    if !block.stmts.is_empty() {
                        empty = false;
                    }
                } else {
                    empty = false;
                }
            });
            empty_block = blocks > 0 && empty;
        }
        if unit_body || empty_block {
            self.push(
                "result-dropped",
                arm.line,
                format!(
                    "`{} => {}` swallows the error — log, propagate, or count it",
                    arm.pat_text,
                    if unit_body { "()" } else { "{}" }
                ),
            );
        }
    }

    // ---- fp-reduction-order --------------------------------------------

    fn rule_fp_reduction(&mut self, body: &Block) {
        // Float-typed accumulators bound in this function.
        let mut accs: BTreeSet<String> = BTreeSet::new();
        collect_float_lets(self, body, &mut accs);
        self.fp_block(body, &accs, false);
    }

    fn fp_block(&mut self, b: &Block, accs: &BTreeSet<String>, in_chunk_loop: bool) {
        for stmt in &b.stmts {
            match &stmt.kind {
                StmtKind::Let(l) => {
                    if let Some(init) = &l.init {
                        self.fp_chain(init, accs, in_chunk_loop, Some(&l.ty_text));
                    }
                    if let Some(els) = &l.else_block {
                        self.fp_block(els, accs, in_chunk_loop);
                    }
                }
                StmtKind::Expr(chain) => {
                    self.fp_chain(chain, accs, in_chunk_loop, None);
                    if in_chunk_loop {
                        self.fp_accumulate(chain, accs);
                    }
                }
                StmtKind::Item(_) | StmtKind::Empty => {}
            }
        }
    }

    fn fp_chain(
        &mut self,
        chain: &Chain,
        accs: &BTreeSet<String>,
        in_chunk_loop: bool,
        let_ty: Option<&str>,
    ) {
        self.check_float_sum(chain, let_ty);
        chain.nested(&mut |s| match &s.kind {
            StructKind::If { cond, then, els } => {
                self.fp_chain(cond, accs, in_chunk_loop, None);
                self.fp_block(then, accs, in_chunk_loop);
                if let Some(e) = els {
                    self.fp_struct(e, accs, in_chunk_loop);
                }
            }
            StructKind::While { cond, body } => {
                self.fp_chain(cond, accs, in_chunk_loop, None);
                self.fp_block(body, accs, in_chunk_loop);
            }
            StructKind::For { iter, body, .. } => {
                self.fp_chain(iter, accs, in_chunk_loop, None);
                let chunky = self.mentions_chunk_source(iter);
                self.fp_block(body, accs, in_chunk_loop || chunky);
            }
            StructKind::Loop { body } => self.fp_block(body, accs, in_chunk_loop),
            StructKind::Match { scrutinee, arms } => {
                self.fp_chain(scrutinee, accs, in_chunk_loop, None);
                for arm in arms {
                    self.fp_chain(&arm.body, accs, in_chunk_loop, None);
                }
            }
            StructKind::Block { block, .. } => self.fp_block(block, accs, in_chunk_loop),
        });
    }

    fn fp_struct(&mut self, s: &StructExpr, accs: &BTreeSet<String>, in_chunk: bool) {
        match &s.kind {
            StructKind::If { cond, then, els } => {
                self.fp_chain(cond, accs, in_chunk, None);
                self.fp_block(then, accs, in_chunk);
                if let Some(e) = els {
                    self.fp_struct(e, accs, in_chunk);
                }
            }
            StructKind::Block { block, .. } => self.fp_block(block, accs, in_chunk),
            _ => {}
        }
    }

    fn mentions_chunk_source(&self, chain: &Chain) -> bool {
        let mut flat = Vec::new();
        chain.flat_tokens(&mut |i| flat.push(i));
        flat.windows(2).any(|w| {
            self.toks[w[0]].text == "."
                && CHUNK_SOURCES.contains(&self.toks[w[1]].text.as_str())
        })
    }

    /// `acc += …` / `acc = acc + …` where `acc` is float-typed, inside
    /// a loop over chunked data.
    fn fp_accumulate(&mut self, chain: &Chain, accs: &BTreeSet<String>) {
        let mut flat = Vec::new();
        chain.flat_tokens(&mut |i| flat.push(i));
        if flat.len() < 3 {
            return;
        }
        let t = |w: usize| self.toks[flat[w]].text.as_str();
        let name = t(0);
        if !accs.contains(name) {
            return;
        }
        let compound = t(1) == "+" && t(2) == "=";
        let rebind = flat.len() >= 4 && t(1) == "=" && t(2) == name && t(3) == "+";
        if compound || rebind {
            self.push(
                "fp-reduction-order",
                self.toks[flat[0]].line,
                format!(
                    "float accumulator `{name}` updated inside a loop over chunked data — reduction order is not fixed; use nd_par's in-order reduction or justify with `// nd-lint: allow(fp-reduction-order)`"
                ),
            );
        }
    }

    /// `.sum()` / `.product()` with float evidence in the statement.
    fn check_float_sum(&mut self, chain: &Chain, let_ty: Option<&str>) {
        let mut flat = Vec::new();
        chain.flat_tokens(&mut |i| flat.push(i));
        let float_stmt = flat.iter().any(|&i| is_float_token(&self.toks[i]))
            || let_ty.is_some_and(|t| t.contains("f32") || t.contains("f64"));
        if !float_stmt {
            return;
        }
        for w in 0..flat.len().saturating_sub(1) {
            if self.toks[flat[w]].text != "." {
                continue;
            }
            let name = self.toks[flat[w + 1]].text.as_str();
            if name != "sum" && name != "product" {
                continue;
            }
            // `.sum(` or `.sum::<f64>(` — anything else isn't a call.
            let after = flat.get(w + 2).map(|&i| self.toks[i].text.as_str());
            if !matches!(after, Some("(") | Some(":")) {
                continue;
            }
            self.push(
                "fp-reduction-order",
                self.toks[flat[w + 1]].line,
                format!(
                    "float `.{name}()` relies on iterator reduction order — use nd_par's in-order reduction (or an explicit serial loop with `// nd-lint: allow(fp-reduction-order)` justifying why order is fixed)"
                ),
            );
        }
    }

    // ---- unbounded-growth ----------------------------------------------

    /// Collection names with an observable bound somewhere in the
    /// function (`x.len()`, `x.pop()`, `x.truncate(n)`, …).
    fn bound_evidence(&self, body: &Block) -> BTreeSet<String> {
        let mut ev = BTreeSet::new();
        let mut visit = |chain: &Chain| {
            let mut flat = Vec::new();
            chain.flat_tokens(&mut |i| flat.push(i));
            for w in 0..flat.len().saturating_sub(2) {
                if self.toks[flat[w + 1]].text == "."
                    && self.toks[flat[w]].kind == TokKind::Ident
                    && BOUND_METHODS.contains(&self.toks[flat[w + 2]].text.as_str())
                {
                    ev.insert(self.toks[flat[w]].text.clone());
                }
            }
        };
        walk_chains(body, &mut visit);
        ev
    }

    fn rule_growth_block(
        &mut self,
        b: &Block,
        scopes: &mut Vec<GrowScope>,
        evidence: &BTreeSet<String>,
    ) {
        scopes.push(GrowScope::default());
        for stmt in &b.stmts {
            match &stmt.kind {
                StmtKind::Let(l) => {
                    if let Some(name) = &l.name {
                        scopes.last_mut().expect("scope pushed").names.insert(name.clone());
                    }
                    if let Some(init) = &l.init {
                        self.growth_nested(init, scopes, evidence);
                    }
                    if let Some(els) = &l.else_block {
                        self.rule_growth_block(els, scopes, evidence);
                    }
                }
                StmtKind::Expr(chain) => {
                    if in_loop(scopes) {
                        self.check_growth_site(chain, scopes, evidence);
                    }
                    self.growth_nested(chain, scopes, evidence);
                }
                StmtKind::Item(_) | StmtKind::Empty => {}
            }
        }
        scopes.pop();
    }

    fn growth_nested(
        &mut self,
        chain: &Chain,
        scopes: &mut Vec<GrowScope>,
        evidence: &BTreeSet<String>,
    ) {
        chain.nested(&mut |s| match &s.kind {
            StructKind::If { cond, then, els } => {
                self.growth_nested(cond, scopes, evidence);
                self.rule_growth_block(then, scopes, evidence);
                if let Some(e) = els {
                    self.growth_struct(e, scopes, evidence);
                }
            }
            StructKind::While { cond, body } => {
                self.growth_nested(cond, scopes, evidence);
                scopes.push(GrowScope { unbounded_loop: true, names: BTreeSet::new() });
                self.rule_growth_block(body, scopes, evidence);
                scopes.pop();
            }
            StructKind::For { pat_text, iter, body } => {
                self.growth_nested(iter, scopes, evidence);
                // A `for` loop iterates a finite collection: growth in
                // its body is bounded by the input size, so it opens a
                // scope (for per-iteration names) but not an unbounded
                // iteration context.
                let mut sc = GrowScope { unbounded_loop: false, names: BTreeSet::new() };
                // The loop variable is per-iteration state.
                for part in pat_text.split(|c: char| !c.is_alphanumeric() && c != '_') {
                    if !part.is_empty() {
                        sc.names.insert(part.to_string());
                    }
                }
                scopes.push(sc);
                self.rule_growth_block(body, scopes, evidence);
                scopes.pop();
            }
            StructKind::Loop { body } => {
                scopes.push(GrowScope { unbounded_loop: true, names: BTreeSet::new() });
                self.rule_growth_block(body, scopes, evidence);
                scopes.pop();
            }
            StructKind::Match { scrutinee, arms } => {
                self.growth_nested(scrutinee, scopes, evidence);
                for arm in arms {
                    if in_loop(scopes) {
                        self.check_growth_site(&arm.body, scopes, evidence);
                    }
                    self.growth_nested(&arm.body, scopes, evidence);
                }
            }
            StructKind::Block { block, .. } => {
                self.rule_growth_block(block, scopes, evidence)
            }
        });
    }

    fn growth_struct(
        &mut self,
        s: &StructExpr,
        scopes: &mut Vec<GrowScope>,
        evidence: &BTreeSet<String>,
    ) {
        match &s.kind {
            StructKind::If { cond, then, els } => {
                self.growth_nested(cond, scopes, evidence);
                self.rule_growth_block(then, scopes, evidence);
                if let Some(e) = els {
                    self.growth_struct(e, scopes, evidence);
                }
            }
            StructKind::Block { block, .. } => {
                self.rule_growth_block(block, scopes, evidence)
            }
            _ => {}
        }
    }

    fn check_growth_site(
        &mut self,
        chain: &Chain,
        scopes: &[GrowScope],
        evidence: &BTreeSet<String>,
    ) {
        let mut flat = Vec::new();
        chain.flat_tokens(&mut |i| flat.push(i));
        for w in 0..flat.len().saturating_sub(3) {
            if self.toks[flat[w + 1]].text != "."
                || self.toks[flat[w]].kind != TokKind::Ident
            {
                continue;
            }
            let method = self.toks[flat[w + 2]].text.as_str();
            if !GROW_METHODS.contains(&method)
                || self.toks[flat[w + 3]].text != "("
            {
                continue;
            }
            let base = self.toks[flat[w]].text.as_str();
            if base == "self" {
                continue; // handled via the field name token instead
            }
            if evidence.contains(base) {
                continue;
            }
            if defined_inside_loop(scopes, base) {
                continue; // reset every iteration — bounded per pass
            }
            self.push(
                "unbounded-growth",
                self.toks[flat[w + 2]].line,
                format!(
                    "`{base}.{method}(…)` grows inside an unbounded `while`/`loop` with no observable bound on `{base}` in this function (no len check / truncate / pop / drain)"
                ),
            );
        }
    }
}

#[derive(Debug, Default)]
struct GrowScope {
    /// Opened by `while`/`loop` — iteration count not tied to any
    /// finite input. `for` scopes carry names only.
    unbounded_loop: bool,
    names: BTreeSet<String>,
}

fn in_loop(scopes: &[GrowScope]) -> bool {
    scopes.iter().any(|s| s.unbounded_loop)
}

/// Is `name` bound at or inside the outermost live unbounded loop?
/// Then it is per-iteration state of some enclosing loop, not
/// unbounded growth.
fn defined_inside_loop(scopes: &[GrowScope], name: &str) -> bool {
    let Some(outer) = scopes.iter().position(|s| s.unbounded_loop) else {
        return false;
    };
    scopes[outer..].iter().any(|s| s.names.contains(name))
}

fn is_float_token(t: &SigTok) -> bool {
    match t.kind {
        TokKind::NumLit => {
            t.text.contains('.') || t.text.ends_with("f32") || t.text.ends_with("f64")
        }
        TokKind::Ident => t.text == "f32" || t.text == "f64",
        _ => false,
    }
}

fn collect_float_lets(cx: &FileCx<'_>, b: &Block, out: &mut BTreeSet<String>) {
    for stmt in &b.stmts {
        match &stmt.kind {
            StmtKind::Let(l) => {
                if let Some(name) = &l.name {
                    let ty_float =
                        l.ty_text.contains("f32") || l.ty_text.contains("f64");
                    let init_float = l.init.as_ref().is_some_and(|init| {
                        let mut any = false;
                        init.flat_tokens(&mut |i| any |= is_float_token(&cx.toks[i]));
                        any
                    });
                    if ty_float || init_float {
                        out.insert(name.clone());
                    }
                }
                if let Some(init) = &l.init {
                    each_nested_block(init, &mut |blk| collect_float_lets(cx, blk, out));
                }
                if let Some(els) = &l.else_block {
                    collect_float_lets(cx, els, out);
                }
            }
            StmtKind::Expr(chain) => {
                each_nested_block(chain, &mut |blk| collect_float_lets(cx, blk, out));
            }
            StmtKind::Item(_) | StmtKind::Empty => {}
        }
    }
}

/// Invokes `f` on every block nested anywhere under `chain`.
fn each_nested_block(chain: &Chain, f: &mut impl FnMut(&Block)) {
    chain.nested(&mut |s| each_struct_block(s, f));
}

fn each_struct_block(s: &StructExpr, f: &mut impl FnMut(&Block)) {
    match &s.kind {
        StructKind::If { cond, then, els } => {
            each_nested_block(cond, f);
            f(then);
            walk_block_chains_nested(then, f);
            if let Some(e) = els {
                each_struct_block(e, f);
            }
        }
        StructKind::While { cond, body } => {
            each_nested_block(cond, f);
            f(body);
            walk_block_chains_nested(body, f);
        }
        StructKind::For { iter, body, .. } => {
            each_nested_block(iter, f);
            f(body);
            walk_block_chains_nested(body, f);
        }
        StructKind::Loop { body } => {
            f(body);
            walk_block_chains_nested(body, f);
        }
        StructKind::Match { scrutinee, arms } => {
            each_nested_block(scrutinee, f);
            for arm in arms {
                each_nested_block(&arm.body, f);
            }
        }
        StructKind::Block { block, .. } => {
            f(block);
            walk_block_chains_nested(block, f);
        }
    }
}

fn walk_block_chains_nested(b: &Block, f: &mut impl FnMut(&Block)) {
    for stmt in &b.stmts {
        match &stmt.kind {
            StmtKind::Let(l) => {
                if let Some(init) = &l.init {
                    each_nested_block(init, f);
                }
                if let Some(els) = &l.else_block {
                    f(els);
                    walk_block_chains_nested(els, f);
                }
            }
            StmtKind::Expr(chain) => each_nested_block(chain, f),
            StmtKind::Item(_) | StmtKind::Empty => {}
        }
    }
}

/// Invokes `visit` on every chain in the function body, recursing
/// through nested structured expressions.
fn walk_chains(b: &Block, visit: &mut impl FnMut(&Chain)) {
    for stmt in &b.stmts {
        match &stmt.kind {
            StmtKind::Let(l) => {
                if let Some(init) = &l.init {
                    walk_chain(init, visit);
                }
                if let Some(els) = &l.else_block {
                    walk_chains(els, visit);
                }
            }
            StmtKind::Expr(chain) => walk_chain(chain, visit),
            StmtKind::Item(item) => {
                if let ItemKind::Fn(f) = &item.kind {
                    if let Some(inner) = &f.body {
                        walk_chains(inner, visit);
                    }
                }
            }
            StmtKind::Empty => {}
        }
    }
}

fn walk_chain(chain: &Chain, visit: &mut impl FnMut(&Chain)) {
    visit(chain);
    chain.nested(&mut |s| walk_struct_chains(s, visit));
}

fn walk_struct_chains(s: &StructExpr, visit: &mut impl FnMut(&Chain)) {
    match &s.kind {
        StructKind::If { cond, then, els } => {
            walk_chain(cond, visit);
            walk_chains(then, visit);
            if let Some(e) = els {
                walk_struct_chains(e, visit);
            }
        }
        StructKind::While { cond, body } => {
            walk_chain(cond, visit);
            walk_chains(body, visit);
        }
        StructKind::For { iter, body, .. } => {
            walk_chain(iter, visit);
            walk_chains(body, visit);
        }
        StructKind::Loop { body } => walk_chains(body, visit),
        StructKind::Match { scrutinee, arms } => {
            walk_chain(scrutinee, visit);
            for arm in arms {
                walk_chain(&arm.body, visit);
            }
        }
        StructKind::Block { block, .. } => walk_chains(block, visit),
    }
}

// ---- global pass -------------------------------------------------------

/// I/O calls that propagate through the call graph. `join` stays
/// direct-only: `Path::join` would otherwise make half the workspace
/// look blocking.
const TRANSITIVE_IO: &[&str] = &[
    "write_response",
    "write_all",
    "write_fmt",
    "flush",
    "read_to_end",
    "read_exact",
    "read_line",
    "read_until",
    "persist",
    "recv",
    "recv_timeout",
    "accept",
    "connect",
    "sleep",
    "send_to",
    "sync_all",
];

/// Joins per-file summaries into workspace-global findings:
/// lock-order cycles, I/O (direct or transitive) under a live guard in
/// the serve path, and `let _ =` drops of workspace `Result` fns.
/// Suppression comments at the finding site are honored via
/// `allow_comments` (file → `(line, text)` pairs).
pub fn global_pass(
    files: &[&FileFlow],
    allow_comments: &BTreeMap<String, Vec<(u32, String)>>,
) -> Vec<Finding> {
    let summaries: Vec<&FnSummary> =
        files.iter().flat_map(|f| f.summaries.iter()).collect();
    let mut findings = Vec::new();

    // -- call resolution --------------------------------------------------
    // Free calls resolve to every same-named fn; method calls only when
    // the name is unique in the workspace (receiver types are unknown)
    // AND not a std-prelude method name — `x.drain(..)` is `Vec::drain`
    // even if the workspace defines exactly one fn called `drain`.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, s) in summaries.iter().enumerate() {
        by_name.entry(s.name.as_str()).or_default().push(i);
    }
    let resolve = |name: &str, is_method: bool| -> &[usize] {
        if is_method && STD_METHODS.contains(&name) {
            return &[];
        }
        match by_name.get(name) {
            Some(v) if !is_method || v.len() == 1 => v,
            _ => &[],
        }
    };

    // -- result-dropped resolution ----------------------------------------
    for file in files {
        for cand in &file.candidates {
            if let Some((name, _)) = cand.calls.iter().find(|(name, is_method)| {
                resolve(name, *is_method).iter().any(|&j| summaries[j].returns_result)
            }) {
                findings.push(Finding {
                    rule: "result-dropped",
                    file: cand.file.clone(),
                    line: cand.line,
                    message: format!(
                        "`let _ =` discards the Result of `{name}` (declared fallible in this workspace) — handle the error or match on it explicitly"
                    ),
                });
            }
        }
    }

    // -- acquired-locks and does-io closures over the call graph ---------
    let n = summaries.len();
    let mut lock_closure: Vec<BTreeSet<String>> = summaries
        .iter()
        .map(|s| s.acquires.iter().map(|(l, _)| l.clone()).collect())
        .collect();
    let mut io_closure: Vec<BTreeSet<String>> = summaries
        .iter()
        .map(|s| {
            s.io_calls
                .iter()
                .filter(|c| TRANSITIVE_IO.contains(&c.as_str()))
                .cloned()
                .collect()
        })
        .collect();
    for _ in 0..20 {
        let mut changed = false;
        for i in 0..n {
            for (callee, is_method) in summaries[i].calls.clone() {
                for &j in resolve(&callee, is_method) {
                    if i == j {
                        continue;
                    }
                    let (locks, ios) =
                        (lock_closure[j].clone(), io_closure[j].clone());
                    for l in locks {
                        changed |= lock_closure[i].insert(l);
                    }
                    for c in ios {
                        changed |= io_closure[i].insert(c);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // -- lock-order edges -------------------------------------------------
    // (held, acquired) → first witness site, smallest (file, line).
    let mut edges: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();
    let mut add_edge = |a: &str, b: &str, file: &str, line: u32, via: String| {
        let key = (a.to_string(), b.to_string());
        let val = (file.to_string(), line, via);
        match edges.get(&key) {
            Some(old) if (&old.0, old.1) <= (&val.0, val.1) => {}
            _ => {
                edges.insert(key, val);
            }
        }
    };
    for s in &summaries {
        for (held, acq, line) in &s.ordered {
            add_edge(held, acq, &s.file, *line, format!("in `{}`", s.name));
        }
        for (held, callee, is_method, line) in &s.calls_holding {
            for &j in resolve(callee, *is_method) {
                let locks = lock_closure[j].clone();
                for lock in locks {
                    add_edge(
                        held,
                        &lock,
                        &s.file,
                        *line,
                        format!("via call to `{callee}` from `{}`", s.name),
                    );
                }
            }
        }
    }

    // -- cycles -----------------------------------------------------------
    findings.extend(lock_cycles(&edges));

    // -- I/O under a live guard (serve path) ------------------------------
    for s in &summaries {
        if !scope_for(&s.file).lock_check {
            continue;
        }
        for (lock, io, line) in &s.io_holding {
            findings.push(Finding {
                rule: "lock-order",
                file: s.file.clone(),
                line: *line,
                message: format!(
                    "blocking call `{io}` while holding lock `{lock}` — release the guard (inner scope or explicit drop) before I/O"
                ),
            });
        }
        for (lock, callee, is_method, line) in &s.calls_holding {
            for &j in resolve(callee, *is_method) {
                if let Some(io) = io_closure[j].iter().next() {
                    findings.push(Finding {
                        rule: "lock-order",
                        file: s.file.clone(),
                        line: *line,
                        message: format!(
                            "call to `{callee}` performs blocking I/O (`{io}`) while lock `{lock}` is held — release the guard first"
                        ),
                    });
                }
            }
        }
    }

    // Suppressions + dedup + deterministic order.
    findings.retain(|f| {
        allow_comments.get(&f.file).is_none_or(|cs| {
            !cs.iter().any(|(l, t)| {
                (*l == f.line || *l + 1 == f.line) && comment_allows(t, f.rule)
            })
        })
    });
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    findings.dedup();
    findings
}

/// Finds cycles in the lock-order graph; one finding per cycle,
/// anchored at the smallest witness site.
fn lock_cycles(
    edges: &BTreeMap<(String, String), (String, u32, String)>,
) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Self-loops: re-acquiring a lock already held always deadlocks a
    // Mutex (and can deadlock an RwLock through a queued writer).
    for ((a, b), (file, line, via)) in edges {
        if a == b {
            findings.push(Finding {
                rule: "lock-order",
                file: file.clone(),
                line: *line,
                message: format!(
                    "lock `{a}` may be acquired while already held ({via}) — self-deadlock"
                ),
            });
        }
    }

    // Proper cycles: SCCs of size ≥ 2 over the edge relation.
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (a, b) in edges.keys() {
        nodes.insert(a);
        nodes.insert(b);
    }
    let nodes: Vec<&str> = nodes.into_iter().collect();
    let index: BTreeMap<&str, usize> =
        nodes.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (a, b) in edges.keys() {
        if a != b {
            adj[index[a.as_str()]].push(index[b.as_str()]);
        }
    }
    for scc in sccs(&adj) {
        if scc.len() < 2 {
            continue;
        }
        let mut names: Vec<&str> = scc.iter().map(|&i| nodes[i]).collect();
        names.sort_unstable();
        // Witness: the smallest-sited edge inside the component.
        let member: BTreeSet<&str> = names.iter().copied().collect();
        let mut cyc_edges: Vec<_> = edges
            .iter()
            .filter(|((a, b), _)| {
                a != b && member.contains(a.as_str()) && member.contains(b.as_str())
            })
            .collect();
        cyc_edges.sort_by_key(|(_, (file, line, _))| (file.clone(), *line));
        let detail: Vec<String> = cyc_edges
            .iter()
            .take(4)
            .map(|((a, b), (file, line, _))| format!("{a}→{b} at {file}:{line}"))
            .collect();
        let (file, line) = cyc_edges
            .first()
            .map(|(_, (f, l, _))| (f.clone(), *l))
            .unwrap_or_default();
        findings.push(Finding {
            rule: "lock-order",
            file,
            line,
            message: format!(
                "potential deadlock: locks {{{}}} form an acquisition cycle ({})",
                names.join(", "),
                detail.join("; ")
            ),
        });
    }
    findings
}

/// Tarjan's strongly-connected components, iterative, deterministic
/// (nodes visited in index order, which is sorted lock-name order).
fn sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS: (node, child-iterator position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = work.last_mut() {
            if *ci == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow_under(rel: &str, src: &str) -> FileFlow {
        file_flow(rel, src)
    }

    fn global(files: &[&FileFlow]) -> Vec<Finding> {
        let mut allows = BTreeMap::new();
        for f in files {
            for (file, cs) in group_allows(f) {
                allows
                    .entry(file)
                    .or_insert_with(Vec::new)
                    .extend(cs);
            }
        }
        global_pass(files, &allows)
    }

    fn group_allows(f: &FileFlow) -> BTreeMap<String, Vec<(u32, String)>> {
        let mut m: BTreeMap<String, Vec<(u32, String)>> = BTreeMap::new();
        let file = f
            .summaries
            .first()
            .map(|s| s.file.clone())
            .or_else(|| f.candidates.first().map(|c| c.file.clone()));
        if let Some(file) = file {
            m.insert(file, f.allow_comments.clone());
        }
        m
    }

    const SERVE: &str = "crates/serve/src/fixture.rs";
    const STORE: &str = "crates/store/src/fixture.rs";
    const KERNEL: &str = "crates/neural/src/fixture.rs";

    #[test]
    fn result_dropped_let_wild_fallible_method() {
        let f = flow_under(
            SERVE,
            "fn f(tx: &Sender<u32>) { let _ = tx.send(1); }",
        );
        assert_eq!(f.findings.len(), 1, "{:?}", f.findings);
        assert_eq!(f.findings[0].rule, "result-dropped");
    }

    #[test]
    fn result_dropped_macro_write_is_fine() {
        let f = flow_under(
            SERVE,
            "fn f(buf: &mut String) { let _ = writeln!(buf, \"x\"); }",
        );
        assert!(f.findings.is_empty(), "{:?}", f.findings);
        assert!(f.candidates.is_empty(), "macros are not calls");
    }

    #[test]
    fn result_dropped_empty_err_arm() {
        let f = flow_under(
            STORE,
            "fn f(r: Result<u32, E>) { match r { Ok(v) => use_it(v), Err(_) => {} } }",
        );
        assert_eq!(f.findings.len(), 1, "{:?}", f.findings);
        assert!(f.findings[0].message.contains("swallows"));
    }

    #[test]
    fn result_dropped_handled_err_arm_is_fine() {
        let f = flow_under(
            STORE,
            "fn f(r: Result<u32, E>) { match r { Ok(v) => use_it(v), Err(e) => log(e) } }",
        );
        assert!(f.findings.is_empty(), "{:?}", f.findings);
    }

    #[test]
    fn result_dropped_dead_ok_tail() {
        let f = flow_under(
            SERVE,
            "fn f(s: &mut TcpStream) { s.set_nodelay(true).ok(); after(); }",
        );
        assert!(
            f.findings.iter().any(|x| x.message.contains(".ok()")),
            "{:?}",
            f.findings
        );
    }

    #[test]
    fn result_dropped_value_position_ok_is_fine() {
        let f = flow_under(
            SERVE,
            "fn f(s: &str) -> Option<u32> { s.parse::<u32>().ok() }",
        );
        assert!(f.findings.is_empty(), "{:?}", f.findings);
    }

    #[test]
    fn result_dropped_workspace_fn_resolves_globally() {
        let lib = flow_under(STORE, "pub fn persist_thing() -> Result<(), E> { Ok(()) }");
        let user = flow_under(SERVE, "fn f() { let _ = persist_thing(); }");
        let findings = global(&[&lib, &user]);
        assert!(
            findings.iter().any(|f| f.rule == "result-dropped"
                && f.message.contains("persist_thing")),
            "{findings:?}"
        );
    }

    #[test]
    fn fp_sum_with_floats_flagged_ints_fine() {
        let f = flow_under(
            KERNEL,
            "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }",
        );
        assert_eq!(f.findings.len(), 1, "{:?}", f.findings);
        assert_eq!(f.findings[0].rule, "fp-reduction-order");
        let ints = flow_under(
            KERNEL,
            "fn f(xs: &[usize]) -> usize { xs.iter().sum::<usize>() }",
        );
        assert!(ints.findings.is_empty(), "{:?}", ints.findings);
    }

    #[test]
    fn fp_accumulator_over_chunks_flagged() {
        let f = flow_under(
            KERNEL,
            r#"
            fn f(xs: &[f64]) -> f64 {
                let mut acc = 0.0;
                for chunk in xs.chunks(64) {
                    acc += chunk[0];
                }
                acc
            }
            "#,
        );
        assert!(
            f.findings.iter().any(|x| x.rule == "fp-reduction-order"
                && x.message.contains("acc")),
            "{:?}",
            f.findings
        );
    }

    #[test]
    fn fp_accumulator_plain_loop_is_fine() {
        let f = flow_under(
            KERNEL,
            r#"
            fn f(xs: &[f64]) -> f64 {
                let mut acc = 0.0;
                for x in xs.iter() {
                    acc += x;
                }
                acc
            }
            "#,
        );
        assert!(f.findings.is_empty(), "{:?}", f.findings);
    }

    #[test]
    fn fp_allow_comment_suppresses() {
        let f = flow_under(
            KERNEL,
            r#"
            fn f(xs: &[f64]) -> f64 {
                // nd-lint: allow(fp-reduction-order) — serial, fixed order
                xs.iter().sum::<f64>()
            }
            "#,
        );
        assert!(f.findings.is_empty(), "{:?}", f.findings);
    }

    #[test]
    fn growth_unbounded_push_in_loop_flagged() {
        let f = flow_under(
            SERVE,
            r#"
            fn f(rx: &Receiver<u32>) {
                let mut backlog = Vec::new();
                loop {
                    let item = rx.recv().unwrap();
                    backlog.push(item);
                }
            }
            "#,
        );
        assert_eq!(f.findings.len(), 1, "{:?}", f.findings);
        assert_eq!(f.findings[0].rule, "unbounded-growth");
    }

    #[test]
    fn growth_bounded_by_len_check_is_fine() {
        let f = flow_under(
            SERVE,
            r#"
            fn f(rx: &Receiver<u32>) {
                let mut backlog = Vec::new();
                loop {
                    let item = rx.recv().unwrap();
                    if backlog.len() < MAX {
                        backlog.push(item);
                    }
                }
            }
            "#,
        );
        assert!(f.findings.is_empty(), "{:?}", f.findings);
    }

    #[test]
    fn growth_per_iteration_local_is_fine() {
        let f = flow_under(
            SERVE,
            r#"
            fn f(reqs: &[Req]) {
                for r in reqs {
                    let mut line = Vec::new();
                    line.push(r.id);
                    emit(line);
                }
            }
            "#,
        );
        assert!(f.findings.is_empty(), "{:?}", f.findings);
    }

    #[test]
    fn lock_order_cycle_across_functions() {
        let a = flow_under(
            SERVE,
            r#"
            impl S {
                fn ab(&self) {
                    let g = self.a.lock().unwrap();
                    let h = self.b.lock().unwrap();
                    use_them(g, h);
                }
                fn ba(&self) {
                    let h = self.b.lock().unwrap();
                    let g = self.a.lock().unwrap();
                    use_them(g, h);
                }
            }
            "#,
        );
        let findings = global(&[&a]);
        assert!(
            findings.iter().any(|f| f.rule == "lock-order"
                && f.message.contains("acquisition cycle")),
            "{findings:?}"
        );
    }

    #[test]
    fn lock_order_consistent_order_is_fine() {
        let a = flow_under(
            SERVE,
            r#"
            impl S {
                fn ab(&self) {
                    let g = self.a.lock().unwrap();
                    let h = self.b.lock().unwrap();
                    use_them(g, h);
                }
                fn ab2(&self) {
                    let g = self.a.lock().unwrap();
                    let h = self.b.lock().unwrap();
                    other(g, h);
                }
            }
            "#,
        );
        let findings = global(&[&a]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn lock_order_cycle_through_call_graph() {
        let a = flow_under(
            SERVE,
            r#"
            impl S {
                fn outer(&self) {
                    let g = self.a.lock().unwrap();
                    self.helper_b();
                    use_it(g);
                }
                fn helper_b(&self) {
                    let h = self.b.lock().unwrap();
                    use_it(h);
                }
                fn other(&self) {
                    let h = self.b.lock().unwrap();
                    let g = self.a.lock().unwrap();
                    use_them(g, h);
                }
            }
            "#,
        );
        let findings = global(&[&a]);
        assert!(
            findings.iter().any(|f| f.message.contains("acquisition cycle")),
            "{findings:?}"
        );
    }

    #[test]
    fn lock_reacquire_is_self_deadlock() {
        let a = flow_under(
            SERVE,
            r#"
            impl S {
                fn f(&self) {
                    let g = self.a.lock().unwrap();
                    let h = self.a.lock().unwrap();
                    use_them(g, h);
                }
            }
            "#,
        );
        let findings = global(&[&a]);
        assert!(
            findings.iter().any(|f| f.message.contains("self-deadlock")),
            "{findings:?}"
        );
    }

    #[test]
    fn io_under_guard_direct_and_transitive() {
        let a = flow_under(
            SERVE,
            r#"
            impl S {
                fn direct(&self, out: &mut TcpStream) {
                    let g = self.state.lock().unwrap();
                    out.write_all(g.bytes()).unwrap();
                }
                fn indirect(&self, out: &mut TcpStream) {
                    let g = self.state.lock().unwrap();
                    self.do_send(out);
                    use_it(g);
                }
                fn do_send(&self, out: &mut TcpStream) {
                    out.write_all(b"x").unwrap();
                }
            }
            "#,
        );
        let findings = global(&[&a]);
        let direct = findings
            .iter()
            .any(|f| f.message.contains("blocking call `write_all`"));
        let transitive =
            findings.iter().any(|f| f.message.contains("call to `do_send`"));
        assert!(direct, "{findings:?}");
        assert!(transitive, "{findings:?}");
    }

    #[test]
    fn io_after_guard_dropped_is_fine() {
        let a = flow_under(
            SERVE,
            r#"
            impl S {
                fn f(&self, out: &mut TcpStream) {
                    let bytes = { let g = self.state.lock().unwrap(); g.bytes() };
                    out.write_all(&bytes).unwrap();
                }
            }
            "#,
        );
        let findings = global(&[&a]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn kernel_lock_cycles_found_outside_serve() {
        // Cycle detection is workspace-wide even though the I/O rule
        // is serve-scoped.
        let a = flow_under(
            "crates/store/src/fixture.rs",
            r#"
            impl S {
                fn ab(&self) {
                    let g = self.a.lock().unwrap();
                    let h = self.b.lock().unwrap();
                    use_them(g, h);
                }
                fn ba(&self) {
                    let h = self.b.lock().unwrap();
                    let g = self.a.lock().unwrap();
                    use_them(g, h);
                }
            }
            "#,
        );
        let findings = global(&[&a]);
        assert!(
            findings.iter().any(|f| f.message.contains("acquisition cycle")),
            "{findings:?}"
        );
    }

    #[test]
    fn test_items_do_not_contribute_summaries() {
        let f = flow_under(
            SERVE,
            r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let _ = tx.send(1); }
            }
            "#,
        );
        assert!(f.findings.is_empty(), "{:?}", f.findings);
        assert!(f.summaries.is_empty());
    }

    #[test]
    fn coverage_reported() {
        let f = flow_under(SERVE, "fn f() { g(1); }");
        assert_eq!(f.coverage.0, f.coverage.1);
        assert!(f.coverage.1 > 0);
    }
}
