//! A hand-rolled Rust lexer, just deep enough for syntactic linting.
//!
//! The rules in [`crate::rules`] need to see identifiers, punctuation,
//! and comments with accurate line numbers while never being fooled by
//! the contents of string literals ("call .unwrap() here" in a doc
//! string must not trip the panic rule). That takes a real tokenizer:
//! raw strings with arbitrary `#` fences, nested block comments, and
//! the `'a'`-char-versus-`'a`-lifetime ambiguity all have to lex
//! correctly or the scanner misreads everything after them.
//!
//! The lexer is lossless: every byte of the input lands in exactly one
//! token, so concatenating `Tok::text` in order reproduces the source
//! (see the round-trip tests). Rules then work on a filtered view that
//! drops whitespace and comments.

/// Token classes. Deliberately coarse — rules match on text, the kind
/// exists to separate code from non-code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `unsafe`, `r#match`).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Character literal (`'x'`, `'\n'`, `'\u{1F600}'`).
    CharLit,
    /// String literal of any flavor (`"s"`, `b"s"`).
    StrLit,
    /// Raw string literal (`r"s"`, `r#"s"#`, `br##"s"##`).
    RawStrLit,
    /// Numeric literal, including suffixes (`0x1F`, `1_000u64`, `1e-3`).
    NumLit,
    /// Single punctuation byte (`::` arrives as two `:` tokens).
    Punct,
    /// `// ...` comment, doc comments included.
    LineComment,
    /// `/* ... */` comment, nesting handled.
    BlockComment,
    /// Run of whitespace.
    Whitespace,
}

/// One lexed token: classification, exact source text, and the
/// 1-based line its first byte sits on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The exact bytes of the token as they appear in the source.
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Tokenizes `src`. Never fails: bytes that fit no class become
/// single-byte [`TokKind::Punct`] tokens, which is exactly what the
/// syntactic rules want from code they do not fully understand.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer { b: src.as_bytes(), i: 0, line: 1, out: Vec::new() }.run(src)
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn run(mut self, src: &str) -> Vec<Tok> {
        while self.i < self.b.len() {
            let start = self.i;
            let start_line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.i > start, "lexer must always advance");
            self.out.push(Tok {
                kind,
                text: src[start..self.i].to_string(),
                line: start_line,
            });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.b.get(self.i + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) {
        if self.i >= self.b.len() {
            return; // clamp at EOF so unterminated literals stay in range
        }
        if self.peek(0) == b'\n' {
            self.line += 1;
        }
        self.i += 1;
    }

    fn next_kind(&mut self) -> TokKind {
        let c = self.peek(0);
        if c.is_ascii_whitespace() {
            while self.peek(0).is_ascii_whitespace() {
                self.bump();
            }
            return TokKind::Whitespace;
        }
        if c == b'/' && self.peek(1) == b'/' {
            while self.i < self.b.len() && self.peek(0) != b'\n' {
                self.bump();
            }
            return TokKind::LineComment;
        }
        if c == b'/' && self.peek(1) == b'*' {
            self.bump();
            self.bump();
            let mut depth = 1usize;
            while self.i < self.b.len() && depth > 0 {
                if self.peek(0) == b'/' && self.peek(1) == b'*' {
                    depth += 1;
                    self.bump();
                    self.bump();
                } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                    depth -= 1;
                    self.bump();
                    self.bump();
                } else {
                    self.bump();
                }
            }
            return TokKind::BlockComment;
        }
        // Raw strings / raw identifiers: r"..", r#".."#, r#ident.
        if c == b'r' || c == b'b' {
            if let Some(kind) = self.try_string_prefix() {
                return kind;
            }
        }
        if c == b'"' {
            self.scan_quoted(b'"');
            return TokKind::StrLit;
        }
        if c == b'\'' {
            return self.char_or_lifetime();
        }
        if c.is_ascii_digit() {
            return self.number();
        }
        if is_ident_start(c) {
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            return TokKind::Ident;
        }
        self.bump();
        TokKind::Punct
    }

    /// Handles `r`/`b`-prefixed literals: `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`, `b'x'`, and raw identifiers `r#match`. Returns
    /// `None` when the `r`/`b` is just the start of a plain ident.
    fn try_string_prefix(&mut self) -> Option<TokKind> {
        let mut j = 0usize;
        let c0 = self.peek(0);
        // Accept the prefixes r, b, rb, br.
        let mut has_r = false;
        if c0 == b'r' {
            has_r = true;
            j = 1;
            if self.peek(1) == b'b' {
                j = 2;
            }
        } else if c0 == b'b' {
            j = 1;
            if self.peek(1) == b'r' {
                has_r = true;
                j = 2;
            }
        }
        // Byte char literal b'x'.
        if c0 == b'b' && self.peek(1) == b'\'' {
            self.bump(); // b
            self.bump(); // '
            self.scan_char_body();
            return Some(TokKind::CharLit);
        }
        if has_r {
            // Count # fence.
            let mut hashes = 0usize;
            while self.peek(j + hashes) == b'#' {
                hashes += 1;
            }
            if self.peek(j + hashes) == b'"' {
                for _ in 0..(j + hashes + 1) {
                    self.bump();
                }
                self.scan_raw_body(hashes);
                return Some(TokKind::RawStrLit);
            }
            // Raw identifier r#ident.
            if c0 == b'r' && hashes == 1 && is_ident_start(self.peek(2)) {
                self.bump(); // r
                self.bump(); // #
                while is_ident_continue(self.peek(0)) {
                    self.bump();
                }
                return Some(TokKind::Ident);
            }
            return None;
        }
        // b"..." byte string.
        if c0 == b'b' && self.peek(1) == b'"' {
            self.bump();
            self.scan_quoted(b'"');
            return Some(TokKind::StrLit);
        }
        None
    }

    /// Consumes a `"`-delimited body starting at the opening quote,
    /// honoring backslash escapes.
    fn scan_quoted(&mut self, quote: u8) {
        self.bump(); // opening quote
        while self.i < self.b.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                c if c == quote => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw-string body after the opening quote until `"`
    /// followed by `hashes` `#` bytes.
    fn scan_raw_body(&mut self, hashes: usize) {
        while self.i < self.b.len() {
            if self.peek(0) == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..(hashes + 1) {
                        self.bump();
                    }
                    return;
                }
            }
            self.bump();
        }
    }

    /// Consumes a char-literal body after the opening `'` (escape or
    /// a possibly multi-byte char, then the closing `'`). Scanning to
    /// the closing quote byte keeps token boundaries on UTF-8 char
    /// boundaries for literals like `'█'`.
    fn scan_char_body(&mut self) {
        if self.peek(0) == b'\\' {
            self.bump();
            self.bump();
        }
        while self.i < self.b.len() && self.peek(0) != b'\'' {
            self.bump();
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime/label): after
    /// the quote, an escape or a non-ident char is always a char
    /// literal; an ident run is a char literal only when a closing
    /// quote follows immediately.
    fn char_or_lifetime(&mut self) -> TokKind {
        let next = self.peek(1);
        if next == b'\\' || (!is_ident_start(next) && next != 0) {
            // '\n' or ' ' or '(' … — char literal.
            self.bump(); // '
            self.scan_char_body();
            return TokKind::CharLit;
        }
        // Ident run after the quote.
        let mut j = 1usize;
        while is_ident_continue(self.peek(j)) {
            j += 1;
        }
        if self.peek(j) == b'\'' {
            self.bump(); // '
            self.scan_char_body();
            TokKind::CharLit
        } else {
            self.bump(); // '
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            TokKind::Lifetime
        }
    }

    fn number(&mut self) -> TokKind {
        // Integer part (also covers 0x/0b/0o since letters are valid
        // continue chars below).
        while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
            self.bump();
        }
        // Fraction: only when a digit follows the dot, so `0..10`
        // stays three tokens.
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        // Exponent sign: `1e-3` / `2.5E+7`.
        if (self.b.get(self.i.wrapping_sub(1)) == Some(&b'e')
            || self.b.get(self.i.wrapping_sub(1)) == Some(&b'E'))
            && (self.peek(0) == b'-' || self.peek(0) == b'+')
            && self.peek(1).is_ascii_digit()
        {
            self.bump();
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        TokKind::NumLit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Tok> {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, src, "lexer must be lossless");
        toks
    }

    fn kinds(src: &str) -> Vec<TokKind> {
        roundtrip(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn idents_keywords_punct() {
        let toks = roundtrip("let x = foo::bar(1, 2.5);");
        let texts: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind != TokKind::Whitespace)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "foo", ":", ":", "bar", "(", "1", ",", "2.5", ")", ";"]
        );
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r###"let s = r#"quote " inside"#; let t = r"plain";"###;
        let toks = roundtrip(src);
        let raws: Vec<&Tok> =
            toks.iter().filter(|t| t.kind == TokKind::RawStrLit).collect();
        assert_eq!(raws.len(), 2);
        assert_eq!(raws[0].text, r###"r#"quote " inside"#"###);
        assert_eq!(raws[1].text, r#"r"plain""#);
    }

    #[test]
    fn raw_byte_strings_and_byte_chars() {
        let toks = roundtrip(r##"let a = br#"raw bytes"#; let b = b"x"; let c = b'y';"##);
        assert!(toks.iter().any(|t| t.kind == TokKind::RawStrLit && t.text.starts_with("br#")));
        assert!(toks.iter().any(|t| t.kind == TokKind::StrLit && t.text == "b\"x\""));
        assert!(toks.iter().any(|t| t.kind == TokKind::CharLit && t.text == "b'y'"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still outer */ b";
        let toks = roundtrip(src);
        let comment: Vec<&Tok> =
            toks.iter().filter(|t| t.kind == TokKind::BlockComment).collect();
        assert_eq!(comment.len(), 1);
        assert_eq!(comment[0].text, "/* outer /* inner */ still outer */");
        // `a` and `b` survive as idents around it.
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Ident).count(), 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            kinds("'a' 'b 'static '\\n' '\\u{1F600}' ' '"),
            [
                TokKind::CharLit,
                TokKind::Lifetime,
                TokKind::Lifetime,
                TokKind::CharLit,
                TokKind::CharLit,
                TokKind::CharLit,
            ]
        );
        // Generic bounds keep their lifetimes, fn pointers their chars.
        let toks = roundtrip("fn f<'a, T: 'a>(c: char) -> bool { c == 'x' }");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::CharLit).count(), 1);
    }

    #[test]
    fn strings_swallow_code_like_content() {
        let toks = roundtrip(r#"let s = "call .unwrap() and panic!()"; x.len();"#);
        // Nothing inside the string surfaces as an ident.
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "x", "len"]);
    }

    #[test]
    fn numbers_ranges_and_suffixes() {
        let texts: Vec<String> = roundtrip("0..10 1_000u64 0x1F 1e-3 2.5E+7 3.14f32")
            .into_iter()
            .filter(|t| t.kind == TokKind::NumLit)
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, ["0", "10", "1_000u64", "0x1F", "1e-3", "2.5E+7", "3.14f32"]);
    }

    #[test]
    fn raw_identifiers() {
        let toks = roundtrip("let r#match = r#fn; r#\"not ident\"#;");
        assert!(toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "r#match"));
        assert!(toks.iter().any(|t| t.kind == TokKind::RawStrLit));
    }

    #[test]
    fn line_numbers_track_every_token_flavor() {
        let src = "a\n\"two\nlines\"\nb /* c\nd */ e\n'z'";
        let toks = lex(src);
        let find = |text: &str| toks.iter().find(|t| t.text == text).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("\"two\nlines\""), 2);
        assert_eq!(find("b"), 4);
        assert_eq!(find("e"), 5);
        assert_eq!(find("'z'"), 6);
    }

    #[test]
    fn multibyte_char_literals_stay_on_boundaries() {
        let toks = roundtrip("let block = '█'; let accent = 'é'; let s = \"café\";");
        assert!(toks.iter().any(|t| t.kind == TokKind::CharLit && t.text == "'█'"));
        assert!(toks.iter().any(|t| t.kind == TokKind::CharLit && t.text == "'é'"));
    }

    #[test]
    fn unterminated_input_never_hangs() {
        // Torture inputs: lexing must terminate and stay lossless.
        for src in ["\"open", "r#\"open", "/* open", "'", "b'", "r#"] {
            let toks = lex(src);
            let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
            assert_eq!(rebuilt, src);
        }
    }
}
