//! `nd-lint` — workspace invariant analyzer.
//!
//! The paper's evaluation is reproducible because two invariants hold
//! everywhere: kernels are bit-for-bit deterministic at any thread
//! count (DESIGN.md §8) and the serving tier never lets a panic kill a
//! worker mid-request (DESIGN.md §9). Those invariants used to live in
//! prose and tests; this crate turns them into a CI gate that rejects
//! violating code before it merges, the way clippy rejects style
//! drift — but for rules clippy cannot express because they are
//! *project policy*, not Rust misuse.
//!
//! Two analysis tiers share a from-scratch lossless lexer ([`lexer`]):
//!
//! - **Token tier** ([`rules`]): syntactic pattern rules
//!   (`nondet-time`, `panic-path`, `hot-loop-alloc`, …).
//! - **Flow tier** ([`ast`] → [`cfg`] → [`flow`]): a recursive-descent
//!   parser with a total-coverage guarantee, per-function CFGs with
//!   lock-guard liveness, and a workspace-global call/lock summary
//!   pass feeding the `lock-order`, `result-dropped`,
//!   `fp-reduction-order`, and `unbounded-growth` rules (DESIGN.md
//!   §15).
//!
//! Analysis is incremental ([`cache`]: FNV-1a content fingerprints,
//! unchanged files replay their cached records) and parallel (files
//! fan out through nd-par with deterministic in-order merging), so a
//! warm run re-parses only what changed yet emits a byte-identical
//! report. See `DESIGN.md` §10/§15 for the rule catalogue, the
//! suppression syntax (`// nd-lint: allow(rule-name)`), and the
//! `lint.allow` baseline workflow.
//!
//! Run it as `cargo run -p nd-lint -- --deny` (the CI form) or with
//! `--json` / `--sarif FILE` for machine-readable reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cache;
pub mod cfg;
pub mod flow;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod sarif;

pub use report::{AllowEntry, Baseline};
pub use rules::{analyze, scope_for, FileScope, Finding, RULE_NAMES};

use cache::{fnv1a64, Cache, FileRecord};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Workspace-relative source files the analyzer covers: every `.rs`
/// under the root `src/` and under each `crates/*/src/`. Tests,
/// benches, examples, and `vendor/` stubs are out of scope — they may
/// unwrap, spawn, and time things freely.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Files touched relative to `HEAD` (modified + untracked), as
/// workspace-relative forward-slash paths. `None` when git is
/// unavailable or errors — the caller falls back to the full
/// workspace.
pub fn git_changed_files(root: &Path) -> Option<Vec<String>> {
    let run = |args: &[&str]| -> Option<Vec<String>> {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(args)
            .output()
            .ok()?;
        if !out.status.success() {
            return None;
        }
        Some(
            String::from_utf8_lossy(&out.stdout)
                .lines()
                .map(|l| l.trim().replace('\\', "/"))
                .filter(|l| !l.is_empty())
                .collect(),
        )
    };
    let mut files = run(&["diff", "--name-only", "HEAD"])?;
    files.extend(run(&["ls-files", "--others", "--exclude-standard"])?);
    files.sort();
    files.dedup();
    Some(files)
}

/// How [`analyze_workspace_with`] should run.
#[derive(Debug, Default, Clone)]
pub struct AnalyzeOptions {
    /// Incremental cache location; `None` disables caching.
    pub cache_path: Option<PathBuf>,
    /// Restrict analysis to git-changed files (pre-commit mode). Full
    /// workspace when git is unavailable.
    pub changed_only: bool,
}

/// What a run produced, beyond the findings themselves.
#[derive(Debug, Default)]
pub struct RunStats {
    /// Files in scope this run.
    pub files_scanned: usize,
    /// Files analyzed fresh (cache miss or no cache).
    pub reparsed: usize,
    /// Files replayed from the incremental cache.
    pub cached: usize,
    /// Files whose AST did not cover every significant token:
    /// `(path, consumed, total)`. Parser bugs, surfaced loudly.
    pub coverage_gaps: Vec<(String, usize, usize)>,
}

/// Lints every workspace source under `root`, returning findings with
/// workspace-relative forward-slash paths, plus the file count.
/// Convenience wrapper over [`analyze_workspace_with`] with default
/// options (no cache, full workspace).
pub fn analyze_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let (findings, stats) = analyze_workspace_with(root, &AnalyzeOptions::default())?;
    Ok((findings, stats.files_scanned))
}

/// Full analyzer entry point: token tier + flow tier per file
/// (parallel, cached), then the workspace-global lock/result pass,
/// merged deterministically — warm and cold runs are byte-identical.
pub fn analyze_workspace_with(
    root: &Path,
    opts: &AnalyzeOptions,
) -> std::io::Result<(Vec<Finding>, RunStats)> {
    let mut files = workspace_sources(root)?;
    if opts.changed_only {
        if let Some(changed) = git_changed_files(root) {
            files.retain(|p| {
                let rel = rel_path(root, p);
                changed.iter().any(|c| c == &rel)
            });
        }
    }

    // Read every file up front (serial, sorted order) so the parallel
    // phase is pure CPU.
    let mut rels: Vec<String> = Vec::with_capacity(files.len());
    let mut sources: Vec<String> = Vec::with_capacity(files.len());
    for path in &files {
        rels.push(rel_path(root, path));
        sources.push(std::fs::read_to_string(path)?);
    }

    let mut cache = match &opts.cache_path {
        Some(p) => Cache::load(p),
        None => Cache::default(),
    };

    // Partition into cache hits and files needing fresh analysis.
    let hashes: Vec<u64> = sources.iter().map(|s| fnv1a64(s.as_bytes())).collect();
    let mut records: Vec<Option<FileRecord>> = Vec::with_capacity(files.len());
    let mut miss_idx: Vec<usize> = Vec::new();
    for i in 0..files.len() {
        match cache.entries.get(&rels[i]) {
            Some(rec) if rec.hash == hashes[i] => records.push(Some(rec.clone())),
            _ => {
                records.push(None);
                miss_idx.push(i);
            }
        }
    }

    // Fresh analysis fans out through nd-par; run_chunks returns
    // results in ascending chunk order, so the merge is deterministic
    // regardless of thread count.
    let rels_ref = &rels;
    let sources_ref = &sources;
    let miss_ref = &miss_idx;
    let avg_bytes = if miss_idx.is_empty() {
        0
    } else {
        miss_idx.iter().map(|&i| sources[i].len()).sum::<usize>() / miss_idx.len()
    };
    let fresh: Vec<FileRecord> = nd_par::run_chunks(
        miss_idx.len(),
        1,
        // Analysis is ~20x the cost of a memcpy per byte; scale the
        // work estimate so small workspaces still parallelize.
        avg_bytes.saturating_mul(20).max(1),
        |range| {
            let mut out = Vec::with_capacity(range.len());
            for w in range {
                let i = miss_ref[w];
                let rel = &rels_ref[i];
                let src = &sources_ref[i];
                out.push(FileRecord {
                    hash: fnv1a64(src.as_bytes()),
                    token_findings: rules::analyze(rel, src),
                    flow: flow::file_flow(rel, src),
                });
            }
            out
        },
    )
    .into_iter()
    .flatten()
    .collect();
    for (w, rec) in fresh.into_iter().enumerate() {
        records[miss_idx[w]] = Some(rec);
    }
    let records: Vec<FileRecord> =
        records.into_iter().map(|r| r.expect("every file analyzed")).collect();

    let mut stats = RunStats {
        files_scanned: files.len(),
        reparsed: miss_idx.len(),
        cached: files.len() - miss_ref.len(),
        coverage_gaps: Vec::new(),
    };
    for (i, rec) in records.iter().enumerate() {
        let (consumed, total) = rec.flow.coverage;
        if consumed != total {
            stats.coverage_gaps.push((rels[i].clone(), consumed, total));
        }
    }

    // Workspace-global pass over every file's summaries (cached or
    // fresh — the inputs are identical either way).
    let flows: Vec<&flow::FileFlow> = records.iter().map(|r| &r.flow).collect();
    let mut allow_comments: BTreeMap<String, Vec<(u32, String)>> = BTreeMap::new();
    for (i, rec) in records.iter().enumerate() {
        if !rec.flow.allow_comments.is_empty() {
            allow_comments.insert(rels[i].clone(), rec.flow.allow_comments.clone());
        }
    }
    let global = flow::global_pass(&flows, &allow_comments);

    // Deterministic merge: every finding, sorted by site.
    let mut findings: Vec<Finding> = Vec::new();
    for rec in &records {
        findings.extend(rec.token_findings.iter().cloned());
        findings.extend(rec.flow.findings.iter().cloned());
    }
    findings.extend(global);
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    findings.dedup();

    // Persist the cache: update analyzed files, keep records for files
    // outside this run's scope (e.g. `--changed`), drop deleted files
    // only on full-workspace runs.
    if let Some(cache_path) = &opts.cache_path {
        for (i, rec) in records.iter().enumerate() {
            cache.entries.insert(rels[i].clone(), rec.clone());
        }
        if !opts.changed_only {
            let in_scope: std::collections::BTreeSet<&String> = rels.iter().collect();
            cache.entries.retain(|path, _| in_scope.contains(path));
        }
        if let Some(dir) = cache_path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        cache.save(cache_path)?;
    }

    Ok((findings, stats))
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_default_is_full_uncached() {
        let o = AnalyzeOptions::default();
        assert!(o.cache_path.is_none());
        assert!(!o.changed_only);
    }
}
