//! `nd-lint` — workspace invariant analyzer.
//!
//! The paper's evaluation is reproducible because two invariants hold
//! everywhere: kernels are bit-for-bit deterministic at any thread
//! count (DESIGN.md §8) and the serving tier never lets a panic kill a
//! worker mid-request (DESIGN.md §9). Those invariants used to live in
//! prose and tests; this crate turns them into a CI gate that rejects
//! violating code before it merges, the way clippy rejects style
//! drift — but for rules clippy cannot express because they are
//! *project policy*, not Rust misuse.
//!
//! The analyzer is a from-scratch, dependency-free lexer
//! ([`lexer`]) plus a syntactic rule engine ([`rules`]): no `syn`, no
//! registry access, builds in seconds before anything else in the
//! workspace. See `DESIGN.md` §10 for the rule catalogue, the
//! suppression syntax (`// nd-lint: allow(rule-name)`), and the
//! `lint.allow` baseline workflow.
//!
//! Run it as `cargo run -p nd-lint -- --deny` (the CI form) or with
//! `--json` for the machine-readable `lint_report.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;

pub use report::{AllowEntry, Baseline};
pub use rules::{analyze, scope_for, FileScope, Finding, RULE_NAMES};

use std::path::{Path, PathBuf};

/// Workspace-relative source files the analyzer covers: every `.rs`
/// under the root `src/` and under each `crates/*/src/`. Tests,
/// benches, examples, and `vendor/` stubs are out of scope — they may
/// unwrap, spawn, and time things freely.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every workspace source under `root`, returning findings with
/// workspace-relative forward-slash paths, plus the file count.
pub fn analyze_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let files = workspace_sources(root)?;
    let n = files.len();
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        findings.extend(analyze(&rel, &src));
    }
    Ok((findings, n))
}
