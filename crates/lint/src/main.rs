//! CLI entry point: `cargo run -p nd-lint -- [--deny] [--json] [--root DIR]`.
//!
//! Exit status: `0` when every finding is baselined (or `--deny` is
//! absent), `1` when active findings remain under `--deny`, `2` on
//! usage or I/O errors. Human output goes to stderr so `--json` on
//! stdout stays machine-clean for `> lint_report.json`.

use nd_lint::{analyze_workspace, Baseline, RULE_NAMES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    deny: bool,
    json: bool,
    root: PathBuf,
    allow: Option<PathBuf>,
}

fn usage() -> String {
    format!(
        "nd-lint: workspace invariant analyzer\n\n\
         USAGE: nd-lint [--deny] [--json] [--root DIR] [--allow FILE]\n\n\
         \x20 --deny        exit non-zero when non-baselined findings exist\n\
         \x20 --json        print the machine-readable report to stdout\n\
         \x20 --root DIR    workspace root (default: current directory)\n\
         \x20 --allow FILE  baseline file (default: ROOT/lint.allow)\n\n\
         rules: {}\n\
         suppress one site: `// nd-lint: allow(rule-name)` on the line or the line above",
        RULE_NAMES.join(", ")
    )
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { deny: false, json: false, root: PathBuf::from("."), allow: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--json" => args.json = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--allow" => {
                args.allow = Some(PathBuf::from(it.next().ok_or("--allow needs a file")?));
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let (findings, files_scanned) = match analyze_workspace(&args.root) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("nd-lint: failed to scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    let allow_path = args.allow.clone().unwrap_or_else(|| args.root.join("lint.allow"));
    let baseline = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Baseline::parse(&text),
        Err(_) => Baseline::default(), // no baseline file: nothing grandfathered
    };
    for problem in &baseline.problems {
        eprintln!("nd-lint: warning: {problem}");
    }
    for stale in baseline.stale(&findings) {
        eprintln!(
            "nd-lint: warning: stale baseline entry `{} {}{}` matches nothing — delete it",
            stale.rule,
            stale.file,
            stale.line.map(|l| format!(":{l}")).unwrap_or_default()
        );
    }

    let tagged: Vec<_> = findings.into_iter().map(|f| (f.clone(), baseline.covers(&f))).collect();
    let active: Vec<_> = tagged.iter().filter(|(_, baselined)| !baselined).collect();

    for (f, _) in &active {
        eprintln!("{f}");
    }
    eprintln!(
        "nd-lint: {} file(s), {} finding(s), {} baselined, {} active",
        files_scanned,
        tagged.len(),
        tagged.len() - active.len(),
        active.len()
    );

    if args.json {
        print!("{}", nd_lint::report::render_json(&tagged, files_scanned));
    }

    if args.deny && !active.is_empty() {
        eprintln!("nd-lint: failing (--deny): fix the findings above, suppress a verified-safe site with `// nd-lint: allow(rule)`, or baseline it in lint.allow");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
