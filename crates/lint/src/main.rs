//! CLI entry point: `cargo run -p nd-lint -- [--deny] [--json] …`.
//!
//! Exit status: `0` when every finding is baselined (or `--deny` is
//! absent), `1` when active findings — or, under `--deny`, stale
//! baseline entries — remain, `2` on usage or I/O errors. Human output
//! goes to stderr so `--json` on stdout stays machine-clean for
//! `> lint_report.json`.

use nd_lint::report::prune_baseline;
use nd_lint::{analyze_workspace_with, AnalyzeOptions, Baseline, RULE_NAMES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    deny: bool,
    json: bool,
    root: PathBuf,
    allow: Option<PathBuf>,
    cache: Option<PathBuf>,
    no_cache: bool,
    changed: bool,
    prune_baseline: bool,
    sarif: Option<PathBuf>,
}

fn usage() -> String {
    format!(
        "nd-lint: workspace invariant analyzer\n\n\
         USAGE: nd-lint [--deny] [--json] [--root DIR] [--allow FILE]\n\
         \x20               [--cache FILE | --no-cache] [--changed]\n\
         \x20               [--prune-baseline] [--sarif FILE]\n\n\
         \x20 --deny             exit non-zero on active findings or stale baseline entries\n\
         \x20 --json             print the machine-readable report to stdout\n\
         \x20 --root DIR         workspace root (default: current directory)\n\
         \x20 --allow FILE       baseline file (default: ROOT/lint.allow)\n\
         \x20 --cache FILE       incremental cache (default: ROOT/target/nd-lint.cache)\n\
         \x20 --no-cache         analyze everything fresh, touch no cache file\n\
         \x20 --changed          lint only git-changed files (falls back to full workspace)\n\
         \x20 --prune-baseline   rewrite the baseline with stale entries removed\n\
         \x20 --sarif FILE       also write a SARIF 2.1.0 report\n\n\
         rules: {}\n\
         suppress one site: `// nd-lint: allow(rule-name)` on the line or the line above",
        RULE_NAMES.join(", ")
    )
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        json: false,
        root: PathBuf::from("."),
        allow: None,
        cache: None,
        no_cache: false,
        changed: false,
        prune_baseline: false,
        sarif: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--json" => args.json = true,
            "--changed" => args.changed = true,
            "--prune-baseline" => args.prune_baseline = true,
            "--no-cache" => args.no_cache = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--allow" => {
                args.allow = Some(PathBuf::from(it.next().ok_or("--allow needs a file")?));
            }
            "--cache" => {
                args.cache = Some(PathBuf::from(it.next().ok_or("--cache needs a file")?));
            }
            "--sarif" => {
                args.sarif = Some(PathBuf::from(it.next().ok_or("--sarif needs a file")?));
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let opts = AnalyzeOptions {
        cache_path: if args.no_cache {
            None
        } else {
            Some(
                args.cache
                    .clone()
                    .unwrap_or_else(|| args.root.join("target/nd-lint.cache")),
            )
        },
        changed_only: args.changed,
    };

    let (findings, stats) = match analyze_workspace_with(&args.root, &opts) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("nd-lint: failed to scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    // A parser coverage gap means the flow tier silently skipped
    // tokens somewhere — that is an analyzer bug, never acceptable.
    for (file, consumed, total) in &stats.coverage_gaps {
        eprintln!(
            "nd-lint: error: parser covered {consumed}/{total} significant tokens of {file}"
        );
    }
    if !stats.coverage_gaps.is_empty() {
        return ExitCode::from(2);
    }

    let allow_path = args.allow.clone().unwrap_or_else(|| args.root.join("lint.allow"));
    let allow_text = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let baseline = Baseline::parse(&allow_text);
    for problem in &baseline.problems {
        eprintln!("nd-lint: warning: {problem}");
    }

    // `--changed` sees a partial file list, so an entry matching no
    // finding may simply be out of scope this run: never prune or
    // hard-error on staleness from a partial view.
    let stale = if args.changed { Vec::new() } else { baseline.stale(&findings) };
    if args.prune_baseline && !args.changed {
        let (new_text, pruned) = prune_baseline(&allow_text, &findings);
        if pruned > 0 {
            if let Err(e) = std::fs::write(&allow_path, &new_text) {
                eprintln!("nd-lint: failed to rewrite {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        }
        eprintln!(
            "nd-lint: pruned {pruned} stale baseline entr{} from {}",
            if pruned == 1 { "y" } else { "ies" },
            allow_path.display()
        );
    } else {
        for s in &stale {
            eprintln!(
                "nd-lint: {}: stale baseline entry `{} {}{}` matches nothing — run --prune-baseline",
                if args.deny { "error" } else { "warning" },
                s.rule,
                s.file,
                s.line.map(|l| format!(":{l}")).unwrap_or_default()
            );
        }
    }

    let tagged: Vec<_> =
        findings.into_iter().map(|f| (f.clone(), baseline.covers(&f))).collect();
    let active: Vec<_> = tagged.iter().filter(|(_, baselined)| !baselined).collect();

    for (f, _) in &active {
        eprintln!("{f}");
    }
    eprintln!(
        "nd-lint: {} file(s) ({} reparsed, {} cached), {} finding(s), {} baselined, {} active",
        stats.files_scanned,
        stats.reparsed,
        stats.cached,
        tagged.len(),
        tagged.len() - active.len(),
        active.len()
    );

    if args.json {
        print!("{}", nd_lint::report::render_json(&tagged, stats.files_scanned));
    }
    if let Some(sarif_path) = &args.sarif {
        if let Err(e) =
            std::fs::write(sarif_path, nd_lint::sarif::render_sarif(&tagged))
        {
            eprintln!("nd-lint: failed to write {}: {e}", sarif_path.display());
            return ExitCode::from(2);
        }
    }

    let stale_fails = args.deny && !args.prune_baseline && !stale.is_empty();
    if args.deny && !active.is_empty() {
        eprintln!("nd-lint: failing (--deny): fix the findings above, suppress a verified-safe site with `// nd-lint: allow(rule)`, or baseline it in lint.allow");
        return ExitCode::from(1);
    }
    if stale_fails {
        eprintln!("nd-lint: failing (--deny): stale baseline entries — run `nd-lint --prune-baseline`");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
