//! Finding output (human + JSON) and the `lint.allow` baseline.
//!
//! The baseline grandfathers findings so the gate can be turned on
//! before the tree is fully clean: one entry per line, either
//! `rule path/to/file.rs` (whole file) or `rule path/to/file.rs:LINE`
//! (one site). `#` starts a comment. The goal state is an empty file —
//! every entry is debt with a name on it.

use crate::rules::{Finding, RULE_NAMES};

/// One parsed `lint.allow` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule the entry silences.
    pub rule: String,
    /// Workspace-relative file the entry covers.
    pub file: String,
    /// Specific line, or `None` for the whole file.
    pub line: Option<u32>,
}

/// The parsed baseline plus any problems found while reading it.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Valid entries.
    pub entries: Vec<AllowEntry>,
    /// Human-readable parse problems (unknown rule, bad shape);
    /// reported as warnings, never fatal.
    pub problems: Vec<String>,
}

impl Baseline {
    /// Parses baseline text. Unknown rules and malformed lines land in
    /// `problems` so a typo cannot silently allow everything.
    pub fn parse(text: &str) -> Baseline {
        let mut baseline = Baseline::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(target), None) = (parts.next(), parts.next(), parts.next())
            else {
                baseline
                    .problems
                    .push(format!("lint.allow:{}: expected `rule path[:line]`", lineno + 1));
                continue;
            };
            if !RULE_NAMES.contains(&rule) {
                baseline
                    .problems
                    .push(format!("lint.allow:{}: unknown rule `{rule}`", lineno + 1));
                continue;
            }
            let (file, line_no) = match target.rsplit_once(':') {
                Some((f, l)) if l.chars().all(|c| c.is_ascii_digit()) && !l.is_empty() => {
                    (f.to_string(), l.parse::<u32>().ok())
                }
                _ => (target.to_string(), None),
            };
            baseline.entries.push(AllowEntry { rule: rule.to_string(), file, line: line_no });
        }
        baseline
    }

    /// Is `f` grandfathered by some entry?
    pub fn covers(&self, f: &Finding) -> bool {
        self.entries.iter().any(|e| {
            e.rule == f.rule && e.file == f.file && e.line.is_none_or(|l| l == f.line)
        })
    }

    /// Entries that matched no finding: stale debt worth deleting.
    pub fn stale<'a>(&'a self, findings: &[Finding]) -> Vec<&'a AllowEntry> {
        self.entries
            .iter()
            .filter(|e| {
                !findings.iter().any(|f| {
                    e.rule == f.rule && e.file == f.file && e.line.is_none_or(|l| l == f.line)
                })
            })
            .collect()
    }
}

/// Rewrites baseline text with stale entries removed (`--prune-baseline`).
/// Comment-only and blank lines survive verbatim; an entry line
/// survives iff it still covers a current finding (its inline comment
/// rides along). Returns the new text and the pruned entry count.
pub fn prune_baseline(text: &str, findings: &[Finding]) -> (String, usize) {
    let mut out = String::with_capacity(text.len());
    let mut pruned = 0usize;
    for raw in text.lines() {
        let entry = raw.split('#').next().unwrap_or("").trim();
        if entry.is_empty() {
            out.push_str(raw);
            out.push('\n');
            continue;
        }
        // Re-parse this one line through the normal parser so the
        // live/stale decision matches `Baseline::covers` exactly.
        let one = Baseline::parse(raw);
        let live = one.entries.first().is_some_and(|e| {
            findings.iter().any(|f| {
                e.rule == f.rule && e.file == f.file && e.line.is_none_or(|l| l == f.line)
            })
        });
        if live {
            out.push_str(raw);
            out.push('\n');
        } else {
            pruned += 1;
        }
    }
    (out, pruned)
}

/// Minimal JSON string escaping (the only JSON we emit is flat).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable report consumed by CI
/// (`lint_report.json`).
pub fn render_json(findings: &[(Finding, bool)], files_scanned: usize) -> String {
    let active = findings.iter().filter(|(_, baselined)| !baselined).count();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"total\": {},\n", findings.len()));
    out.push_str(&format!("  \"baselined\": {},\n", findings.len() - active));
    out.push_str(&format!("  \"active\": {active},\n"));
    out.push_str("  \"findings\": [");
    for (i, (f, baselined)) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"baselined\": {}, \"message\": \"{}\"}}",
            esc(f.rule),
            esc(&f.file),
            f.line,
            baselined,
            esc(&f.message)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding { rule, file: file.to_string(), line, message: "m".to_string() }
    }

    #[test]
    fn baseline_parses_file_and_line_entries() {
        let b = Baseline::parse(
            "# comment\n\
             panic-path crates/serve/src/server.rs:42\n\
             nondet-time crates/neural/src/train.rs  # whole file\n",
        );
        assert!(b.problems.is_empty(), "{:?}", b.problems);
        assert_eq!(b.entries.len(), 2);
        assert!(b.covers(&finding("panic-path", "crates/serve/src/server.rs", 42)));
        assert!(!b.covers(&finding("panic-path", "crates/serve/src/server.rs", 43)));
        assert!(b.covers(&finding("nondet-time", "crates/neural/src/train.rs", 7)));
        assert!(!b.covers(&finding("stray-spawn", "crates/neural/src/train.rs", 7)));
    }

    #[test]
    fn unknown_rules_are_problems_not_wildcards() {
        let b = Baseline::parse("not-a-rule crates/serve/src/server.rs\n");
        assert_eq!(b.entries.len(), 0);
        assert_eq!(b.problems.len(), 1);
    }

    #[test]
    fn stale_entries_surface() {
        let b = Baseline::parse("panic-path crates/serve/src/server.rs:42\n");
        let stale = b.stale(&[]);
        assert_eq!(stale.len(), 1);
        let live = b.stale(&[finding("panic-path", "crates/serve/src/server.rs", 42)]);
        assert!(live.is_empty());
    }

    #[test]
    fn prune_drops_stale_keeps_live_and_comments() {
        let text = "# debt ledger\n\
                    panic-path crates/serve/src/server.rs:42  # justified\n\
                    nondet-time crates/neural/src/train.rs\n\
                    \n\
                    hot-loop-alloc crates/topics/src/nmf.rs:7\n";
        let live = [finding("panic-path", "crates/serve/src/server.rs", 42)];
        let (pruned, n) = prune_baseline(text, &live);
        assert_eq!(n, 2);
        assert!(pruned.contains("# debt ledger"));
        assert!(pruned.contains("panic-path crates/serve/src/server.rs:42  # justified"));
        assert!(!pruned.contains("nondet-time"));
        assert!(!pruned.contains("hot-loop-alloc"));
        assert!(pruned.contains("\n\n"), "blank line survives");
    }

    #[test]
    fn json_escapes_and_counts() {
        let fs = vec![
            (finding("panic-path", "a.rs", 1), false),
            (finding("nondet-time", "b\"q.rs", 2), true),
        ];
        let json = render_json(&fs, 10);
        assert!(json.contains("\"active\": 1"));
        assert!(json.contains("\"baselined\": 1"));
        assert!(json.contains("b\\\"q.rs"));
    }
}
