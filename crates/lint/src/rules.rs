//! The invariant rules and the scanner that applies them.
//!
//! Everything here is deliberately *syntactic*: no type inference, no
//! name resolution. Each rule is a token-pattern heuristic tuned to
//! this workspace's idioms, scoped by file path (see [`FileScope`]),
//! with escape hatches for the cases the heuristic cannot see:
//! `// nd-lint: allow(rule-name)` on the finding's line or the line
//! above, and the checked-in `lint.allow` baseline for grandfathered
//! findings.
//!
//! | Rule              | Scope                         | Catches |
//! |-------------------|-------------------------------|---------|
//! | `nondet-time`     | kernel crates                 | `Instant::now`, `SystemTime` |
//! | `nondet-hash-iter`| kernel crates                 | iterating a `HashMap`/`HashSet` |
//! | `stray-spawn`     | everywhere but nd-par/nd-serve| `thread::spawn` & friends |
//! | `panic-path`      | nd-serve, nd-core checkpoints | `unwrap`/`expect`/`panic!`/`x[0]` |
//! | `unsafe-comment`  | whole workspace               | `unsafe` without `// SAFETY:` |
//! | `hot-loop-alloc`  | NMF / Word2Vec / layer / PrefixSpan files | `Vec::new` / `vec![` / `with_capacity` outside `*Scratch` impls |
//! | `stage-io`        | nd-core                       | raw `std::fs` / `File` / `OpenOptions` instead of nd-store |
//!
//! The flow-sensitive tier (`lock-order`, `result-dropped`,
//! `fp-reduction-order`, `unbounded-growth`) lives in [`crate::flow`]
//! on top of the AST/CFG modules; `lock-order` supersedes the old
//! token-level `lock-across-io` heuristic with path-sensitive guard
//! liveness and a workspace-global acquisition graph.
//!
//! Code under `#[cfg(test)]` / `#[test]` is skipped: tests are allowed
//! to unwrap, spawn, and time things.

use crate::lexer::{lex, Tok, TokKind};

/// Crates whose numeric output must be bit-for-bit reproducible
/// (DESIGN.md §8): the determinism rules apply to their `src/` trees.
const KERNEL_CRATES: &[&str] = &["linalg", "topics", "events", "embed", "neural", "par", "patterns"];

/// Crates allowed to create threads (DESIGN.md §8–9): nd-par owns the
/// deterministic fan-out, nd-serve owns the server's thread pool.
const SPAWN_CRATES: &[&str] = &["par", "serve"];

/// Files whose inner loops are the training hot path (DESIGN.md §8):
/// per-iteration temporaries must live in a reused `*Scratch`
/// workspace, so heap allocation is denied file-wide except inside
/// `impl` blocks of types whose name contains `Scratch`.
const HOT_LOOP_FILES: &[&str] = &[
    "crates/linalg/src/gemm.rs",
    "crates/topics/src/nmf.rs",
    "crates/embed/src/word2vec.rs",
    "crates/neural/src/layer.rs",
    "crates/patterns/src/prefixspan.rs",
    "crates/vectorize/src/incremental.rs",
];

/// Every rule name, for `--help` and baseline validation.
pub const RULE_NAMES: &[&str] = &[
    "nondet-time",
    "nondet-hash-iter",
    "stray-spawn",
    "panic-path",
    "unsafe-comment",
    "hot-loop-alloc",
    "stage-io",
    "lock-order",
    "result-dropped",
    "fp-reduction-order",
    "unbounded-growth",
];

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (kebab-case, from [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Which rule families apply to a file, derived from its
/// workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// Determinism rules (`nondet-time`, `nondet-hash-iter`).
    pub determinism: bool,
    /// `stray-spawn` applies (false inside nd-par / nd-serve).
    pub spawn_check: bool,
    /// `panic-path` applies (serve request path, checkpoint I/O).
    pub panic_path: bool,
    /// `lock-order`'s I/O-under-guard check applies (serve path).
    pub lock_check: bool,
    /// `result-dropped` applies (serve request path, store I/O).
    pub error_flow: bool,
    /// `fp-reduction-order` applies (kernel crates).
    pub fp_order: bool,
    /// `unbounded-growth` applies (serve path).
    pub growth: bool,
    /// `hot-loop-alloc` applies (training hot-path files).
    pub hot_loop: bool,
    /// `stage-io` applies (nd-core pipeline/stage code).
    pub stage_io: bool,
}

/// Scope for a workspace-relative path like `crates/serve/src/server.rs`.
pub fn scope_for(rel: &str) -> FileScope {
    let rel = rel.replace('\\', "/");
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("");
    let in_src = rel.contains("/src/") || rel.starts_with("src/");
    FileScope {
        determinism: in_src && KERNEL_CRATES.contains(&crate_name),
        spawn_check: in_src && !SPAWN_CRATES.contains(&crate_name),
        panic_path: in_src
            && (crate_name == "serve" || rel == "crates/core/src/checkpoint.rs"),
        lock_check: in_src && crate_name == "serve",
        error_flow: in_src && (crate_name == "serve" || crate_name == "store"),
        fp_order: in_src && KERNEL_CRATES.contains(&crate_name),
        growth: in_src && crate_name == "serve",
        hot_loop: HOT_LOOP_FILES.contains(&rel.as_str()),
        stage_io: in_src && crate_name == "core",
    }
}

/// A significant token: text + line, whitespace and comments removed.
#[derive(Clone)]
struct STok {
    text: String,
    kind: TokKind,
    line: u32,
}

/// Lexes and lints one file. `rel` decides the scope; suppression
/// comments are honored here, the baseline is the caller's business.
pub fn analyze(rel: &str, src: &str) -> Vec<Finding> {
    let scope = scope_for(rel);
    let toks = lex(src);

    // Comment index for SAFETY / suppression lookups.
    let comments: Vec<(u32, &str)> = toks
        .iter()
        .filter(|t| matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|t| (t.line, t.text.as_str()))
        .collect();

    let sig = significant_outside_tests(&toks);

    let mut findings = Vec::new();
    if scope.determinism {
        rule_nondet_time(rel, &sig, &mut findings);
        rule_nondet_hash_iter(rel, &sig, &mut findings);
    }
    if scope.spawn_check {
        rule_stray_spawn(rel, &sig, &mut findings);
    }
    if scope.panic_path {
        rule_panic_path(rel, &sig, &mut findings);
    }
    rule_unsafe_comment(rel, &sig, &comments, &mut findings);
    if scope.hot_loop {
        rule_hot_loop_alloc(rel, &sig, &mut findings);
    }
    if scope.stage_io {
        rule_stage_io(rel, &sig, &mut findings);
    }

    findings.retain(|f| !suppressed(&comments, f));
    findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    findings
}

/// True when a `// nd-lint: allow(rule, …)` comment on the finding's
/// line or the line above names this finding's rule.
fn suppressed(comments: &[(u32, &str)], f: &Finding) -> bool {
    comments.iter().any(|&(line, text)| {
        (line == f.line || line + 1 == f.line) && comment_allows(text, f.rule)
    })
}

pub(crate) fn comment_allows(comment: &str, rule: &str) -> bool {
    let Some(idx) = comment.find("nd-lint:") else { return false };
    let rest = &comment[idx + "nd-lint:".len()..];
    let Some(open) = rest.find("allow(") else { return false };
    let args = &rest[open + "allow(".len()..];
    let Some(close) = args.find(')') else { return false };
    args[..close].split(',').any(|r| r.trim() == rule)
}

/// Filters to significant tokens, dropping any item annotated
/// `#[cfg(test)]` / `#[test]` (attributes included) and everything in
/// its braces.
fn significant_outside_tests(toks: &[Tok]) -> Vec<STok> {
    let sig: Vec<&Tok> = toks
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
            )
        })
        .collect();

    let mut out = Vec::with_capacity(sig.len());
    let mut i = 0usize;
    let mut pending_test_attr = false;
    while i < sig.len() {
        if sig[i].text == "#" && i + 1 < sig.len() && sig[i + 1].text == "[" {
            // Attribute: bracket-match its contents.
            let close = match_delim(&sig, i + 1, "[", "]");
            let body: Vec<&str> =
                sig[i + 2..close.min(sig.len())].iter().map(|t| t.text.as_str()).collect();
            let is_test = body.first() == Some(&"test")
                || (body.contains(&"cfg") && body.contains(&"test"));
            if is_test {
                pending_test_attr = true;
                i = close + 1;
                continue; // drop the attribute itself too
            }
            if pending_test_attr {
                // Attribute stacked between #[cfg(test)] and the item:
                // swallow it as part of the skipped item.
                i = close + 1;
                continue;
            }
            for t in &sig[i..=close.min(sig.len() - 1)] {
                out.push(STok { text: t.text.clone(), kind: t.kind, line: t.line });
            }
            i = close + 1;
            continue;
        }
        if pending_test_attr {
            // Skip the annotated item: everything up to the first `;`
            // at item level, or the matching `}` of its first block.
            let mut j = i;
            let mut depth = 0i32;
            while j < sig.len() {
                match sig[j].text.as_str() {
                    "{" => {
                        let close = match_delim(&sig, j, "{", "}");
                        j = close;
                        break;
                    }
                    ";" if depth == 0 => break,
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
            pending_test_attr = false;
            continue;
        }
        out.push(STok { text: sig[i].text.clone(), kind: sig[i].kind, line: sig[i].line });
        i += 1;
    }
    out
}

/// Index of the token matching the opener at `open_idx` (which must
/// hold `open`). Returns the last index when unbalanced.
fn match_delim(sig: &[&Tok], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i32;
    for (j, t) in sig.iter().enumerate().skip(open_idx) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    sig.len().saturating_sub(1)
}

fn is(sig: &[STok], i: usize, text: &str) -> bool {
    sig.get(i).is_some_and(|t| t.text == text)
}

// ---------------------------------------------------------------- D —

fn rule_nondet_time(rel: &str, sig: &[STok], out: &mut Vec<Finding>) {
    for i in 0..sig.len() {
        if sig[i].text == "SystemTime" {
            out.push(Finding {
                rule: "nondet-time",
                file: rel.to_string(),
                line: sig[i].line,
                message: "`SystemTime` in a kernel crate: wall-clock values are \
                          nondeterministic and must not reach numeric output"
                    .to_string(),
            });
        }
        if sig[i].text == "Instant" && is(sig, i + 1, ":") && is(sig, i + 2, ":") && is(sig, i + 3, "now")
        {
            out.push(Finding {
                rule: "nondet-time",
                file: rel.to_string(),
                line: sig[i].line,
                message: "`Instant::now()` in a kernel crate: wall-clock readings are \
                          nondeterministic; keep timing out of kernels or suppress if \
                          observability-only"
                    .to_string(),
            });
        }
    }
}

fn rule_nondet_hash_iter(rel: &str, sig: &[STok], out: &mut Vec<Finding>) {
    let names = hash_bound_names(sig);
    if names.is_empty() {
        return;
    }
    let iter_methods =
        ["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain", "into_keys", "into_values"];
    let flag = |name: &str, line: u32, out: &mut Vec<Finding>| {
        out.push(Finding {
            rule: "nondet-hash-iter",
            file: rel.to_string(),
            line,
            message: format!(
                "iteration over hash-ordered `{name}`: HashMap/HashSet order is \
                 nondeterministic; use BTreeMap/BTreeSet or collect-and-sort"
            ),
        });
    };
    // A field access `recv.name.iter()` only counts when `recv` is
    // `self`: the registry is file-global, so `other.name` may be an
    // unrelated (non-hash) field that merely shares the identifier.
    let self_or_bare = |i: usize| !is(sig, i.wrapping_sub(1), ".") || is(sig, i.wrapping_sub(2), "self");
    for i in 0..sig.len() {
        // name.iter() / self.name.keys() / …
        if sig[i].kind == TokKind::Ident
            && names.contains(&sig[i].text)
            && self_or_bare(i)
            && is(sig, i + 1, ".")
            && sig.get(i + 2).is_some_and(|t| iter_methods.contains(&t.text.as_str()))
            && is(sig, i + 3, "(")
        {
            flag(&sig[i].text, sig[i].line, out);
        }
        // for pat in name { / for pat in &name { / for pat in &mut name {
        if sig[i].text == "for" {
            // Find the matching `in` at depth 0, then the loop `{`.
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < sig.len() && !(depth == 0 && sig[j].text == "in") {
                match sig[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" | ";" => break, // not a for-loop header after all
                    _ => {}
                }
                j += 1;
            }
            if !is(sig, j, "in") {
                continue;
            }
            // Iterable expression: tokens up to the body `{`.
            let mut k = j + 1;
            let mut depth = 0i32;
            while k < sig.len() && !(depth == 0 && sig[k].text == "{") {
                match sig[k].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" => break,
                    _ => {}
                }
                k += 1;
            }
            let expr = &sig[j + 1..k.min(sig.len())];
            // Flag `… name` and `… &name` (a bare map/set as the
            // iterable); method calls were handled above.
            if let Some(last) = expr.last() {
                if last.kind == TokKind::Ident
                    && names.contains(&last.text)
                    && self_or_bare(k.min(sig.len()) - 1)
                {
                    flag(&last.text, last.line, out);
                }
            }
        }
    }
}

/// Identifiers syntactically bound to a `HashMap`/`HashSet` anywhere
/// in the file: `let x: HashMap<…>`, `let x = HashMap::new()`, struct
/// fields and fn params `x: &HashMap<…>`. File-global and
/// flow-insensitive by design.
fn hash_bound_names(sig: &[STok]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..sig.len() {
        if sig[i].text != "HashMap" && sig[i].text != "HashSet" {
            continue;
        }
        // Walk back over path/reference noise: `std :: collections ::`,
        // `&`, `mut`, lifetimes.
        let mut j = i;
        while j > 0 {
            let prev = &sig[j - 1];
            let skip = matches!(prev.text.as_str(), ":" | "&" | "mut" | "std" | "collections")
                || prev.kind == TokKind::Lifetime;
            if !skip {
                break;
            }
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        match sig[j - 1].text.as_str() {
            // `name : HashMap` — but the colon-skipping loop above also
            // eats the `:` itself, so check the ident directly.
            _ if sig[j - 1].kind == TokKind::Ident
                && sig[j - 1].text != "use"
                && j >= 2
                && sig[j - 2].text != "::" =>
            {
                // Reached `name` right before the (skipped) `:`/path —
                // only meaningful if a `:` actually separated them.
                let between_has_colon = sig[j..i].iter().any(|t| t.text == ":");
                if between_has_colon {
                    names.push(sig[j - 1].text.clone());
                }
            }
            // `let name = HashMap::new()` (require a let/mut two
            // back to avoid arbitrary reassignments).
            "=" if j >= 3
                && sig[j - 2].kind == TokKind::Ident
                && matches!(sig[j - 3].text.as_str(), "let" | "mut") =>
            {
                names.push(sig[j - 2].text.clone());
            }
            _ => {}
        }
    }
    names.sort();
    names.dedup();
    names
}

fn rule_stray_spawn(rel: &str, sig: &[STok], out: &mut Vec<Finding>) {
    for i in 0..sig.len() {
        let spawnish = sig[i].text == "spawn";
        if spawnish && is(sig, i + 1, "(") {
            out.push(Finding {
                rule: "stray-spawn",
                file: rel.to_string(),
                line: sig[i].line,
                message: "thread spawned outside nd-par/nd-serve: ad-hoc threads break \
                          the deterministic scheduling contract — route fan-out through \
                          nd-par"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------- P —

fn rule_panic_path(rel: &str, sig: &[STok], out: &mut Vec<Finding>) {
    let flag = |line: u32, what: &str, out: &mut Vec<Finding>| {
        out.push(Finding {
            rule: "panic-path",
            file: rel.to_string(),
            line,
            message: format!(
                "{what} on a no-panic path: a panic here kills a worker mid-request; \
                 return a structured error instead"
            ),
        });
    };
    for i in 0..sig.len() {
        // .unwrap( / .expect(
        if is(sig, i, ".")
            && sig.get(i + 1).is_some_and(|t| t.text == "unwrap" || t.text == "expect")
            && is(sig, i + 2, "(")
        {
            flag(sig[i + 1].line, &format!("`.{}()`", sig[i + 1].text), out);
        }
        // panic!/unreachable!/unimplemented!/todo!
        if sig[i].kind == TokKind::Ident
            && matches!(sig[i].text.as_str(), "panic" | "unreachable" | "unimplemented" | "todo")
            && is(sig, i + 1, "!")
        {
            flag(sig[i].line, &format!("`{}!`", sig[i].text), out);
        }
        // Unguarded literal index: expr[0] where expr ends in an ident
        // or closing bracket. Array literals ([0; 4], [0.0, 1.0]) do
        // not match because nothing indexable precedes them.
        if sig[i].text == "["
            && i > 0
            && (sig[i - 1].kind == TokKind::Ident || sig[i - 1].text == ")" || sig[i - 1].text == "]")
            && sig.get(i + 1).is_some_and(|t| t.kind == TokKind::NumLit)
            && is(sig, i + 2, "]")
        {
            flag(
                sig[i].line,
                &format!("literal index `[{}]` without a length guard", sig[i + 1].text),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------- U —

fn rule_unsafe_comment(
    rel: &str,
    sig: &[STok],
    comments: &[(u32, &str)],
    out: &mut Vec<Finding>,
) {
    for t in sig {
        if t.text != "unsafe" {
            continue;
        }
        let documented = comments
            .iter()
            .any(|&(line, text)| line + 2 >= t.line && line <= t.line && text.contains("SAFETY:"));
        if !documented {
            out.push(Finding {
                rule: "unsafe-comment",
                file: rel.to_string(),
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment within the two lines \
                          above: every unsafe block must state why it is sound"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------- L —

/// Blocking calls a lock guard must not be held across. `open` is
/// matched only as a path segment (`Database::open`). Shared with the
/// flow tier's `lock-order` rule.
pub(crate) const IO_CALLS: &[&str] = &[
    "write_response",
    "write_all",
    "write_fmt",
    "flush",
    "read_to_end",
    "read_exact",
    "read_line",
    "read_until",
    "persist",
    "join",
    "recv",
    "recv_timeout",
    "accept",
    "connect",
    "sleep",
    "send_to",
    "sync_all",
];

// ---------------------------------------------------------------- H —

/// Flags heap allocations (`Vec::new()`, `vec![…]`, `*::with_capacity(…)`)
/// in the training hot-path files. Scratch workspaces are the escape
/// valve: anything inside an `impl` block whose header names a type
/// containing `Scratch` is exempt — that is where buffers are *meant*
/// to be created. `resize_with(n, Vec::new)` (no call parens) and
/// `.collect()` are not flagged.
fn rule_hot_loop_alloc(rel: &str, sig: &[STok], out: &mut Vec<Finding>) {
    // Exempt ranges: bodies of `impl …Scratch… { … }`.
    let mut exempt: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < sig.len() {
        if sig[i].text == "impl" {
            let Some(open) = (i + 1..sig.len()).find(|&k| sig[k].text == "{") else { break };
            let for_scratch = sig[i + 1..open]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text.contains("Scratch"));
            if for_scratch {
                exempt.push((open, match_delim_stok(sig, open, "{", "}")));
            }
            i = open + 1;
            continue;
        }
        i += 1;
    }
    let exempted = |idx: usize| exempt.iter().any(|&(a, b)| idx > a && idx < b);
    let mut flag = |line: u32, what: &str| {
        out.push(Finding {
            rule: "hot-loop-alloc",
            file: rel.to_string(),
            line,
            message: format!(
                "{what} in a training hot-path file: per-iteration temporaries \
                 must live in a reused `*Scratch` workspace (or move the \
                 allocation into the scratch type's impl)"
            ),
        });
    };
    for i in 0..sig.len() {
        if exempted(i) {
            continue;
        }
        if sig[i].text == "Vec"
            && is(sig, i + 1, ":")
            && is(sig, i + 2, ":")
            && is(sig, i + 3, "new")
            && is(sig, i + 4, "(")
        {
            flag(sig[i].line, "`Vec::new()`");
        }
        if sig[i].kind == TokKind::Ident && sig[i].text == "vec" && is(sig, i + 1, "!") {
            flag(sig[i].line, "`vec![…]`");
        }
        if sig[i].kind == TokKind::Ident && sig[i].text == "with_capacity" && is(sig, i + 1, "(") {
            flag(sig[i].line, "`with_capacity(…)`");
        }
    }
}

// ---------------------------------------------------------------- S —

/// nd-core stage and pipeline code persists every byte through
/// nd-store (`ArtifactStore` frames with checksums and atomic
/// tmp+rename, `Database` with its WAL). Raw `std::fs` / `File` /
/// `OpenOptions` in this crate bypasses fingerprinting and crash
/// safety, and silently forks the cache format — route the I/O
/// through the store instead.
fn rule_stage_io(rel: &str, sig: &[STok], out: &mut Vec<Finding>) {
    let mut flag = |line: u32, what: &str| {
        out.push(Finding {
            rule: "stage-io",
            file: rel.to_string(),
            line,
            message: format!(
                "{what} in nd-core: stage outputs must flow through nd-store \
                 (ArtifactStore / Database), not raw filesystem calls — direct \
                 I/O here bypasses fingerprints, checksums, and atomic rename"
            ),
        });
    };
    for i in 0..sig.len() {
        // `fs :: …` — std::fs::read, fs::write, use std::fs::…
        if sig[i].text == "fs"
            && sig[i].kind == TokKind::Ident
            && is(sig, i + 1, ":")
            && is(sig, i + 2, ":")
        {
            flag(sig[i].line, "`fs::` path");
        }
        // `File :: …` / `OpenOptions :: …` — direct handle creation.
        if (sig[i].text == "File" || sig[i].text == "OpenOptions")
            && is(sig, i + 1, ":")
            && is(sig, i + 2, ":")
        {
            flag(sig[i].line, &format!("`{}::`", sig[i].text));
        }
    }
}

/// [`match_delim`] over already-filtered significant tokens.
fn match_delim_stok(sig: &[STok], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i32;
    for (j, t) in sig.iter().enumerate().skip(open_idx) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    sig.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNEL: &str = "crates/events/src/x.rs";
    const SERVE: &str = "crates/serve/src/x.rs";

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn scope_mapping() {
        assert!(scope_for("crates/linalg/src/mat.rs").determinism);
        assert!(scope_for("crates/patterns/src/prefixspan.rs").determinism);
        assert!(!scope_for("crates/core/src/pipeline.rs").determinism);
        assert!(!scope_for("crates/par/src/lib.rs").spawn_check);
        assert!(!scope_for("crates/serve/src/server.rs").spawn_check);
        assert!(scope_for("crates/neural/src/train.rs").spawn_check);
        assert!(scope_for("crates/serve/src/server.rs").panic_path);
        assert!(scope_for("crates/core/src/checkpoint.rs").panic_path);
        assert!(!scope_for("crates/core/src/predict.rs").panic_path);
        assert!(scope_for("crates/serve/src/batcher.rs").lock_check);
        assert!(!scope_for("crates/linalg/src/mat.rs").lock_check);
        // Non-src files are never linted.
        assert!(!scope_for("crates/events/tests/proptests.rs").determinism);
    }

    #[test]
    fn hash_iteration_flagged_lookup_not() {
        let src = r#"
            fn f() {
                let mut counts: HashMap<String, usize> = HashMap::new();
                for (k, v) in &counts { body(k, v); }
                let hit = counts.get("x");
                let keys: Vec<_> = counts.keys().collect();
            }
        "#;
        let rules = rules_of(&analyze(KERNEL, src));
        assert_eq!(rules, ["nondet-hash-iter", "nondet-hash-iter"], "iter + keys, not get");
    }

    #[test]
    fn foreign_field_sharing_a_hash_name_is_clean() {
        // `keywords` is a HashSet param here, but `t.keywords` is a Vec
        // field on another type — only `self.keywords` may match.
        let src = r#"
            fn f(keywords: &HashSet<String>, topics: &[Topic]) -> Vec<String> {
                topics.iter().flat_map(|t| t.keywords.iter().cloned()).collect()
            }
            impl S {
                fn g(&self) -> usize { self.keywords.iter().count() }
            }
            struct S { keywords: HashSet<String> }
        "#;
        assert_eq!(rules_of(&analyze(KERNEL, src)), ["nondet-hash-iter"], "only self.keywords");
    }

    #[test]
    fn btreemap_is_clean() {
        let src = r#"
            fn f() {
                let mut counts: BTreeMap<String, usize> = BTreeMap::new();
                for (k, v) in &counts { body(k, v); }
            }
        "#;
        assert!(analyze(KERNEL, src).is_empty());
    }

    #[test]
    fn struct_field_hash_iteration_flagged() {
        let src = r#"
            struct S { words: HashMap<String, u32> }
            impl S {
                fn all(&self) -> Vec<u32> { self.words.values().cloned().collect() }
            }
        "#;
        assert_eq!(rules_of(&analyze(KERNEL, src)), ["nondet-hash-iter"]);
    }

    #[test]
    fn time_and_spawn_in_kernel() {
        let src = "fn f() { let t = Instant::now(); std::thread::spawn(|| {}); }";
        let mut rules = rules_of(&analyze(KERNEL, src));
        rules.sort();
        assert_eq!(rules, ["nondet-time", "stray-spawn"]);
        // Same code inside nd-par is fine for spawn, still flagged for time.
        assert_eq!(rules_of(&analyze("crates/par/src/lib.rs", src)), ["nondet-time"]);
    }

    #[test]
    fn panic_path_patterns() {
        let src = r#"
            fn f(xs: &[f64]) -> f64 {
                let a = xs.first().unwrap();
                let b = maybe().expect("present");
                if bad { panic!("boom"); }
                xs[0]
            }
        "#;
        let rules = rules_of(&analyze(SERVE, src));
        assert_eq!(rules, ["panic-path"; 4].to_vec());
        // unwrap_or_else / array literals / ident indices don't trip it.
        let clean = r#"
            fn g(m: &Mutex<u32>, xs: &[f64], i: usize) -> f64 {
                let v = m.lock().unwrap_or_else(PoisonError::into_inner);
                let arr = [0; 4];
                let row = [0.0, 1.0];
                xs[i] + *v as f64
            }
        "#;
        assert!(analyze(SERVE, clean).is_empty());
    }

    #[test]
    fn string_contents_never_trip_rules() {
        let src = r#"fn f() { let s = "please .unwrap() and panic!"; log(s); }"#;
        assert!(analyze(SERVE, src).is_empty());
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = r#"
            fn real() -> u32 { 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { maybe().unwrap(); let m: HashMap<u32, u32> = HashMap::new(); for x in &m {} }
            }
        "#;
        assert!(analyze(SERVE, src).is_empty());
        assert!(analyze(KERNEL, src).is_empty());
    }

    #[test]
    fn suppression_same_line_and_line_above() {
        let src = "fn f() { let t = Instant::now(); // nd-lint: allow(nondet-time)\n}";
        assert!(analyze(KERNEL, src).is_empty());
        let src2 = "fn f() {\n    // timing is observability-only; nd-lint: allow(nondet-time)\n    let t = Instant::now();\n}";
        assert!(analyze(KERNEL, src2).is_empty());
        // Wrong rule name does not suppress.
        let src3 = "fn f() { let t = Instant::now(); // nd-lint: allow(panic-path)\n}";
        assert_eq!(rules_of(&analyze(KERNEL, src3)), ["nondet-time"]);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        assert_eq!(rules_of(&analyze(KERNEL, bad)), ["unsafe-comment"]);
        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}";
        assert!(analyze(KERNEL, good).is_empty());
    }

    const HOT: &str = "crates/topics/src/nmf.rs";

    #[test]
    fn hot_loop_alloc_scope_is_exact_files() {
        assert!(scope_for("crates/topics/src/nmf.rs").hot_loop);
        assert!(scope_for("crates/embed/src/word2vec.rs").hot_loop);
        assert!(scope_for("crates/neural/src/layer.rs").hot_loop);
        assert!(scope_for("crates/patterns/src/prefixspan.rs").hot_loop);
        assert!(scope_for("crates/vectorize/src/incremental.rs").hot_loop);
        assert!(!scope_for("crates/vectorize/src/lib.rs").hot_loop);
        assert!(!scope_for("crates/patterns/src/cooccur.rs").hot_loop);
        assert!(!scope_for("crates/topics/src/plsi.rs").hot_loop);
        assert!(!scope_for(KERNEL).hot_loop);
    }

    #[test]
    fn hot_loop_alloc_flags_allocations() {
        let src = r#"
            fn step() {
                let a = Vec::new();
                let b = vec![0.0; 8];
                let c = Vec::with_capacity(8);
            }
        "#;
        assert_eq!(rules_of(&analyze(HOT, src)), ["hot-loop-alloc"; 3].to_vec());
        // Out of scope: same code elsewhere is clean.
        assert!(analyze(KERNEL, src).is_empty());
    }

    #[test]
    fn hot_loop_alloc_exempts_scratch_impls() {
        let src = r#"
            struct FitScratch { buf: Vec<f64> }
            impl FitScratch {
                fn new(n: usize) -> Self {
                    FitScratch { buf: vec![0.0; n] }
                }
                fn grow(&mut self) { self.buf = Vec::with_capacity(9); }
            }
            fn step(s: &mut FitScratch) { s.buf.clear(); }
        "#;
        assert!(analyze(HOT, src).is_empty());
    }

    #[test]
    fn hot_loop_alloc_ignores_fn_pointers_and_collect() {
        let src = r#"
            fn step(parts: &mut Vec<Vec<f64>>, n: usize) -> Vec<f64> {
                parts.resize_with(n, Vec::new);
                (0..n).map(|i| i as f64).collect()
            }
        "#;
        assert!(analyze(HOT, src).is_empty());
    }

    #[test]
    fn hot_loop_alloc_suppressible() {
        let src = "fn f() { let a = Vec::new(); // nd-lint: allow(hot-loop-alloc)\n}";
        assert!(analyze(HOT, src).is_empty());
    }

    const CORE: &str = "crates/core/src/stage.rs";

    #[test]
    fn stage_io_scope_is_core_src() {
        assert!(scope_for("crates/core/src/stage.rs").stage_io);
        assert!(scope_for("crates/core/src/pipeline.rs").stage_io);
        assert!(!scope_for("crates/store/src/artifact.rs").stage_io);
        assert!(!scope_for(SERVE).stage_io);
        assert!(!scope_for("tests/pipeline_cache.rs").stage_io);
    }

    #[test]
    fn stage_io_flags_raw_filesystem_calls() {
        let src = r#"
            fn run() {
                let bytes = std::fs::read("x.art");
                let f = File::create("y.art");
                let o = OpenOptions::new().write(true).open("z.art");
            }
        "#;
        assert_eq!(rules_of(&analyze(CORE, src)), ["stage-io"; 3].to_vec());
        // Same code outside nd-core is out of scope.
        assert!(analyze("crates/store/src/artifact.rs", src).is_empty());
    }

    #[test]
    fn stage_io_clean_store_usage_and_tests_pass() {
        let src = r#"
            fn run(store: &ArtifactStore) -> Result<()> {
                store.save("trending", fp, &payload)?;
                store.write_text("run_report.json", &json)?;
                Ok(())
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { std::fs::remove_dir_all("tmp").ok(); }
            }
        "#;
        assert!(analyze(CORE, src).is_empty());
        // A field named `fs` on some struct does not trip the path check.
        let field = "fn f(cfg: &Config) -> usize { cfg.fs.len() }";
        assert!(analyze(CORE, field).is_empty());
    }

    #[test]
    fn io_write_with_args_is_not_a_guard() {
        let src = r#"
            fn f(s: &mut TcpStream) {
                let n = s.write(buf);
                other.flush();
            }
        "#;
        assert!(analyze(SERVE, src).is_empty());
    }
}
