//! SARIF 2.1.0 output — the static-analysis interchange format CI
//! dashboards and code hosts ingest natively. One run, one result per
//! finding; baselined findings are emitted at `note` level with
//! `baselineState: "unchanged"` so they stay visible without failing
//! annotation gates, active findings at `warning`.

use crate::rules::{Finding, RULE_NAMES};

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the findings (`(finding, baselined)` pairs, report order)
/// as a SARIF 2.1.0 document.
pub fn render_sarif(findings: &[(Finding, bool)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n",
    );
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"nd-lint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("          \"rules\": [");
    for (i, rule) in RULE_NAMES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n            {{\"id\": \"{}\"}}", esc(rule)));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, (f, baselined)) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = if *baselined { "note" } else { "warning" };
        out.push_str(&format!(
            "\n        {{\"ruleId\": \"{}\", \"level\": \"{level}\", \
             \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]{}}}",
            esc(f.rule),
            esc(&f.message),
            esc(&f.file),
            f.line.max(1),
            if *baselined { ", \"baselineState\": \"unchanged\"" } else { "" },
        ));
    }
    out.push_str("\n      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32, msg: &str) -> Finding {
        Finding { rule, file: file.to_string(), line, message: msg.to_string() }
    }

    #[test]
    fn sarif_shape_and_levels() {
        let fs = vec![
            (finding("lock-order", "crates/serve/src/a.rs", 3, "cycle a\"b"), false),
            (finding("hot-loop-alloc", "crates/topics/src/nmf.rs", 9, "alloc"), true),
        ];
        let sarif = render_sarif(&fs);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"level\": \"warning\""));
        assert!(sarif.contains("\"level\": \"note\""));
        assert!(sarif.contains("\"baselineState\": \"unchanged\""));
        assert!(sarif.contains("cycle a\\\"b"), "message is escaped");
        for rule in RULE_NAMES {
            assert!(sarif.contains(&format!("{{\"id\": \"{rule}\"}}")));
        }
    }

    #[test]
    fn empty_findings_still_valid_document() {
        let sarif = render_sarif(&[]);
        assert!(sarif.contains("\"results\": [\n      ]"));
    }
}
