//! Parser total-coverage check over the real workspace: every
//! significant token of every source file must be consumed by the
//! recursive-descent parser. A gap means the flow tier silently
//! skipped code — the analyzer's cardinal sin — so this fails loudly
//! with the exact file and token counts.

use nd_lint::ast::{parse_file, significant};
use nd_lint::workspace_sources;
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint/tests/ → workspace root is two levels up from the
    // manifest dir.
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn parser_covers_every_token_of_every_workspace_file() {
    let files = workspace_sources(workspace_root()).expect("workspace scan");
    assert!(
        files.len() > 50,
        "workspace scan found only {} files — wrong root?",
        files.len()
    );
    let mut gaps = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path).expect("readable source");
        let toks = significant(&src);
        let (_, cov) = parse_file(&toks);
        if cov.consumed != cov.total {
            gaps.push(format!(
                "{}: {}/{} significant tokens covered",
                path.display(),
                cov.consumed,
                cov.total
            ));
        }
    }
    assert!(gaps.is_empty(), "parser coverage gaps:\n{}", gaps.join("\n"));
}

#[test]
fn sharded_serving_modules_are_in_lint_scope() {
    // The serving layer's newest modules hold the admission-control
    // and load-generation logic whose panic-path / unbounded-growth
    // guarantees the design leans on; pin them into the scan so a
    // future scope change can't silently exempt them.
    let files = workspace_sources(workspace_root()).expect("workspace scan");
    for needle in
        ["crates/serve/src/shard.rs", "crates/serve/src/loadgen.rs", "crates/serve/src/hist.rs"]
    {
        assert!(
            files.iter().any(|p| p.ends_with(needle)),
            "{needle} missing from nd-lint scope"
        );
    }
}

#[test]
fn streaming_modules_are_in_lint_scope() {
    // The incremental-recompute path (DESIGN.md §17) spans five
    // crates; pin every new module into the scan so the fold stages'
    // determinism / panic-path / hot-loop guarantees stay enforced.
    let files = workspace_sources(workspace_root()).expect("workspace scan");
    for needle in [
        "crates/synth/src/firehose.rs",
        "crates/vectorize/src/incremental.rs",
        "crates/events/src/window.rs",
        "crates/core/src/incremental.rs",
        "crates/serve/src/stream.rs",
    ] {
        assert!(
            files.iter().any(|p| p.ends_with(needle)),
            "{needle} missing from nd-lint scope"
        );
    }
}

#[test]
fn every_function_gets_a_cfg() {
    // Weaker structural check: parsing + CFG construction never panics
    // and yields at least one function per non-trivial file.
    use nd_lint::ast::ItemKind;
    use nd_lint::cfg::build_flow;
    let files = workspace_sources(workspace_root()).expect("workspace scan");
    let mut fns = 0usize;
    for path in &files {
        let src = std::fs::read_to_string(path).expect("readable source");
        let toks = significant(&src);
        let (parsed, _) = parse_file(&toks);
        for item in &parsed.items {
            if let ItemKind::Fn(f) = &item.kind {
                if build_flow(f, &toks, None).is_some() {
                    fns += 1;
                }
            }
        }
    }
    assert!(fns > 100, "expected hundreds of top-level fns, found {fns}");
}
