//! Fixture-driven end-to-end checks: every rule has one violating and
//! one clean fixture under `tests/fixtures/`, analyzed under a
//! virtual workspace path that places it in the rule's scope. The
//! fixtures are real Rust source the lexer must survive, but they are
//! never compiled — `analyze` is purely syntactic.

use nd_lint::flow::{file_flow, global_pass};
use nd_lint::{analyze, Baseline};
use std::collections::BTreeMap;

/// A path inside a determinism-scoped kernel crate.
const KERNEL: &str = "crates/neural/src/fixture.rs";
/// A path inside the panic-safety + lock-discipline serving tier.
const SERVE: &str = "crates/serve/src/fixture.rs";

/// Distinct rule names found in `src` when analyzed as `path`.
fn rules(path: &str, src: &str) -> Vec<&'static str> {
    let mut r: Vec<&'static str> =
        analyze(path, src).into_iter().map(|f| f.rule).collect();
    r.sort_unstable();
    r.dedup();
    r
}

/// Distinct flow-tier rule names (per-file findings plus the global
/// pass over this one file's summaries) for `src` analyzed as `path`.
fn flow_rules(path: &str, src: &str) -> Vec<&'static str> {
    let ff = file_flow(path, src);
    assert_eq!(ff.coverage.0, ff.coverage.1, "parser must cover {path} fully");
    let mut allow = BTreeMap::new();
    if !ff.allow_comments.is_empty() {
        allow.insert(path.to_string(), ff.allow_comments.clone());
    }
    let mut r: Vec<&'static str> = ff
        .findings
        .iter()
        .map(|f| f.rule)
        .chain(global_pass(&[&ff], &allow).iter().map(|f| f.rule))
        .collect();
    r.sort_unstable();
    r.dedup();
    r
}

#[test]
fn nondet_time_fixture_pair() {
    let bad = include_str!("fixtures/nondet_time_bad.rs");
    let good = include_str!("fixtures/nondet_time_good.rs");
    assert_eq!(rules(KERNEL, bad), ["nondet-time"]);
    assert_eq!(rules(KERNEL, good), [] as [&str; 0]);
    // Out of scope: the serving tier may read clocks freely.
    assert_eq!(rules(SERVE, bad), [] as [&str; 0]);
}

#[test]
fn nondet_hash_iter_fixture_pair() {
    let bad = include_str!("fixtures/nondet_hash_iter_bad.rs");
    let good = include_str!("fixtures/nondet_hash_iter_good.rs");
    assert_eq!(rules(KERNEL, bad), ["nondet-hash-iter"]);
    assert_eq!(rules(KERNEL, good), [] as [&str; 0]);
}

#[test]
fn stray_spawn_scoping() {
    // The same source is a violation in a kernel crate and fine in
    // the crates that own threading.
    let src = include_str!("fixtures/stray_spawn.rs");
    assert_eq!(rules(KERNEL, src), ["stray-spawn"]);
    assert_eq!(rules("crates/par/src/fixture.rs", src), [] as [&str; 0]);
    assert_eq!(rules(SERVE, src), [] as [&str; 0]);
}

#[test]
fn panic_path_fixture_pair() {
    let bad = include_str!("fixtures/panic_path_bad.rs");
    let good = include_str!("fixtures/panic_path_good.rs");
    let found = analyze(SERVE, bad);
    assert_eq!(found.len(), 2, "one finding per panic site: {found:?}");
    assert!(found.iter().all(|f| f.rule == "panic-path"));
    assert_eq!(rules(SERVE, good), [] as [&str; 0]);
    // Out of scope: kernels signal logic errors however they like.
    assert_eq!(rules(KERNEL, bad), [] as [&str; 0]);
}

#[test]
fn unsafe_comment_fixture_pair() {
    let bad = include_str!("fixtures/unsafe_comment_bad.rs");
    let good = include_str!("fixtures/unsafe_comment_good.rs");
    // Workspace-wide rule: any src path is in scope.
    assert_eq!(rules(KERNEL, bad), ["unsafe-comment"]);
    assert_eq!(rules(SERVE, bad), ["unsafe-comment"]);
    assert_eq!(rules(KERNEL, good), [] as [&str; 0]);
}

#[test]
fn stage_io_fixture_pair() {
    let bad = include_str!("fixtures/stage_io_bad.rs");
    let good = include_str!("fixtures/stage_io_good.rs");
    let core = "crates/core/src/fixture.rs";
    assert_eq!(rules(core, bad), ["stage-io"]);
    assert_eq!(rules(core, good), [] as [&str; 0]);
    // Out of scope: nd-store itself owns the raw file I/O, and the
    // serving tier manages its own database directory.
    assert_eq!(rules("crates/store/src/fixture.rs", bad), [] as [&str; 0]);
    assert_eq!(rules(SERVE, bad), [] as [&str; 0]);
}

#[test]
fn lock_order_fixture_pair() {
    let bad = include_str!("fixtures/lock_order_bad.rs");
    let good = include_str!("fixtures/lock_order_good.rs");
    // Both facets fire: the a/b acquisition cycle and the guard held
    // across a blocking write.
    assert_eq!(flow_rules(SERVE, bad), ["lock-order"]);
    assert_eq!(flow_rules(SERVE, good), [] as [&str; 0]);
    // Token tier stays silent on both.
    assert_eq!(rules(SERVE, bad), [] as [&str; 0]);
    assert_eq!(rules(SERVE, good), [] as [&str; 0]);
}

#[test]
fn result_dropped_fixture_pair() {
    let bad = include_str!("fixtures/result_dropped_bad.rs");
    let good = include_str!("fixtures/result_dropped_good.rs");
    assert_eq!(flow_rules(SERVE, bad), ["result-dropped"]);
    assert_eq!(flow_rules(SERVE, good), [] as [&str; 0]);
    // Out of scope: kernels may drop Results (they rarely have any).
    assert_eq!(flow_rules(KERNEL, bad), [] as [&str; 0]);
}

#[test]
fn fp_reduction_order_fixture_pair() {
    let bad = include_str!("fixtures/fp_reduction_order_bad.rs");
    let good = include_str!("fixtures/fp_reduction_order_good.rs");
    assert_eq!(flow_rules(KERNEL, bad), ["fp-reduction-order"]);
    assert_eq!(flow_rules(KERNEL, good), [] as [&str; 0]);
    // Out of scope: the serving tier never does kernel arithmetic.
    assert_eq!(flow_rules(SERVE, bad), [] as [&str; 0]);
}

#[test]
fn unbounded_growth_fixture_pair() {
    let bad = include_str!("fixtures/unbounded_growth_bad.rs");
    let good = include_str!("fixtures/unbounded_growth_good.rs");
    assert_eq!(flow_rules(SERVE, bad), ["unbounded-growth"]);
    assert_eq!(flow_rules(SERVE, good), [] as [&str; 0]);
    // Out of scope: batch-side code may buffer as it likes.
    assert_eq!(flow_rules(KERNEL, bad), [] as [&str; 0]);
}

#[test]
fn hot_loop_alloc_fixture_pair() {
    let bad = include_str!("fixtures/hot_loop_alloc_bad.rs");
    let good = include_str!("fixtures/hot_loop_alloc_good.rs");
    // In scope only under the exact hot-path file paths.
    const HOT: &str = "crates/embed/src/word2vec.rs";
    assert_eq!(rules(HOT, bad), ["hot-loop-alloc"]);
    assert_eq!(rules(HOT, good), [] as [&str; 0]);
    // Out of scope: the same allocations are fine anywhere else.
    assert_eq!(rules(KERNEL, bad), [] as [&str; 0]);
    assert_eq!(rules(SERVE, bad), [] as [&str; 0]);
}

#[test]
fn findings_carry_file_and_line() {
    let bad = include_str!("fixtures/nondet_time_bad.rs");
    let f = &analyze(KERNEL, bad)[0];
    assert_eq!(f.file, KERNEL);
    assert_eq!(f.line, 5, "Instant::now() sits on line 5 of the fixture");
    let rendered = f.to_string();
    assert!(rendered.contains("crates/neural/src/fixture.rs:5"), "{rendered}");
    assert!(rendered.contains("[nondet-time]"), "{rendered}");
}

#[test]
fn suppression_comment_silences_one_site() {
    let bad = include_str!("fixtures/nondet_time_bad.rs");
    let suppressed =
        bad.replace("let t = Instant::now();", "let t = Instant::now(); // nd-lint: allow(nondet-time)");
    assert_eq!(rules(KERNEL, &suppressed), [] as [&str; 0]);
    // The wrong rule name suppresses nothing.
    let mismatched =
        bad.replace("let t = Instant::now();", "let t = Instant::now(); // nd-lint: allow(panic-path)");
    assert_eq!(rules(KERNEL, &mismatched), ["nondet-time"]);
}

#[test]
fn baseline_covers_fixture_finding() {
    let bad = include_str!("fixtures/nondet_time_bad.rs");
    let finding = &analyze(KERNEL, bad)[0];
    let by_line = Baseline::parse("nondet-time crates/neural/src/fixture.rs:5\n");
    assert!(by_line.covers(finding));
    let whole_file = Baseline::parse("nondet-time crates/neural/src/fixture.rs\n");
    assert!(whole_file.covers(finding));
    let other = Baseline::parse("nondet-time crates/neural/src/other.rs\n");
    assert!(!other.covers(finding));
}
