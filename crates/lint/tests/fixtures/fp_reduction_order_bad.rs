// Fixture: two float accumulations with no fixed reduction order — a
// bare iterator `.sum()` and a mutable accumulator fed across chunked
// iteration. Both break bit-identity the day the iteration
// parallelizes or reorders.
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

pub fn total_loss(batches: &[Vec<f64>]) -> f64 {
    let mut loss = 0.0f64;
    for chunk in batches.chunks(4) {
        loss += score(chunk);
    }
    loss
}

fn score(chunk: &[Vec<f64>]) -> f64 {
    chunk.len() as f64
}
