// Fixture: order-safe reductions. Integer sums are exact at any
// order, and the float accumulation is a plain indexed loop over one
// slice — not chunked — with the justification comment the rule asks
// for on the one site that is genuinely serial-by-design.
pub fn count(xs: &[usize]) -> usize {
    xs.iter().sum::<usize>()
}

pub fn mean(xs: &[f64]) -> f64 {
    let mut total = 0.0f64;
    for x in xs {
        total += x;
    }
    total / xs.len() as f64
}

pub fn weighted(xs: &[f64]) -> f64 {
    // nd-lint: allow(fp-reduction-order) — serial sum in slice order
    xs.iter().map(|x| x * 0.5).sum::<f64>()
}
