//! Violation fixture: heap allocation in a training hot-path file,
//! outside any `*Scratch` impl.

pub fn multiplicative_update(h: &mut [f64], numer: &[f64], denom: &[f64]) -> Vec<f64> {
    let mut ratio = Vec::with_capacity(h.len());
    for (n, d) in numer.iter().zip(denom) {
        ratio.push(n / d.max(1e-10));
    }
    let scaled = vec![0.0; h.len()];
    for (hi, r) in h.iter_mut().zip(&ratio) {
        *hi *= r;
    }
    scaled
}
