//! Clean fixture: per-iteration temporaries live in a reused scratch
//! workspace; the only allocations sit inside the `*Scratch` impl.

pub struct UpdateScratch {
    ratio: Vec<f64>,
}

impl UpdateScratch {
    pub fn new(n: usize) -> Self {
        UpdateScratch { ratio: Vec::with_capacity(n) }
    }
}

pub fn multiplicative_update(h: &mut [f64], numer: &[f64], denom: &[f64], s: &mut UpdateScratch) {
    s.ratio.clear();
    s.ratio.extend(numer.iter().zip(denom).map(|(n, d)| n / d.max(1e-10)));
    for (hi, r) in h.iter_mut().zip(&s.ratio) {
        *hi *= r;
    }
}
