// Fixture: a mutex guard stays live across a blocking socket write,
// so one slow peer stalls every other request behind the lock.
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Mutex, PoisonError};

pub fn report(counter: &Mutex<u64>, stream: &mut TcpStream) -> std::io::Result<()> {
    let guard = counter.lock().unwrap_or_else(PoisonError::into_inner);
    stream.write_all(format!("{}", *guard).as_bytes())
}
