// Fixture: copy the value out, drop the guard, then do the I/O.
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Mutex, PoisonError};

pub fn report(counter: &Mutex<u64>, stream: &mut TcpStream) -> std::io::Result<()> {
    let value = {
        let guard = counter.lock().unwrap_or_else(PoisonError::into_inner);
        *guard
    };
    stream.write_all(format!("{value}").as_bytes())
}
