// Fixture: two lock-order violations. `ab`/`ba` acquire the same two
// mutexes in opposite orders (a cycle in the acquisition graph — two
// threads can deadlock), and `report` keeps a guard live across a
// blocking socket write.
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Mutex, PoisonError};

pub struct Shared {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Shared {
    pub fn ab(&self) -> u64 {
        let g = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let h = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        *g + *h
    }

    pub fn ba(&self) -> u64 {
        let h = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        let g = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        *g + *h
    }
}

pub fn report(counter: &Mutex<u64>, stream: &mut TcpStream) -> std::io::Result<()> {
    let guard = counter.lock().unwrap_or_else(PoisonError::into_inner);
    stream.write_all(format!("{}", *guard).as_bytes())
}
