// Fixture: same shape, no violation. Both functions acquire in the
// same a-then-b order (the acquisition graph is acyclic), and the I/O
// happens after the guard is released by an inner scope.
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Mutex, PoisonError};

pub struct Shared {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Shared {
    pub fn sum(&self) -> u64 {
        let g = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let h = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        *g + *h
    }

    pub fn diff(&self) -> u64 {
        let g = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let h = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        *g - *h
    }
}

pub fn report(counter: &Mutex<u64>, stream: &mut TcpStream) -> std::io::Result<()> {
    let value = {
        let guard = counter.lock().unwrap_or_else(PoisonError::into_inner);
        *guard
    };
    stream.write_all(format!("{value}").as_bytes())
}
