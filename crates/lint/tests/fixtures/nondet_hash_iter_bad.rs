// Fixture: iterating a HashMap feeds arbitrary order into a numeric
// accumulation (non-associative under reordering for f64).
use std::collections::HashMap;

pub fn weighted_sum(weights: &HashMap<String, f64>) -> f64 {
    let mut total = 0.0;
    for (_, w) in weights.iter() {
        total += w;
    }
    total
}
