// Fixture: BTreeMap iterates in key order; the sum is reproducible.
use std::collections::BTreeMap;

pub fn weighted_sum(weights: &BTreeMap<String, f64>) -> f64 {
    let mut total = 0.0;
    for (_, w) in weights.iter() {
        total += w;
    }
    total
}
