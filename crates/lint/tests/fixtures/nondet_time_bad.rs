// Fixture: wall-clock reads inside a kernel crate.
use std::time::Instant;

pub fn decayed_weight(base: f64) -> f64 {
    let t = Instant::now();
    base * t.elapsed().as_secs_f64()
}
