// Fixture: time enters as data, so the kernel stays deterministic.
pub fn decayed_weight(base: f64, elapsed_secs: f64) -> f64 {
    base * elapsed_secs
}
