// Fixture: panics reachable from the request path.
pub fn first_score(scores: &[f64]) -> f64 {
    let head = scores.first().unwrap();
    *head
}

pub fn parse_port(raw: &str) -> u16 {
    raw.parse().expect("port must be numeric")
}
