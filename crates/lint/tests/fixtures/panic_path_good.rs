// Fixture: the same logic with failures carried as values.
pub fn first_score(scores: &[f64]) -> Option<f64> {
    scores.first().copied()
}

pub fn parse_port(raw: &str) -> Result<u16, std::num::ParseIntError> {
    raw.parse()
}
