// Fixture: three ways of losing an error. A `let _ =` on a fallible
// send, an `Err(_) => {}` match arm, and a statement that tails off
// in `.ok()`.
use std::sync::mpsc::Sender;

pub fn publish(tx: &Sender<u64>, value: u64) {
    let _ = tx.send(value);
}

pub fn apply(result: Result<u64, String>) -> u64 {
    match result {
        Ok(v) => v,
        Err(_) => {}
    }
}

pub fn persist(tx: &Sender<u64>, value: u64, count: &mut u64) {
    tx.send(value).ok();
    *count += 1;
}
