// Fixture: the same operations with every error observed — counted,
// matched on a specific kind, or propagated with `?`.
use std::sync::mpsc::Sender;

pub fn publish(tx: &Sender<u64>, value: u64, dropped: &mut u64) {
    if tx.send(value).is_err() {
        *dropped += 1;
    }
}

pub fn apply(result: Result<u64, std::io::Error>) -> u64 {
    match result {
        Ok(v) => v,
        // Discriminated by kind: the EINTR-retry idiom, not a swallow.
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => 0,
        Err(e) => {
            log(&e);
            0
        }
    }
}

pub fn persist(tx: &Sender<u64>, value: u64) -> Result<(), std::sync::mpsc::SendError<u64>> {
    tx.send(value)?;
    Ok(())
}

fn log(e: &std::io::Error) {
    let _ = e;
}
