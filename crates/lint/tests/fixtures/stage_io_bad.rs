//! stage-io fixture (violating): an nd-core stage persisting its
//! output with raw filesystem calls instead of the artifact store.

use std::fs;
use std::fs::File;
use std::io::Write;

pub struct TrendingStage;

impl TrendingStage {
    pub fn run(&self, payload: &[u8]) -> std::io::Result<()> {
        // Sidesteps fingerprinting and atomic rename entirely.
        fs::create_dir_all("cache")?;
        let mut f = File::create("cache/trending.art")?;
        f.write_all(payload)?;
        Ok(())
    }

    pub fn load(&self) -> std::io::Result<Vec<u8>> {
        std::fs::read("cache/trending.art")
    }
}
