//! stage-io fixture (clean): the same stage routed through nd-store's
//! artifact layer — fingerprints, checksums, and atomic rename come
//! for free. Tests may touch the filesystem directly.

use nd_store::ArtifactStore;

pub struct TrendingStage;

impl TrendingStage {
    pub fn run(&self, store: &ArtifactStore, fp: u64, payload: &[u8]) -> Result<(), StoreError> {
        store.save("trending", fp, payload)?;
        store.write_text("run_report.json", "{}")?;
        Ok(())
    }

    pub fn load(&self, store: &ArtifactStore, fp: u64) -> Option<Vec<u8>> {
        store.load("trending", fp)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_dirs_are_fine_in_tests() {
        std::fs::remove_dir_all("tmp").ok();
        let f = std::fs::File::create("tmp/x").unwrap();
        drop(f);
    }
}
