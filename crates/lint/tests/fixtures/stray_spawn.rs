// Fixture: raw thread spawn. A violation inside a kernel crate (all
// parallelism must route through nd-par's deterministic primitives);
// fine inside crates/par or crates/serve, which own threading.
pub fn sum_in_background(xs: Vec<f64>) -> std::thread::JoinHandle<f64> {
    std::thread::spawn(move || xs.iter().sum())
}
