// Fixture: a drain loop that buffers every received item forever —
// no length check, no eviction, iteration count unbounded.
use std::sync::mpsc::Receiver;

pub fn pump(rx: &Receiver<u64>) -> Vec<u64> {
    let mut backlog = Vec::new();
    loop {
        let Ok(item) = rx.recv() else {
            return backlog;
        };
        backlog.push(item);
    }
}
