// Fixture: the same drain loop with an observable bound — old items
// are evicted once the backlog reaches capacity.
use std::sync::mpsc::Receiver;

const MAX_BACKLOG: usize = 1024;

pub fn pump(rx: &Receiver<u64>) -> Vec<u64> {
    let mut backlog = Vec::new();
    loop {
        let Ok(item) = rx.recv() else {
            return backlog;
        };
        if backlog.len() == MAX_BACKLOG {
            backlog.remove(0);
        }
        backlog.push(item);
    }
}
