// Fixture: the SAFETY comment states why the dereference is sound.
pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: callers pass pointers derived from a live &[u8]; the
    // pointee outlives this call.
    unsafe { *p }
}
