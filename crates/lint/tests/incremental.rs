//! Incremental-mode contract: a warm run re-parses nothing, a run
//! after one edit re-parses exactly that file, and every run emits a
//! byte-identical report to a cold one — the cache is an accelerator,
//! never a source of truth.

use nd_lint::report::render_json;
use nd_lint::{analyze_workspace_with, AnalyzeOptions};
use std::path::PathBuf;

const PUMP_BAD: &str = r#"
use std::sync::mpsc::Receiver;
pub fn pump(rx: &Receiver<u64>) -> Vec<u64> {
    let mut backlog = Vec::new();
    loop {
        let Ok(item) = rx.recv() else {
            return backlog;
        };
        backlog.push(item);
    }
}
"#;

const SUM_BAD: &str = r#"
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}
"#;

const SUM_FIXED: &str = r#"
pub fn mean(xs: &[f64]) -> f64 {
    // nd-lint: allow(fp-reduction-order) — serial sum in slice order
    xs.iter().sum::<f64>() / xs.len() as f64
}
"#;

/// Builds a miniature two-crate workspace under a fresh temp dir.
fn scratch_workspace(name: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("nd-lint-incr-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    for (rel, src) in
        [("crates/serve/src/pump.rs", PUMP_BAD), ("crates/neural/src/sum.rs", SUM_BAD)]
    {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, src).unwrap();
    }
    root
}

fn opts(root: &std::path::Path) -> AnalyzeOptions {
    AnalyzeOptions {
        cache_path: Some(root.join("target/nd-lint.cache")),
        changed_only: false,
    }
}

#[test]
fn warm_run_reparses_nothing_and_reports_identically() {
    let root = scratch_workspace("warm");
    let (cold, cold_stats) = analyze_workspace_with(&root, &opts(&root)).unwrap();
    assert_eq!(cold_stats.files_scanned, 2);
    assert_eq!(cold_stats.reparsed, 2);
    assert_eq!(cold_stats.cached, 0);
    assert_eq!(cold.len(), 2, "one finding per planted violation: {cold:?}");

    let (warm, warm_stats) = analyze_workspace_with(&root, &opts(&root)).unwrap();
    assert_eq!(warm_stats.reparsed, 0);
    assert_eq!(warm_stats.cached, 2);
    assert_eq!(warm, cold, "findings must match exactly");

    let tag = |fs: &[nd_lint::Finding]| {
        fs.iter().map(|f| (f.clone(), false)).collect::<Vec<_>>()
    };
    assert_eq!(
        render_json(&tag(&warm), warm_stats.files_scanned),
        render_json(&tag(&cold), cold_stats.files_scanned),
        "warm and cold reports must be byte-identical"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn editing_one_file_reparses_only_that_file() {
    let root = scratch_workspace("edit");
    let (_, stats) = analyze_workspace_with(&root, &opts(&root)).unwrap();
    assert_eq!(stats.reparsed, 2);

    std::fs::write(root.join("crates/neural/src/sum.rs"), SUM_FIXED).unwrap();
    let (findings, stats) = analyze_workspace_with(&root, &opts(&root)).unwrap();
    assert_eq!(stats.reparsed, 1, "only the edited file re-parses");
    assert_eq!(stats.cached, 1);
    assert_eq!(findings.len(), 1, "the suppressed finding is gone: {findings:?}");
    assert_eq!(findings[0].rule, "unbounded-growth");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn deleted_file_leaves_the_cache_on_full_runs() {
    let root = scratch_workspace("delete");
    analyze_workspace_with(&root, &opts(&root)).unwrap();
    std::fs::remove_file(root.join("crates/neural/src/sum.rs")).unwrap();
    let (findings, stats) = analyze_workspace_with(&root, &opts(&root)).unwrap();
    assert_eq!(stats.files_scanned, 1);
    assert_eq!(findings.len(), 1, "{findings:?}");
    // The cache must not resurrect the deleted file's record next run.
    let (_, stats) = analyze_workspace_with(&root, &opts(&root)).unwrap();
    assert_eq!(stats.cached, 1);
    assert_eq!(stats.reparsed, 0);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn changed_only_without_git_falls_back_to_full_workspace() {
    // The scratch dir is not a git repository, so `--changed` must
    // degrade to a full scan rather than an empty one.
    let root = scratch_workspace("nogit");
    let o = AnalyzeOptions {
        cache_path: None,
        changed_only: true,
    };
    let (findings, stats) = analyze_workspace_with(&root, &o).unwrap();
    assert_eq!(stats.files_scanned, 2);
    assert_eq!(findings.len(), 2, "{findings:?}");
    std::fs::remove_dir_all(&root).ok();
}
