//! Network layers with hand-derived backward passes.
//!
//! Every layer implements [`Layer`]: `forward` caches whatever the
//! backward pass needs, `backward` consumes the upstream gradient and
//! returns the downstream one while accumulating parameter gradients.
//! Parameters and their gradients are exposed as flat slices so any
//! [`crate::optimizer::Optimizer`] can update them uniformly.

use nd_linalg::rng::SplitMix64;
use nd_linalg::Mat;

/// A differentiable network layer.
pub trait Layer {
    /// Forward pass over a batch (`rows` = samples). When `training`
    /// is true the layer caches activations for `backward`.
    fn forward(&mut self, input: &Mat, training: bool) -> Mat;

    /// Inference-only forward pass: no activation caching, no gradient
    /// state touched. Taking `&self` lets a frozen layer stack be
    /// shared across threads (the serving path runs concurrent
    /// forward passes over one `Arc`-held network).
    fn forward_infer(&self, input: &Mat) -> Mat;

    /// Backward pass: consumes `dL/d(output)` and returns
    /// `dL/d(input)`, accumulating parameter gradients internally.
    fn backward(&mut self, grad_output: &Mat) -> Mat;

    /// Flat view of trainable parameters (empty for stateless layers).
    fn params(&self) -> &[f64] {
        &[]
    }

    /// Mutable flat view of trainable parameters.
    fn params_mut(&mut self) -> &mut [f64] {
        &mut []
    }

    /// Flat view of parameter gradients, parallel to [`Layer::params`].
    fn grads(&self) -> &[f64] {
        &[]
    }

    /// Zeroes accumulated gradients.
    fn zero_grads(&mut self) {}

    /// Human-readable layer description.
    fn name(&self) -> String;

    /// Output feature count for a given input feature count.
    fn output_dim(&self, input_dim: usize) -> usize;
}

/// Activation functions (paper Table 1). Softmax is handled inside the
/// cross-entropy loss for numerical stability and is therefore not an
/// activation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    #[inline]
    fn apply(&self, z: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-z).exp()),
            Activation::Tanh => z.tanh(),
            Activation::Relu => z.max(0.0),
        }
    }

    /// Derivative expressed through the *output* value `a = f(z)`.
    #[inline]
    fn derivative_from_output(&self, a: f64) -> f64 {
        match self {
            Activation::Sigmoid => a * (1.0 - a),
            Activation::Tanh => 1.0 - a * a,
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Element-wise activation layer.
pub struct ActivationLayer {
    activation: Activation,
    cached_output: Mat,
}

impl ActivationLayer {
    /// Creates an activation layer.
    pub fn new(activation: Activation) -> Self {
        ActivationLayer { activation, cached_output: Mat::zeros(0, 0) }
    }
}

impl Layer for ActivationLayer {
    fn forward(&mut self, input: &Mat, training: bool) -> Mat {
        let out = self.forward_infer(input);
        if training {
            self.cached_output = out.clone();
        }
        out
    }

    fn forward_infer(&self, input: &Mat) -> Mat {
        input.map(|z| self.activation.apply(z))
    }

    fn backward(&mut self, grad_output: &Mat) -> Mat {
        let act = self.activation;
        grad_output
            .hadamard(&self.cached_output.map(|a| act.derivative_from_output(a)))
            .expect("activation backward shape")
    }

    fn name(&self) -> String {
        format!("{:?}", self.activation)
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim
    }
}

/// Fully-connected layer `y = x W + b`.
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    /// `in_dim * out_dim` weights followed by `out_dim` biases.
    params: Vec<f64>,
    grads: Vec<f64>,
    cached_input: Mat,
}

impl Dense {
    /// Creates a dense layer with Glorot-uniform initialized weights
    /// and zero biases, deterministically from `seed`.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let bound = (6.0 / (in_dim + out_dim) as f64).sqrt();
        // nd-lint: allow(hot-loop-alloc) — constructor, runs once.
        let mut params = Vec::with_capacity(in_dim * out_dim + out_dim);
        for _ in 0..in_dim * out_dim {
            params.push(rng.next_range(-bound, bound));
        }
        params.extend(std::iter::repeat_n(0.0, out_dim));
        // nd-lint: allow(hot-loop-alloc) — constructor, runs once.
        let grads = vec![0.0; params.len()];
        Dense { in_dim, out_dim, params, grads, cached_input: Mat::zeros(0, 0) }
    }
}

/// Fixed batch chunk for `Conv1d`'s parameter-gradient reduction: the
/// partial sums must combine in an order that does not move with the
/// thread count. (`Dense` gets the same guarantee for free from the
/// GEMM kernel's fixed depth-block order.)
const GRAD_CHUNK: usize = 16;

impl Layer for Dense {
    fn forward(&mut self, input: &Mat, training: bool) -> Mat {
        let out = self.forward_infer(input);
        if training {
            self.cached_input = input.clone();
        }
        out
    }

    fn forward_infer(&self, input: &Mat) -> Mat {
        debug_assert_eq!(input.cols(), self.in_dim, "dense input width");
        let batch = input.rows();
        let (in_dim, out_dim) = (self.in_dim, self.out_dim);
        let mut out = Mat::zeros(batch, out_dim);
        // X·W through the packed GEMM kernel; thread-local scratch
        // because the serving path calls this through `&self`.
        nd_linalg::gemm::with_tls_scratch(|s| {
            nd_linalg::gemm::gemm_into(
                batch,
                in_dim,
                out_dim,
                input.as_slice(),
                false,
                &self.params[..in_dim * out_dim],
                false,
                false,
                s,
                out.as_mut_slice(),
            );
        });
        let bias = &self.params[in_dim * out_dim..];
        for row in out.as_mut_slice().chunks_mut(out_dim) {
            for (o, &b) in row.iter_mut().zip(bias) {
                *o += b;
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Mat) -> Mat {
        let batch = grad_output.rows();
        debug_assert_eq!(grad_output.cols(), self.out_dim);
        debug_assert_eq!(self.cached_input.rows(), batch);
        let (in_dim, out_dim) = (self.in_dim, self.out_dim);

        // Parameter gradients (averaged over the batch by the loss, so
        // plain accumulation here). Weight gradient Xᵀ·G accumulates
        // straight into the running grads: the GEMM kernel's serial
        // depth-block order makes the sum thread-count invariant, so no
        // per-chunk partial buffers are needed.
        let input = &self.cached_input;
        let mut grad_input = Mat::zeros(batch, in_dim);
        nd_linalg::gemm::with_tls_scratch(|s| {
            nd_linalg::gemm::gemm_into(
                in_dim,
                batch,
                out_dim,
                input.as_slice(),
                true,
                grad_output.as_slice(),
                false,
                true,
                s,
                &mut self.grads[..in_dim * out_dim],
            );
            // Input gradient: G·Wᵀ through the same kernel.
            nd_linalg::gemm::gemm_into(
                batch,
                out_dim,
                in_dim,
                grad_output.as_slice(),
                false,
                &self.params[..in_dim * out_dim],
                true,
                false,
                s,
                grad_input.as_mut_slice(),
            );
        });
        // Bias gradient: column sums of G, ascending rows.
        let gb = &mut self.grads[in_dim * out_dim..];
        for r in 0..batch {
            for (gbj, &gj) in gb.iter_mut().zip(grad_output.row(r)) {
                *gbj += gj;
            }
        }
        grad_input
    }

    fn params(&self) -> &[f64] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn grads(&self) -> &[f64] {
        &self.grads
    }

    fn zero_grads(&mut self) {
        self.grads.iter_mut().for_each(|g| *g = 0.0);
    }

    fn name(&self) -> String {
        format!("Dense({}→{})", self.in_dim, self.out_dim)
    }

    fn output_dim(&self, _input_dim: usize) -> usize {
        self.out_dim
    }
}

/// 1-D convolution over the feature axis (single input channel,
/// `n_filters` output channels, stride 1, valid padding).
///
/// Input: `(batch, length)`. Output: `(batch, n_filters * out_len)`
/// with `out_len = length - kernel + 1`, laid out filter-major
/// (filter 0's positions, then filter 1's, …).
pub struct Conv1d {
    length: usize,
    kernel: usize,
    n_filters: usize,
    /// `n_filters * kernel` weights followed by `n_filters` biases.
    params: Vec<f64>,
    grads: Vec<f64>,
    cached_input: Mat,
    /// Per-chunk partial-gradient buffers, reused across backward
    /// passes so the training loop allocates nothing per step.
    grad_partials: Vec<Vec<f64>>,
}

impl Conv1d {
    /// Creates a convolution for inputs of width `length`.
    ///
    /// # Panics
    /// Panics when `kernel > length` or `kernel == 0` — a construction
    /// error.
    pub fn new(length: usize, kernel: usize, n_filters: usize, seed: u64) -> Self {
        assert!(kernel > 0 && kernel <= length, "kernel must fit the input");
        let mut rng = SplitMix64::new(seed);
        let bound = (6.0 / (kernel + n_filters) as f64).sqrt();
        // nd-lint: allow(hot-loop-alloc) — constructor, runs once.
        let mut params = Vec::with_capacity(n_filters * kernel + n_filters);
        for _ in 0..n_filters * kernel {
            params.push(rng.next_range(-bound, bound));
        }
        params.extend(std::iter::repeat_n(0.0, n_filters));
        // nd-lint: allow(hot-loop-alloc) — constructor, runs once.
        let grads = vec![0.0; params.len()];
        Conv1d {
            length,
            kernel,
            n_filters,
            params,
            grads,
            cached_input: Mat::zeros(0, 0),
            grad_partials: Vec::new(), // nd-lint: allow(hot-loop-alloc)
        }
    }

    /// Output positions per filter.
    pub fn out_len(&self) -> usize {
        self.length - self.kernel + 1
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, input: &Mat, training: bool) -> Mat {
        let out = self.forward_infer(input);
        if training {
            self.cached_input = input.clone();
        }
        out
    }

    fn forward_infer(&self, input: &Mat) -> Mat {
        debug_assert_eq!(input.cols(), self.length, "conv input width");
        let batch = input.rows();
        let out_len = self.out_len();
        let (kernel, n_filters) = (self.kernel, self.n_filters);
        let params = &self.params;
        let mut out = Mat::zeros(batch, n_filters * out_len);
        nd_par::par_for_rows(
            out.as_mut_slice(),
            n_filters * out_len,
            nd_par::auto_chunk_len(batch, 4),
            n_filters * out_len * kernel,
            |r0, block| {
                for (rk, o) in block.chunks_mut(n_filters * out_len).enumerate() {
                    let x = input.row(r0 + rk);
                    for f in 0..n_filters {
                        let w = &params[f * kernel..(f + 1) * kernel];
                        let b = params[n_filters * kernel + f];
                        for p in 0..out_len {
                            let mut acc = b;
                            for (k, &wk) in w.iter().enumerate() {
                                acc += wk * x[p + k];
                            }
                            o[f * out_len + p] = acc;
                        }
                    }
                }
            },
        );
        out
    }

    fn backward(&mut self, grad_output: &Mat) -> Mat {
        let batch = grad_output.rows();
        let out_len = self.out_len();
        let (kernel, n_filters) = (self.kernel, self.n_filters);

        // Filter/bias gradients: each fixed-size chunk fills its own
        // persistent partial buffer, folded into the running grads in
        // ascending chunk order — thread-count invariant and
        // allocation-free once the buffers are warm.
        let plen = n_filters * kernel + n_filters;
        let nchunks = batch.div_ceil(GRAD_CHUNK);
        let x_cache = &self.cached_input;
        let partials = &mut self.grad_partials;
        partials.resize_with(nchunks, Vec::new);
        nd_par::par_for_rows(
            &mut partials[..nchunks],
            1,
            1,
            GRAD_CHUNK * n_filters * out_len * kernel,
            |ci, slot| {
                let part = &mut slot[0];
                part.clear();
                part.resize(plen, 0.0);
                let lo = ci * GRAD_CHUNK;
                let hi = (lo + GRAD_CHUNK).min(batch);
                for r in lo..hi {
                    let x = x_cache.row(r);
                    let g = grad_output.row(r);
                    for f in 0..n_filters {
                        let mut gb = 0.0;
                        for p in 0..out_len {
                            let go = g[f * out_len + p];
                            if go == 0.0 {
                                continue;
                            }
                            gb += go;
                            for k in 0..kernel {
                                part[f * kernel + k] += go * x[p + k];
                            }
                        }
                        part[n_filters * kernel + f] += gb;
                    }
                }
            },
        );
        for part in partials.iter() {
            for (gsum, &p) in self.grads.iter_mut().zip(part.iter()) {
                *gsum += p;
            }
        }

        // Input gradient: rows independent; reads weights in place
        // rather than copying each filter per sample.
        let mut grad_input = Mat::zeros(batch, self.length);
        let params = &self.params;
        let length = self.length;
        nd_par::par_for_rows(
            grad_input.as_mut_slice(),
            length,
            nd_par::auto_chunk_len(batch, 4),
            n_filters * out_len * kernel,
            |r0, block| {
                for (rk, gi) in block.chunks_mut(length).enumerate() {
                    let g = grad_output.row(r0 + rk);
                    for f in 0..n_filters {
                        let w = &params[f * kernel..(f + 1) * kernel];
                        for p in 0..out_len {
                            let go = g[f * out_len + p];
                            if go == 0.0 {
                                continue;
                            }
                            for (k, &wk) in w.iter().enumerate() {
                                gi[p + k] += go * wk;
                            }
                        }
                    }
                }
            },
        );
        grad_input
    }

    fn params(&self) -> &[f64] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn grads(&self) -> &[f64] {
        &self.grads
    }

    fn zero_grads(&mut self) {
        self.grads.iter_mut().for_each(|g| *g = 0.0);
    }

    fn name(&self) -> String {
        format!("Conv1d(len={}, k={}, f={})", self.length, self.kernel, self.n_filters)
    }

    fn output_dim(&self, _input_dim: usize) -> usize {
        self.n_filters * self.out_len()
    }
}

/// Max pooling over each filter map of a [`Conv1d`] output.
///
/// Input layout must match `Conv1d`'s: `n_filters` maps of `in_len`
/// positions. Pool windows are non-overlapping (`pool` wide); a
/// trailing partial window is pooled too.
pub struct MaxPool1d {
    n_filters: usize,
    in_len: usize,
    pool: usize,
    /// Argmax index per output cell, cached for the backward pass.
    cached_argmax: Vec<usize>,
    cached_batch: usize,
}

impl MaxPool1d {
    /// Creates a pooling layer for `n_filters` maps of `in_len`.
    ///
    /// # Panics
    /// Panics when `pool == 0`.
    pub fn new(n_filters: usize, in_len: usize, pool: usize) -> Self {
        assert!(pool > 0, "pool width must be positive");
        // nd-lint: allow(hot-loop-alloc) — constructor, runs once.
        MaxPool1d { n_filters, in_len, pool, cached_argmax: Vec::new(), cached_batch: 0 }
    }

    /// Pooled positions per filter map.
    pub fn out_len(&self) -> usize {
        self.in_len.div_ceil(self.pool)
    }

    /// The pooling computation; fills `argmax` (when given) with the
    /// winning index per output cell for the backward pass.
    fn pool(&self, input: &Mat, mut argmax: Option<&mut Vec<usize>>) -> Mat {
        debug_assert_eq!(input.cols(), self.n_filters * self.in_len, "pool input width");
        let batch = input.rows();
        let out_len = self.out_len();
        let mut out = Mat::zeros(batch, self.n_filters * out_len);
        for r in 0..batch {
            let x = input.row(r);
            let o = out.row_mut(r);
            for f in 0..self.n_filters {
                for p in 0..out_len {
                    let lo = p * self.pool;
                    let hi = ((p + 1) * self.pool).min(self.in_len);
                    let mut best = f64::NEG_INFINITY;
                    let mut best_idx = lo;
                    for q in lo..hi {
                        let v = x[f * self.in_len + q];
                        if v > best {
                            best = v;
                            best_idx = q;
                        }
                    }
                    o[f * out_len + p] = best;
                    if let Some(marks) = argmax.as_deref_mut() {
                        marks[r * self.n_filters * out_len + f * out_len + p] = best_idx;
                    }
                }
            }
        }
        out
    }
}

impl Layer for MaxPool1d {
    fn forward(&mut self, input: &Mat, training: bool) -> Mat {
        if !training {
            return self.pool(input, None);
        }
        let batch = input.rows();
        // Reuse the cached argmax buffer across training steps.
        let mut argmax = std::mem::take(&mut self.cached_argmax);
        argmax.clear();
        argmax.resize(batch * self.n_filters * self.out_len(), 0);
        let out = self.pool(input, Some(&mut argmax));
        self.cached_argmax = argmax;
        self.cached_batch = batch;
        out
    }

    fn forward_infer(&self, input: &Mat) -> Mat {
        self.pool(input, None)
    }

    fn backward(&mut self, grad_output: &Mat) -> Mat {
        let batch = grad_output.rows();
        debug_assert_eq!(batch, self.cached_batch, "backward batch mismatch");
        let out_len = self.out_len();
        let mut grad_input = Mat::zeros(batch, self.n_filters * self.in_len);
        for r in 0..batch {
            let g = grad_output.row(r);
            let gi = grad_input.row_mut(r);
            for f in 0..self.n_filters {
                for p in 0..out_len {
                    let idx =
                        self.cached_argmax[r * self.n_filters * out_len + f * out_len + p];
                    gi[f * self.in_len + idx] += g[f * out_len + p];
                }
            }
        }
        grad_input
    }

    fn name(&self) -> String {
        format!("MaxPool1d(f={}, len={}, pool={})", self.n_filters, self.in_len, self.pool)
    }

    fn output_dim(&self, _input_dim: usize) -> usize {
        self.n_filters * self.out_len()
    }
}

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and survivors are scaled by `1/(1-rate)`, so
/// inference needs no rescaling. A regularization extension beyond the
/// paper's Figures 2–3 (exposed for the ablation benches).
pub struct Dropout {
    rate: f64,
    rng: SplitMix64,
    mask: Vec<f64>,
    cols: usize,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    /// Panics unless `0.0 <= rate < 1.0`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        // nd-lint: allow(hot-loop-alloc) — constructor, runs once.
        Dropout { rate, rng: SplitMix64::new(seed), mask: Vec::new(), cols: 0 }
    }

    /// Training-mode forward: draws a fresh mask into the reused mask
    /// buffer and applies it.
    fn forward_train(&mut self, input: &Mat) -> Mat {
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        self.cols = input.cols();
        let rng = &mut self.rng;
        self.mask.clear();
        self.mask
            .extend((0..input.len()).map(|_| if rng.next_bool(keep) { scale } else { 0.0 }));
        let mut out = input.clone();
        for (v, &m) in out.as_mut_slice().iter_mut().zip(&self.mask) {
            *v *= m;
        }
        out
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Mat, training: bool) -> Mat {
        if !training || self.rate == 0.0 {
            return input.clone();
        }
        self.forward_train(input)
    }

    fn forward_infer(&self, input: &Mat) -> Mat {
        // Inverted dropout: inference is the identity.
        input.clone()
    }

    fn backward(&mut self, grad_output: &Mat) -> Mat {
        if self.mask.is_empty() {
            return grad_output.clone();
        }
        debug_assert_eq!(grad_output.len(), self.mask.len());
        let mut out = grad_output.clone();
        for (g, &m) in out.as_mut_slice().iter_mut().zip(&self.mask) {
            *g *= m;
        }
        out
    }

    fn name(&self) -> String {
        format!("Dropout({})", self.rate)
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical-vs-analytic gradient check for a layer, using the sum
    /// of outputs as the scalar loss (so dL/d(output) is all ones).
    fn check_param_gradients(layer: &mut dyn Layer, input: &Mat, tol: f64) {
        let out = layer.forward(input, true);
        let ones = Mat::filled(out.rows(), out.cols(), 1.0);
        layer.zero_grads();
        layer.backward(&ones);
        let analytic = layer.grads().to_vec();

        let eps = 1e-5;
        for (p, &a) in analytic.iter().enumerate() {
            let orig = layer.params()[p];
            layer.params_mut()[p] = orig + eps;
            let plus = layer.forward(input, false).sum();
            layer.params_mut()[p] = orig - eps;
            let minus = layer.forward(input, false).sum();
            layer.params_mut()[p] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (numeric - a).abs() < tol,
                "param {p}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    /// Numerical check of the input gradient.
    fn check_input_gradients(layer: &mut dyn Layer, input: &Mat, tol: f64) {
        let out = layer.forward(input, true);
        let ones = Mat::filled(out.rows(), out.cols(), 1.0);
        layer.zero_grads();
        let grad_in = layer.backward(&ones);

        let eps = 1e-5;
        let mut x = input.clone();
        for i in 0..input.rows() {
            for j in 0..input.cols() {
                let orig = x.get(i, j);
                x.set(i, j, orig + eps);
                let plus = layer.forward(&x, false).sum();
                x.set(i, j, orig - eps);
                let minus = layer.forward(&x, false).sum();
                x.set(i, j, orig);
                let numeric = (plus - minus) / (2.0 * eps);
                assert!(
                    (numeric - grad_in.get(i, j)).abs() < tol,
                    "input ({i},{j}): numeric {numeric} vs analytic {}",
                    grad_in.get(i, j)
                );
            }
        }
    }

    #[test]
    fn dense_forward_known_values() {
        let mut d = Dense::new(2, 2, 0);
        d.params_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 0.5, -0.5]);
        // W = [[1,2],[3,4]], b = [0.5,-0.5]; x = [1, 1] -> [4.5, 5.5]
        let x = Mat::from_vec(1, 2, vec![1.0, 1.0]).unwrap();
        let y = d.forward(&x, false);
        assert_eq!(y.row(0), &[4.5, 5.5]);
    }

    #[test]
    fn dense_gradients_match_numerical() {
        let mut d = Dense::new(3, 2, 7);
        let x = Mat::random_normal(4, 3, 0.0, 1.0, 1);
        check_param_gradients(&mut d, &x, 1e-6);
        check_input_gradients(&mut d, &x, 1e-6);
    }

    #[test]
    fn conv_forward_known_values() {
        let mut c = Conv1d::new(4, 2, 1, 0);
        c.params_mut().copy_from_slice(&[1.0, -1.0, 0.0]); // filter [1,-1], bias 0
        let x = Mat::from_vec(1, 4, vec![3.0, 1.0, 4.0, 1.0]).unwrap();
        let y = c.forward(&x, false);
        // positions: 3-1=2, 1-4=-3, 4-1=3
        assert_eq!(y.row(0), &[2.0, -3.0, 3.0]);
        assert_eq!(c.out_len(), 3);
    }

    #[test]
    fn conv_gradients_match_numerical() {
        let mut c = Conv1d::new(6, 3, 2, 9);
        let x = Mat::random_normal(3, 6, 0.0, 1.0, 2);
        check_param_gradients(&mut c, &x, 1e-6);
        check_input_gradients(&mut c, &x, 1e-6);
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let mut p = MaxPool1d::new(1, 4, 2);
        let x = Mat::from_vec(1, 4, vec![1.0, 5.0, 2.0, 3.0]).unwrap();
        let y = p.forward(&x, true);
        assert_eq!(y.row(0), &[5.0, 3.0]);
        // Gradient routes to the argmax positions only.
        let g = Mat::from_vec(1, 2, vec![10.0, 20.0]).unwrap();
        let gi = p.backward(&g);
        assert_eq!(gi.row(0), &[0.0, 10.0, 0.0, 20.0]);
    }

    #[test]
    fn maxpool_partial_window() {
        let mut p = MaxPool1d::new(1, 5, 2);
        assert_eq!(p.out_len(), 3);
        let x = Mat::from_vec(1, 5, vec![1.0, 2.0, 3.0, 4.0, 9.0]).unwrap();
        let y = p.forward(&x, false);
        assert_eq!(y.row(0), &[2.0, 4.0, 9.0]);
    }

    #[test]
    fn maxpool_multifilter_layout() {
        let mut p = MaxPool1d::new(2, 2, 2);
        // filter 0 map [1, 7], filter 1 map [4, 2]
        let x = Mat::from_vec(1, 4, vec![1.0, 7.0, 4.0, 2.0]).unwrap();
        let y = p.forward(&x, false);
        assert_eq!(y.row(0), &[7.0, 4.0]);
    }

    #[test]
    fn activations_apply_and_differentiate() {
        for act in [Activation::Sigmoid, Activation::Tanh, Activation::Relu] {
            let mut l = ActivationLayer::new(act);
            let x = Mat::random_normal(3, 4, 0.0, 1.5, 5);
            check_input_gradients(&mut l, &x, 1e-5);
        }
    }

    #[test]
    fn relu_clamps_negative() {
        let mut l = ActivationLayer::new(Activation::Relu);
        let x = Mat::from_vec(1, 3, vec![-1.0, 0.0, 2.0]).unwrap();
        assert_eq!(l.forward(&x, false).row(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_range() {
        let mut l = ActivationLayer::new(Activation::Sigmoid);
        let x = Mat::random_normal(2, 5, 0.0, 3.0, 8);
        let y = l.forward(&x, false);
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn output_dims() {
        assert_eq!(Dense::new(10, 4, 0).output_dim(10), 4);
        assert_eq!(Conv1d::new(10, 3, 2, 0).output_dim(10), 16);
        assert_eq!(MaxPool1d::new(2, 8, 4).output_dim(16), 4);
        assert_eq!(ActivationLayer::new(Activation::Relu).output_dim(7), 7);
    }

    #[test]
    #[should_panic(expected = "kernel must fit")]
    fn conv_kernel_too_large_panics() {
        Conv1d::new(2, 5, 1, 0);
    }

    #[test]
    fn dense_deterministic_init() {
        let a = Dense::new(4, 3, 42);
        let b = Dense::new(4, 3, 42);
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn dropout_identity_at_inference() {
        let mut d = Dropout::new(0.5, 1);
        let x = Mat::random_normal(3, 5, 0.0, 1.0, 2);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn dropout_zeroes_and_rescales_in_training() {
        let mut d = Dropout::new(0.5, 7);
        let x = Mat::filled(50, 20, 1.0);
        let y = d.forward(&x, true);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let scaled = y.as_slice().iter().filter(|&&v| (v - 2.0).abs() < 1e-12).count();
        assert_eq!(zeros + scaled, 1000, "entries are either dropped or rescaled");
        let frac = zeros as f64 / 1000.0;
        assert!((0.4..0.6).contains(&frac), "drop fraction {frac}");
        // Expectation preserved (inverted dropout).
        assert!((y.mean() - 1.0).abs() < 0.1, "mean {}", y.mean());
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.3, 9);
        let x = Mat::filled(4, 6, 1.0);
        let y = d.forward(&x, true);
        let g = d.backward(&Mat::filled(4, 6, 1.0));
        // Gradient flows exactly where activations survived.
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn dropout_rejects_rate_one() {
        Dropout::new(1.0, 0);
    }
}
