//! # nd-neural
//!
//! Feed-forward neural networks (paper §3.5) — the Keras/TensorFlow
//! substitute of DESIGN.md §1.
//!
//! * [`layer`] — dense, 1-D convolution, max-pooling and activation layers, each with
//!   hand-derived backward passes (verified against numerical
//!   gradients in the test suite).
//! * [`loss`] — binary cross-entropy (paper Eq. 12) and categorical
//!   softmax cross-entropy.
//! * [`optimizer`] — SGD with momentum (Eq. 13–14), ADAGRAD (Eq. 15)
//!   and ADADELTA (Eq. 16).
//! * [`network`] — a sequential container.
//! * [`train`] — mini-batch training with the paper's early-stopping
//!   rule (stop when the loss stops changing between epochs), timing
//!   per epoch for the Table 10 / Figures 6–7 reproductions.
//! * [`metrics`] — confusion matrix, average multi-class accuracy
//!   (Eq. 17), precision/recall/F1.
//!
//! The two architectures used by the paper's audience-interest
//! predictor (Figures 2 and 3) are assembled in `nd-core::predict`
//! from these pieces.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod layer;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod optimizer;
pub mod train;

pub use layer::{Activation, ActivationLayer, Conv1d, Dense, Dropout, Layer, MaxPool1d};
pub use loss::Loss;
pub use network::Network;
pub use optimizer::{Adadelta, Adagrad, Adam, Optimizer, Sgd};
pub use train::{EarlyStopping, TrainReport, Trainer, TrainerConfig};
