//! Loss functions.
//!
//! The paper's Eq. (12) is the binary cross-entropy; the deployed
//! predictor classifies into the three engagement buckets of Table 2,
//! so the softmax (categorical) cross-entropy is the production loss.
//! Both return `(mean loss, dL/d(logits))` so the network's backward
//! pass starts from the logits directly — folding the softmax into the
//! loss keeps the gradient numerically stable (`p - y`).

use nd_linalg::vecops::softmax;
use nd_linalg::Mat;

/// Loss selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Softmax + categorical cross-entropy on integer class labels.
    SoftmaxCrossEntropy,
    /// Element-wise binary cross-entropy (paper Eq. 12); labels must be
    /// 0/1 and the network's last layer should be a sigmoid.
    BinaryCrossEntropy,
    /// Mean squared error (for regression ablations).
    MeanSquaredError,
}

impl Loss {
    /// Computes the mean loss and the gradient w.r.t. the network
    /// output, for integer class labels.
    ///
    /// For [`Loss::SoftmaxCrossEntropy`], `output` holds logits
    /// (`batch x n_classes`). For the other variants the label is
    /// interpreted as a one-hot target.
    ///
    /// # Panics
    /// Debug-asserts `labels.len() == output.rows()`.
    #[allow(clippy::needless_range_loop)] // rows of `output` and `labels` advance together
    pub fn compute(&self, output: &Mat, labels: &[usize]) -> (f64, Mat) {
        debug_assert_eq!(labels.len(), output.rows());
        let batch = output.rows().max(1) as f64;
        match self {
            Loss::SoftmaxCrossEntropy => {
                let mut grad = Mat::zeros(output.rows(), output.cols());
                let mut total = 0.0;
                for r in 0..output.rows() {
                    let p = softmax(output.row(r));
                    let y = labels[r];
                    debug_assert!(y < output.cols(), "label out of range");
                    total -= p[y].max(1e-12).ln();
                    let g = grad.row_mut(r);
                    for (j, &pj) in p.iter().enumerate() {
                        g[j] = (pj - if j == y { 1.0 } else { 0.0 }) / batch;
                    }
                }
                (total / batch, grad)
            }
            Loss::BinaryCrossEntropy => {
                let mut grad = Mat::zeros(output.rows(), output.cols());
                let mut total = 0.0;
                for r in 0..output.rows() {
                    let y = labels[r];
                    for j in 0..output.cols() {
                        let t = if j == y { 1.0 } else { 0.0 };
                        let p = output.get(r, j).clamp(1e-12, 1.0 - 1e-12);
                        total -= t * p.ln() + (1.0 - t) * (1.0 - p).ln();
                        grad.set(r, j, ((p - t) / (p * (1.0 - p))) / batch);
                    }
                }
                (total / (batch * output.cols().max(1) as f64), grad)
            }
            Loss::MeanSquaredError => {
                let mut grad = Mat::zeros(output.rows(), output.cols());
                let mut total = 0.0;
                for r in 0..output.rows() {
                    let y = labels[r];
                    for j in 0..output.cols() {
                        let t = if j == y { 1.0 } else { 0.0 };
                        let d = output.get(r, j) - t;
                        total += d * d;
                        grad.set(r, j, 2.0 * d / batch);
                    }
                }
                (total / batch, grad)
            }
        }
    }

    /// Class predictions from network output (argmax per row).
    pub fn predict_classes(output: &Mat) -> Vec<usize> {
        (0..output.rows())
            .map(|r| nd_linalg::vecops::argmax(output.row(r)).unwrap_or(0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_ce_perfect_prediction_low_loss() {
        let logits = Mat::from_vec(1, 3, vec![10.0, -10.0, -10.0]).unwrap();
        let (loss, _) = Loss::SoftmaxCrossEntropy.compute(&logits, &[0]);
        assert!(loss < 1e-6);
        let (bad_loss, _) = Loss::SoftmaxCrossEntropy.compute(&logits, &[1]);
        assert!(bad_loss > 5.0);
    }

    #[test]
    fn softmax_ce_uniform_logits_log_k() {
        let logits = Mat::zeros(1, 4);
        let (loss, _) = Loss::SoftmaxCrossEntropy.compute(&logits, &[2]);
        assert!((loss - (4.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn softmax_ce_gradient_is_p_minus_y() {
        let logits = Mat::zeros(1, 2);
        let (_, grad) = Loss::SoftmaxCrossEntropy.compute(&logits, &[0]);
        assert!((grad.get(0, 0) - (0.5 - 1.0)).abs() < 1e-9);
        assert!((grad.get(0, 1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn softmax_ce_gradient_matches_numerical() {
        let logits = Mat::from_vec(2, 3, vec![0.3, -0.2, 0.9, 1.2, 0.1, -0.5]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = Loss::SoftmaxCrossEntropy.compute(&logits, &labels);
        let eps = 1e-6;
        for i in 0..2 {
            for j in 0..3 {
                let mut plus = logits.clone();
                plus.set(i, j, logits.get(i, j) + eps);
                let mut minus = logits.clone();
                minus.set(i, j, logits.get(i, j) - eps);
                let (lp, _) = Loss::SoftmaxCrossEntropy.compute(&plus, &labels);
                let (lm, _) = Loss::SoftmaxCrossEntropy.compute(&minus, &labels);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - grad.get(i, j)).abs() < 1e-6,
                    "({i},{j}): numeric {numeric} vs {}",
                    grad.get(i, j)
                );
            }
        }
    }

    #[test]
    fn bce_loss_behaviour() {
        let probs = Mat::from_vec(1, 2, vec![0.99, 0.01]).unwrap();
        let (good, _) = Loss::BinaryCrossEntropy.compute(&probs, &[0]);
        let (bad, _) = Loss::BinaryCrossEntropy.compute(&probs, &[1]);
        assert!(good < bad);
    }

    #[test]
    fn bce_handles_saturated_probabilities() {
        let probs = Mat::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
        let (loss, grad) = Loss::BinaryCrossEntropy.compute(&probs, &[0]);
        assert!(loss.is_finite());
        assert!(grad.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mse_zero_for_one_hot_match() {
        let out = Mat::from_vec(1, 3, vec![0.0, 1.0, 0.0]).unwrap();
        let (loss, _) = Loss::MeanSquaredError.compute(&out, &[1]);
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn predict_classes_argmax() {
        let out = Mat::from_vec(2, 3, vec![0.1, 0.8, 0.1, 0.9, 0.05, 0.05]).unwrap();
        assert_eq!(Loss::predict_classes(&out), vec![1, 0]);
    }
}
