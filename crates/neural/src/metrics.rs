//! Classification metrics (paper §3.6).
//!
//! The paper evaluates its multi-class predictors with the *average
//! accuracy* of Eq. (17): the mean over classes of
//! `(TP_i + TN_i) / (TP_i + FN_i + FP_i + TN_i)`. For completeness the
//! confusion matrix also exposes plain accuracy, per-class
//! precision/recall/F1 and their macro averages.

/// A `k x k` confusion matrix; rows = true class, cols = predicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Builds from parallel true/predicted label slices.
    ///
    /// # Panics
    /// Panics when the slices differ in length or a label `>= k` —
    /// both are caller bugs.
    pub fn from_labels(k: usize, truth: &[usize], predicted: &[usize]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "label slices must align");
        let mut counts = vec![0u64; k * k];
        for (&t, &p) in truth.iter().zip(predicted) {
            assert!(t < k && p < k, "label out of range");
            counts[t * k + p] += 1;
        }
        ConfusionMatrix { k, counts }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.k
    }

    /// Count of samples with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> u64 {
        self.counts[t * self.k + p]
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    fn tp(&self, c: usize) -> u64 {
        self.count(c, c)
    }

    fn fp(&self, c: usize) -> u64 {
        (0..self.k).filter(|&t| t != c).map(|t| self.count(t, c)).sum()
    }

    fn fn_(&self, c: usize) -> u64 {
        (0..self.k).filter(|&p| p != c).map(|p| self.count(c, p)).sum()
    }

    fn tn(&self, c: usize) -> u64 {
        self.total() - self.tp(c) - self.fp(c) - self.fn_(c)
    }

    /// Plain accuracy: correct / total (0 for an empty matrix).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.k).map(|c| self.tp(c)).sum();
        correct as f64 / total as f64
    }

    /// Average (per-class, one-vs-rest) accuracy — paper Eq. (17).
    pub fn average_accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 || self.k == 0 {
            return 0.0;
        }
        (0..self.k)
            .map(|c| (self.tp(c) + self.tn(c)) as f64 / total as f64)
            // nd-lint: allow(fp-reduction-order) — serial sum over class indices 0..k.
            .sum::<f64>()
            / self.k as f64
    }

    /// Precision of class `c`; 0 when the class was never predicted.
    pub fn precision(&self, c: usize) -> f64 {
        let denom = self.tp(c) + self.fp(c);
        if denom == 0 {
            0.0
        } else {
            self.tp(c) as f64 / denom as f64
        }
    }

    /// Recall of class `c`; 0 when the class never occurs.
    pub fn recall(&self, c: usize) -> f64 {
        let denom = self.tp(c) + self.fn_(c);
        if denom == 0 {
            0.0
        } else {
            self.tp(c) as f64 / denom as f64
        }
    }

    /// F1 of class `c`.
    pub fn f1(&self, c: usize) -> f64 {
        let (p, r) = (self.precision(c), self.recall(c));
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1.
    pub fn macro_f1(&self) -> f64 {
        if self.k == 0 {
            return 0.0;
        }
        // nd-lint: allow(fp-reduction-order) — serial sum over class indices 0..k.
        (0..self.k).map(|c| self.f1(c)).sum::<f64>() / self.k as f64
    }
}

/// Convenience: plain accuracy of predictions against truth.
pub fn accuracy(truth: &[usize], predicted: &[usize]) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let correct = truth.iter().zip(predicted).filter(|(t, p)| t == p).count();
    correct as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let cm = ConfusionMatrix::from_labels(3, &[0, 1, 2, 0], &[0, 1, 2, 0]);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.average_accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    fn hand_computed_matrix() {
        // truth:     0 0 1 1 2 2
        // predicted: 0 1 1 1 2 0
        let cm = ConfusionMatrix::from_labels(3, &[0, 0, 1, 1, 2, 2], &[0, 1, 1, 1, 2, 0]);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(2, 0), 1);
        assert_eq!(cm.total(), 6);
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        // class 0: TP=1 FP=1 FN=1 TN=3 -> 4/6
        // class 1: TP=2 FP=1 FN=0 TN=3 -> 5/6
        // class 2: TP=1 FP=0 FN=1 TN=4 -> 5/6
        let want = (4.0 + 5.0 + 5.0) / (3.0 * 6.0);
        assert!((cm.average_accuracy() - want).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        let cm = ConfusionMatrix::from_labels(2, &[0, 0, 1, 1], &[0, 1, 1, 1]);
        // class 1: TP=2, FP=1, FN=0
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.recall(1), 1.0);
        assert!((cm.f1(1) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn never_predicted_class_zero_precision() {
        let cm = ConfusionMatrix::from_labels(3, &[2, 2], &[0, 1]);
        assert_eq!(cm.precision(2), 0.0);
        assert_eq!(cm.recall(2), 0.0);
        assert_eq!(cm.f1(2), 0.0);
    }

    #[test]
    fn empty_inputs() {
        let cm = ConfusionMatrix::from_labels(3, &[], &[]);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.average_accuracy(), 0.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn average_accuracy_at_least_plain_accuracy_for_k_ge_2() {
        // With one-vs-rest, TN inflates the per-class score: average
        // accuracy >= plain accuracy.
        let cm = ConfusionMatrix::from_labels(3, &[0, 1, 2, 1, 0], &[1, 1, 0, 2, 0]);
        assert!(cm.average_accuracy() >= cm.accuracy());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        ConfusionMatrix::from_labels(2, &[5], &[0]);
    }

    #[test]
    fn accuracy_helper() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
    }
}
