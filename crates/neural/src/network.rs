//! Sequential layer container.

use crate::layer::Layer;
use crate::loss::Loss;
use crate::optimizer::Optimizer;
use nd_linalg::Mat;

/// A feed-forward network: an ordered stack of layers trained end to
/// end against a [`Loss`].
///
/// Layers are `Send + Sync` so a frozen network can be shared behind
/// an `Arc` and run concurrent [`Network::predict_batch`] passes (the
/// online serving path).
pub struct Network {
    layers: Vec<Box<dyn Layer + Send + Sync>>,
    loss: Loss,
}

impl Network {
    /// Creates an empty network with the given loss.
    pub fn new(loss: Loss) -> Self {
        Network { layers: Vec::new(), loss }
    }

    /// Appends a layer (builder style).
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, layer: impl Layer + Send + Sync + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameter count.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(|l| l.params().len()).sum()
    }

    /// The configured loss.
    pub fn loss(&self) -> Loss {
        self.loss
    }

    /// Layer names, in order (for summaries).
    pub fn summary(&self) -> Vec<String> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Forward pass (inference mode: no activation caching).
    pub fn predict(&mut self, input: &Mat) -> Mat {
        self.predict_batch(input)
    }

    /// Inference-only forward pass over a batch of rows. Unlike
    /// [`Network::predict`] this takes `&self`: no activation caches
    /// or gradient buffers are touched, so a shared (`Arc`-held)
    /// network can serve concurrent callers. Row outputs are
    /// independent of the surrounding batch composition, which is what
    /// lets the serving micro-batcher coalesce requests without
    /// changing any caller's bits.
    pub fn predict_batch(&self, rows: &Mat) -> Mat {
        let mut x = rows.clone();
        for layer in &self.layers {
            x = layer.forward_infer(&x);
        }
        x
    }

    /// Predicted class per row.
    pub fn predict_classes(&mut self, input: &Mat) -> Vec<usize> {
        let out = self.predict(input);
        Loss::predict_classes(&out)
    }

    /// One optimization step over a batch: forward, loss, backward,
    /// parameter update. Returns the batch's mean loss.
    pub fn train_batch(
        &mut self,
        input: &Mat,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
    ) -> f64 {
        // Forward with caching.
        let mut x = input.clone();
        for layer in &mut self.layers {
            layer.zero_grads();
            x = layer.forward(&x, true);
        }
        let (loss_value, mut grad) = self.loss.compute(&x, labels);
        // Backward.
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        // Update.
        for (g, layer) in self.layers.iter_mut().enumerate() {
            if layer.params().is_empty() {
                continue;
            }
            // Split borrow: copy grads out (they are small relative to
            // the matmul cost) then update params in place.
            let grads = layer.grads().to_vec();
            optimizer.step(g, layer.params_mut(), &grads);
        }
        loss_value
    }

    /// Mean loss over a dataset without updating weights.
    pub fn evaluate_loss(&mut self, input: &Mat, labels: &[usize]) -> f64 {
        let out = self.predict(input);
        self.loss.compute(&out, labels).0
    }

    /// Exports every layer's parameters (checkpointing, paper §4.9:
    /// "we use checkpoints to continue the training as new data is
    /// added"). Stateless layers contribute empty vectors so the
    /// export aligns with the layer stack.
    pub fn export_params(&self) -> Vec<Vec<f64>> {
        self.layers.iter().map(|l| l.params().to_vec()).collect()
    }

    /// Restores parameters exported by [`Network::export_params`] into
    /// an identically-shaped network.
    ///
    /// # Errors
    /// Returns a message naming the first mismatching layer when the
    /// checkpoint does not fit this architecture.
    pub fn import_params(&mut self, params: &[Vec<f64>]) -> Result<(), String> {
        if params.len() != self.layers.len() {
            return Err(format!(
                "checkpoint has {} layers, network has {}",
                params.len(),
                self.layers.len()
            ));
        }
        for (i, (layer, saved)) in self.layers.iter_mut().zip(params).enumerate() {
            if layer.params().len() != saved.len() {
                return Err(format!(
                    "layer {i} ({}) expects {} params, checkpoint has {}",
                    layer.name(),
                    layer.params().len(),
                    saved.len()
                ));
            }
            layer.params_mut().copy_from_slice(saved);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, ActivationLayer, Dense};
    use crate::optimizer::Sgd;

    /// XOR: the canonical "needs a hidden layer" dataset.
    fn xor_data() -> (Mat, Vec<usize>) {
        let x = Mat::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]).unwrap();
        (x, vec![0, 1, 1, 0])
    }

    fn xor_network(seed: u64) -> Network {
        Network::new(Loss::SoftmaxCrossEntropy)
            .add(Dense::new(2, 8, seed))
            .add(ActivationLayer::new(Activation::Tanh))
            .add(Dense::new(8, 2, seed ^ 1))
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut net = xor_network(3);
        let mut opt = Sgd::new(0.5);
        for _ in 0..500 {
            net.train_batch(&x, &y, &mut opt);
        }
        assert_eq!(net.predict_classes(&x), y);
    }

    #[test]
    fn training_reduces_loss() {
        let (x, y) = xor_data();
        let mut net = xor_network(5);
        let mut opt = Sgd::new(0.5);
        let initial = net.evaluate_loss(&x, &y);
        for _ in 0..200 {
            net.train_batch(&x, &y, &mut opt);
        }
        let fin = net.evaluate_loss(&x, &y);
        assert!(fin < initial * 0.5, "loss {initial} -> {fin}");
    }

    #[test]
    fn n_params_counts_all_layers() {
        let net = xor_network(0);
        // Dense(2,8): 2*8+8 = 24; Dense(8,2): 8*2+2 = 18.
        assert_eq!(net.n_params(), 42);
        assert_eq!(net.n_layers(), 3);
    }

    #[test]
    fn summary_lists_layers() {
        let s = xor_network(0).summary();
        assert_eq!(s.len(), 3);
        assert!(s[0].contains("Dense(2→8)"));
        assert!(s[1].contains("Tanh"));
    }

    #[test]
    fn predict_is_deterministic() {
        let (x, _) = xor_data();
        let mut net = xor_network(9);
        let a = net.predict(&x);
        let b = net.predict(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn predict_batch_matches_predict_bit_for_bit() {
        let (x, y) = xor_data();
        let mut net = xor_network(3);
        let mut opt = Sgd::new(0.5);
        for _ in 0..100 {
            net.train_batch(&x, &y, &mut opt);
        }
        let expected = net.predict(&x);
        assert_eq!(net.predict_batch(&x), expected);

        // Row outputs do not depend on the surrounding batch: running
        // each row alone reproduces the batched bits (the property the
        // serving micro-batcher relies on).
        for r in 0..x.rows() {
            let one = Mat::from_vec(1, x.cols(), x.row(r).to_vec()).unwrap();
            assert_eq!(net.predict_batch(&one).row(0), expected.row(r));
        }
    }

    #[test]
    fn predict_batch_shares_across_threads() {
        let (x, y) = xor_data();
        let mut net = xor_network(7);
        let mut opt = Sgd::new(0.5);
        for _ in 0..100 {
            net.train_batch(&x, &y, &mut opt);
        }
        let expected = net.predict(&x);
        let shared = std::sync::Arc::new(net);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let net = shared.clone();
                let x = x.clone();
                let expected = expected.clone();
                std::thread::spawn(move || assert_eq!(net.predict_batch(&x), expected))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn checkpoint_roundtrip_restores_behaviour() {
        let (x, y) = xor_data();
        let mut trained = xor_network(3);
        let mut opt = Sgd::new(0.5);
        for _ in 0..300 {
            trained.train_batch(&x, &y, &mut opt);
        }
        let checkpoint = trained.export_params();

        // A freshly-initialized network with different seed behaves
        // differently until the checkpoint is imported.
        let mut fresh = xor_network(99);
        assert_ne!(fresh.predict(&x), trained.predict(&x));
        fresh.import_params(&checkpoint).unwrap();
        assert_eq!(fresh.predict(&x), trained.predict(&x));
    }

    #[test]
    fn import_rejects_mismatched_checkpoints() {
        let mut net = xor_network(1);
        assert!(net.import_params(&[vec![0.0; 3]]).is_err(), "wrong layer count");
        let mut bad = xor_network(1).export_params();
        bad[0].pop();
        assert!(net.import_params(&bad).unwrap_err().contains("layer 0"));
    }

    #[test]
    fn checkpoint_supports_resumed_training() {
        let (x, y) = xor_data();
        let mut first = xor_network(5);
        let mut opt = Sgd::new(0.5);
        for _ in 0..50 {
            first.train_batch(&x, &y, &mut opt);
        }
        let mid_loss = first.evaluate_loss(&x, &y);
        let checkpoint = first.export_params();

        // Resume in a new network (fresh optimizer state, as after a
        // process restart) and keep training: loss keeps dropping.
        let mut resumed = xor_network(77);
        resumed.import_params(&checkpoint).unwrap();
        let mut opt2 = Sgd::new(0.5);
        for _ in 0..300 {
            resumed.train_batch(&x, &y, &mut opt2);
        }
        assert!(resumed.evaluate_loss(&x, &y) < mid_loss);
    }
}
