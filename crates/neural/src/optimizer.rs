//! Weight-update rules (paper Eq. 13–16).
//!
//! * [`Sgd`] — stochastic gradient descent with exponential-decay
//!   momentum, Eq. (14): `Δw(t) = α·Δw(t-1) − η·γ(t)`.
//! * [`Adagrad`] — per-dimension learning-rate scaling by the ℓ² norm
//!   of all past gradients, Eq. (15).
//! * [`Adadelta`] — Zeiler 2012, Eq. (16): RMS-of-updates over
//!   RMS-of-gradients, removing the global learning rate (the paper
//!   still multiplies by `lr`, default 1.0 — Keras semantics; the
//!   MLP 2 / CNN 2 configurations use `lr = 2`).
//!
//! An optimizer keeps independent state per parameter group (one group
//! per layer), addressed by the `group` index the caller passes.

/// A weight-update rule with per-group state.
pub trait Optimizer {
    /// Applies one update: `params[i] += Δw_i` computed from
    /// `grads[i]`. `group` identifies the parameter tensor so stateful
    /// rules keep separate accumulators per layer.
    fn step(&mut self, group: usize, params: &mut [f64], grads: &[f64]);

    /// Human-readable name (for reports).
    fn name(&self) -> String;
}

/// SGD with momentum (paper Eq. 13–14).
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Global learning rate `η`.
    pub learning_rate: f64,
    /// Exponential decay factor `α ∈ [0, 1]` (0 disables momentum).
    pub momentum: f64,
    velocity: Vec<Vec<f64>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(learning_rate: f64) -> Self {
        Sgd { learning_rate, momentum: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum.
    pub fn with_momentum(learning_rate: f64, momentum: f64) -> Self {
        Sgd { learning_rate, momentum, velocity: Vec::new() }
    }

    fn state(&mut self, group: usize, len: usize) -> &mut Vec<f64> {
        while self.velocity.len() <= group {
            self.velocity.push(Vec::new());
        }
        let v = &mut self.velocity[group];
        if v.len() != len {
            *v = vec![0.0; len];
        }
        v
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, group: usize, params: &mut [f64], grads: &[f64]) {
        debug_assert_eq!(params.len(), grads.len());
        let (lr, mom) = (self.learning_rate, self.momentum);
        let v = self.state(group, params.len());
        for ((p, &g), vi) in params.iter_mut().zip(grads).zip(v.iter_mut()) {
            *vi = mom * *vi - lr * g;
            *p += *vi;
        }
    }

    fn name(&self) -> String {
        if self.momentum > 0.0 {
            format!("SGD(lr={}, momentum={})", self.learning_rate, self.momentum)
        } else {
            format!("SGD(lr={})", self.learning_rate)
        }
    }
}

/// ADAGRAD (paper Eq. 15).
#[derive(Debug, Clone)]
pub struct Adagrad {
    /// Global learning rate `η`.
    pub learning_rate: f64,
    /// Numerical-stability constant.
    pub epsilon: f64,
    accum: Vec<Vec<f64>>,
}

impl Adagrad {
    /// Creates ADAGRAD with the given learning rate.
    pub fn new(learning_rate: f64) -> Self {
        Adagrad { learning_rate, epsilon: 1e-8, accum: Vec::new() }
    }

    fn state(&mut self, group: usize, len: usize) -> &mut Vec<f64> {
        while self.accum.len() <= group {
            self.accum.push(Vec::new());
        }
        let a = &mut self.accum[group];
        if a.len() != len {
            *a = vec![0.0; len];
        }
        a
    }
}

impl Optimizer for Adagrad {
    fn step(&mut self, group: usize, params: &mut [f64], grads: &[f64]) {
        debug_assert_eq!(params.len(), grads.len());
        let (lr, eps) = (self.learning_rate, self.epsilon);
        let a = self.state(group, params.len());
        for ((p, &g), ai) in params.iter_mut().zip(grads).zip(a.iter_mut()) {
            *ai += g * g;
            *p -= lr * g / (ai.sqrt() + eps);
        }
    }

    fn name(&self) -> String {
        format!("ADAGRAD(lr={})", self.learning_rate)
    }
}

/// ADADELTA (Zeiler 2012; paper Eq. 16).
#[derive(Debug, Clone)]
pub struct Adadelta {
    /// Learning-rate multiplier on the adaptive update (Keras
    /// semantics; 1.0 recovers the original paper, the audience
    /// predictor's MLP 2 / CNN 2 use 2.0).
    pub learning_rate: f64,
    /// Decay constant `ρ` of the running RMS averages.
    pub rho: f64,
    /// Numerical-stability constant.
    pub epsilon: f64,
    grad_sq: Vec<Vec<f64>>,
    update_sq: Vec<Vec<f64>>,
}

impl Adadelta {
    /// Creates ADADELTA with the given learning-rate multiplier and
    /// the standard `ρ = 0.95`.
    pub fn new(learning_rate: f64) -> Self {
        Adadelta {
            learning_rate,
            rho: 0.95,
            epsilon: 1e-6,
            grad_sq: Vec::new(),
            update_sq: Vec::new(),
        }
    }

    fn state(&mut self, group: usize, len: usize) -> (&mut Vec<f64>, &mut Vec<f64>) {
        while self.grad_sq.len() <= group {
            self.grad_sq.push(Vec::new());
            self.update_sq.push(Vec::new());
        }
        if self.grad_sq[group].len() != len {
            self.grad_sq[group] = vec![0.0; len];
            self.update_sq[group] = vec![0.0; len];
        }
        (&mut self.grad_sq[group], &mut self.update_sq[group])
    }
}

impl Optimizer for Adadelta {
    fn step(&mut self, group: usize, params: &mut [f64], grads: &[f64]) {
        debug_assert_eq!(params.len(), grads.len());
        let (lr, rho, eps) = (self.learning_rate, self.rho, self.epsilon);
        let (gs, us) = self.state(group, params.len());
        for (i, (p, &g)) in params.iter_mut().zip(grads).enumerate() {
            gs[i] = rho * gs[i] + (1.0 - rho) * g * g;
            let update = -((us[i] + eps).sqrt() / (gs[i] + eps).sqrt()) * g;
            us[i] = rho * us[i] + (1.0 - rho) * update * update;
            *p += lr * update;
        }
    }

    fn name(&self) -> String {
        format!("ADADELTA(lr={})", self.learning_rate)
    }
}

/// Adam (Kingma & Ba 2015): bias-corrected first/second moment
/// estimates. Not used by the paper's configurations; provided for the
/// optimizer ablation as the modern reference point.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f64,
    /// First-moment decay `β₁`.
    pub beta1: f64,
    /// Second-moment decay `β₂`.
    pub beta2: f64,
    /// Numerical-stability constant.
    pub epsilon: f64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
    t: Vec<u64>,
}

impl Adam {
    /// Creates Adam with the standard `β₁ = 0.9`, `β₂ = 0.999`.
    pub fn new(learning_rate: f64) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: Vec::new(),
        }
    }

    fn state(&mut self, group: usize, len: usize) -> (&mut Vec<f64>, &mut Vec<f64>, &mut u64) {
        while self.m.len() <= group {
            self.m.push(Vec::new());
            self.v.push(Vec::new());
            self.t.push(0);
        }
        if self.m[group].len() != len {
            self.m[group] = vec![0.0; len];
            self.v[group] = vec![0.0; len];
            self.t[group] = 0;
        }
        // Split borrows manually.
        let (m, rest) = self.m.split_at_mut(group + 1);
        let _ = rest;
        let (v, rest) = self.v.split_at_mut(group + 1);
        let _ = rest;
        (&mut m[group], &mut v[group], &mut self.t[group])
    }
}

impl Optimizer for Adam {
    fn step(&mut self, group: usize, params: &mut [f64], grads: &[f64]) {
        debug_assert_eq!(params.len(), grads.len());
        let (lr, b1, b2, eps) = (self.learning_rate, self.beta1, self.beta2, self.epsilon);
        let (m, v, t) = self.state(group, params.len());
        *t += 1;
        let bc1 = 1.0 - b1.powi(*t as i32);
        let bc2 = 1.0 - b2.powi(*t as i32);
        for ((p, &g), (mi, vi)) in
            params.iter_mut().zip(grads).zip(m.iter_mut().zip(v.iter_mut()))
        {
            *mi = b1 * *mi + (1.0 - b1) * g;
            *vi = b2 * *vi + (1.0 - b2) * g * g;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    fn name(&self) -> String {
        format!("Adam(lr={})", self.learning_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 with each optimizer; all must get
    /// close to the optimum.
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = [0.0f64];
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(0, &mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = run_quadratic(&mut Sgd::new(0.1), 100);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let x = run_quadratic(&mut Sgd::with_momentum(0.05, 0.9), 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adagrad_converges() {
        let x = run_quadratic(&mut Adagrad::new(1.0), 300);
        assert!((x - 3.0).abs() < 0.05, "x = {x}");
    }

    #[test]
    fn adadelta_converges() {
        let x = run_quadratic(&mut Adadelta::new(2.0), 2000);
        assert!((x - 3.0).abs() < 0.1, "x = {x}");
    }

    #[test]
    fn adam_converges() {
        let x = run_quadratic(&mut Adam::new(0.1), 500);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_groups_independent() {
        let mut opt = Adam::new(0.1);
        let mut a = [0.0f64];
        for _ in 0..10 {
            opt.step(0, &mut a, &[1.0]);
        }
        let mut b = [0.0f64];
        opt.step(1, &mut b, &[1.0]);
        // Group 1's first bias-corrected step equals -lr exactly.
        assert!((b[0] + 0.1).abs() < 1e-9, "b = {}", b[0]);
    }

    #[test]
    fn adagrad_learning_rate_shrinks_effectively() {
        // After many steps the accumulated squared gradient grows, so
        // later updates are smaller for equal gradients.
        let mut opt = Adagrad::new(0.5);
        let mut x = [0.0f64];
        let g = [1.0];
        opt.step(0, &mut x, &g);
        let first = x[0].abs();
        for _ in 0..50 {
            opt.step(0, &mut x, &g);
        }
        let before = x[0];
        opt.step(0, &mut x, &g);
        let last = (x[0] - before).abs();
        assert!(last < first, "update should shrink: first {first}, last {last}");
    }

    #[test]
    fn groups_keep_independent_state() {
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let mut a = [0.0f64];
        let mut b = [0.0f64];
        opt.step(0, &mut a, &[1.0]);
        opt.step(0, &mut a, &[1.0]);
        // Group 1 starts from zero velocity.
        opt.step(1, &mut b, &[1.0]);
        assert!((b[0] - -0.1).abs() < 1e-12, "group-1 first step must have no momentum");
        assert!(a[0] < b[0], "group 0 has accumulated momentum");
    }

    #[test]
    fn names() {
        assert!(Sgd::new(0.5).name().contains("SGD"));
        assert!(Adagrad::new(0.1).name().contains("ADAGRAD"));
        assert!(Adadelta::new(2.0).name().contains("ADADELTA"));
    }

    #[test]
    fn zero_gradient_is_noop_for_sgd() {
        let mut opt = Sgd::new(0.5);
        let mut x = [1.5f64];
        opt.step(0, &mut x, &[0.0]);
        assert_eq!(x[0], 1.5);
    }
}
