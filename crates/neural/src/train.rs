//! Mini-batch training loop with early stopping and epoch timing.
//!
//! The paper (§5.6–5.7) trains "until it converges, using an Early
//! Stopping mechanism that checks if there are any changes in the loss
//! function from one epoch to the next", with batch size 5000 and at
//! most 500 epochs. [`Trainer`] reproduces that protocol and records
//! per-epoch wall-clock times — the raw data behind Table 10 and
//! Figures 6–7.

use crate::metrics::{accuracy, ConfusionMatrix};
use crate::network::Network;
use crate::optimizer::Optimizer;
use nd_linalg::rng::SplitMix64;
use nd_linalg::Mat;
use std::time::Instant;

/// Early-stopping rule: stop when the epoch loss has changed by less
/// than `min_delta` (relatively) for `patience` consecutive epochs.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    /// Relative loss-change threshold.
    pub min_delta: f64,
    /// Consecutive quiet epochs required to stop.
    pub patience: usize,
}

impl Default for EarlyStopping {
    fn default() -> Self {
        EarlyStopping { min_delta: 1e-4, patience: 3 }
    }
}

/// Trainer configuration.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Mini-batch size (the paper uses 5000).
    pub batch_size: usize,
    /// Epoch cap (the paper uses 500).
    pub max_epochs: usize,
    /// Early-stopping rule; `None` trains for exactly `max_epochs`.
    pub early_stopping: Option<EarlyStopping>,
    /// Shuffle seed (batches are reshuffled each epoch).
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            batch_size: 5000,
            max_epochs: 500,
            early_stopping: Some(EarlyStopping::default()),
            seed: 42,
        }
    }
}

/// What a training run produced.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Epochs actually executed.
    pub epochs: usize,
    /// Mean training loss per epoch.
    pub loss_history: Vec<f64>,
    /// Training accuracy per epoch.
    pub accuracy_history: Vec<f64>,
    /// Wall-clock milliseconds per epoch.
    pub epoch_ms: Vec<f64>,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
    /// Whether early stopping triggered (vs. hitting the epoch cap).
    pub early_stopped: bool,
}

impl TrainReport {
    /// Mean milliseconds per epoch.
    pub fn mean_epoch_ms(&self) -> f64 {
        if self.epoch_ms.is_empty() {
            0.0
        } else {
            // nd-lint: allow(fp-reduction-order) — serial sum over recorded epoch times, in order.
            self.epoch_ms.iter().sum::<f64>() / self.epoch_ms.len() as f64
        }
    }

    /// Final training loss.
    pub fn final_loss(&self) -> f64 {
        self.loss_history.last().copied().unwrap_or(f64::NAN)
    }
}

/// The mini-batch trainer.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainerConfig) -> Self {
        Trainer { config }
    }

    /// Trains `network` on `(x, y)` with `optimizer`.
    ///
    /// # Panics
    /// Panics when `x.rows() != y.len()` or the dataset is empty —
    /// both are caller bugs, not data conditions.
    pub fn fit(
        &self,
        network: &mut Network,
        x: &Mat,
        y: &[usize],
        optimizer: &mut dyn Optimizer,
    ) -> TrainReport {
        assert_eq!(x.rows(), y.len(), "features/labels must align");
        assert!(!y.is_empty(), "cannot train on an empty dataset");
        let n = x.rows();
        let bs = self.config.batch_size.max(1).min(n);
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = SplitMix64::new(self.config.seed);

        let mut loss_history = Vec::new();
        let mut accuracy_history = Vec::new();
        let mut epoch_ms = Vec::new();
        let mut quiet_epochs = 0usize;
        let mut prev_loss = f64::INFINITY;
        let mut early_stopped = false;
        // Wall-clock here feeds only the reported epoch_ms/total_ms
        // observability fields, never a numeric result or a branch.
        // nd-lint: allow(nondet-time)
        let started = Instant::now();

        for _epoch in 0..self.config.max_epochs {
            let epoch_start = Instant::now(); // nd-lint: allow(nondet-time)
            rng.shuffle(&mut order);

            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(bs) {
                let (bx, by) = gather(x, y, chunk);
                // nd-lint: allow(fp-reduction-order) — serial loop over chunks of the seeded permutation; order identical at any thread count.
                epoch_loss += network.train_batch(&bx, &by, optimizer);
                batches += 1;
            }
            epoch_loss /= batches.max(1) as f64;
            let acc = accuracy(y, &network.predict_classes(x));

            epoch_ms.push(epoch_start.elapsed().as_secs_f64() * 1e3);
            loss_history.push(epoch_loss);
            accuracy_history.push(acc);

            if let Some(rule) = &self.config.early_stopping {
                let rel_change = if prev_loss.is_finite() && prev_loss.abs() > 0.0 {
                    (prev_loss - epoch_loss).abs() / prev_loss.abs()
                } else {
                    f64::INFINITY
                };
                if rel_change < rule.min_delta {
                    quiet_epochs += 1;
                    if quiet_epochs >= rule.patience {
                        early_stopped = true;
                        prev_loss = epoch_loss;
                        break;
                    }
                } else {
                    quiet_epochs = 0;
                }
            }
            prev_loss = epoch_loss;
        }
        let _ = prev_loss;

        TrainReport {
            epochs: loss_history.len(),
            loss_history,
            accuracy_history,
            epoch_ms,
            total_seconds: started.elapsed().as_secs_f64(),
            early_stopped,
        }
    }

    /// Evaluates a trained network: returns `(average accuracy per
    /// paper Eq. 17, plain accuracy, confusion matrix)`.
    pub fn evaluate(
        &self,
        network: &mut Network,
        x: &Mat,
        y: &[usize],
        n_classes: usize,
    ) -> (f64, f64, ConfusionMatrix) {
        let pred = network.predict_classes(x);
        let cm = ConfusionMatrix::from_labels(n_classes, y, &pred);
        (cm.average_accuracy(), cm.accuracy(), cm)
    }
}

/// Extracts the rows of `x`/`y` selected by `idx` into a dense batch.
fn gather(x: &Mat, y: &[usize], idx: &[usize]) -> (Mat, Vec<usize>) {
    let mut bx = Mat::zeros(idx.len(), x.cols());
    let mut by = Vec::with_capacity(idx.len());
    for (r, &i) in idx.iter().enumerate() {
        bx.row_mut(r).copy_from_slice(x.row(i));
        by.push(y[i]);
    }
    (bx, by)
}

/// Deterministic train/validation split: returns
/// `(train_x, train_y, val_x, val_y)` with `val_fraction` of rows held
/// out.
pub fn train_val_split(
    x: &Mat,
    y: &[usize],
    val_fraction: f64,
    seed: u64,
) -> (Mat, Vec<usize>, Mat, Vec<usize>) {
    let n = x.rows();
    let mut order: Vec<usize> = (0..n).collect();
    SplitMix64::new(seed).shuffle(&mut order);
    let n_val = ((n as f64) * val_fraction.clamp(0.0, 1.0)).round() as usize;
    let (val_idx, train_idx) = order.split_at(n_val.min(n));
    let (vx, vy) = gather(x, y, val_idx);
    let (tx, ty) = gather(x, y, train_idx);
    (tx, ty, vx, vy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, ActivationLayer, Dense};
    use crate::loss::Loss;
    use crate::optimizer::Sgd;

    /// Linearly separable 2-class blobs.
    fn blobs(n: usize, seed: u64) -> (Mat, Vec<usize>) {
        let mut rng = SplitMix64::new(seed);
        let mut x = Mat::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 2;
            let cx = if c == 0 { -1.5 } else { 1.5 };
            x.set(i, 0, cx + rng.next_gaussian() * 0.4);
            x.set(i, 1, cx + rng.next_gaussian() * 0.4);
            y.push(c);
        }
        (x, y)
    }

    fn simple_net(seed: u64) -> Network {
        Network::new(Loss::SoftmaxCrossEntropy)
            .add(Dense::new(2, 8, seed))
            .add(ActivationLayer::new(Activation::Relu))
            .add(Dense::new(8, 2, seed ^ 7))
    }

    #[test]
    fn trains_to_high_accuracy() {
        let (x, y) = blobs(200, 1);
        let mut net = simple_net(2);
        let trainer = Trainer::new(TrainerConfig {
            batch_size: 32,
            max_epochs: 60,
            early_stopping: None,
            seed: 0,
        });
        let report = trainer.fit(&mut net, &x, &y, &mut Sgd::new(0.1));
        assert_eq!(report.epochs, 60);
        let (avg_acc, acc, _) = trainer.evaluate(&mut net, &x, &y, 2);
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(avg_acc >= acc);
        assert!(report.final_loss() < report.loss_history[0]);
    }

    #[test]
    fn early_stopping_triggers_on_plateau() {
        let (x, y) = blobs(100, 3);
        let mut net = simple_net(4);
        let trainer = Trainer::new(TrainerConfig {
            batch_size: 100,
            max_epochs: 500,
            early_stopping: Some(EarlyStopping { min_delta: 0.05, patience: 2 }),
            seed: 0,
        });
        let report = trainer.fit(&mut net, &x, &y, &mut Sgd::new(0.2));
        assert!(report.early_stopped);
        assert!(report.epochs < 500, "stopped at epoch {}", report.epochs);
    }

    #[test]
    fn report_timing_populated() {
        let (x, y) = blobs(50, 5);
        let mut net = simple_net(6);
        let trainer = Trainer::new(TrainerConfig {
            batch_size: 25,
            max_epochs: 3,
            early_stopping: None,
            seed: 0,
        });
        let report = trainer.fit(&mut net, &x, &y, &mut Sgd::new(0.1));
        assert_eq!(report.epoch_ms.len(), 3);
        assert!(report.mean_epoch_ms() >= 0.0);
        assert!(report.total_seconds >= 0.0);
        assert_eq!(report.accuracy_history.len(), 3);
    }

    #[test]
    fn split_partitions_data() {
        let (x, y) = blobs(100, 7);
        let (tx, ty, vx, vy) = train_val_split(&x, &y, 0.2, 11);
        assert_eq!(vx.rows(), 20);
        assert_eq!(tx.rows(), 80);
        assert_eq!(ty.len(), 80);
        assert_eq!(vy.len(), 20);
    }

    #[test]
    fn split_deterministic() {
        let (x, y) = blobs(40, 9);
        let a = train_val_split(&x, &y, 0.25, 5);
        let b = train_val_split(&x, &y, 0.25, 5);
        assert_eq!(a.0, b.0);
        assert_eq!(a.3, b.3);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let mut net = simple_net(1);
        Trainer::new(TrainerConfig::default()).fit(
            &mut net,
            &Mat::zeros(0, 2),
            &[],
            &mut Sgd::new(0.1),
        );
    }

    #[test]
    fn batch_size_larger_than_dataset_ok() {
        let (x, y) = blobs(10, 2);
        let mut net = simple_net(3);
        let trainer = Trainer::new(TrainerConfig {
            batch_size: 1000,
            max_epochs: 2,
            early_stopping: None,
            seed: 0,
        });
        let report = trainer.fit(&mut net, &x, &y, &mut Sgd::new(0.1));
        assert_eq!(report.epochs, 2);
    }
}
