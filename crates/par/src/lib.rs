//! Deterministic data parallelism for the newsdiff workspace.
//!
//! Every hot kernel in the workspace (dense/sparse matrix products,
//! NMF multiplicative updates, Word2Vec batches, CNN layers) is
//! expressed over *row ranges*. This crate provides the one shared
//! primitive set for running those ranges across threads while
//! keeping results **bit-for-bit identical to the serial path**:
//!
//! * **Fixed chunk boundaries.** Work is split into chunks whose
//!   boundaries depend only on the problem size and the requested
//!   chunk length — never on the thread count. `NEWSDIFF_THREADS=1`
//!   and `NEWSDIFF_THREADS=32` see the same chunks.
//! * **In-order reduction.** [`par_map_reduce`] combines per-chunk
//!   results in ascending chunk order, so floating-point rounding is
//!   reproducible regardless of which thread finished first.
//! * **Serial fast path.** With one effective thread, or when the
//!   work is too small to amortise a dispatch, chunks run inline on
//!   the caller's thread through the *same* chunked code path.
//!
//! Thread count comes from the `NEWSDIFF_THREADS` environment
//! variable when set (clamped to at least 1), otherwise from
//! [`std::thread::available_parallelism`]. It is re-read on **every
//! dispatch**, so tests and long-running services can retune without
//! restarting.
//!
//! # Execution model: a persistent worker pool
//!
//! Workers live in a lazily-initialized process-wide pool ([`pool`])
//! and park on per-worker `Mutex`+`Condvar` job slots between
//! dispatches. The caller participates in every dispatch as worker 0,
//! so a dispatch wakes `threads() - 1` helpers, runs the caller's own
//! share inline, then waits for the helpers on a completion latch.
//! The pool only ever grows (extra workers are masked out when
//! `NEWSDIFF_THREADS` shrinks), a dispatch costs two condvar hops per
//! helper instead of an OS thread spawn + join, and nested or
//! concurrent dispatches degrade to inline serial execution — the
//! dispatch gate is a `try_lock`, so no configuration can deadlock.
//! Panics inside a job are contained to that dispatch: the pool stays
//! usable and the panic resumes on the dispatching caller.
//!
//! See `DESIGN.md` §8 for the lifecycle, the parking protocol, the
//! determinism argument, and the `SERIAL_CUTOFF` calibration
//! methodology.

#![deny(unsafe_code)]

use std::ops::Range;

/// Work below this many "element-ops" runs serially even when more
/// threads are available; dispatching costs more than it saves.
///
/// Calibrated against the persistent pool (see
/// `calibrate_dispatch_overhead`, DESIGN.md §8.4): on the reference
/// single-core container a warm 4-way dispatch measures ≈ 7.8 µs of
/// latency (two condvar hops per helper plus scheduler round-trips)
/// and one element-op (a multiply-add reaching L1/L2) ≈ 0.94 ns, so
/// the 10%-amortisation point lands at ≈ 83k element-ops. The cutoff
/// is set to the next power-of-two-ish step above it, keeping
/// dispatch overhead ≤ ~6% at the boundary. The old value (16·1024)
/// was a guess that predates the pool: it charged `thread::scope`
/// spawn/join — two orders of magnitude costlier than a pool
/// dispatch — yet was still set far too low, so millisecond-scale
/// kernels paid spawn costs on every call.
pub const SERIAL_CUTOFF: usize = 128 * 1024;

/// Returns the effective worker count: `NEWSDIFF_THREADS` when set to
/// a positive integer, otherwise the machine's available parallelism.
///
/// Read fresh on every call so tests and long-running services can
/// retune without restarting.
pub fn threads() -> usize {
    if let Ok(s) = std::env::var("NEWSDIFF_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Number of persistent pool workers currently spawned (not counting
/// the caller, which participates in every dispatch as worker 0).
///
/// Grows monotonically: the pool spawns helpers on demand up to
/// `threads() - 1` per dispatch and never joins them — a smaller
/// `NEWSDIFF_THREADS` masks the extras out, it does not retire them.
/// Introspection for tests and ops; `0` until the first parallel
/// dispatch.
pub fn pool_workers() -> usize {
    pool::workers_spawned()
}

/// Splits `0..len` into chunks of `chunk_len` (last one possibly
/// short). Boundaries are a pure function of the two arguments.
pub fn chunk_ranges(len: usize, chunk_len: usize) -> Vec<Range<usize>> {
    let chunk_len = chunk_len.max(1);
    let mut out = Vec::with_capacity(len.div_ceil(chunk_len));
    let mut start = 0;
    while start < len {
        let end = (start + chunk_len).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

/// Picks a chunk length that yields a few chunks per worker for load
/// balance, but never slices finer than `min_chunk` rows.
///
/// The result depends on [`threads()`], so use it **only for
/// disjoint-write kernels** ([`par_for_rows`]), where chunk layout
/// cannot affect results. Reductions ([`par_map_reduce`],
/// [`run_chunks`]) must pass a fixed chunk length instead — their
/// combination order follows chunk boundaries, and those boundaries
/// must not move with the thread count.
pub fn auto_chunk_len(len: usize, min_chunk: usize) -> usize {
    let workers = threads();
    let target_chunks = workers * 4;
    (len.div_ceil(target_chunks)).max(min_chunk.max(1))
}

/// Runs `map` over every chunk of `0..len` and combines the results
/// with `reduce` **in ascending chunk order**.
///
/// Returns `None` when `len == 0`. The serial and parallel paths
/// produce identical bits: both evaluate the same chunks and fold
/// left-to-right; threading only changes *where* each map runs.
///
/// `work_per_item` is a rough cost hint (inner-loop length) used for
/// the serial cutoff; pass `1` when unsure.
pub fn par_map_reduce<R, M, F>(
    len: usize,
    chunk_len: usize,
    work_per_item: usize,
    map: M,
    reduce: F,
) -> Option<R>
where
    R: Send,
    M: Fn(Range<usize>) -> R + Sync,
    F: FnMut(R, R) -> R,
{
    run_chunks(len, chunk_len, work_per_item, map).into_iter().reduce(reduce)
}

/// Runs `map` over every chunk of `0..len`, returning one result per
/// chunk in ascending chunk order.
///
/// A panic inside `map` is contained to this dispatch — the pool
/// stays usable — and resumes on the calling thread once every
/// participant has finished.
pub fn run_chunks<R, M>(len: usize, chunk_len: usize, work_per_item: usize, map: M) -> Vec<R>
where
    R: Send,
    M: Fn(Range<usize>) -> R + Sync,
{
    let ranges = chunk_ranges(len, chunk_len);
    let workers = effective_workers(len, work_per_item, ranges.len());
    if workers <= 1 {
        return ranges.into_iter().map(map).collect();
    }
    let nchunks = ranges.len();
    // One result bucket per participant; participant w writes only
    // bucket w, so the locks are never contended — they exist to keep
    // this path in safe code.
    let buckets: Vec<std::sync::Mutex<Vec<(usize, R)>>> =
        (0..workers).map(|_| std::sync::Mutex::new(Vec::new())).collect();
    let map = &map;
    let ranges_ref = &ranges;
    let buckets_ref = &buckets;
    let task = move |w: usize| {
        // Static stride assignment: participant w owns chunks
        // w, w+W, w+2W, ... Uniform kernels balance well and the
        // assignment is a pure function of (w, W, nchunks).
        let mut local = Vec::new();
        let mut i = w;
        while i < nchunks {
            local.push((i, map(ranges_ref[i].clone())));
            i += workers;
        }
        *lock(&buckets_ref[w]) = local;
    };
    if pool::dispatch(workers, &task) == pool::Dispatch::Inline {
        // The pool gate was contended (nested or concurrent
        // dispatch): run the same chunks inline instead.
        return ranges.into_iter().map(map).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(nchunks);
    slots.resize_with(nchunks, || None);
    for bucket in buckets {
        let items = bucket.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
        for (i, r) in items {
            slots[i] = Some(r);
        }
    }
    slots.into_iter().map(|s| s.expect("every chunk produces a result")).collect()
}

/// Runs `f` over disjoint row-blocks of `out` in parallel.
///
/// `out` is treated as a row-major matrix of `row_width` elements per
/// row; it is split at row boundaries into blocks of `rows_per_chunk`
/// rows, and `f(first_row, block)` is invoked once per block with
/// exclusive access. Writes are disjoint by construction, so results
/// never depend on scheduling.
///
/// `work_per_row` is a rough cost hint (flops per output row) used
/// for the serial cutoff; `row_width` is a reasonable lower bound.
pub fn par_for_rows<T, F>(
    out: &mut [T],
    row_width: usize,
    rows_per_chunk: usize,
    work_per_row: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let row_width = row_width.max(1);
    let rows = out.len() / row_width;
    debug_assert_eq!(out.len(), rows * row_width, "out length must be rows * row_width");
    let rows_per_chunk = rows_per_chunk.max(1);
    let nchunks = rows.div_ceil(rows_per_chunk.max(1)).max(1);
    let workers = effective_workers(rows, work_per_row, nchunks);
    if workers <= 1 {
        for (i, block) in out.chunks_mut(rows_per_chunk * row_width).enumerate() {
            f(i * rows_per_chunk, block);
        }
        return;
    }
    // Contiguous assignment: participant w takes a consecutive run of
    // blocks, keeping each worker inside one cache-friendly region.
    let blocks: Vec<(usize, &mut [T])> = out
        .chunks_mut(rows_per_chunk * row_width)
        .enumerate()
        .map(|(i, b)| (i * rows_per_chunk, b))
        .collect();
    let per_worker = blocks.len().div_ceil(workers);
    type Bucket<'a, T> = std::sync::Mutex<Vec<(usize, &'a mut [T])>>;
    let mut buckets: Vec<Bucket<'_, T>> = Vec::with_capacity(workers);
    let mut iter = blocks.into_iter();
    for _ in 0..workers {
        buckets.push(std::sync::Mutex::new(iter.by_ref().take(per_worker).collect()));
    }
    let f = &f;
    let buckets_ref = &buckets;
    let task = move |w: usize| {
        let bucket = std::mem::take(&mut *lock(&buckets_ref[w]));
        for (first_row, block) in bucket {
            f(first_row, block);
        }
    };
    if pool::dispatch(workers, &task) == pool::Dispatch::Inline {
        // Gate contended: drain the buckets inline, in ascending
        // block order (identical writes either way — blocks are
        // disjoint).
        for bucket in buckets {
            let items = bucket.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
            for (first_row, block) in items {
                f(first_row, block);
            }
        }
    }
}

/// Decides how many workers to actually engage: 1 (serial) when the
/// total estimated work is under [`SERIAL_CUTOFF`], otherwise
/// `min(threads(), nchunks)`.
fn effective_workers(len: usize, work_per_item: usize, nchunks: usize) -> usize {
    let total_work = len.saturating_mul(work_per_item.max(1));
    if total_work < SERIAL_CUTOFF {
        return 1;
    }
    threads().min(nchunks.max(1))
}

/// Poison-recovering lock: a panic inside a job never wedges the
/// bookkeeping (the protected state is a plain value either way).
fn lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The persistent worker pool.
///
/// Lifecycle: lazily created on the first parallel dispatch, grows on
/// demand to `threads() - 1` helpers, never shrinks, never joins —
/// helpers park on their job slot between dispatches and die with the
/// process.
///
/// Parking protocol: each helper owns a `Mutex<Option<Job>>` + a
/// `Condvar`. A dispatch takes the gate (`try_lock` — contention
/// means a dispatch is already running, so the caller degrades to
/// inline execution rather than queueing: this is what makes nested
/// dispatch from inside a pooled task deadlock-free), stores the job
/// in each engaged slot, and wakes that helper. Helpers run the job,
/// record any panic payload, and decrement a shared latch; the
/// dispatcher runs share 0 itself, then waits on the latch. Because
/// the dispatcher cannot return before the latch reaches zero, jobs
/// may borrow from the dispatcher's stack frame — that is the single
/// `unsafe` lifetime erasure below.
mod pool {
    use std::any::Any;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError, TryLockError};

    use crate::lock;

    /// Outcome of a dispatch attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub(crate) enum Dispatch {
        /// The job ran across the pool; all participants finished.
        Ran,
        /// The gate was contended (nested or concurrent dispatch):
        /// nothing ran, the caller must execute inline.
        Inline,
    }

    /// A dispatched job, shared by reference with every engaged
    /// helper. The `'static` is a lie told by `dispatch` (see the
    /// SAFETY argument there); it never outlives the dispatch.
    type Job = &'static (dyn Fn(usize) + Sync);

    /// One parked helper's mailbox.
    struct Slot {
        job: Mutex<Option<Job>>,
        ready: Condvar,
    }

    /// Completion latch + first-panic capture, shared by all helpers.
    /// One dispatch runs at a time (the gate), so a single latch
    /// serves the whole pool.
    struct DoneState {
        remaining: Mutex<usize>,
        done: Condvar,
        panic: Mutex<Option<Box<dyn Any + Send>>>,
    }

    struct Pool {
        /// The dispatch gate doubles as the worker list: holding it
        /// grants exclusive use of every slot and of `state`.
        gate: Mutex<Vec<Arc<Slot>>>,
        state: Arc<DoneState>,
    }

    static POOL: OnceLock<Pool> = OnceLock::new();

    /// Runs `task(w)` for `w` in `0..participants`: share 0 on the
    /// calling thread, shares `1..participants` on pool helpers.
    /// Blocks until every participant has finished, then propagates
    /// the first panic (caller's own first), so `task` may freely
    /// borrow from the caller's frame.
    pub(crate) fn dispatch(participants: usize, task: &(dyn Fn(usize) + Sync)) -> Dispatch {
        debug_assert!(participants >= 2, "dispatch wants at least one helper");
        let pool = POOL.get_or_init(|| Pool {
            gate: Mutex::new(Vec::new()),
            state: Arc::new(DoneState {
                remaining: Mutex::new(0),
                done: Condvar::new(),
                panic: Mutex::new(None),
            }),
        });
        let mut slots = match pool.gate.try_lock() {
            Ok(guard) => guard,
            // Panic payloads never poison the gate (jobs run under
            // catch_unwind), but recover anyway rather than falling
            // back to permanent serial execution.
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return Dispatch::Inline,
        };
        let helpers = participants - 1;
        while slots.len() < helpers {
            let slot = Arc::new(Slot { job: Mutex::new(None), ready: Condvar::new() });
            let index = slots.len() + 1; // the caller is participant 0
            let state = Arc::clone(&pool.state);
            let helper_slot = Arc::clone(&slot);
            std::thread::Builder::new()
                .name(format!("nd-par-{index}"))
                .spawn(move || helper_loop(&helper_slot, &state, index))
                .expect("nd-par: failed to spawn pool worker");
            slots.push(slot);
        }
        *lock(&pool.state.remaining) = helpers;
        *lock(&pool.state.panic) = None;
        // Erasing the lifetime is what lets a borrowed closure cross
        // into the long-lived pool threads. This function does not
        // return or unwind before `remaining` reaches zero, and each
        // helper decrements `remaining` only after its call into the
        // job has returned — so no helper can touch the job after
        // `dispatch` exits.
        // SAFETY: per the above, the pointee outlives every use.
        #[allow(unsafe_code)]
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        };
        for slot in slots.iter().take(helpers) {
            *lock(&slot.job) = Some(job);
            slot.ready.notify_one();
        }
        // The caller is participant 0: it works instead of blocking.
        // Its own panic is caught so we still wait for the helpers —
        // they hold references into this frame and must finish before
        // it unwinds.
        let caller = catch_unwind(AssertUnwindSafe(|| task(0)));
        let mut remaining = lock(&pool.state.remaining);
        while *remaining > 0 {
            remaining = pool.state.done.wait(remaining).unwrap_or_else(PoisonError::into_inner);
        }
        drop(remaining);
        let helper_panic = lock(&pool.state.panic).take();
        drop(slots); // release the dispatch gate
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if let Some(payload) = helper_panic {
            resume_unwind(payload);
        }
        Dispatch::Ran
    }

    /// A pool helper: park on the slot, run the job, sign the latch,
    /// repeat forever. A panicking job is caught and recorded; the
    /// helper itself never dies.
    fn helper_loop(slot: &Slot, state: &DoneState, index: usize) {
        loop {
            let job = {
                let mut guard = lock(&slot.job);
                loop {
                    if let Some(job) = guard.take() {
                        break job;
                    }
                    guard = slot.ready.wait(guard).unwrap_or_else(PoisonError::into_inner);
                }
            };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(index))) {
                let mut first = lock(&state.panic);
                if first.is_none() {
                    *first = Some(payload);
                }
            }
            let mut remaining = lock(&state.remaining);
            *remaining -= 1;
            if *remaining == 0 {
                state.done.notify_one();
            }
        }
    }

    pub(crate) fn workers_spawned() -> usize {
        // The gate is only held for the duration of one dispatch, so
        // a blocking lock here is fine (introspection is never called
        // from inside a pooled task).
        POOL.get().map_or(0, |p| lock(&p.gate).len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises tests that mutate `NEWSDIFF_THREADS`.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: &str, f: impl FnOnce() -> R) -> R {
        let _g = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::env::set_var("NEWSDIFF_THREADS", n);
        let r = f();
        std::env::remove_var("NEWSDIFF_THREADS");
        r
    }

    #[test]
    fn chunk_boundaries_are_fixed() {
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(chunk_ranges(3, 100), vec![0..3]);
        // Boundaries never depend on the thread count.
        let a = with_threads("1", || chunk_ranges(1000, 7));
        let b = with_threads("16", || chunk_ranges(1000, 7));
        assert_eq!(a, b);
    }

    #[test]
    fn env_var_controls_thread_count() {
        assert_eq!(with_threads("3", threads), 3);
        assert_eq!(with_threads("0", threads), 1, "zero clamps to one");
        let _g = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::env::remove_var("NEWSDIFF_THREADS");
        assert!(threads() >= 1);
    }

    #[test]
    fn map_reduce_is_bit_identical_across_thread_counts() {
        // Pathological float sum where ordering matters: mixing very
        // large and very small magnitudes.
        let data: Vec<f64> =
            (0..10_000).map(|i| if i % 3 == 0 { 1e16 } else { 1.0 + i as f64 * 1e-6 }).collect();
        let sum_with = |n: &str| {
            with_threads(n, || {
                par_map_reduce(
                    data.len(),
                    128,
                    1 << 12, // pretend each item is expensive so the parallel path engages
                    |r| r.map(|i| data[i]).sum::<f64>(),
                    |a, b| a + b,
                )
                .unwrap()
            })
        };
        let s1 = sum_with("1");
        let s2 = sum_with("2");
        let s8 = sum_with("8");
        assert_eq!(s1.to_bits(), s2.to_bits());
        assert_eq!(s1.to_bits(), s8.to_bits());
    }

    #[test]
    fn run_chunks_returns_results_in_chunk_order() {
        let out = with_threads("4", || run_chunks(100, 9, 1 << 16, |r| r.start));
        let expected: Vec<usize> = chunk_ranges(100, 9).into_iter().map(|r| r.start).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_for_rows_touches_every_row_exactly_once() {
        let rows = 137;
        let width = 5;
        let check = |n: &str| {
            with_threads(n, || {
                let mut out = vec![0u32; rows * width];
                // Large work hint forces the parallel path despite the
                // small buffer.
                par_for_rows(&mut out, width, 8, 1 << 20, |first_row, block| {
                    for (k, row) in block.chunks_mut(width).enumerate() {
                        for v in row.iter_mut() {
                            *v += (first_row + k) as u32 + 1;
                        }
                    }
                });
                out
            })
        };
        let serial = check("1");
        let parallel = check("8");
        assert_eq!(serial, parallel);
        for (i, &v) in serial.iter().enumerate() {
            assert_eq!(v, (i / width) as u32 + 1, "row {} written once", i / width);
        }
    }

    #[test]
    fn small_work_stays_serial() {
        // 10 items * 1 work unit is far below SERIAL_CUTOFF; the
        // parallel machinery must not engage (observable via thread
        // ids all matching the caller).
        let caller = std::thread::current().id();
        with_threads("8", || {
            let ids = run_chunks(10, 2, 1, |_| std::thread::current().id());
            assert!(ids.iter().all(|&id| id == caller));
        });
    }

    #[test]
    fn empty_input_is_fine() {
        assert_eq!(par_map_reduce(0, 8, 1, |_| 1u64, |a, b| a + b), None);
        let mut out: Vec<f64> = Vec::new();
        par_for_rows(&mut out, 4, 2, 1, |_, _| panic!("no rows, no calls"));
    }

    #[test]
    fn pool_resizes_when_env_changes_mid_process() {
        let expected: Vec<usize> = chunk_ranges(64, 4).into_iter().map(|r| r.start).collect();
        with_threads("2", || {
            assert_eq!(run_chunks(64, 4, 1 << 16, |r| r.start), expected);
        });
        // A dispatch at NEWSDIFF_THREADS=2 needs one helper.
        assert!(pool_workers() >= 1);
        with_threads("8", || {
            assert_eq!(run_chunks(64, 4, 1 << 16, |r| r.start), expected);
        });
        // The pool grew to satisfy the larger setting...
        assert!(pool_workers() >= 7, "pool grows on demand, got {}", pool_workers());
        with_threads("2", || {
            assert_eq!(run_chunks(64, 4, 1 << 16, |r| r.start), expected);
        });
        // ...and shrinking the setting masks helpers instead of
        // retiring them.
        assert!(pool_workers() >= 7, "pool never shrinks, got {}", pool_workers());
    }

    #[test]
    fn nested_dispatch_degrades_to_inline() {
        // A pooled task that dispatches again must not deadlock: the
        // gate is already held, so the inner call runs inline on
        // whichever participant issued it.
        let inner_expected: u64 = (0..1000u64).sum();
        let outer = with_threads("4", || {
            run_chunks(8, 1, 1 << 20, |r| {
                let inner = par_map_reduce(
                    1000,
                    64,
                    1 << 12,
                    |ir| ir.map(|i| i as u64).sum::<u64>(),
                    |a, b| a + b,
                )
                .unwrap();
                inner + r.start as u64
            })
        });
        for (i, v) in outer.iter().enumerate() {
            assert_eq!(*v, inner_expected + i as u64, "chunk {i}");
        }
    }

    #[test]
    fn panicking_job_poisons_only_that_dispatch() {
        with_threads("4", || {
            // Panic on a helper-owned chunk (stride assignment: chunk 5
            // belongs to participant 1 at 4 workers).
            let result = std::panic::catch_unwind(|| {
                run_chunks(16, 1, 1 << 20, |r| {
                    if r.start == 5 {
                        panic!("boom in chunk 5");
                    }
                    r.start
                })
            });
            assert!(result.is_err(), "helper panic must propagate to the caller");
            // Panic on the caller's own share (chunk 0 belongs to
            // participant 0).
            let result = std::panic::catch_unwind(|| {
                run_chunks(16, 1, 1 << 20, |r| {
                    if r.start == 0 {
                        panic!("boom in chunk 0");
                    }
                    r.start
                })
            });
            assert!(result.is_err(), "caller panic must propagate");
            // The pool survives both: the very next dispatch works and
            // matches the serial result.
            let v = run_chunks(16, 1, 1 << 20, |r| r.start * 3);
            let expected: Vec<usize> = (0..16).map(|i| i * 3).collect();
            assert_eq!(v, expected, "pool must stay usable after a poisoned dispatch");
        });
    }

    /// Manual `SERIAL_CUTOFF` calibration (methodology in DESIGN.md
    /// §8.4). Measures (a) the latency of an empty pool dispatch and
    /// (b) the cost of one element-op, then prints the work size at
    /// which a dispatch is amortised to 10% of total runtime. Run:
    ///
    /// ```text
    /// cargo test -p nd-par --release -- --ignored calibrate --nocapture
    /// ```
    #[test]
    #[ignore = "manual SERIAL_CUTOFF calibration; run with --ignored --nocapture"]
    fn calibrate_dispatch_overhead() {
        use std::time::Instant;
        with_threads("4", || {
            let mut buf = vec![0u8; 4];
            // Warm the pool so spawn cost is excluded.
            par_for_rows(&mut buf, 1, 1, 1 << 20, |_, _| {});
            let reps = 2_000u32;
            let t0 = Instant::now();
            for _ in 0..reps {
                par_for_rows(&mut buf, 1, 1, 1 << 20, |_, _| {});
            }
            let dispatch_ns = t0.elapsed().as_nanos() as f64 / f64::from(reps);

            // One element-op: a dependent multiply-add over a slice.
            let n = 1 << 16;
            let a: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 1e-9).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.0 - (i as f64) * 1e-9).collect();
            let mut acc = 0.0f64;
            let op_reps = 200u32;
            let t1 = Instant::now();
            for _ in 0..op_reps {
                acc += a.iter().zip(&b).map(|(x, y)| x * y).sum::<f64>();
            }
            let op_ns =
                t1.elapsed().as_nanos() as f64 / (f64::from(op_reps) * n as f64);
            assert!(acc.is_finite());

            let cutoff = dispatch_ns * 10.0 / op_ns;
            println!("pool dispatch latency : {dispatch_ns:>10.0} ns");
            println!("element-op cost       : {op_ns:>10.2} ns");
            println!("10%-amortised cutoff  : {cutoff:>10.0} element-ops");
            println!("current SERIAL_CUTOFF : {SERIAL_CUTOFF:>10} element-ops");
        });
    }
}
