//! Deterministic data parallelism for the newsdiff workspace.
//!
//! Every hot kernel in the workspace (dense/sparse matrix products,
//! NMF multiplicative updates, Word2Vec batches, CNN layers) is
//! expressed over *row ranges*. This crate provides the one shared
//! primitive set for running those ranges across threads while
//! keeping results **bit-for-bit identical to the serial path**:
//!
//! * **Fixed chunk boundaries.** Work is split into chunks whose
//!   boundaries depend only on the problem size and the requested
//!   chunk length — never on the thread count. `NEWSDIFF_THREADS=1`
//!   and `NEWSDIFF_THREADS=32` see the same chunks.
//! * **In-order reduction.** [`par_map_reduce`] combines per-chunk
//!   results in ascending chunk order, so floating-point rounding is
//!   reproducible regardless of which thread finished first.
//! * **Serial fast path.** With one effective thread, or when the
//!   work is too small to amortise thread spawn, chunks run inline on
//!   the caller's thread through the *same* chunked code path.
//!
//! Thread count comes from the `NEWSDIFF_THREADS` environment
//! variable when set (clamped to at least 1), otherwise from
//! [`std::thread::available_parallelism`]. Threads are scoped
//! ([`std::thread::scope`]) — no pool, no global state, and borrowed
//! data flows into workers without `'static` bounds.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Work below this many "element-ops" runs serially even when more
/// threads are available; spawning costs more than it saves.
pub const SERIAL_CUTOFF: usize = 16 * 1024;

/// Returns the effective worker count: `NEWSDIFF_THREADS` when set to
/// a positive integer, otherwise the machine's available parallelism.
///
/// Read fresh on every call so tests and long-running services can
/// retune without restarting.
pub fn threads() -> usize {
    if let Ok(s) = std::env::var("NEWSDIFF_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Splits `0..len` into chunks of `chunk_len` (last one possibly
/// short). Boundaries are a pure function of the two arguments.
pub fn chunk_ranges(len: usize, chunk_len: usize) -> Vec<Range<usize>> {
    let chunk_len = chunk_len.max(1);
    let mut out = Vec::with_capacity(len.div_ceil(chunk_len));
    let mut start = 0;
    while start < len {
        let end = (start + chunk_len).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

/// Picks a chunk length that yields a few chunks per worker for load
/// balance, but never slices finer than `min_chunk` rows.
///
/// The result depends on [`threads()`], so use it **only for
/// disjoint-write kernels** ([`par_for_rows`]), where chunk layout
/// cannot affect results. Reductions ([`par_map_reduce`],
/// [`run_chunks`]) must pass a fixed chunk length instead — their
/// combination order follows chunk boundaries, and those boundaries
/// must not move with the thread count.
pub fn auto_chunk_len(len: usize, min_chunk: usize) -> usize {
    let workers = threads();
    let target_chunks = workers * 4;
    (len.div_ceil(target_chunks)).max(min_chunk.max(1))
}

/// Runs `map` over every chunk of `0..len` and combines the results
/// with `reduce` **in ascending chunk order**.
///
/// Returns `None` when `len == 0`. The serial and parallel paths
/// produce identical bits: both evaluate the same chunks and fold
/// left-to-right; threading only changes *where* each map runs.
///
/// `work_per_item` is a rough cost hint (inner-loop length) used for
/// the serial cutoff; pass `1` when unsure.
pub fn par_map_reduce<R, M, F>(
    len: usize,
    chunk_len: usize,
    work_per_item: usize,
    map: M,
    reduce: F,
) -> Option<R>
where
    R: Send,
    M: Fn(Range<usize>) -> R + Sync,
    F: FnMut(R, R) -> R,
{
    run_chunks(len, chunk_len, work_per_item, map).into_iter().reduce(reduce)
}

/// Runs `map` over every chunk of `0..len`, returning one result per
/// chunk in ascending chunk order.
pub fn run_chunks<R, M>(len: usize, chunk_len: usize, work_per_item: usize, map: M) -> Vec<R>
where
    R: Send,
    M: Fn(Range<usize>) -> R + Sync,
{
    let ranges = chunk_ranges(len, chunk_len);
    let workers = effective_workers(len, work_per_item, ranges.len());
    if workers <= 1 {
        return ranges.into_iter().map(map).collect();
    }
    let nchunks = ranges.len();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(nchunks);
    slots.resize_with(nchunks, || None);
    std::thread::scope(|s| {
        let map = &map;
        let ranges = &ranges;
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                s.spawn(move || {
                    // Static stride assignment: thread t owns chunks
                    // t, t+W, t+2W, ... Uniform kernels balance well
                    // and no synchronisation is needed.
                    let mut local = Vec::new();
                    let mut i = t;
                    while i < nchunks {
                        local.push((i, map(ranges[i].clone())));
                        i += workers;
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("nd-par worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every chunk produces a result")).collect()
}

/// Runs `f` over disjoint row-blocks of `out` in parallel.
///
/// `out` is treated as a row-major matrix of `row_width` elements per
/// row; it is split at row boundaries into blocks of `rows_per_chunk`
/// rows, and `f(first_row, block)` is invoked once per block with
/// exclusive access. Writes are disjoint by construction, so results
/// never depend on scheduling.
///
/// `work_per_row` is a rough cost hint (flops per output row) used
/// for the serial cutoff; `row_width` is a reasonable lower bound.
pub fn par_for_rows<T, F>(
    out: &mut [T],
    row_width: usize,
    rows_per_chunk: usize,
    work_per_row: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let row_width = row_width.max(1);
    let rows = out.len() / row_width;
    debug_assert_eq!(out.len(), rows * row_width, "out length must be rows * row_width");
    let rows_per_chunk = rows_per_chunk.max(1);
    let nchunks = rows.div_ceil(rows_per_chunk.max(1)).max(1);
    let workers = effective_workers(rows, work_per_row, nchunks);
    if workers <= 1 {
        for (i, block) in out.chunks_mut(rows_per_chunk * row_width).enumerate() {
            f(i * rows_per_chunk, block);
        }
        return;
    }
    // Contiguous assignment: thread t takes a consecutive run of
    // blocks, keeping each worker inside one cache-friendly region.
    let blocks: Vec<(usize, &mut [T])> = out
        .chunks_mut(rows_per_chunk * row_width)
        .enumerate()
        .map(|(i, b)| (i * rows_per_chunk, b))
        .collect();
    let per_worker = blocks.len().div_ceil(workers);
    let mut buckets: Vec<Vec<(usize, &mut [T])>> = Vec::with_capacity(workers);
    let mut iter = blocks.into_iter();
    for _ in 0..workers {
        buckets.push(iter.by_ref().take(per_worker).collect());
    }
    std::thread::scope(|s| {
        for bucket in buckets {
            let f = &f;
            s.spawn(move || {
                for (first_row, block) in bucket {
                    f(first_row, block);
                }
            });
        }
    });
}

/// Decides how many workers to actually spawn: 1 (serial) when the
/// total estimated work is under [`SERIAL_CUTOFF`], otherwise
/// `min(threads(), nchunks)`.
fn effective_workers(len: usize, work_per_item: usize, nchunks: usize) -> usize {
    let total_work = len.saturating_mul(work_per_item.max(1));
    if total_work < SERIAL_CUTOFF {
        return 1;
    }
    threads().min(nchunks.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises tests that mutate `NEWSDIFF_THREADS`.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: &str, f: impl FnOnce() -> R) -> R {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::set_var("NEWSDIFF_THREADS", n);
        let r = f();
        std::env::remove_var("NEWSDIFF_THREADS");
        r
    }

    #[test]
    fn chunk_boundaries_are_fixed() {
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(chunk_ranges(3, 100), vec![0..3]);
        // Boundaries never depend on the thread count.
        let a = with_threads("1", || chunk_ranges(1000, 7));
        let b = with_threads("16", || chunk_ranges(1000, 7));
        assert_eq!(a, b);
    }

    #[test]
    fn env_var_controls_thread_count() {
        assert_eq!(with_threads("3", threads), 3);
        assert_eq!(with_threads("0", threads), 1, "zero clamps to one");
        let _g = ENV_LOCK.lock().unwrap();
        std::env::remove_var("NEWSDIFF_THREADS");
        assert!(threads() >= 1);
    }

    #[test]
    fn map_reduce_is_bit_identical_across_thread_counts() {
        // Pathological float sum where ordering matters: mixing very
        // large and very small magnitudes.
        let data: Vec<f64> =
            (0..10_000).map(|i| if i % 3 == 0 { 1e16 } else { 1.0 + i as f64 * 1e-6 }).collect();
        let sum_with = |n: &str| {
            with_threads(n, || {
                par_map_reduce(
                    data.len(),
                    128,
                    64, // pretend each item is expensive so the parallel path engages
                    |r| r.map(|i| data[i]).sum::<f64>(),
                    |a, b| a + b,
                )
                .unwrap()
            })
        };
        let s1 = sum_with("1");
        let s2 = sum_with("2");
        let s8 = sum_with("8");
        assert_eq!(s1.to_bits(), s2.to_bits());
        assert_eq!(s1.to_bits(), s8.to_bits());
    }

    #[test]
    fn run_chunks_returns_results_in_chunk_order() {
        let out = with_threads("4", || run_chunks(100, 9, 1024, |r| r.start));
        let expected: Vec<usize> = chunk_ranges(100, 9).into_iter().map(|r| r.start).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_for_rows_touches_every_row_exactly_once() {
        let rows = 137;
        let width = 5;
        let check = |n: &str| {
            with_threads(n, || {
                let mut out = vec![0u32; rows * width];
                // Large work hint forces the parallel path despite the
                // small buffer.
                par_for_rows(&mut out, width, 8, 1 << 20, |first_row, block| {
                    for (k, row) in block.chunks_mut(width).enumerate() {
                        for v in row.iter_mut() {
                            *v += (first_row + k) as u32 + 1;
                        }
                    }
                });
                out
            })
        };
        let serial = check("1");
        let parallel = check("8");
        assert_eq!(serial, parallel);
        for (i, &v) in serial.iter().enumerate() {
            assert_eq!(v, (i / width) as u32 + 1, "row {} written once", i / width);
        }
    }

    #[test]
    fn small_work_stays_serial() {
        // 10 items * 1 work unit is far below SERIAL_CUTOFF; the
        // parallel machinery must not engage (observable via thread
        // ids all matching the caller).
        let caller = std::thread::current().id();
        with_threads("8", || {
            let ids = run_chunks(10, 2, 1, |_| std::thread::current().id());
            assert!(ids.iter().all(|&id| id == caller));
        });
    }

    #[test]
    fn empty_input_is_fine() {
        assert_eq!(par_map_reduce(0, 8, 1, |_| 1u64, |a, b| a + b), None);
        let mut out: Vec<f64> = Vec::new();
        par_for_rows(&mut out, 4, 2, 1, |_, _| panic!("no rows, no calls"));
    }
}
