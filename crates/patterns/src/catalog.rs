//! Ranked, categorized, serializable pattern catalogs.
//!
//! The catalog is the subsystem's durable artifact: mined sequential
//! patterns ranked by `support × length`, each categorized by shape
//! (churn, error chain, funnel, engagement), plus the co-occurrence
//! pair table. It round-trips bit-exactly through the nd-store
//! `ByteWriter`/`ByteReader` codec so the pipeline can cache it in
//! `NDART01` frames, and it supports matching fresh event slices
//! against the cataloged patterns.

use crate::cooccur::CoPair;
use crate::event::{
    funnel_stage, is_amplification, is_api_error, is_silence, pattern_id, render_sequence,
    symbol_topic,
};
use crate::prefixspan::MinedPattern;
use nd_store::artifact::{ArtifactError, ByteReader, ByteWriter};

/// Behavioral shape of a mined pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PatternCategory {
    /// Ends in sustained silence: the user walked away.
    Churn,
    /// Contains repeated API errors (and did not end in silence).
    ErrorChain,
    /// A strictly deepening engagement ladder on one topic
    /// (view → like → share → reply, at least three stages).
    Funnel,
    /// Ends in amplification (share/reply) after prior activity.
    Engagement,
    /// None of the above.
    Other,
}

impl PatternCategory {
    /// All categories, in the order used for counters and metrics.
    pub const ALL: [PatternCategory; 5] = [
        PatternCategory::Churn,
        PatternCategory::ErrorChain,
        PatternCategory::Funnel,
        PatternCategory::Engagement,
        PatternCategory::Other,
    ];

    /// Stable lowercase label (metrics, JSON, query parameter).
    pub fn label(self) -> &'static str {
        match self {
            PatternCategory::Churn => "churn",
            PatternCategory::ErrorChain => "error_chain",
            PatternCategory::Funnel => "funnel",
            PatternCategory::Engagement => "engagement",
            PatternCategory::Other => "other",
        }
    }

    /// Parses a [`PatternCategory::label`] string.
    pub fn parse(s: &str) -> Option<PatternCategory> {
        PatternCategory::ALL.into_iter().find(|c| c.label() == s)
    }

    fn code(self) -> u8 {
        match self {
            PatternCategory::Churn => 0,
            PatternCategory::ErrorChain => 1,
            PatternCategory::Funnel => 2,
            PatternCategory::Engagement => 3,
            PatternCategory::Other => 4,
        }
    }

    fn from_code(code: u8) -> Result<PatternCategory, ArtifactError> {
        PatternCategory::ALL
            .into_iter()
            .find(|c| c.code() == code)
            .ok_or(ArtifactError::Malformed("unknown pattern category code"))
    }
}

/// Classifies a symbol sequence. Checks run in priority order — a
/// pattern that both errors and churns reads as churn, because the
/// terminal silence is the operationally urgent part.
pub fn categorize(seq: &[u32]) -> PatternCategory {
    if seq.is_empty() {
        return PatternCategory::Other;
    }
    if is_silence(seq[seq.len() - 1]) {
        return PatternCategory::Churn;
    }
    if seq.iter().filter(|&&s| is_api_error(s)).count() >= 2 {
        return PatternCategory::ErrorChain;
    }
    if has_funnel(seq) {
        return PatternCategory::Funnel;
    }
    if seq.len() >= 2 && is_amplification(seq[seq.len() - 1]) {
        return PatternCategory::Engagement;
    }
    PatternCategory::Other
}

/// True when some topic carries a strictly increasing engagement-stage
/// run of length ≥ 3 (e.g. `V:t → K:t → S:t`). Runs reset whenever the
/// stage fails to deepen, so browsing plateaus don't qualify.
fn has_funnel(seq: &[u32]) -> bool {
    // Per-topic (stage, run-length) trackers; topics are u16 so a
    // sorted small vec is plenty and keeps iteration deterministic.
    let mut runs: Vec<(u16, u8, u8)> = Vec::new();
    for &sym in seq {
        let stage = funnel_stage(sym);
        if stage == 0 {
            continue;
        }
        let topic = symbol_topic(sym);
        let slot = match runs.binary_search_by_key(&topic, |r| r.0) {
            Ok(i) => &mut runs[i],
            Err(i) => {
                runs.insert(i, (topic, 0, 0));
                &mut runs[i]
            }
        };
        if stage > slot.1 {
            slot.2 += 1;
        } else {
            slot.2 = 1;
        }
        slot.1 = stage;
        if slot.2 >= 3 {
            return true;
        }
    }
    false
}

/// One cataloged pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalPattern {
    /// Stable identity: FNV-1a over the symbol bytes
    /// ([`crate::event::pattern_id`]).
    pub id: u64,
    /// The pattern's symbols, in order.
    pub sequence: Vec<u32>,
    /// Distinct users whose sequences contain the pattern.
    pub user_count: u32,
    /// `user_count / catalog.n_users`.
    pub support: f64,
    /// Ranking key: `support × sequence length`.
    pub score: f64,
    /// Behavioral shape.
    pub category: PatternCategory,
}

impl TemporalPattern {
    /// Human-readable rendering, e.g. `L → E → E → X`.
    pub fn render(&self) -> String {
        render_sequence(&self.sequence)
    }
}

/// The mined artifact: ranked patterns plus the co-occurrence table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PatternCatalog {
    /// Support denominator: user sequences mined.
    pub n_users: u32,
    /// Patterns, ranked score-desc / user-count-desc / sequence-asc.
    pub patterns: Vec<TemporalPattern>,
    /// Co-occurring symbol pairs (count-desc, then symbols-asc).
    pub pairs: Vec<CoPair>,
}

impl PatternCatalog {
    /// Ranks mined patterns into a catalog, keeping at most
    /// `max_patterns` entries. The sort key is total — score, then
    /// user count, then the sequence itself — so ties cannot
    /// reorder between runs.
    pub fn build(
        n_users: usize,
        mined: Vec<MinedPattern>,
        pairs: Vec<CoPair>,
        max_patterns: usize,
    ) -> PatternCatalog {
        let denom = (n_users as f64).max(1.0);
        let mut patterns: Vec<TemporalPattern> = mined
            .into_iter()
            .map(|m| {
                let support = f64::from(m.support) / denom;
                let score = support * m.sequence.len() as f64;
                TemporalPattern {
                    id: pattern_id(&m.sequence),
                    category: categorize(&m.sequence),
                    user_count: m.support,
                    support,
                    score,
                    sequence: m.sequence,
                }
            })
            .collect();
        patterns.sort_by(|x, y| {
            y.score
                .total_cmp(&x.score)
                .then_with(|| y.user_count.cmp(&x.user_count))
                .then_with(|| x.sequence.cmp(&y.sequence))
        });
        patterns.truncate(max_patterns);
        PatternCatalog { n_users: n_users.min(u32::MAX as usize) as u32, patterns, pairs }
    }

    /// Looks a pattern up by id.
    pub fn find(&self, id: u64) -> Option<&TemporalPattern> {
        self.patterns.iter().find(|p| p.id == id)
    }

    /// All cataloged patterns contained in `slice` as (gap-allowed)
    /// subsequences — the online matching entry point for classifying
    /// a fresh event window against known behavior.
    pub fn match_slice(&self, slice: &[u32]) -> Vec<&TemporalPattern> {
        self.patterns.iter().filter(|p| is_subsequence(&p.sequence, slice)).collect()
    }

    /// Pattern count per category, in [`PatternCategory::ALL`] order.
    pub fn category_counts(&self) -> [(PatternCategory, usize); 5] {
        PatternCategory::ALL
            .map(|c| (c, self.patterns.iter().filter(|p| p.category == c).count()))
    }

    /// Serializes the catalog (bit-exact round trip).
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.n_users);
        w.put_usize(self.patterns.len());
        for p in &self.patterns {
            w.put_u64(p.id);
            w.put_usize(p.sequence.len());
            for &s in &p.sequence {
                w.put_u32(s);
            }
            w.put_u32(p.user_count);
            w.put_f64(p.support);
            w.put_f64(p.score);
            w.put_u8(p.category.code());
        }
        w.put_usize(self.pairs.len());
        for pair in &self.pairs {
            w.put_u32(pair.a);
            w.put_u32(pair.b);
            w.put_u32(pair.count);
            w.put_f64(pair.jaccard);
        }
    }

    /// Deserializes a catalog written by [`PatternCatalog::encode`].
    pub fn decode(r: &mut ByteReader) -> Result<PatternCatalog, ArtifactError> {
        let n_users = r.u32()?;
        let n_patterns = r.len_prefix()?;
        let mut patterns = Vec::with_capacity(n_patterns.min(1 << 20));
        for _ in 0..n_patterns {
            let id = r.u64()?;
            let len = r.len_prefix()?;
            let mut sequence = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                sequence.push(r.u32()?);
            }
            let user_count = r.u32()?;
            let support = r.f64()?;
            let score = r.f64()?;
            let category = PatternCategory::from_code(r.u8()?)?;
            patterns.push(TemporalPattern { id, sequence, user_count, support, score, category });
        }
        let n_pairs = r.len_prefix()?;
        let mut pairs = Vec::with_capacity(n_pairs.min(1 << 20));
        for _ in 0..n_pairs {
            pairs.push(CoPair {
                a: r.u32()?,
                b: r.u32()?,
                count: r.u32()?,
                jaccard: r.f64()?,
            });
        }
        Ok(PatternCatalog { n_users, patterns, pairs })
    }
}

/// True when `pattern` occurs within `slice` allowing gaps.
pub fn is_subsequence(pattern: &[u32], slice: &[u32]) -> bool {
    let mut it = slice.iter();
    pattern.iter().all(|p| it.any(|s| s == p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PatternEvent;

    fn syms(events: &[PatternEvent]) -> Vec<u32> {
        events.iter().map(|e| e.symbol()).collect()
    }

    #[test]
    fn categorization_matches_planted_signature_shapes() {
        use PatternEvent::*;
        let cases: [(&[PatternEvent], PatternCategory); 6] = [
            (&[Login, ApiError, ApiError, Silence], PatternCategory::Churn),
            (&[Login, ApiError, ApiError, Login, ApiError], PatternCategory::ErrorChain),
            (&[View(3), Like(3), Share(3), Reply(3)], PatternCategory::Funnel),
            (&[Login, View(2), View(2), Share(2)], PatternCategory::Engagement),
            (&[Login, View(1)], PatternCategory::Other),
            // Deepening across *different* topics is not a funnel —
            // but it still ends in amplification, so: engagement.
            (&[View(1), Like(2), Share(3)], PatternCategory::Engagement),
        ];
        for (events, want) in cases {
            assert_eq!(categorize(&syms(events)), want, "{events:?}");
        }
    }

    #[test]
    fn funnel_requires_strict_deepening_on_one_topic() {
        use PatternEvent::*;
        // Plateau (Like, Like) resets the run, leaving only a
        // two-step chain: not a funnel.
        assert_eq!(
            categorize(&syms(&[View(1), Like(1), Like(1), Reply(1)])),
            PatternCategory::Engagement
        );
        // Re-entry after a reset still qualifies once it deepens 3x.
        assert_eq!(
            categorize(&syms(&[Like(1), View(1), Like(1), Share(1), Login])),
            PatternCategory::Funnel
        );
    }

    #[test]
    fn build_ranks_by_score_then_users_then_sequence() {
        let mined = vec![
            MinedPattern { sequence: vec![9], support: 4 },
            MinedPattern { sequence: vec![1, 2], support: 4 },
            MinedPattern { sequence: vec![1, 3], support: 4 },
            MinedPattern { sequence: vec![5], support: 8 },
        ];
        let cat = PatternCatalog::build(8, mined, Vec::new(), 16);
        let order: Vec<&[u32]> = cat.patterns.iter().map(|p| p.sequence.as_slice()).collect();
        // scores: [9]→0.5, [1,2]→1.0, [1,3]→1.0, [5]→1.0; [5] has more users;
        // [1,2] < [1,3] lexicographically.
        assert_eq!(order, vec![&[5][..], &[1, 2][..], &[1, 3][..], &[9][..]]);
        assert_eq!(cat.patterns[0].support, 1.0);
    }

    #[test]
    fn max_patterns_truncates_after_ranking() {
        let mined = (0..10u32)
            .map(|i| MinedPattern { sequence: vec![i], support: i + 1 })
            .collect();
        let cat = PatternCatalog::build(10, mined, Vec::new(), 3);
        assert_eq!(cat.patterns.len(), 3);
        assert_eq!(cat.patterns[0].user_count, 10, "highest support survives");
    }

    #[test]
    fn encode_decode_roundtrips_bit_exactly() {
        let mined = vec![
            MinedPattern { sequence: syms(&[PatternEvent::Login, PatternEvent::Silence]), support: 7 },
            MinedPattern { sequence: syms(&[PatternEvent::View(3)]), support: 5 },
        ];
        let pairs = vec![CoPair { a: 1, b: 2, count: 3, jaccard: 0.75 }];
        let cat = PatternCatalog::build(20, mined, pairs, 16);
        let mut w = ByteWriter::new();
        cat.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = PatternCatalog::decode(&mut r).expect("decode");
        assert!(r.is_empty(), "trailing bytes");
        assert_eq!(back, cat);

        // Re-encoding the decoded catalog reproduces identical bytes.
        let mut w2 = ByteWriter::new();
        back.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let cat = PatternCatalog::build(
            4,
            vec![MinedPattern { sequence: vec![1, 2, 3], support: 2 }],
            Vec::new(),
            8,
        );
        let mut w = ByteWriter::new();
        cat.encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(
                PatternCatalog::decode(&mut ByteReader::new(&bytes[..cut])).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn match_slice_and_find_agree_with_subsequence_semantics() {
        let mined = vec![
            MinedPattern { sequence: vec![1, 3], support: 2 },
            MinedPattern { sequence: vec![2, 4], support: 2 },
        ];
        let cat = PatternCatalog::build(4, mined, Vec::new(), 8);
        let hits = cat.match_slice(&[1, 2, 3]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].sequence, vec![1, 3]);
        assert!(cat.find(hits[0].id).is_some());
        assert!(cat.find(0xDEAD_BEEF).is_none());
    }

    #[test]
    fn category_labels_roundtrip() {
        for c in PatternCategory::ALL {
            assert_eq!(PatternCategory::parse(c.label()), Some(c));
        }
        assert_eq!(PatternCategory::parse("nope"), None);
    }
}
