//! Pairwise symbol co-occurrence across user sequences.
//!
//! Complements PrefixSpan: where sequential patterns capture *order*,
//! co-occurrence captures *association* — which event pairs show up in
//! the same user's stream regardless of order. Counts are per distinct
//! user (a user contributes at most once per pair), and the Jaccard
//! coefficient `|A∩B| / |A∪B|` is computed from integer counts, so
//! every number is an exact function of the input.

use crate::sequence::SequenceDb;
use std::collections::BTreeMap;

/// Fixed chunk size for the counting pass (thread-count independent).
const CHUNK: usize = 256;

/// One co-occurring symbol pair, `a < b` by symbol order.
#[derive(Debug, Clone, PartialEq)]
pub struct CoPair {
    /// Smaller symbol of the pair.
    pub a: u32,
    /// Larger symbol of the pair.
    pub b: u32,
    /// Users whose sequences contain both symbols.
    pub count: u32,
    /// `count / (users(a) + users(b) - count)` — association strength.
    pub jaccard: f64,
}

/// Per-chunk counting state: a dense `nsym × nsym` upper-triangle
/// pair matrix plus per-symbol user counts.
struct PairCounts {
    pairs: Vec<u32>,
    singles: Vec<u32>,
}

/// Computes all symbol pairs co-occurring in at least `min_users`
/// sequences, ordered by count descending, then `(a, b)` ascending.
pub fn cooccurrence(db: &SequenceDb, min_users: usize) -> Vec<CoPair> {
    // Alphabet: distinct symbols in ascending order.
    let index: BTreeMap<u32, u32> = db
        .sequences()
        .iter()
        .flatten()
        .copied()
        .collect::<std::collections::BTreeSet<u32>>()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, i as u32))
        .collect();
    let nsym = index.len();
    if nsym == 0 {
        return Vec::new();
    }
    let symbols: Vec<u32> = index.keys().copied().collect();
    let n = db.len();
    let avg_len = (db.total_symbols() / n.max(1)).max(1);
    let seqs = db.sequences();

    // Count per fixed-size chunk, then merge additively in ascending
    // chunk order. Integer sums are order-invariant, so the result is
    // identical at any thread count.
    let merged = nd_par::par_map_reduce(
        n,
        CHUNK,
        avg_len * nsym,
        |r| {
            let mut c = PairCounts {
                pairs: vec![0u32; nsym * nsym],
                singles: vec![0u32; nsym],
            };
            let mut present: Vec<u32> = Vec::with_capacity(nsym);
            for i in r {
                present.clear();
                present.extend(
                    seqs[i].iter().copied().collect::<std::collections::BTreeSet<u32>>(),
                );
                for (k, &s) in present.iter().enumerate() {
                    let si = index[&s] as usize;
                    c.singles[si] += 1;
                    for &t in &present[k + 1..] {
                        c.pairs[si * nsym + index[&t] as usize] += 1;
                    }
                }
            }
            c
        },
        |mut acc, part| {
            for (a, p) in acc.pairs.iter_mut().zip(&part.pairs) {
                *a += p;
            }
            for (a, p) in acc.singles.iter_mut().zip(&part.singles) {
                *a += p;
            }
            acc
        },
    );
    let Some(counts) = merged else { return Vec::new() };

    let floor = min_users.max(1) as u32;
    let mut out: Vec<CoPair> = Vec::new();
    for ai in 0..nsym {
        for bi in ai + 1..nsym {
            let count = counts.pairs[ai * nsym + bi];
            if count < floor {
                continue;
            }
            let union = counts.singles[ai] + counts.singles[bi] - count;
            out.push(CoPair {
                a: symbols[ai],
                b: symbols[bi],
                count,
                jaccard: f64::from(count) / f64::from(union.max(1)),
            });
        }
    }
    out.sort_by(|x, y| y.count.cmp(&x.count).then_with(|| (x.a, x.b).cmp(&(y.a, y.b))));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(seqs: &[&[u32]]) -> SequenceDb {
        SequenceDb::new(seqs.iter().map(|s| s.to_vec()).collect())
    }

    #[test]
    fn counts_distinct_users_not_occurrences() {
        // User 0 has 1 and 2 multiple times: still one co-occurrence.
        let d = db(&[&[1, 2, 1, 2], &[1, 2], &[1], &[2]]);
        let pairs = cooccurrence(&d, 1);
        assert_eq!(pairs.len(), 1);
        let p = &pairs[0];
        assert_eq!((p.a, p.b, p.count), (1, 2, 2));
        // users(1)=3, users(2)=3, both=2 → jaccard 2/4.
        assert!((p.jaccard - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_users_filters_and_order_is_count_then_symbols() {
        let d = db(&[&[1, 2, 3], &[1, 2, 3], &[1, 2], &[4, 5]]);
        let pairs = cooccurrence(&d, 2);
        let keys: Vec<(u32, u32, u32)> = pairs.iter().map(|p| (p.a, p.b, p.count)).collect();
        assert_eq!(keys, vec![(1, 2, 3), (1, 3, 2), (2, 3, 2)]);
    }

    #[test]
    fn empty_database_is_empty() {
        assert!(cooccurrence(&SequenceDb::default(), 1).is_empty());
        assert!(cooccurrence(&db(&[&[], &[]]), 1).is_empty());
    }
}
