//! Typed audience events and their compressed symbol encoding.
//!
//! Every per-user event is compressed to a `u32` **symbol** before
//! mining: the high 16 bits carry the event tag, the low 16 bits the
//! topic id (zero for topic-free events). Symbols order first by tag,
//! then by topic, which gives the miner a stable, meaningful iteration
//! order for free via `BTreeMap`.

use nd_store::artifact::fnv1a64;

/// One typed event in a user's behavioral stream.
///
/// The topic payload identifies *which* news topic the interaction
/// touched; session-level events (`Login`, `ApiError`, `Silence`)
/// carry none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PatternEvent {
    /// Session start (app open / first request of a visit).
    Login,
    /// Read an article or topic page.
    View(u16),
    /// Lightweight engagement (like / favourite).
    Like(u16),
    /// Amplification (retweet / share).
    Share(u16),
    /// Conversational engagement (reply / quote).
    Reply(u16),
    /// A failed request observed in the user's session.
    ApiError,
    /// Sustained inactivity marker (no events for the silence window).
    Silence,
}

/// Event tags, i.e. the high half of a symbol. Tag 0 is reserved so a
/// valid symbol is never zero.
const TAG_LOGIN: u32 = 1;
const TAG_VIEW: u32 = 2;
const TAG_LIKE: u32 = 3;
const TAG_SHARE: u32 = 4;
const TAG_REPLY: u32 = 5;
const TAG_API_ERROR: u32 = 6;
const TAG_SILENCE: u32 = 7;

impl PatternEvent {
    /// Compresses the event to its `u32` mining symbol.
    pub fn symbol(self) -> u32 {
        match self {
            PatternEvent::Login => TAG_LOGIN << 16,
            PatternEvent::View(t) => TAG_VIEW << 16 | u32::from(t),
            PatternEvent::Like(t) => TAG_LIKE << 16 | u32::from(t),
            PatternEvent::Share(t) => TAG_SHARE << 16 | u32::from(t),
            PatternEvent::Reply(t) => TAG_REPLY << 16 | u32::from(t),
            PatternEvent::ApiError => TAG_API_ERROR << 16,
            PatternEvent::Silence => TAG_SILENCE << 16,
        }
    }

    /// Reverses [`PatternEvent::symbol`]; `None` for malformed input
    /// (unknown tag, or a topic on a topic-free tag).
    pub fn from_symbol(sym: u32) -> Option<PatternEvent> {
        let topic = (sym & 0xFFFF) as u16;
        match sym >> 16 {
            TAG_LOGIN if topic == 0 => Some(PatternEvent::Login),
            TAG_VIEW => Some(PatternEvent::View(topic)),
            TAG_LIKE => Some(PatternEvent::Like(topic)),
            TAG_SHARE => Some(PatternEvent::Share(topic)),
            TAG_REPLY => Some(PatternEvent::Reply(topic)),
            TAG_API_ERROR if topic == 0 => Some(PatternEvent::ApiError),
            TAG_SILENCE if topic == 0 => Some(PatternEvent::Silence),
            _ => None,
        }
    }
}

/// Returns the symbol's event tag (high 16 bits).
pub fn symbol_tag(sym: u32) -> u32 {
    sym >> 16
}

/// Returns the symbol's topic id (low 16 bits).
pub fn symbol_topic(sym: u32) -> u16 {
    (sym & 0xFFFF) as u16
}

/// True when the symbol is a `Silence` marker.
pub fn is_silence(sym: u32) -> bool {
    sym >> 16 == TAG_SILENCE
}

/// True when the symbol is an `ApiError`.
pub fn is_api_error(sym: u32) -> bool {
    sym >> 16 == TAG_API_ERROR
}

/// Engagement-funnel stage of a symbol: `View`=1, `Like`=2, `Share`=3,
/// `Reply`=4; zero for everything else. Strictly increasing stage runs
/// on one topic are what [`crate::catalog`] classifies as funnels.
pub fn funnel_stage(sym: u32) -> u8 {
    match sym >> 16 {
        TAG_VIEW => 1,
        TAG_LIKE => 2,
        TAG_SHARE => 3,
        TAG_REPLY => 4,
        _ => 0,
    }
}

/// True when the symbol ends an engagement arc (`Share` or `Reply`).
pub fn is_amplification(sym: u32) -> bool {
    matches!(sym >> 16, TAG_SHARE | TAG_REPLY)
}

/// Renders a symbol as the short label used in logs, docs, and the
/// `/patterns` endpoint: `L`, `V:3`, `K:3`, `S:3`, `R:3`, `E`, `X`.
pub fn symbol_label(sym: u32) -> String {
    let topic = sym & 0xFFFF;
    match sym >> 16 {
        TAG_LOGIN => "L".to_string(),
        TAG_VIEW => format!("V:{topic}"),
        TAG_LIKE => format!("K:{topic}"),
        TAG_SHARE => format!("S:{topic}"),
        TAG_REPLY => format!("R:{topic}"),
        TAG_API_ERROR => "E".to_string(),
        TAG_SILENCE => "X".to_string(),
        tag => format!("?{tag}:{topic}"),
    }
}

/// Renders a whole sequence, e.g. `L → E → E → X`.
pub fn render_sequence(seq: &[u32]) -> String {
    let labels: Vec<String> = seq.iter().map(|&s| symbol_label(s)).collect();
    labels.join(" → ")
}

/// Stable identity of a pattern: FNV-1a over the little-endian symbol
/// bytes. The synth generator computes the same id for its planted
/// signatures, so recovery tests assert on ids, not on floats.
pub fn pattern_id(seq: &[u32]) -> u64 {
    let mut bytes = Vec::with_capacity(seq.len() * 4);
    for &s in seq {
        bytes.extend_from_slice(&s.to_le_bytes());
    }
    fnv1a64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_roundtrip_all_variants() {
        let events = [
            PatternEvent::Login,
            PatternEvent::View(0),
            PatternEvent::View(41),
            PatternEvent::Like(7),
            PatternEvent::Share(65_535),
            PatternEvent::Reply(3),
            PatternEvent::ApiError,
            PatternEvent::Silence,
        ];
        for e in events {
            assert_eq!(PatternEvent::from_symbol(e.symbol()), Some(e), "{e:?}");
        }
    }

    #[test]
    fn malformed_symbols_rejected() {
        assert_eq!(PatternEvent::from_symbol(0), None);
        assert_eq!(PatternEvent::from_symbol(TAG_LOGIN << 16 | 5), None);
        assert_eq!(PatternEvent::from_symbol(TAG_SILENCE << 16 | 1), None);
        assert_eq!(PatternEvent::from_symbol(0xFF << 16), None);
    }

    #[test]
    fn labels_match_documented_grammar() {
        assert_eq!(symbol_label(PatternEvent::Login.symbol()), "L");
        assert_eq!(symbol_label(PatternEvent::View(3).symbol()), "V:3");
        assert_eq!(symbol_label(PatternEvent::Silence.symbol()), "X");
        assert_eq!(
            render_sequence(&[
                PatternEvent::Login.symbol(),
                PatternEvent::ApiError.symbol(),
                PatternEvent::Silence.symbol(),
            ]),
            "L → E → X"
        );
    }

    #[test]
    fn pattern_id_is_order_and_content_sensitive() {
        let a = [PatternEvent::Login.symbol(), PatternEvent::Silence.symbol()];
        let b = [PatternEvent::Silence.symbol(), PatternEvent::Login.symbol()];
        assert_ne!(pattern_id(&a), pattern_id(&b));
        assert_eq!(pattern_id(&a), pattern_id(&a));
        assert_ne!(pattern_id(&a), pattern_id(&a[..1]));
    }

    #[test]
    fn funnel_stages_are_monotone_over_the_engagement_ladder() {
        let ladder = [
            PatternEvent::View(2),
            PatternEvent::Like(2),
            PatternEvent::Share(2),
            PatternEvent::Reply(2),
        ];
        let stages: Vec<u8> = ladder.iter().map(|e| funnel_stage(e.symbol())).collect();
        assert_eq!(stages, [1, 2, 3, 4]);
        assert_eq!(funnel_stage(PatternEvent::Login.symbol()), 0);
    }
}
