//! # nd-patterns — temporal audience-pattern mining
//!
//! Deterministic sequential pattern mining over per-user event
//! streams: typed events compress into symbol sequences
//! ([`sequence`]), projected-database PrefixSpan finds frequent
//! gap-allowed subsequences ([`prefixspan`]), co-occurrence analysis
//! finds unordered associations ([`cooccur`]), and the results rank
//! into a serializable, queryable [`catalog::PatternCatalog`].
//!
//! Everything is bit-identical across `NEWSDIFF_THREADS` settings:
//! fixed chunk boundaries, in-order merges, `BTreeMap`-only iteration,
//! and integer support counts. See DESIGN.md §14.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod cooccur;
pub mod event;
pub mod prefixspan;
pub mod sequence;

pub use catalog::{categorize, is_subsequence, PatternCatalog, PatternCategory, TemporalPattern};
pub use cooccur::{cooccurrence, CoPair};
pub use event::{pattern_id, render_sequence, symbol_label, PatternEvent};
pub use prefixspan::{mine, MinedPattern, MiningConfig};
pub use sequence::{compress, compress_events, SequenceConfig, SequenceDb};
