//! Projected-database PrefixSpan over compressed user sequences.
//!
//! Support of a pattern = number of user sequences that contain it as
//! a (gap-allowed) subsequence. Mining walks the pattern tree depth
//! first: a frequent 1-pattern (root symbol) projects the database to
//! per-sequence resume positions (first occurrence + 1), and each
//! extension re-projects the suffixes. Every projection keeps at most
//! one `(sequence, resume)` entry per user, so support counting never
//! needs dedup beyond a per-suffix last-seen marker.
//!
//! ## Determinism contract
//!
//! The output order is a pure function of the input: root symbols
//! ascending (BTreeMap order), then DFS preorder with candidate
//! extensions ascending. Parallelism follows the nd-par rules — the
//! root-count pass reduces fixed-size chunks **in ascending chunk
//! order**, and the per-root subtree fan-out concatenates results in
//! root order — so the mined list is identical at 1, 2, or 8 threads
//! (all counts are integers; no float accumulation is involved).
//!
//! This file is on the nd-lint `hot-loop-alloc` list: all mining
//! buffers live in [`MineScratch`] and are reused across the roots of
//! a chunk; the recursion allocates nothing but the emitted patterns.

use crate::sequence::SequenceDb;
use std::collections::BTreeMap;

/// Fixed chunk size for the root-count pass. Chunk boundaries must
/// not depend on thread count, so this is a constant, not derived
/// from `nd_par::threads()`.
const ROOT_CHUNK: usize = 256;

/// Thresholds governing which patterns are emitted.
#[derive(Debug, Clone, PartialEq)]
pub struct MiningConfig {
    /// Minimum support as a fraction of the user base (0..=1).
    pub min_support: f64,
    /// Absolute floor on supporting users; the effective threshold is
    /// `max(min_users, ceil(min_support · n), 1)`.
    pub min_users: usize,
    /// Patterns shorter than this are mined through but not emitted.
    pub min_length: usize,
    /// Hard cap on pattern length (recursion depth).
    pub max_length: usize,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig { min_support: 0.05, min_users: 5, min_length: 2, max_length: 5 }
    }
}

impl MiningConfig {
    /// The effective absolute support threshold for `n` sequences.
    pub fn threshold(&self, n: usize) -> u32 {
        let frac = (self.min_support * n as f64).ceil();
        let frac = if frac.is_finite() && frac > 0.0 { frac as usize } else { 0 };
        self.min_users.max(frac).max(1).min(u32::MAX as usize) as u32
    }
}

/// One frequent sequential pattern with its absolute support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedPattern {
    /// The pattern's symbols, in order.
    pub sequence: Vec<u32>,
    /// Number of user sequences containing the pattern.
    pub support: u32,
}

/// Per-depth reusable buffers for one projection level.
#[derive(Default)]
struct Level {
    /// Projection for the candidate currently being extended:
    /// `(sequence index, resume position)`.
    proj: Vec<(u32, u32)>,
    /// Extension support counts: symbol → (count, last-seen marker).
    counts: BTreeMap<u32, (u32, u32)>,
    /// Frequent extensions `(symbol, support)`, ascending by symbol.
    cands: Vec<(u32, u32)>,
}

/// Reusable mining workspace: one per fan-out chunk, reused across
/// every root (and recursion level) that chunk owns.
pub struct MineScratch {
    root_proj: Vec<(u32, u32)>,
    prefix: Vec<u32>,
    out: Vec<MinedPattern>,
    levels: Vec<Level>,
}

impl MineScratch {
    /// A workspace able to mine patterns up to `max_length` symbols.
    pub fn new(max_length: usize) -> Self {
        MineScratch {
            root_proj: Vec::new(),
            prefix: Vec::new(),
            out: Vec::new(),
            levels: (0..max_length).map(|_| Level::default()).collect(),
        }
    }

    /// Mines the subtree rooted at symbol `root` (already known
    /// frequent with support `count`), appending emitted patterns to
    /// the internal buffer in DFS preorder.
    fn mine_root(&mut self, db: &SequenceDb, root: u32, count: u32, need: u32, cfg: &MiningConfig) {
        self.prefix.clear();
        self.prefix.push(root);
        self.root_proj.clear();
        for (i, seq) in db.sequences().iter().enumerate() {
            if let Some(pos) = seq.iter().position(|&s| s == root) {
                self.root_proj.push((i as u32, pos as u32 + 1));
            }
        }
        if cfg.min_length <= 1 {
            self.out.push(MinedPattern { sequence: self.prefix.clone(), support: count });
        }
        extend(db, &self.root_proj, &mut self.prefix, need, cfg, &mut self.out, &mut self.levels);
    }

    /// Takes the accumulated patterns, leaving the workspace reusable.
    fn take_patterns(&mut self) -> Vec<MinedPattern> {
        std::mem::take(&mut self.out)
    }
}

/// Extends `prefix` (whose projection is `proj`) by every frequent
/// symbol, recursing depth first. `levels` supplies one reusable
/// buffer set per remaining depth.
fn extend(
    db: &SequenceDb,
    proj: &[(u32, u32)],
    prefix: &mut Vec<u32>,
    need: u32,
    cfg: &MiningConfig,
    out: &mut Vec<MinedPattern>,
    levels: &mut [Level],
) {
    if prefix.len() >= cfg.max_length {
        return;
    }
    let Some((level, rest)) = levels.split_first_mut() else { return };
    let seqs = db.sequences();

    // Count distinct-sequence support for every extension symbol. A
    // projection holds at most one entry per sequence, so a last-seen
    // marker (sequence index + 1; 0 = unseen) dedups repeats within
    // one suffix without any per-suffix set.
    level.counts.clear();
    for &(seq, pos) in proj {
        let marker = seq + 1;
        for &s in &seqs[seq as usize][pos as usize..] {
            let e = level.counts.entry(s).or_insert((0, 0));
            if e.1 != marker {
                e.0 += 1;
                e.1 = marker;
            }
        }
    }
    level.cands.clear();
    level
        .cands
        .extend(level.counts.iter().filter_map(|(&s, &(c, _))| (c >= need).then_some((s, c))));

    for ci in 0..level.cands.len() {
        let (sym, count) = level.cands[ci];
        level.proj.clear();
        for &(seq, pos) in proj {
            let suffix = &seqs[seq as usize][pos as usize..];
            if let Some(off) = suffix.iter().position(|&x| x == sym) {
                level.proj.push((seq, pos + off as u32 + 1));
            }
        }
        prefix.push(sym);
        if prefix.len() >= cfg.min_length {
            out.push(MinedPattern { sequence: prefix.clone(), support: count });
        }
        extend(db, &level.proj, prefix, need, cfg, out, &mut *rest);
        prefix.pop();
    }
}

/// Mines every frequent sequential pattern of the database.
///
/// Returns patterns in root-ascending DFS preorder — a canonical
/// order independent of thread count (see module docs).
pub fn mine(db: &SequenceDb, cfg: &MiningConfig) -> Vec<MinedPattern> {
    if db.is_empty() || cfg.max_length == 0 {
        return Vec::default();
    }
    let n = db.len();
    let need = cfg.threshold(n);
    let seqs = db.sequences();
    let avg_len = (db.total_symbols() / n).max(1);

    // Root pass: distinct-sequence support per symbol, reduced in
    // ascending chunk order (integer sums — order-invariant anyway).
    let counts = nd_par::par_map_reduce(
        n,
        ROOT_CHUNK,
        avg_len,
        |r| {
            let mut local: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
            for i in r {
                let marker = i as u32 + 1;
                for &s in &seqs[i] {
                    let e = local.entry(s).or_insert((0, 0));
                    if e.1 != marker {
                        e.0 += 1;
                        e.1 = marker;
                    }
                }
            }
            local
        },
        |mut acc, part| {
            for (s, (c, _)) in part {
                acc.entry(s).or_insert((0, 0)).0 += c;
            }
            acc
        },
    )
    .unwrap_or_default();

    let roots: Vec<(u32, u32)> = counts
        .into_iter()
        .filter_map(|(s, (c, _))| (c >= need).then_some((s, c)))
        .collect();
    if roots.is_empty() {
        return Vec::default();
    }

    // Per-root subtree fan-out: chunks are single roots, results are
    // concatenated in root order, so the output is schedule-free.
    let per_root_work = db.total_symbols().max(1);
    let chunks = nd_par::run_chunks(roots.len(), 1, per_root_work, |r| {
        let mut scratch = MineScratch::new(cfg.max_length);
        for idx in r {
            let (root, count) = roots[idx];
            scratch.mine_root(db, root, count, need, cfg);
        }
        scratch.take_patterns()
    });
    chunks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::SequenceDb;

    fn db(seqs: &[&[u32]]) -> SequenceDb {
        SequenceDb::new(seqs.iter().map(|s| s.to_vec()).collect())
    }

    fn cfg(min_users: usize, min_length: usize, max_length: usize) -> MiningConfig {
        MiningConfig { min_support: 0.0, min_users, min_length, max_length }
    }

    /// Brute-force reference: support by direct subsequence scan.
    fn support_of(pattern: &[u32], db: &SequenceDb) -> u32 {
        db.sequences()
            .iter()
            .filter(|seq| {
                let mut it = seq.iter();
                pattern.iter().all(|p| it.any(|s| s == p))
            })
            .count() as u32
    }

    #[test]
    fn mines_the_textbook_example() {
        // Three of four sequences share 1 → 2; all contain 1.
        let d = db(&[&[1, 2, 3], &[1, 3, 2], &[1, 2], &[1, 4]]);
        let mined = mine(&d, &cfg(3, 1, 3));
        let find = |p: &[u32]| mined.iter().find(|m| m.sequence == p).map(|m| m.support);
        assert_eq!(find(&[1]), Some(4));
        assert_eq!(find(&[1, 2]), Some(3));
        assert_eq!(find(&[2]), Some(3));
        assert_eq!(find(&[1, 3]), None, "support 2 < threshold 3");
    }

    #[test]
    fn every_emitted_support_matches_brute_force() {
        // Deterministic pseudo-random sequences from a tiny LCG.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move |bound: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % bound
        };
        let seqs: Vec<Vec<u32>> = (0..40)
            .map(|_| (0..(4 + next(8))).map(|_| next(5) as u32 + 1).collect())
            .collect();
        let d = SequenceDb::new(seqs);
        let mined = mine(&d, &cfg(6, 1, 4));
        assert!(!mined.is_empty());
        for m in &mined {
            assert_eq!(m.support, support_of(&m.sequence, &d), "pattern {:?}", m.sequence);
            assert!(m.support >= 6);
            assert!(m.sequence.len() <= 4);
        }
        // Closure check: every frequent prefix of an emitted pattern
        // is itself emitted (Apriori property, min_length = 1).
        for m in &mined {
            for cut in 1..m.sequence.len() {
                assert!(
                    mined.iter().any(|x| x.sequence == m.sequence[..cut]),
                    "missing prefix {:?}",
                    &m.sequence[..cut]
                );
            }
        }
    }

    #[test]
    fn min_length_suppresses_short_patterns_without_losing_long_ones() {
        let d = db(&[&[1, 2, 3], &[1, 2, 3], &[1, 2, 3]]);
        let mined = mine(&d, &cfg(3, 2, 3));
        assert!(mined.iter().all(|m| m.sequence.len() >= 2));
        assert!(mined.iter().any(|m| m.sequence == [1, 2, 3]));
    }

    #[test]
    fn max_length_caps_recursion() {
        let d = db(&[&[1, 2, 3, 4], &[1, 2, 3, 4]]);
        let mined = mine(&d, &cfg(2, 1, 2));
        assert!(mined.iter().all(|m| m.sequence.len() <= 2));
        assert!(mined.iter().any(|m| m.sequence == [3, 4]));
    }

    #[test]
    fn threshold_combines_fraction_and_floor() {
        let c = MiningConfig { min_support: 0.5, min_users: 3, min_length: 1, max_length: 3 };
        assert_eq!(c.threshold(4), 3, "floor dominates");
        assert_eq!(c.threshold(100), 50, "fraction dominates");
        let zero = MiningConfig { min_support: 0.0, min_users: 0, min_length: 1, max_length: 3 };
        assert_eq!(zero.threshold(10), 1, "never below one user");
    }

    #[test]
    fn repeated_symbols_within_one_sequence_count_once() {
        let d = db(&[&[7, 7, 7], &[7]]);
        let mined = mine(&d, &cfg(2, 1, 2));
        let one = mined.iter().find(|m| m.sequence == [7]).expect("pattern [7]");
        assert_eq!(one.support, 2);
        // [7,7] is supported only by the first sequence: below need=2.
        assert!(!mined.iter().any(|m| m.sequence == [7, 7]));
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        assert!(mine(&SequenceDb::default(), &cfg(1, 1, 3)).is_empty());
        let d = db(&[&[], &[]]);
        assert!(mine(&d, &cfg(1, 1, 3)).is_empty());
    }
}
