//! Per-user event streams compressed into mining-ready sequences.
//!
//! Raw trajectories are noisy: a binge-reading session emits dozens of
//! consecutive `View:t` events that carry no more sequential signal
//! than two do. Compression collapses runs of identical symbols to at
//! most [`SequenceConfig::max_run`] occurrences and keeps only the
//! most recent [`SequenceConfig::max_len`] symbols, bounding both the
//! PrefixSpan projection depth and the per-user memory footprint.

use crate::event::PatternEvent;

/// Knobs for stream → sequence compression.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceConfig {
    /// Maximum run of identical consecutive symbols kept (≥1). Two is
    /// enough to preserve planted double-error signatures while
    /// collapsing binge runs.
    pub max_run: usize,
    /// Maximum sequence length; older symbols are dropped first.
    pub max_len: usize,
}

impl Default for SequenceConfig {
    fn default() -> Self {
        SequenceConfig { max_run: 2, max_len: 256 }
    }
}

/// Compresses one symbol stream per the config. Order is preserved;
/// only run-collapsing and head-truncation are applied.
pub fn compress(symbols: impl IntoIterator<Item = u32>, cfg: &SequenceConfig) -> Vec<u32> {
    let max_run = cfg.max_run.max(1);
    let mut out = Vec::new();
    let mut run = 0usize;
    for sym in symbols {
        if out.last() == Some(&sym) {
            run += 1;
        } else {
            run = 1;
        }
        if run <= max_run {
            out.push(sym);
        }
    }
    if out.len() > cfg.max_len {
        out.drain(..out.len() - cfg.max_len);
    }
    out
}

/// Convenience: compress a typed event stream.
pub fn compress_events(events: &[PatternEvent], cfg: &SequenceConfig) -> Vec<u32> {
    compress(events.iter().map(|e| e.symbol()), cfg)
}

/// The mining input: one compressed symbol sequence per user, indexed
/// by position (the miner never needs user identity, only distinct
/// sequence counts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SequenceDb {
    sequences: Vec<Vec<u32>>,
}

impl SequenceDb {
    /// Wraps already-compressed sequences.
    pub fn new(sequences: Vec<Vec<u32>>) -> Self {
        SequenceDb { sequences }
    }

    /// Compresses each raw stream and collects the database. Empty
    /// streams are kept: they still count toward the support base
    /// (a user who did nothing is evidence against every pattern).
    pub fn from_streams<S: AsRef<[u32]>>(streams: &[S], cfg: &SequenceConfig) -> Self {
        let sequences =
            streams.iter().map(|s| compress(s.as_ref().iter().copied(), cfg)).collect();
        SequenceDb { sequences }
    }

    /// Number of user sequences (the support denominator).
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// True when the database holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Total symbol count, used as a work hint for parallel dispatch.
    pub fn total_symbols(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }

    /// The sequences themselves, in user order.
    pub fn sequences(&self) -> &[Vec<u32>] {
        &self.sequences
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_run: usize, max_len: usize) -> SequenceConfig {
        SequenceConfig { max_run, max_len }
    }

    #[test]
    fn collapses_runs_but_preserves_pairs() {
        let stream = [1, 1, 1, 1, 2, 3, 3, 1];
        assert_eq!(compress(stream, &cfg(2, 64)), vec![1, 1, 2, 3, 3, 1]);
        assert_eq!(compress(stream, &cfg(1, 64)), vec![1, 2, 3, 1]);
    }

    #[test]
    fn truncation_keeps_the_most_recent_suffix() {
        let stream: Vec<u32> = (0..10).collect();
        assert_eq!(compress(stream, &cfg(2, 4)), vec![6, 7, 8, 9]);
    }

    #[test]
    fn zero_max_run_is_clamped_to_one() {
        assert_eq!(compress([5, 5, 5], &cfg(0, 8)), vec![5]);
    }

    #[test]
    fn db_keeps_empty_streams_in_the_support_base() {
        let streams: Vec<Vec<u32>> = vec![vec![1, 1, 1], vec![], vec![2]];
        let db = SequenceDb::from_streams(&streams, &cfg(2, 8));
        assert_eq!(db.len(), 3);
        assert_eq!(db.sequences()[0], vec![1, 1]);
        assert!(db.sequences()[1].is_empty());
        assert_eq!(db.total_symbols(), 3);
    }
}
